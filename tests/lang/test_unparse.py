"""Unparser tests: normalized output + parse/unparse round-trip."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast, parse
from repro.lang.unparse import unparse, unparse_expr
from tests.verify.programs import ALL_PROGRAMS


def _strip_positions(node):
    """Structural comparison ignoring source positions."""
    if isinstance(node, (ast.Program, ast.GlobalDecl, ast.ThreadDef)) or (
        dataclasses.is_dataclass(node) and not isinstance(node, type)
    ):
        fields = {}
        for f in dataclasses.fields(node):
            if f.name == "pos":
                continue
            fields[f.name] = _strip_positions(getattr(node, f.name))
        return (type(node).__name__, tuple(sorted(fields.items())))
    if isinstance(node, list):
        return tuple(_strip_positions(x) for x in node)
    return node


@pytest.mark.parametrize("name,source,_safe", ALL_PROGRAMS)
def test_roundtrip_on_corpus(name, source, _safe):
    p1 = parse(source)
    p2 = parse(unparse(p1))
    assert _strip_positions(p1) == _strip_positions(p2), name


class TestExprPrinting:
    def expr(self, text):
        prog = parse(f"int x, y, z; thread t {{ x = {text}; }}")
        return prog.threads[0].body[0].value

    def test_minimal_parens_precedence(self):
        assert unparse_expr(self.expr("x + y * z")) == "x + y * z"
        assert unparse_expr(self.expr("(x + y) * z")) == "(x + y) * z"

    def test_left_associativity_preserved(self):
        assert unparse_expr(self.expr("x - y - z")) == "x - y - z"
        assert unparse_expr(self.expr("x - (y - z)")) == "x - (y - z)"

    def test_unary(self):
        assert unparse_expr(self.expr("-x + !y")) == "-x + !y"

    def test_logical_nesting(self):
        assert (
            unparse_expr(self.expr("x == 1 && (y == 2 || z == 3)"))
            == "x == 1 && (y == 2 || z == 3)"
        )

    def test_nondet(self):
        assert unparse_expr(self.expr("nondet() + 1")) == "nondet() + 1"


# Random expression round-trip --------------------------------------------

def exprs(depth):
    leaf = st.one_of(
        st.integers(0, 99).map(ast.IntLit),
        st.sampled_from(["x", "y", "z"]).map(ast.VarRef),
    )
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    ops = st.sampled_from(
        ["+", "-", "*", "&&", "||", "==", "!=", "<", "<=", "&", "|", "^"]
    )
    return st.one_of(
        leaf,
        st.tuples(ops, sub, sub).map(lambda t: ast.Binary(t[0], t[1], t[2])),
        st.tuples(st.sampled_from(["-", "!", "~"]), sub).map(
            lambda t: ast.Unary(t[0], t[1])
        ),
    )


@settings(max_examples=200, deadline=None)
@given(e=exprs(4))
def test_random_expr_roundtrip(e):
    text = unparse_expr(e)
    prog = parse(f"int x, y, z; thread t {{ x = {text}; }}")
    reparsed = prog.threads[0].body[0].value
    assert _strip_positions(e) == _strip_positions(reparsed), text
