"""Lexer tests."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


class TestTokens:
    def test_empty(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_vs_idents(self):
        assert kinds("int x while foo") == [
            ("kw", "int"), ("ident", "x"), ("kw", "while"), ("ident", "foo"),
        ]

    def test_numbers(self):
        assert kinds("0 42 1234") == [
            ("int_lit", "0"), ("int_lit", "42"), ("int_lit", "1234"),
        ]

    def test_maximal_munch_operators(self):
        assert [t for _, t in kinds("a<=b==c&&d")] == ["a", "<=", "b", "==", "c", "&&", "d"]

    def test_single_char_ops(self):
        assert [t for _, t in kinds("(x+y)*z;")] == ["(", "x", "+", "y", ")", "*", "z", ";"]

    def test_line_comment(self):
        assert kinds("x // comment here\ny") == [("ident", "x"), ("ident", "y")]

    def test_block_comment(self):
        assert kinds("x /* multi\nline */ y") == [("ident", "x"), ("ident", "y")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("x /* oops")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("x $ y")

    def test_positions(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_underscored_identifiers(self):
        assert kinds("_x x_1 __a") == [("ident", "_x"), ("ident", "x_1"), ("ident", "__a")]
