"""Semantic checker tests."""

import pytest

from repro.lang import check_program, parse
from repro.lang.sema import SemanticError


def check(src):
    check_program(parse(src))


class TestDeclarations:
    def test_valid_program(self):
        check("int x; thread t { x = 1; } main { start t; join t; }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            check("int x; int x;")

    def test_duplicate_thread(self):
        with pytest.raises(SemanticError):
            check("thread t { skip; } thread t { skip; }")

    def test_thread_named_main(self):
        # 'main' is a keyword, so this is rejected at parse time already.
        from repro.lang.parser import ParseError

        with pytest.raises((SemanticError, ParseError)):
            check("thread main { skip; }")

    def test_local_shadows_global(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { int x; }")

    def test_duplicate_local(self):
        with pytest.raises(SemanticError):
            check("thread t { int a; int a; }")

    def test_undeclared_variable_read(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { x = y; }")

    def test_undeclared_assign_target(self):
        with pytest.raises(SemanticError):
            check("thread t { y = 1; }")


class TestLocks:
    def test_lock_ok(self):
        check("lock m; thread t { lock(m); unlock(m); }")

    def test_lock_unknown_name(self):
        with pytest.raises(SemanticError):
            check("thread t { lock(m); }")

    def test_lock_on_plain_int(self):
        with pytest.raises(SemanticError):
            check("int m; thread t { lock(m); }")

    def test_lock_var_not_assignable(self):
        with pytest.raises(SemanticError):
            check("lock m; thread t { m = 1; }")

    def test_lock_var_not_readable(self):
        with pytest.raises(SemanticError):
            check("lock m; int x; thread t { x = m; }")


class TestStartJoin:
    def test_start_join_outside_main(self):
        with pytest.raises(SemanticError):
            check("thread t { start t; }")

    def test_start_unknown_thread(self):
        with pytest.raises(SemanticError):
            check("main { start nope; }")

    def test_join_before_start(self):
        with pytest.raises(SemanticError):
            check("thread t { skip; } main { join t; }")

    def test_double_start(self):
        with pytest.raises(SemanticError):
            check("thread t { skip; } main { start t; start t; }")

    def test_conditional_start_rejected(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { skip; } main { if (x) { start t; } }")


class TestAtomic:
    def test_rmw_ok(self):
        check("int x; thread t { atomic { x = x + 1; } }")

    def test_tas_ok(self):
        check("int x; thread t { atomic { assume(x == 0); x = 1; } }")

    def test_nested_atomic_rejected(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { atomic { atomic { x = 1; } } }")

    def test_branching_in_atomic_rejected(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { atomic { if (x) { x = 1; } } }")

    def test_two_shared_vars_rejected(self):
        with pytest.raises(SemanticError):
            check("int x, y; thread t { atomic { x = y; } }")

    def test_two_writes_rejected(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { atomic { x = 1; x = 2; } }")

    def test_two_reads_rejected(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { atomic { x = x + x; } }")

    def test_assert_in_atomic_rejected(self):
        with pytest.raises(SemanticError):
            check("int x; thread t { atomic { assert(x == 0); } }")

    def test_local_only_atomic_ok(self):
        check("thread t { int a; atomic { a = 1; } }")
