"""Parse -> unparse -> parse round-trip over every program source the
repo ships: the example files and all bench pattern/suite generators.

The analyzer's warning printer goes through :mod:`repro.lang.unparse`, so
the unparser must faithfully cover every construct those corpora use."""

from pathlib import Path

import pytest

from repro.bench import patterns
from repro.lang import parse
from repro.lang.unparse import unparse
from tests.lang.test_unparse import _strip_positions

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "programs"

PATTERN_SOURCES = [
    ("ticket_lock", patterns.ticket_lock(3)),
    ("barrier_sum", patterns.barrier_sum(3)),
    ("readers_writer_locked", patterns.readers_writer(2, True)),
    ("readers_writer_racy", patterns.readers_writer(2, False)),
    ("bank_transfer_locked", patterns.bank_transfer(True)),
    ("bank_transfer_racy", patterns.bank_transfer(False)),
    ("flag_handoff", patterns.flag_handoff(3)),
    ("work_split", patterns.work_split(3, 2)),
    ("double_checked_init", patterns.double_checked_init(False)),
    ("double_checked_init_broken", patterns.double_checked_init(True)),
    ("seqlock", patterns.seqlock(False)),
    ("seqlock_broken", patterns.seqlock(True)),
]


def _normalize(program):
    """Position-stripped structure with globals order-normalized (the
    unparser groups int and lock declarations; order is irrelevant)."""
    key = _strip_positions(program)
    # key is ('Program', ((field, value), ...)); sort the globals tuple.
    fields = dict(key[1])
    fields["globals"] = tuple(sorted(fields["globals"]))
    return (key[0], tuple(sorted(fields.items())))


def _assert_roundtrip(source, label):
    p1 = parse(source)
    text = unparse(p1)
    p2 = parse(text)
    assert _normalize(p1) == _normalize(p2), label
    # Unparsed output must be a fixpoint: unparse(parse(unparse(p))) is
    # identical text.
    assert unparse(p2) == text, label


@pytest.mark.parametrize(
    "path", sorted(EXAMPLES.glob("*.c")), ids=lambda p: p.name
)
def test_roundtrip_example_files(path):
    _assert_roundtrip(path.read_text(), path.name)


@pytest.mark.parametrize(
    "name,source", PATTERN_SOURCES, ids=[n for n, _ in PATTERN_SOURCES]
)
def test_roundtrip_bench_patterns(name, source):
    _assert_roundtrip(source, name)


def test_roundtrip_svcomp_suite():
    from repro.bench.svcomp import svcomp_suite

    for task in svcomp_suite(scale=1):
        _assert_roundtrip(task.source, task.name)
