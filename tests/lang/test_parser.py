"""Parser tests for the mini concurrent language."""

import pytest

from repro.lang import ast
from repro.lang.parser import ParseError, parse

PAPER_EXAMPLE = """
int x = 0, y = 0, m = 0, n = 0;

thread thr1 {
    if (x == 1) { m = 1; } else { m = x; }
    y = x + 1;
}

thread thr2 {
    if (y == 1) { n = 1; } else { n = y; }
    x = y + 1;
}

main {
    start thr1;
    start thr2;
    join thr1;
    join thr2;
    assert(!(m == 1 && n == 1));
}
"""


class TestTopLevel:
    def test_paper_example_parses(self):
        prog = parse(PAPER_EXAMPLE)
        assert prog.global_names() == ["x", "y", "m", "n"]
        assert [t.name for t in prog.threads] == ["thr1", "thr2"]
        assert prog.main is not None
        assert len(prog.main.body) == 5

    def test_global_inits(self):
        prog = parse("int a = 5, b, c = -3;")
        assert [(g.name, g.init) for g in prog.globals] == [("a", 5), ("b", 0), ("c", -3)]

    def test_lock_declaration(self):
        prog = parse("lock m; int x;")
        assert prog.globals[0].is_lock is True
        assert prog.globals[1].is_lock is False

    def test_duplicate_main_rejected(self):
        with pytest.raises(ParseError):
            parse("main { } main { }")


class TestStatements:
    def parse_thread_body(self, body):
        prog = parse("int x; thread t { %s }" % body)
        return prog.threads[0].body

    def test_assign(self):
        (s,) = self.parse_thread_body("x = 1 + 2;")
        assert isinstance(s, ast.Assign)
        assert isinstance(s.value, ast.Binary)

    def test_local_decl(self):
        s1, s2 = self.parse_thread_body("int a; int b = x;")
        assert isinstance(s1, ast.LocalDecl) and s1.init is None
        assert isinstance(s2, ast.LocalDecl) and isinstance(s2.init, ast.VarRef)

    def test_if_else(self):
        (s,) = self.parse_thread_body("if (x) { x = 1; } else { x = 2; }")
        assert isinstance(s, ast.If)
        assert len(s.then_body) == 1 and len(s.else_body) == 1

    def test_if_without_else(self):
        (s,) = self.parse_thread_body("if (x) { x = 1; }")
        assert isinstance(s, ast.If) and s.else_body == []

    def test_else_if_chain(self):
        (s,) = self.parse_thread_body(
            "if (x == 1) { x = 1; } else if (x == 2) { x = 2; } else { x = 3; }"
        )
        assert isinstance(s.else_body[0], ast.If)

    def test_while(self):
        (s,) = self.parse_thread_body("while (x < 10) { x = x + 1; }")
        assert isinstance(s, ast.While)

    def test_assert_assume(self):
        s1, s2 = self.parse_thread_body("assert(x == 0); assume(x != 1);")
        assert isinstance(s1, ast.Assert)
        assert isinstance(s2, ast.Assume)

    def test_lock_unlock_stmt(self):
        prog = parse("lock m; thread t { lock(m); unlock(m); }")
        s1, s2 = prog.threads[0].body
        assert isinstance(s1, ast.Lock) and s1.name == "m"
        assert isinstance(s2, ast.Unlock)

    def test_atomic(self):
        (s,) = self.parse_thread_body("atomic { x = x + 1; }")
        assert isinstance(s, ast.Atomic) and len(s.body) == 1

    def test_skip(self):
        (s,) = self.parse_thread_body("skip;")
        assert isinstance(s, ast.Skip)

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            self.parse_thread_body("x = 1")


class TestExpressions:
    def expr(self, text):
        prog = parse("int x, y, z; thread t { x = %s; }" % text)
        return prog.threads[0].body[0].value

    def test_precedence_mul_over_add(self):
        e = self.expr("x + y * z")
        assert e.op == "+" and e.right.op == "*"

    def test_precedence_cmp_over_and(self):
        e = self.expr("x < y && y < z")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == "<"

    def test_precedence_and_over_or(self):
        e = self.expr("x && y || z")
        assert e.op == "||" and e.left.op == "&&"

    def test_parentheses_override(self):
        e = self.expr("(x + y) * z")
        assert e.op == "*" and e.left.op == "+"

    def test_left_associativity(self):
        e = self.expr("x - y - z")
        assert e.op == "-" and e.left.op == "-"

    def test_unary_ops(self):
        e = self.expr("-x + !y")
        assert e.left.op == "-" and e.right.op == "!"

    def test_nondet(self):
        e = self.expr("nondet()")
        assert isinstance(e, ast.Nondet)

    def test_true_false_literals(self):
        assert self.expr("true").value == 1
        assert self.expr("false").value == 0

    def test_bitwise_precedence(self):
        # & binds tighter than ^ binds tighter than |
        e = self.expr("x | y ^ z & x")
        assert e.op == "|" and e.right.op == "^" and e.right.right.op == "&"

    def test_unexpected_token(self):
        with pytest.raises(ParseError):
            self.expr("x +")
