"""Explorer tests: trace counts, DPOR reduction, verdicts."""

import math

import pytest

from repro.lang import parse
from repro.smc import Explorer, compile_program


def explore(src, mode="dpor", **kw):
    compiled = compile_program(parse(src), width=8, unwind=kw.pop("unwind", 8))
    return Explorer(compiled, mode=mode, **kw).run()


def two_writer_program(n, same_addr):
    decls = "int x0 = 0;" if same_addr else " ".join(
        f"int x{i} = 0;" for i in range(n)
    )
    threads = "\n".join(
        f"thread t{i} {{ x{0 if same_addr else i} = {i + 1}; }}" for i in range(n)
    )
    return f"{decls}\n{threads}\n"


class TestNaiveCounts:
    def test_single_thread_one_trace(self):
        out = explore("int x; thread t { x = 1; x = 2; }", mode="naive")
        assert out.traces == 1

    def test_two_independent_writers_two_interleavings(self):
        out = explore(two_writer_program(2, same_addr=False), mode="naive")
        assert out.traces == 2

    def test_three_writers_six_interleavings(self):
        out = explore(two_writer_program(3, same_addr=False), mode="naive")
        assert out.traces == 6

    def test_interleaving_of_two_steps_each(self):
        # Two threads with 2 visible ops each: C(4,2) = 6 interleavings.
        src = """
        int x = 0; int y = 0;
        thread t1 { x = 1; x = 2; }
        thread t2 { y = 1; y = 2; }
        """
        out = explore(src, mode="naive")
        assert out.traces == 6

    def test_nondet_branches_counted(self):
        out = explore("int x; thread t { x = nondet(); }", mode="naive",
                      nondet_domain=(0, 1, 2))
        assert out.traces == 3


class TestDporReduction:
    def test_independent_writers_reduced_to_one(self):
        out = explore(two_writer_program(3, same_addr=False), mode="dpor")
        assert out.traces == 1

    def test_conflicting_writers_not_reduced(self):
        out = explore(two_writer_program(3, same_addr=True), mode="dpor")
        assert out.traces == 6  # all orders of 3 same-address writes

    def test_mixed_dependence(self):
        # t1 and t2 conflict on x; t3 is independent: 2 Mazurkiewicz traces.
        src = """
        int x = 0; int y = 0;
        thread t1 { x = 1; }
        thread t2 { x = 2; }
        thread t3 { y = 1; }
        """
        out = explore(src, mode="dpor")
        assert out.traces == 2

    def test_dpor_agrees_with_naive_on_verdicts(self):
        src = """
        int x = 0;
        thread t1 { x = 1; }
        thread t2 { x = 2; }
        main { start t1; start t2; join t1; join t2; assert(x == 1); }
        """
        naive = explore(src, mode="naive")
        dpor = explore(src, mode="dpor")
        assert naive.verdict == dpor.verdict == "unsafe"

    def test_reader_writer_dependence(self):
        # writer/reader on x: 2 rf classes = 2 Mazurkiewicz traces.
        src = """
        int x = 0; int r = 0;
        thread w { x = 1; }
        thread rd { r = x; }
        """
        out = explore(src, mode="dpor")
        assert out.traces == 2
        assert out.rf_classes == 2

    def test_rf_classes_can_be_fewer_than_traces(self):
        # Two writes of x, no reads: Mazurkiewicz 2, rf classes 1.
        out = explore(two_writer_program(2, same_addr=True), mode="dpor")
        assert out.traces == 2
        assert out.rf_classes == 1


class TestVerdicts:
    def test_safe_program(self):
        src = """
        int x = 0;
        thread t { x = 1; }
        main { start t; join t; assert(x == 1); }
        """
        assert explore(src).verdict == "safe"

    def test_unsafe_has_witness_schedule(self):
        src = """
        int x = 0;
        thread t1 { x = 1; }
        thread t2 { x = 2; }
        main { start t1; start t2; join t1; join t2; assert(x == 1); }
        """
        out = explore(src)
        assert out.verdict == "unsafe"
        assert out.witness_schedule

    def test_assume_prunes_violation(self):
        # assert fires but the path then fails an assume -> not an error.
        # (The verdict is "unknown" rather than "safe" because the bounded
        # nondet domain cannot prove safety -- but crucially not "unsafe".)
        src = """
        int x = 0;
        thread t { x = nondet(); assert(x == 0); assume(x == 0); }
        """
        out = explore(src, nondet_domain=(0, 1))
        assert out.verdict == "unknown"
        assert out.witness_schedule is None
        assert out.blocked >= 1

    def test_full_nondet_domain_proves_safety(self):
        src = """
        int x = 0;
        thread t { x = nondet(); assert(x >= 0 || x < 0); }
        """
        out = explore(src, nondet_domain=tuple(range(256)))
        assert out.verdict == "safe"

    def test_deadlocked_violation_discarded(self):
        # Whoever acquires m never releases it, so the other thread (and
        # main's join) can never complete: every execution deadlocks and is
        # discarded -- matching the SMT encoding, where the blocked lock
        # read has no feasible source write.  Verdict: SAFE.
        src = """
        lock m;
        thread t1 { lock(m); }
        thread t2 { lock(m); assert(false); }
        """
        out = explore(src)
        assert out.verdict == "safe"
        assert out.traces == 0

    def test_released_lock_violation_found(self):
        src = """
        lock m;
        thread t1 { lock(m); unlock(m); }
        thread t2 { lock(m); assert(false); unlock(m); }
        """
        out = explore(src)
        assert out.verdict == "unsafe"

    def test_transition_budget_unknown(self):
        src = two_writer_program(4, same_addr=True)
        out = explore(src, mode="naive", max_transitions=5)
        assert out.verdict == "unknown"


class TestAgainstSmtEngine:
    @pytest.mark.parametrize(
        "name,source,is_safe",
        [p for p in __import__(
            "tests.verify.programs", fromlist=["ALL_PROGRAMS"]
        ).ALL_PROGRAMS if p[0] not in ("nondet_unsafe", "assume_safe")],
    )
    def test_corpus_agreement(self, name, source, is_safe):
        out = explore(source, mode="dpor", unwind=4)
        assert out.verdict == ("safe" if is_safe else "unsafe"), name
