"""Interpreter unit tests: semantics of the bytecode machine."""

import pytest

from repro.lang import parse
from repro.smc import Interpreter, compile_program


def make(src, width=8, unwind=8):
    compiled = compile_program(parse(src), width=width, unwind=unwind)
    return Interpreter(compiled)


def run_sequential(interp, choices=None):
    """Drive the only-enabled transitions to completion (deterministic
    programs); returns the final state."""
    state = interp.initial_state()
    fuel = 10000
    while not state.infeasible:
        ops = interp.enabled_ops(state)
        if not ops:
            break
        assert len({op.tid for op in ops}) >= 1
        op = ops[0]
        value = 0
        if op.kind == "nondet" and choices:
            value = choices.pop(0)
        interp.step(state, op.tid, value)
        fuel -= 1
        assert fuel > 0, "runaway execution"
    return state


class TestSequential:
    def test_arithmetic_and_assignment(self):
        interp = make("int x; main { x = 2 + 3 * 4; }")
        state = run_sequential(interp)
        assert interp.is_complete(state)
        assert state.mem["x"] == 14

    def test_locals_invisible(self):
        interp = make("int x; main { int a; a = 5; int b; b = a + 1; x = b; }")
        state = run_sequential(interp)
        # Only one visible op: the store to x (plus none for locals).
        assert state.mem["x"] == 6

    def test_if_else_branches(self):
        interp = make("int x = 1, y; main { if (x == 1) { y = 10; } else { y = 20; } }")
        assert run_sequential(interp).mem["y"] == 10
        interp = make("int x = 2, y; main { if (x == 1) { y = 10; } else { y = 20; } }")
        assert run_sequential(interp).mem["y"] == 20

    def test_while_loop(self):
        interp = make(
            "int x; main { int i; i = 0; while (i < 5) { i = i + 1; } x = i; }"
        )
        assert run_sequential(interp).mem["x"] == 5

    def test_loop_beyond_unwind_gets_stuck(self):
        interp = make(
            "int x; main { int i; i = 0; while (i < 5) { i = i + 1; } x = i; }",
            unwind=3,
        )
        state = run_sequential(interp)
        assert state.infeasible
        assert state.threads["main"].stuck
        assert not interp.is_complete(state)

    def test_stuck_thread_does_not_block_others(self):
        # The sibling thread keeps running after t gets stuck (the
        # execution still can never complete).
        src = """
        int x = 0, y = 0;
        thread t { assume(x == 1); }
        thread u { y = 1; y = 2; }
        main { start t; start u; join t; join u; }
        """
        interp = make(src)
        state = interp.initial_state()
        # Run t first: its assume(x == 1) fails -> stuck.
        interp.step(state, "t")  # loadg x, then assume fails during advance
        assert state.threads["t"].stuck
        ops = {op.tid for op in interp.enabled_ops(state)}
        assert ops == {"u"}
        interp.step(state, "u")
        interp.step(state, "u")
        assert state.mem["y"] == 2
        assert not interp.is_complete(state)

    def test_nested_loop_budget_resets(self):
        src = """
        int x;
        main {
            int i; int j; int c; c = 0; i = 0;
            while (i < 2) { j = 0; while (j < 3) { j = j + 1; c = c + 1; } i = i + 1; }
            x = c;
        }
        """
        interp = make(src, unwind=3)
        state = run_sequential(interp)
        assert not state.infeasible
        assert state.mem["x"] == 6

    def test_assert_violation_recorded(self):
        interp = make("int x = 1; main { assert(x == 2); }")
        state = run_sequential(interp)
        assert interp.is_complete(state)
        assert state.violated

    def test_assume_failure_sticks_thread(self):
        interp = make("int x = 1; main { assume(x == 2); assert(x == 3); }")
        state = run_sequential(interp)
        assert state.infeasible
        assert not state.violated
        assert not interp.is_complete(state)

    def test_signed_comparison(self):
        interp = make("int x = -1, y; main { if (x < 0) { y = 1; } }", width=8)
        assert run_sequential(interp).mem["y"] == 1

    def test_wraparound(self):
        interp = make("int x = 127, y; main { y = x + 1; }", width=8)
        assert run_sequential(interp).mem["y"] == 128  # raw unsigned cell

    def test_nondet_choice_applied(self):
        interp = make("int x; main { x = nondet(); }")
        state = interp.initial_state()
        ops = interp.enabled_ops(state)
        assert ops[0].kind == "nondet"
        interp.step(state, ops[0].tid, 7)
        # Then the store is the next visible op.
        ops = interp.enabled_ops(state)
        interp.step(state, ops[0].tid)
        assert state.mem["x"] == 7


class TestConcurrency:
    SRC = """
    int x = 0;
    thread t1 { x = 1; }
    thread t2 { x = 2; }
    main { start t1; start t2; join t1; join t2; }
    """

    def test_both_threads_enabled_after_start(self):
        interp = make(self.SRC)
        state = interp.initial_state()
        ops = interp.enabled_ops(state)
        assert {op.tid for op in ops} == {"t1", "t2"}

    def test_join_blocks_until_finished(self):
        interp = make(self.SRC)
        state = interp.initial_state()
        # Run t1 only: main settles through "join t1" and parks at
        # "join t2" (joins are synchronization, never schedulable events).
        interp.step(state, "t1")
        assert "main" not in {op.tid for op in interp.enabled_ops(state)}
        assert not interp.is_complete(state)
        # Once t2 finishes, main settles through the remaining join and
        # completes the execution.
        interp.step(state, "t2")
        assert interp.is_complete(state)

    def test_unstarted_thread_disabled(self):
        src = "int x; thread t1 { x = 1; } thread t2 { x = 2; } main { start t1; join t1; }"
        interp = make(src)
        state = interp.initial_state()
        ops = interp.enabled_ops(state)
        assert {op.tid for op in ops} == {"t1"}

    def test_lock_blocks_second_acquirer(self):
        src = """
        lock m; int x;
        thread t1 { lock(m); x = 1; unlock(m); }
        thread t2 { lock(m); x = 2; unlock(m); }
        main { start t1; start t2; join t1; join t2; }
        """
        interp = make(src)
        state = interp.initial_state()
        interp.step(state, "t1")  # t1 acquires m
        ops = interp.enabled_ops(state)
        assert "t2" not in {op.tid for op in ops}
        # After t1's store and unlock, t2 becomes enabled again.
        interp.step(state, "t1")  # x = 1
        interp.step(state, "t1")  # unlock
        ops = interp.enabled_ops(state)
        assert "t2" in {op.tid for op in ops}

    def test_atomic_tas_blocking(self):
        src = """
        int l = 1;
        thread t { atomic { assume(l == 0); l = 1; } }
        main { start t; join t; }
        """
        interp = make(src)
        state = interp.initial_state()
        # l starts at 1: the TAS is disabled, nothing is enabled -> deadlock.
        assert interp.enabled_ops(state) == []
        assert not interp.is_complete(state)

    def test_atomic_executes_as_unit(self):
        src = """
        int c = 0;
        thread t1 { atomic { c = c + 1; } }
        thread t2 { atomic { c = c + 1; } }
        main { start t1; start t2; join t1; join t2; }
        """
        interp = make(src)
        state = interp.initial_state()
        interp.step(state, "t1")
        assert state.mem["c"] == 1
        interp.step(state, "t2")
        assert state.mem["c"] == 2

    def test_rf_signature_distinguishes_sources(self):
        src = """
        int x = 0; int y = 0;
        thread w { x = 1; }
        thread r { y = x; }
        main { start w; start r; join w; join r; }
        """
        interp = make(src)
        # Order A: write then read (reads w's value).
        s1 = interp.initial_state()
        interp.step(s1, "w")
        interp.step(s1, "r")  # loadg x
        # Order B: read then write (reads init).
        s2 = interp.initial_state()
        interp.step(s2, "r")
        interp.step(s2, "w")
        assert s1.rf_signature() != s2.rf_signature()

    def test_state_key_identifies_equal_states(self):
        interp = make(self.SRC)
        s1 = interp.initial_state()
        s2 = interp.initial_state()
        assert s1.key() == s2.key()
        interp.step(s1, "t1")
        assert s1.key() != s2.key()

    def test_clone_independent(self):
        interp = make(self.SRC)
        s1 = interp.initial_state()
        s2 = s1.clone()
        interp.step(s1, "t1")
        assert s2.mem["x"] == 0
        assert s1.mem["x"] == 1
