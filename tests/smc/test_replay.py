"""Schedule replay tests: SMC witnesses must replay to violated states."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse
from repro.smc import Explorer, compile_program
from repro.smc.interpreter import Interpreter
from repro.smc.replay import ReplayError, replay_schedule

UNSAFE = """
int x = 0;
thread t1 { x = 1; }
thread t2 { x = 2; }
main { start t1; start t2; join t1; join t2; assert(x == 1); }
"""


class TestReplay:
    def test_witness_schedule_reproduces_violation(self):
        compiled = compile_program(parse(UNSAFE), width=8, unwind=4)
        out = Explorer(compiled, mode="dpor").run()
        assert out.verdict == "unsafe"
        state = replay_schedule(compiled, out.witness_schedule)
        interp = Interpreter(compiled)
        assert interp.is_complete(state)
        assert state.violated

    def test_replay_accepts_source_text(self):
        compiled = compile_program(parse(UNSAFE), width=8, unwind=4)
        out = Explorer(compiled, mode="dpor").run()
        state = replay_schedule(UNSAFE, out.witness_schedule, unwind=4)
        assert state.violated

    def test_bad_thread_rejected(self):
        with pytest.raises(ReplayError):
            replay_schedule(UNSAFE, ["nope: storeg x"])

    def test_wrong_op_rejected(self):
        with pytest.raises(ReplayError):
            replay_schedule(UNSAFE, ["t1: loadg x"])  # t1 is at a store

    def test_garbage_entry_rejected(self):
        with pytest.raises(ReplayError):
            replay_schedule(UNSAFE, ["garbage"])

    def test_blocked_thread_rejected(self):
        src = """
        lock m;
        thread a { lock(m); unlock(m); }
        thread b { lock(m); unlock(m); }
        """
        # a acquires, then scheduling b's lock is a blocked step.
        with pytest.raises(ReplayError):
            replay_schedule(src, ["a: lock m", "b: lock m"])

    def test_nondet_value_replayed(self):
        src = "int x = 0; thread t { x = nondet(); } main { start t; join t; assert(x != 3); }"
        compiled = compile_program(parse(src), width=8, unwind=4)
        out = Explorer(compiled, mode="dpor", nondet_domain=(0, 3)).run()
        assert out.verdict == "unsafe"
        state = replay_schedule(compiled, out.witness_schedule)
        assert state.violated
        assert state.mem["x"] == 3


_STMTS = ["x = 1;", "x = 2;", "y = x;", "int L; L = x; x = L + 1;"]


@settings(max_examples=30, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=2),
        min_size=2,
        max_size=3,
    ),
)
def test_every_unsafe_witness_replays(body_ids):
    decls = "int x = 0; int y = 0;"
    threads = []
    for i, ids in enumerate(body_ids):
        stmts = " ".join(
            _STMTS[k].replace("L", f"L{i}_{j}") for j, k in enumerate(ids)
        )
        threads.append(f"thread t{i} {{ {stmts} }}")
    starts = " ".join(f"start t{i};" for i in range(len(body_ids)))
    joins = " ".join(f"join t{i};" for i in range(len(body_ids)))
    src = (decls + "\n" + "\n".join(threads)
           + f"\nmain {{ {starts} {joins} assert(x + y < 3); }}")
    compiled = compile_program(parse(src), width=8, unwind=3)
    out = Explorer(compiled, mode="dpor").run()
    if out.verdict == "unsafe":
        state = replay_schedule(compiled, out.witness_schedule)
        assert state.violated
        assert Interpreter(compiled).is_complete(state)
