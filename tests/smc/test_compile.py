"""Structural tests for the AST-to-bytecode compiler."""

import pytest

from repro.lang import parse
from repro.smc.compile import compile_program


def compile_thread(body, decls="int x = 0; int y = 0;"):
    prog = compile_program(parse(f"{decls} thread t {{ {body} }}"))
    return prog.threads["t"].code


class TestCodegen:
    def test_shared_vs_local_loads(self):
        code = compile_thread("int a; a = x; y = a;")
        kinds = [i[0] for i in code]
        assert "loadg" in kinds and "storel" in kinds and "storeg" in kinds

    def test_if_else_jump_targets_in_range(self):
        code = compile_thread("if (x == 1) { y = 1; } else { y = 2; }")
        for instr in code:
            if instr[0] in ("jmp", "jz"):
                assert 0 <= instr[1] <= len(code)

    def test_while_has_backedge_and_reset(self):
        code = compile_thread("while (x < 3) { x = x + 1; }")
        kinds = [i[0] for i in code]
        assert "iter" in kinds and "iterrst" in kinds
        jmps = [i for i in code if i[0] == "jmp"]
        head = kinds.index("iter")
        assert any(j[1] == head for j in jmps), "loop back-edge missing"

    def test_atomic_brackets(self):
        code = compile_thread("atomic { x = x + 1; }")
        kinds = [i[0] for i in code]
        begin = kinds.index("abegin")
        end = kinds.index("aend")
        assert begin < end
        assert code[begin][1] == end + 1  # abegin arg: index after aend

    def test_lock_unlock_instructions(self):
        prog = compile_program(
            parse("lock m; thread t { lock(m); unlock(m); }")
        )
        kinds = [i[0] for i in prog.threads["t"].code]
        assert kinds == ["lock", "unlock"]

    def test_main_start_join(self):
        prog = compile_program(
            parse("int x; thread t { x = 1; } main { start t; join t; }")
        )
        kinds = [i[0] for i in prog.main.code]
        assert kinds == ["start", "join"]

    def test_implicit_main_generated(self):
        prog = compile_program(parse("int x; thread a { x = 1; } thread b { x = 2; }"))
        kinds = [i[0] for i in prog.main.code]
        assert kinds == ["start", "start", "join", "join"]

    def test_uses_nondet_flag(self):
        assert compile_program(
            parse("int x; thread t { x = nondet(); }")
        ).uses_nondet
        assert not compile_program(
            parse("int x; thread t { x = 1; }")
        ).uses_nondet

    def test_distinct_loop_ids(self):
        code = compile_thread(
            "while (x < 2) { x = x + 1; } while (y < 2) { y = y + 1; }"
        )
        loop_ids = {i[1] for i in code if i[0] == "iter"}
        assert len(loop_ids) == 2

    def test_fence_compiles_to_nothing(self):
        code = compile_thread("fence; x = 1;")
        kinds = [i[0] for i in code]
        assert kinds[0] != "fence"  # no runtime footprint under SC
