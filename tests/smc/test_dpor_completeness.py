"""DPOR completeness: on random small programs, Source-DPOR must observe
the exact same set of reads-from equivalence classes (and the same verdict)
as naive full enumeration, while exploring no more interleavings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse
from repro.smc import Explorer, compile_program


def _signatures(compiled, mode):
    explorer = Explorer(compiled, mode=mode, stop_at_first_violation=False)
    outcome = explorer.run()
    assert outcome.verdict != "unknown"
    return explorer.last_signatures, outcome


# Statement pools for random thread bodies over shared vars x, y.
_STMTS = [
    "x = 1;",
    "x = 2;",
    "y = 1;",
    "int rA; rA = x;",
    "int rB; rB = y;",
    "int rC; rC = x; x = rC + 1;",
    "x = 3; int rD; rD = y;",
    "atomic { x = x + 1; }",
    "lock(m); x = 4; unlock(m);",
]


def _build_source(bodies):
    decls = "int x = 0; int y = 0; lock m;"
    threads = []
    for i, body in enumerate(bodies):
        stmts = " ".join(
            _STMTS[k]
            .replace("rA", f"rA{i}_{j}").replace("rB", f"rB{i}_{j}")
            .replace("rC", f"rC{i}_{j}").replace("rD", f"rD{i}_{j}")
            for j, k in enumerate(body)
        )
        threads.append(f"thread t{i} {{ {stmts} }}")
    return decls + "\n" + "\n".join(threads)


@settings(max_examples=80, deadline=None)
@given(
    bodies=st.lists(
        st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=3),
        min_size=2,
        max_size=3,
    )
)
def test_dpor_covers_all_rf_classes(bodies):
    src = _build_source(bodies)
    compiled = compile_program(parse(src), width=8, unwind=3)

    naive_sigs, naive_out = _signatures(compiled, "naive")
    dpor_sigs, dpor_out = _signatures(compiled, "dpor")

    assert dpor_sigs == naive_sigs, (
        f"DPOR missed rf classes: {naive_sigs - dpor_sigs} "
        f"or invented: {dpor_sigs - naive_sigs}\nprogram:\n{src}"
    )
    # Reduction property: DPOR explores no more transitions than naive.
    assert dpor_out.transitions <= naive_out.transitions
    # Verdict agreement (both explore all traces here).
    assert dpor_out.verdict == naive_out.verdict


@settings(max_examples=40, deadline=None)
@given(
    bodies=st.lists(
        st.lists(st.integers(0, 6), min_size=1, max_size=2),
        min_size=2,
        max_size=4,
    )
)
def test_dpor_verdicts_match_naive_with_assertions(bodies):
    # Add an assertion over the shared state in main.
    src = _build_source(bodies)
    src += "\nmain { "
    src += " ".join(f"start t{i};" for i in range(len(bodies)))
    src += " "
    src += " ".join(f"join t{i};" for i in range(len(bodies)))
    src += " assert(x != 3 || y != 1); }"
    compiled = compile_program(parse(src), width=8, unwind=3)
    naive = Explorer(compiled, mode="naive").run()
    dpor = Explorer(compiled, mode="dpor").run()
    assert naive.verdict == dpor.verdict
