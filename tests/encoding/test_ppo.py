"""Property tests for preserved-program-order computation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.ppo import _fence_like_events, _preserved, preserved_program_order
from repro.frontend import build_symbolic_program
from repro.lang import parse

_STMTS = [
    "x = 1;",
    "y = 1;",
    "int rA; rA = x;",
    "int rB; rB = y;",
    "fence;",
    "atomic { x = x + 1; }",
    "z = x;",
]


def _build(body_ids):
    decls = "int x = 0; int y = 0; int z = 0;"
    threads = []
    for i, ids in enumerate(body_ids):
        stmts = " ".join(
            _STMTS[k].replace("rA", f"rA{i}_{j}").replace("rB", f"rB{i}_{j}")
            for j, k in enumerate(ids)
        )
        threads.append(f"thread t{i} {{ {stmts} }}")
    return build_symbolic_program(parse(decls + "\n" + "\n".join(threads)))


def _closure(n, edges):
    reach = [set() for _ in range(n)]
    order = list(range(n))
    adj = {i: [] for i in range(n)}
    for a, b in edges:
        adj[a].append(b)
    # events ids are topologically ordered within a thread already.
    for a in reversed(order):
        for b in adj[a]:
            reach[a].add(b)
            reach[a] |= reach[b]
    return reach


@settings(max_examples=60, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=4),
        min_size=1,
        max_size=2,
    ),
    model=st.sampled_from(["tso", "pso"]),
)
def test_ppo_reachability_is_closure_of_preserved_pairs(body_ids, model):
    sym = _build(body_ids)
    edges = preserved_program_order(sym, model)
    fence_like = _fence_like_events(sym)
    n = len(sym.events)
    thread_of = {ev.eid: ev.thread for ev in sym.events}
    intra = [(a, b) for a, b in edges if thread_of[a] == thread_of[b]]
    reach = _closure(n, intra)
    for thread in sym.threads:
        events = thread.events
        for i in range(len(events)):
            for j in range(i + 1, len(events)):
                e1, e2 = events[i], events[j]
                preserved = _preserved(e1, e2, model, fence_like)
                if preserved:
                    assert e2.eid in reach[e1.eid], (
                        f"preserved pair {e1} -> {e2} lost under {model}"
                    )


@settings(max_examples=40, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_STMTS) - 1), min_size=1, max_size=4),
        min_size=1,
        max_size=2,
    ),
)
def test_pso_ppo_subset_of_tso_subset_of_sc(body_ids):
    """Weaker models preserve (transitively) no more order."""
    sym = _build(body_ids)
    n = len(sym.events)
    closures = {}
    for model in ("sc", "tso", "pso"):
        edges = preserved_program_order(sym, model)
        closures[model] = _closure(n, edges)
    for i in range(n):
        assert closures["pso"][i] <= closures["tso"][i] <= closures["sc"][i]


def test_fence_like_includes_lock_accesses():
    sym = build_symbolic_program(
        parse("lock m; int x; thread t { lock(m); x = 1; unlock(m); }")
    )
    fence_like = _fence_like_events(sym)
    lock_events = [ev.eid for ev in sym.memory_events() if ev.addr == "m"]
    assert set(lock_events) <= fence_like
