"""Unit tests for the whole-program encoder (Section 3 constraints)."""

import pytest

from repro.encoding.encoder import encode_program
from repro.frontend import build_symbolic_program
from repro.lang import parse
from repro.sat import SolveResult


def encode(src, unwind=4, **kw):
    sym = build_symbolic_program(parse(src), unwind=unwind)
    return encode_program(sym, **kw)


class TestVariableCreation:
    SRC = """
    int x = 0;
    thread t1 { x = 1; }
    thread t2 { int a; a = x; }
    main { start t1; start t2; join t1; join t2; assert(x == 1); }
    """

    def test_rf_variables_per_read_write_pair(self):
        enc = encode(self.SRC)
        # Reads of x: t2's read + main's assert read.  Writes: init, t1's.
        # t2's read: 2 candidates.  main's read (after the joins): the init
        # write is statically shadowed by t1's unconditional write, so only
        # 1 candidate survives the static from-read pruning.
        assert enc.stats.rf_vars == 3

    def test_ws_variables_per_write_pair(self):
        enc = encode(self.SRC)
        # One unordered write pair (init, t1) -> two directed vars.
        assert enc.stats.ws_vars == 2

    def test_no_fr_vars_by_default(self):
        enc = encode(self.SRC)
        assert enc.stats.fr_vars == 0

    def test_fr_vars_in_zord_minus_mode(self):
        enc = encode(self.SRC, fr_encoding=True)
        assert enc.stats.fr_vars > 0

    def test_po_later_writes_pruned_from_rf_candidates(self):
        # A read can never read from a write that is PO-after it.
        src = """
        int x = 0;
        thread t { int a; a = x; x = 1; assert(a == 0); }
        """
        enc = encode(src)
        # t's read candidates: only the init write (t's own write is after).
        read = next(e for e in enc.symbolic.reads_of("x"))
        candidates = [
            (w, r) for (w, r) in enc.rf_vars.values() if r.eid == read.eid
        ]
        assert len(candidates) == 1
        assert candidates[0][0].thread == "main"  # the init write

    def test_trivially_safe_without_asserts(self):
        enc = encode("int x; thread t { x = 1; }")
        assert enc.trivially_safe


class TestSemanticCorrectness:
    def test_read_must_see_some_write(self):
        # x only ever 0 or 1; reading 7 impossible -> assert(x != 7) safe.
        src = """
        int x = 0;
        thread t { x = 1; }
        main { start t; join t; assert(x != 7); }
        """
        enc = encode(src)
        assert enc.solver.solve() == SolveResult.UNSAT

    def test_coherence_enforced_by_theory(self):
        # Single thread: later read must not see the earlier write.
        src = """
        int x = 0;
        thread t { x = 1; x = 2; int a; a = x; }
        main { start t; join t; assert(x == 2); }
        """
        enc = encode(src)
        assert enc.solver.solve() == SolveResult.UNSAT

    def test_rmw_atomicity_constraint(self):
        # Two atomic increments can never both read the initial value.
        src = """
        int x = 0;
        thread t1 { atomic { x = x + 1; } }
        thread t2 { atomic { x = x + 1; } }
        main { start t1; start t2; join t1; join t2; assert(x == 2); }
        """
        enc = encode(src)
        assert enc.solver.solve() == SolveResult.UNSAT

    def test_without_atomic_lost_update_possible(self):
        src = """
        int x = 0;
        thread t1 { int a; a = x; x = a + 1; }
        thread t2 { int a; a = x; x = a + 1; }
        main { start t1; start t2; join t1; join t2; assert(x == 2); }
        """
        enc = encode(src)
        assert enc.solver.solve() == SolveResult.SAT  # violation reachable

    def test_initial_unit_clauses_added(self):
        # PO-contradicted ws variables must be fixed false up front.
        src = """
        int x = 0;
        thread t { x = 1; x = 2; assert(x == 2); }
        """
        sym = build_symbolic_program(parse(src))
        enc = encode_program(sym)
        units = enc.theory.initial_unit_clauses()
        assert units  # at least ws(later, earlier) fixed false


class TestGuards:
    def test_disabled_branch_write_not_forced(self):
        # The write in the dead branch must not constrain the final value.
        src = """
        int x = 0, y = 5;
        thread t { if (y == 99) { x = 1; } }
        main { start t; join t; assert(x == 0); }
        """
        enc = encode(src)
        assert enc.solver.solve() == SolveResult.UNSAT  # safe: branch dead

    def test_enabled_branch_write_visible(self):
        src = """
        int x = 0, y = 99;
        thread t { if (y == 99) { x = 1; } }
        main { start t; join t; assert(x == 0); }
        """
        enc = encode(src)
        assert enc.solver.solve() == SolveResult.SAT  # x == 1 reachable
