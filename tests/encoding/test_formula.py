"""Tests for the hash-consed term IR and its constant folding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import formula as F


class TestHashConsing:
    def test_equal_terms_are_identical(self):
        a1 = F.bv_var("a", 8)
        a2 = F.bv_var("a", 8)
        assert a1 is a2
        s1 = F.bv_add(a1, F.bv_const(3, 8))
        s2 = F.bv_add(a2, F.bv_const(3, 8))
        assert s1 is s2

    def test_distinct_widths_distinct_terms(self):
        assert F.bv_var("a", 8) is not F.bv_var("a", 16)

    def test_bool_constants_are_singletons(self):
        assert F.bool_const(True) is F.TRUE
        assert F.bool_const(False) is F.FALSE


class TestFolding:
    def test_and_short_circuit(self):
        p = F.bool_var("p")
        assert F.mk_and(p, F.FALSE) is F.FALSE
        assert F.mk_and(p, F.TRUE) is p
        assert F.mk_and() is F.TRUE

    def test_or_short_circuit(self):
        p = F.bool_var("p")
        assert F.mk_or(p, F.TRUE) is F.TRUE
        assert F.mk_or(p, F.FALSE) is p
        assert F.mk_or() is F.FALSE

    def test_not_involution(self):
        p = F.bool_var("p")
        assert F.mk_not(F.mk_not(p)) is p
        assert F.mk_not(F.TRUE) is F.FALSE

    def test_and_flattens(self):
        p, q, r = F.bool_var("p"), F.bool_var("q"), F.bool_var("r")
        t = F.mk_and(F.mk_and(p, q), r)
        assert t.op == "and"
        assert set(t.args) == {p, q, r}

    def test_const_arith_folds(self):
        assert F.bv_add(F.bv_const(250, 8), F.bv_const(10, 8)).value == 4
        assert F.bv_sub(F.bv_const(3, 8), F.bv_const(5, 8)).value == 254
        assert F.bv_mul(F.bv_const(16, 8), F.bv_const(16, 8)).value == 0

    def test_add_zero_identity(self):
        a = F.bv_var("a", 8)
        assert F.bv_add(a, F.bv_const(0, 8)) is a
        assert F.bv_add(F.bv_const(0, 8), a) is a

    def test_mul_identities(self):
        a = F.bv_var("a", 8)
        assert F.bv_mul(a, F.bv_const(1, 8)) is a
        assert F.bv_mul(a, F.bv_const(0, 8)).value == 0

    def test_sub_self_is_zero(self):
        a = F.bv_var("a", 8)
        assert F.bv_sub(a, a).value == 0

    def test_eq_reflexive(self):
        a = F.bv_var("a", 8)
        assert F.eq(a, a) is F.TRUE

    def test_const_comparisons_fold(self):
        assert F.ult(F.bv_const(1, 8), F.bv_const(2, 8)) is F.TRUE
        # 255 is -1 signed.
        assert F.slt(F.bv_const(255, 8), F.bv_const(0, 8)) is F.TRUE
        assert F.slt(F.bv_const(0, 8), F.bv_const(255, 8)) is F.FALSE

    def test_ite_folding(self):
        t, e = F.bool_var("t"), F.bool_var("e")
        assert F.ite(F.TRUE, t, e) is t
        assert F.ite(F.FALSE, t, e) is e
        assert F.ite(F.bool_var("c"), t, t) is t


class TestSortChecking:
    def test_bool_op_rejects_bv(self):
        with pytest.raises(F.SortError):
            F.mk_and(F.bv_var("a", 8))

    def test_bv_op_rejects_mixed_width(self):
        with pytest.raises(F.SortError):
            F.bv_add(F.bv_var("a", 8), F.bv_var("b", 16))

    def test_bv_op_rejects_bool(self):
        with pytest.raises(F.SortError):
            F.bv_add(F.bool_var("p"), F.bool_var("q"))

    def test_nonpositive_width_rejected(self):
        with pytest.raises(F.SortError):
            F.bv_var("a", 0)


@settings(max_examples=200, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_constant_folding_matches_evaluator(a, b):
    ta, tb = F.bv_const(a, 8), F.bv_const(b, 8)
    for op, pyop in [
        (F.bv_add, lambda x, y: (x + y) & 255),
        (F.bv_sub, lambda x, y: (x - y) & 255),
        (F.bv_mul, lambda x, y: (x * y) & 255),
        (F.bv_and, lambda x, y: x & y),
        (F.bv_or, lambda x, y: x | y),
        (F.bv_xor, lambda x, y: x ^ y),
    ]:
        assert op(ta, tb).value == pyop(a, b)
    assert F.evaluate(F.eq(ta, tb), {}) == (a == b)
    assert F.evaluate(F.ult(ta, tb), {}) == (a < b)
