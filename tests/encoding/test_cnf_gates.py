"""Truth-table tests for the Tseitin gate library."""

import itertools

import pytest

from repro.encoding.cnf import CnfBuilder
from repro.sat import SolveResult, Solver


def check_gate(n_inputs, build, reference):
    """For every input combination, pin inputs, solve, compare output."""
    for bits in itertools.product([False, True], repeat=n_inputs):
        solver = Solver()
        builder = CnfBuilder(solver)
        ins = [solver.new_var() for _ in range(n_inputs)]
        out = build(builder, ins)
        for lit, value in zip(ins, bits):
            builder.fix(lit if value else -lit)
        assert solver.solve() == SolveResult.SAT
        got = solver.model_lit(out)
        assert got == reference(*bits), (bits, got)


class TestGates:
    def test_and2(self):
        check_gate(2, lambda b, i: b.and_gate(i), lambda x, y: x and y)

    def test_and3(self):
        check_gate(3, lambda b, i: b.and_gate(i), lambda x, y, z: x and y and z)

    def test_or2(self):
        check_gate(2, lambda b, i: b.or_gate(i), lambda x, y: x or y)

    def test_xor(self):
        check_gate(2, lambda b, i: b.xor_gate(*i), lambda x, y: x != y)

    def test_iff(self):
        check_gate(2, lambda b, i: b.iff_gate(*i), lambda x, y: x == y)

    def test_ite(self):
        check_gate(
            3, lambda b, i: b.ite_gate(*i), lambda c, t, e: t if c else e
        )

    def test_full_adder_sum(self):
        check_gate(
            3,
            lambda b, i: b.full_adder(*i)[0],
            lambda x, y, c: (x + y + c) % 2 == 1,
        )

    def test_full_adder_carry(self):
        check_gate(
            3,
            lambda b, i: b.full_adder(*i)[1],
            lambda x, y, c: (x + y + c) >= 2,
        )


class TestConstantShortCircuits:
    def setup_method(self):
        self.solver = Solver()
        self.b = CnfBuilder(self.solver)

    def test_and_with_false_is_false(self):
        v = self.solver.new_var()
        assert self.b.and_gate([v, self.b.false_lit]) == self.b.false_lit

    def test_and_with_true_drops_it(self):
        v = self.solver.new_var()
        assert self.b.and_gate([v, self.b.true_lit]) == v

    def test_and_of_nothing_is_true(self):
        assert self.b.and_gate([]) == self.b.true_lit

    def test_and_with_complementary_lits_is_false(self):
        v = self.solver.new_var()
        assert self.b.and_gate([v, -v]) == self.b.false_lit

    def test_xor_with_constants(self):
        v = self.solver.new_var()
        assert self.b.xor_gate(v, self.b.false_lit) == v
        assert self.b.xor_gate(v, self.b.true_lit) == -v
        assert self.b.xor_gate(v, v) == self.b.false_lit
        assert self.b.xor_gate(v, -v) == self.b.true_lit

    def test_ite_constant_condition(self):
        t, e = self.solver.new_var(), self.solver.new_var()
        assert self.b.ite_gate(self.b.true_lit, t, e) == t
        assert self.b.ite_gate(self.b.false_lit, t, e) == e

    def test_gate_caching_reuses_outputs(self):
        a, b2 = self.solver.new_var(), self.solver.new_var()
        g1 = self.b.and_gate([a, b2])
        g2 = self.b.and_gate([b2, a])  # same set, different order
        assert g1 == g2
        x1 = self.b.xor_gate(a, b2)
        x2 = self.b.xor_gate(b2, a)
        assert x1 == x2
