"""Bit-blasting validated against the reference evaluator.

The central property: for any term and any assignment to its variables,
pinning the variables in CNF and solving must yield the value the reference
evaluator computes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import BitBlaster, CnfBuilder
from repro.encoding import formula as F
from repro.sat import SolveResult, Solver


def check_bool(term, env):
    """Pin env, solve, compare model value of `term` with the evaluator."""
    solver = Solver()
    builder = CnfBuilder(solver)
    blaster = BitBlaster(builder)
    out = blaster.blast_bool(term)
    _pin_env(builder, blaster, term, env)
    assert solver.solve() == SolveResult.SAT
    expected = F.evaluate(term, env)
    assert solver.model_lit(out) == expected


def check_bv(term, env):
    solver = Solver()
    builder = CnfBuilder(solver)
    blaster = BitBlaster(builder)
    bits = blaster.blast_bv(term)
    _pin_env(builder, blaster, term, env)
    assert solver.solve() == SolveResult.SAT
    got = sum(1 << i for i, lit in enumerate(bits) if solver.model_lit(lit))
    assert got == F.evaluate(term, env)


def _pin_env(builder, blaster, term, env):
    names = _vars_of(term)
    for name, width in names.items():
        value = env[name]
        if width is None:
            lit = blaster.blast_bool(F.bool_var(name))
            builder.fix(lit if value else -lit)
        else:
            bits = blaster.blast_bv(F.bv_var(name, width))
            for i, lit in enumerate(bits):
                builder.fix(lit if (value >> i) & 1 else -lit)


def _vars_of(term, acc=None):
    if acc is None:
        acc = {}
    if term.op == "boolvar":
        acc[term.name] = None
    elif term.op == "bvvar":
        acc[term.name] = term.width
    for a in term.args:
        _vars_of(a, acc)
    return acc


W = 6  # width used in property tests (keeps CNFs small)
bv_value = st.integers(0, (1 << W) - 1)


class TestArithmetic:
    @settings(max_examples=40, deadline=None)
    @given(a=bv_value, b=bv_value)
    def test_add(self, a, b):
        t = F.bv_add(F.bv_var("a", W), F.bv_var("b", W))
        check_bv(t, {"a": a, "b": b})

    @settings(max_examples=40, deadline=None)
    @given(a=bv_value, b=bv_value)
    def test_sub(self, a, b):
        t = F.bv_sub(F.bv_var("a", W), F.bv_var("b", W))
        check_bv(t, {"a": a, "b": b})

    @settings(max_examples=30, deadline=None)
    @given(a=bv_value, b=bv_value)
    def test_mul(self, a, b):
        t = F.bv_mul(F.bv_var("a", W), F.bv_var("b", W))
        check_bv(t, {"a": a, "b": b})

    @settings(max_examples=30, deadline=None)
    @given(a=bv_value)
    def test_neg(self, a):
        check_bv(F.bv_neg(F.bv_var("a", W)), {"a": a})

    @settings(max_examples=30, deadline=None)
    @given(a=bv_value, k=st.integers(0, W))
    def test_shifts(self, a, k):
        check_bv(F.shl(F.bv_var("a", W), k), {"a": a})
        check_bv(F.lshr(F.bv_var("a", W), k), {"a": a})


class TestBitwise:
    @settings(max_examples=25, deadline=None)
    @given(a=bv_value, b=bv_value)
    def test_and_or_xor_not(self, a, b):
        va, vb = F.bv_var("a", W), F.bv_var("b", W)
        for t in [F.bv_and(va, vb), F.bv_or(va, vb), F.bv_xor(va, vb), F.bv_not(va)]:
            check_bv(t, {"a": a, "b": b})


class TestComparisons:
    @settings(max_examples=40, deadline=None)
    @given(a=bv_value, b=bv_value)
    def test_eq_ult_slt(self, a, b):
        va, vb = F.bv_var("a", W), F.bv_var("b", W)
        for t in [F.eq(va, vb), F.ult(va, vb), F.slt(va, vb), F.ule(va, vb), F.sle(va, vb)]:
            check_bool(t, {"a": a, "b": b})


class TestIte:
    @settings(max_examples=25, deadline=None)
    @given(c=st.booleans(), a=bv_value, b=bv_value)
    def test_bv_ite(self, c, a, b):
        t = F.bv_ite(F.bool_var("c"), F.bv_var("a", W), F.bv_var("b", W))
        check_bv(t, {"c": c, "a": a, "b": b})

    @settings(max_examples=25, deadline=None)
    @given(c=st.booleans(), t=st.booleans(), e=st.booleans())
    def test_bool_ite(self, c, t, e):
        term = F.ite(F.bool_var("c"), F.bool_var("t"), F.bool_var("e"))
        check_bool(term, {"c": c, "t": t, "e": e})


# Random nested expression property test ------------------------------------

def bv_terms(depth):
    leaf = st.one_of(
        st.sampled_from([F.bv_var("a", W), F.bv_var("b", W), F.bv_var("c", W)]),
        st.integers(0, (1 << W) - 1).map(lambda v: F.bv_const(v, W)),
    )
    if depth == 0:
        return leaf
    sub = bv_terms(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, sub).map(lambda p: F.bv_add(*p)),
        st.tuples(sub, sub).map(lambda p: F.bv_sub(*p)),
        st.tuples(sub, sub).map(lambda p: F.bv_xor(*p)),
        st.tuples(sub, sub, sub).map(lambda p: F.bv_ite(F.ult(p[0], p[1]), p[2], p[0])),
    )


@settings(max_examples=40, deadline=None)
@given(
    t=bv_terms(3),
    a=bv_value,
    b=bv_value,
    c=bv_value,
)
def test_random_nested_terms(t, a, b, c):
    if t.op == "bvconst":
        return
    check_bv(t, {"a": a, "b": b, "c": c})


def test_bv_value_roundtrip():
    solver = Solver()
    builder = CnfBuilder(solver)
    blaster = BitBlaster(builder)
    a = F.bv_var("a", 8)
    blaster.assert_term(F.eq(a, F.bv_const(42, 8)))
    assert solver.solve() == SolveResult.SAT
    assert blaster.bv_value("a") == 42


def test_unsat_contradiction():
    solver = Solver()
    builder = CnfBuilder(solver)
    blaster = BitBlaster(builder)
    a = F.bv_var("a", 8)
    blaster.assert_term(F.eq(a, F.bv_const(1, 8)))
    blaster.assert_term(F.eq(a, F.bv_const(2, 8)))
    assert solver.solve() == SolveResult.UNSAT


def test_width_mismatch_redeclaration_rejected():
    solver = Solver()
    blaster = BitBlaster(CnfBuilder(solver))
    blaster.blast_bv(F.bv_var("a", 8))
    with pytest.raises(ValueError):
        blaster.blast_bv(F.bv_var("a", 4))
