"""Every engine must agree with the known verdicts on the corpus.

This is the strongest end-to-end check in the suite: six independently
implemented verification algorithms (DPLL(T_ord), DPLL(T_idl), pure-SAT
closure, explicit-state, bounded sequentialization, stateless DPOR) all
derive the same verdicts.
"""

import pytest

from repro.verify import Verdict, VerifierConfig, verify
from tests.verify.programs import ALL_PROGRAMS

# Engines and the corpus programs they are exact on.  The lazyseq engine is
# an under-approximation (needs enough rounds); the explicit engine
# enumerates a small nondet domain; both caveats hold on this corpus.
ENGINES = {
    "cbmc": VerifierConfig.cbmc,
    "dartagnan": VerifierConfig.dartagnan,
    "cpa-seq": VerifierConfig.cpa_seq,
    "lazy-cseq": VerifierConfig.lazy_cseq,
    "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
    "genmc": VerifierConfig.genmc,
}

#: Programs each engine is expected to decide exactly.  nondet_unsafe is
#: excluded for explicit-style engines whose nondet domain is bounded but
#: included where the engine is symbolic.
SYMBOLIC = ("cbmc", "dartagnan")


def _cases():
    for engine_name, factory in sorted(ENGINES.items()):
        for name, source, is_safe in ALL_PROGRAMS:
            # Explicit-enumeration engines cannot prove nondet programs
            # safe (bounded domain -> UNKNOWN) nor find values outside
            # their domain; only the symbolic engines are exact there.
            if name in ("nondet_unsafe", "assume_safe") and engine_name not in SYMBOLIC:
                continue
            yield engine_name, factory, name, source, is_safe


@pytest.mark.parametrize(
    "engine_name,factory,name,source,is_safe",
    list(_cases()),
    ids=[f"{e}-{n}" for e, _f, n, _s, _ in _cases()],
)
def test_engine_verdicts(engine_name, factory, name, source, is_safe):
    config = factory(unwind=4, rounds=3)
    result = verify(source, config)
    expected = Verdict.SAFE if is_safe else Verdict.UNSAFE
    assert result.verdict == expected, (engine_name, name)


class TestIdlSpecifics:
    def test_idl_stats_show_no_propagation(self):
        from tests.verify.programs import PAPER_FIG2

        result = verify(PAPER_FIG2, VerifierConfig.cbmc())
        assert result.verdict == Verdict.SAFE
        assert result.stats["theory_unit_propagations"] == 0
        assert result.stats["theory_fr_derived"] == 0
        assert result.stats["fr_vars"] > 0  # rho_fr encoded upfront

    def test_zord_formula_smaller_than_cbmc(self):
        # The headline encoding-size claim: Zord omits rho_fr.
        from tests.verify.programs import PAPER_FIG2

        zord = verify(PAPER_FIG2, VerifierConfig.zord())
        cbmc = verify(PAPER_FIG2, VerifierConfig.cbmc())
        assert zord.stats["fr_vars"] == 0
        assert cbmc.stats["fr_vars"] > 0
        assert zord.stats["sat_vars"] < cbmc.stats["sat_vars"]

    def test_idl_witness_extraction(self):
        from tests.verify.programs import RACE_UNSAFE

        result = verify(RACE_UNSAFE, VerifierConfig.cbmc())
        assert result.verdict == Verdict.UNSAFE
        assert result.witness is not None


class TestClosureSpecifics:
    def test_closure_reports_hb_vars(self):
        from tests.verify.programs import STORE_BUFFERING

        result = verify(STORE_BUFFERING, VerifierConfig.dartagnan())
        assert result.verdict == Verdict.SAFE
        assert result.stats["hb_vars"] > 0
        assert result.stats["transitivity_clauses"] > 0

    def test_closure_witness(self):
        from tests.verify.programs import RACE_UNSAFE

        result = verify(RACE_UNSAFE, VerifierConfig.dartagnan())
        assert result.verdict == Verdict.UNSAFE
        assert result.witness is not None


class TestSmcSpecifics:
    def test_rfsc_counts_traces(self):
        from tests.verify.programs import STORE_BUFFERING

        result = verify(STORE_BUFFERING, VerifierConfig.nidhugg_rfsc())
        assert result.verdict == Verdict.SAFE
        assert result.stats["traces"] > 1

    def test_genmc_reports_rf_classes(self):
        from tests.verify.programs import STORE_BUFFERING

        result = verify(STORE_BUFFERING, VerifierConfig.genmc())
        assert result.stats["traces"] >= 1

    def test_unsafe_schedule_reported(self):
        from tests.verify.programs import RACE_UNSAFE

        result = verify(RACE_UNSAFE, VerifierConfig.nidhugg_rfsc())
        assert result.verdict == Verdict.UNSAFE
        assert result.schedule


class TestLazyseqSpecifics:
    def test_insufficient_rounds_is_bounded_safe(self):
        # Finding this bug needs t1 -> t2 -> t1 style switching; with a
        # single round-robin round over [main, t1, t2] the violating
        # schedules still fit, so use a handshake that genuinely needs
        # more rounds.
        src = """
        int x = 0, y = 0;
        thread t1 { x = 1; int a; a = y; if (a == 1) { int b; b = x; assert(b == 1); } }
        thread t2 { int c; c = x; if (c == 1) { y = 1; } }
        main { start t1; start t2; join t1; join t2; }
        """
        generous = verify(src, VerifierConfig.lazy_cseq(rounds=4))
        assert generous.verdict == Verdict.SAFE  # actually safe program
