"""The IDL baseline theory must decide exactly the same ordering problems
as the T_ord solver (it lacks propagation and minimality, never
correctness)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.idl import IdlTheory
from repro.ordering import OrderingTheory
from repro.sat import SolveResult, Solver


def _solve_with(theory_cls, n, po_edges, rf_pairs, ws_pairs, fr_pairs, forced):
    theory = theory_cls(n, po_edges)
    solver = Solver(theory)
    all_vars = []
    for (w, r) in rf_pairs:
        v = solver.new_var(relevant=True)
        theory.add_rf_var(v, w, r)
        all_vars.append(v)
    for (a, b) in ws_pairs:
        v = solver.new_var(relevant=True)
        theory.add_ws_var(v, a, b)
        all_vars.append(v)
    for (a, b) in fr_pairs:
        v = solver.new_var(relevant=True)
        theory.add_fr_var(v, a, b)
        all_vars.append(v)
    for f in forced:
        solver.add_clause([f])
    return solver.solve()


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_idl_agrees_with_tord_without_fr_axiom(data):
    """With FR edges explicit (no Axiom 2 derivation on either side --
    fr_propagation disabled for T_ord), both theories decide pure
    acyclicity and must agree."""
    n = data.draw(st.integers(3, 6))
    chain = data.draw(st.integers(0, n - 1))
    po_edges = [(i, i + 1) for i in range(chain)]
    pair = st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
        lambda p: p[0] != p[1]
    )
    rf_pairs = data.draw(st.lists(pair, max_size=2))
    ws_pairs = data.draw(st.lists(pair, max_size=2))
    fr_pairs = data.draw(st.lists(pair, max_size=2))
    nvars = len(rf_pairs) + len(ws_pairs) + len(fr_pairs)
    forced = [
        (i + 1) if data.draw(st.booleans()) else -(i + 1) for i in range(nvars)
    ]

    idl = _solve_with(
        IdlTheory, n, po_edges, rf_pairs, ws_pairs, fr_pairs, forced
    )

    def tord_factory(n_events, po):
        return OrderingTheory(n_events, po, fr_propagation=False)

    tord = _solve_with(
        tord_factory, n, po_edges, rf_pairs, ws_pairs, fr_pairs, forced
    )
    assert idl == tord


def test_idl_detects_simple_cycle():
    theory = IdlTheory(2, [])
    solver = Solver(theory)
    a = solver.new_var(relevant=True)
    theory.add_rf_var(a, 0, 1)
    b = solver.new_var(relevant=True)
    theory.add_ws_var(b, 1, 0)
    solver.add_clause([a])
    solver.add_clause([b])
    assert solver.solve() == SolveResult.UNSAT
    assert theory.stats.cycles >= 1


def test_idl_po_cycle_found_without_initial_units():
    # The old-style theory has no level-0 propagation, so a PO-contradicted
    # variable surfaces only through a theory conflict.
    theory = IdlTheory(2, [(0, 1)])
    solver = Solver(theory)
    a = solver.new_var(relevant=True)
    theory.add_ws_var(a, 1, 0)
    assert theory.initial_unit_clauses() == []
    solver.add_clause([a])
    assert solver.solve() == SolveResult.UNSAT
