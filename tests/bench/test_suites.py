"""Benchmark suite integrity: every generated task parses, lowers, and
carries a ground-truth verdict that the Zord engine confirms."""

import pytest

from repro.bench import nidhugg_suite, svcomp_suite
from repro.bench.nidhugg import FAMILIES
from repro.frontend import build_symbolic_program
from repro.lang import parse
from repro.verify import Verdict, VerifierConfig, verify


@pytest.fixture(scope="module")
def suite():
    return svcomp_suite(scale=1)


class TestSvcompSuite:
    def test_suite_size_and_categories(self, suite):
        assert len(suite) >= 60
        categories = {t.category for t in suite}
        assert "wmm" in categories
        assert len(categories) >= 8
        # wmm dominates, like the original category.
        wmm = sum(1 for t in suite if t.category == "wmm")
        assert wmm > len(suite) * 0.4

    def test_unique_names(self, suite):
        names = [t.name for t in suite]
        assert len(names) == len(set(names))

    def test_all_tasks_parse_and_lower(self, suite):
        for task in suite:
            sym = build_symbolic_program(parse(task.source), unwind=task.unwind)
            assert sym.memory_events(), task.name

    def test_mixed_verdicts(self, suite):
        safe = sum(1 for t in suite if t.expected_safe)
        assert 0 < safe < len(suite)

    @pytest.mark.parametrize("idx", range(0, 60, 7))
    def test_spot_verdicts_with_zord(self, suite, idx):
        task = suite[idx % len(suite)]
        result = verify(task.source, VerifierConfig.zord(unwind=task.unwind))
        expected = Verdict.SAFE if task.expected_safe else Verdict.UNSAFE
        assert result.verdict == expected, task.name

    def test_scale_grows_suite(self):
        assert len(svcomp_suite(scale=2)) > len(svcomp_suite(scale=1))


class TestNidhuggSuite:
    def test_all_families_present(self):
        tasks = nidhugg_suite()
        names = {t.name.split("(")[0] for t in tasks}
        assert names == set(FAMILIES)

    def test_tasks_parse_and_lower(self):
        for task in nidhugg_suite():
            sym = build_symbolic_program(
                parse(task.source), unwind=task.unwind
            )
            assert sym.memory_events(), task.name

    def test_account_is_the_buggy_one(self):
        tasks = nidhugg_suite()
        buggy = {t.name.split("(")[0] for t in tasks if not t.expected_safe}
        assert buggy == {"account"}

    @pytest.mark.parametrize(
        "family", ["CO-2+2W", "airline", "fib_bench", "account", "parker"]
    )
    def test_smallest_params_verified_by_zord(self, family):
        gen, _paper, ours = FAMILIES[family]
        task = gen(ours[0])
        result = verify(task.source, VerifierConfig.zord(unwind=task.unwind))
        expected = Verdict.SAFE if task.expected_safe else Verdict.UNSAFE
        assert result.verdict == expected

    def test_szymanski_mutual_exclusion(self):
        gen, _paper, ours = FAMILIES["szymanski"]
        task = gen(1)
        result = verify(task.source, VerifierConfig.zord(unwind=task.unwind))
        assert result.verdict == Verdict.SAFE

    def test_lamport_mutual_exclusion(self):
        gen, _paper, ours = FAMILIES["lamport"]
        task = gen(1)
        result = verify(task.source, VerifierConfig.zord(unwind=task.unwind))
        assert result.verdict == Verdict.SAFE
