"""Harness tests: running configurations and rendering tables."""

from repro.bench import Task, run_suite
from repro.bench.harness import (
    render_scatter,
    render_summary_table,
    render_table3,
    run_task,
)
from repro.verify import VerifierConfig

SAFE_SRC = """
int x = 0;
thread t { x = 1; }
main { start t; join t; assert(x == 1); }
"""
UNSAFE_SRC = """
int x = 0;
thread t1 { x = 1; }
thread t2 { x = 2; }
main { start t1; start t2; join t1; join t2; assert(x == 1); }
"""

TASKS = [
    Task("demo/safe", "demo", SAFE_SRC, True),
    Task("demo/unsafe", "demo", UNSAFE_SRC, False),
]


class TestRunTask:
    def test_correct_verdicts_marked(self):
        r = run_task(TASKS[0], VerifierConfig.zord)
        assert r.verdict == "safe" and r.correct is True
        r = run_task(TASKS[1], VerifierConfig.zord)
        assert r.verdict == "unsafe" and r.correct is True

    def test_time_recorded(self):
        r = run_task(TASKS[0], VerifierConfig.zord)
        assert r.time_s > 0

    def test_memory_measured_when_requested(self):
        r = run_task(TASKS[0], VerifierConfig.zord, measure_memory=True)
        assert r.memory_bytes > 0

    def test_budget_exhaustion_gives_none_correct(self):
        r = run_task(TASKS[1], VerifierConfig.zord, time_limit_s=0.0)
        assert r.correct in (None, True)  # UNKNOWN or solved instantly


class TestRunSuiteAndRender:
    def setup_method(self):
        self.results = run_suite(
            TASKS,
            {
                "zord": VerifierConfig.zord,
                "cbmc": VerifierConfig.cbmc,
                "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
                "genmc": VerifierConfig.genmc,
            },
            time_limit_s=30,
        )

    def test_all_configs_all_tasks(self):
        assert set(self.results) == {"zord", "cbmc", "nidhugg-rfsc", "genmc"}
        for rows in self.results.values():
            assert len(rows) == len(TASKS)

    def test_all_solved(self):
        for rows in self.results.values():
            assert all(r.solved for r in rows)

    def test_summary_table_renders(self):
        table = render_summary_table(self.results, reference="zord")
        assert "zord" in table and "cbmc" in table
        assert "#Solved" in table

    def test_scatter_renders(self):
        fig = render_scatter(self.results, "cbmc", "zord", "Fig demo")
        assert "demo/safe" in fig
        assert "totals" in fig

    def test_table3_renders(self):
        table = render_table3(
            TASKS,
            self.results,
            tool_order=("nidhugg-rfsc", "genmc", "cbmc", "zord"),
        )
        assert "Traces" in table
        assert "demo/safe" in table
        lines = table.splitlines()
        assert len(lines) == 1 + len(TASKS)


class TestCsvExport:
    def test_csv_shape(self):
        from repro.bench.harness import results_to_csv, run_suite
        from repro.verify import VerifierConfig

        results = run_suite(TASKS, {"zord": VerifierConfig.zord})
        csv = results_to_csv(results)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("config,task,")
        assert len(lines) == 1 + len(TASKS)
        assert lines[1].startswith("zord,demo/safe,demo,safe,true,")
