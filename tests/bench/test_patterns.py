"""Cross-engine validation of the synchronization-idiom generators."""

import pytest

from repro.bench import patterns
from repro.verify import Verdict, VerifierConfig, verify

CASES = [
    ("ticket_lock_2", patterns.ticket_lock(2), True, 4),
    ("barrier_2", patterns.barrier_sum(2), True, 4),
    ("rw_locked", patterns.readers_writer(1, True), True, 4),
    ("rw_racy", patterns.readers_writer(1, False), False, 4),
    ("transfer_locked", patterns.bank_transfer(True), True, 4),
    ("transfer_racy", patterns.bank_transfer(False), False, 4),
    ("handoff_2", patterns.flag_handoff(2), True, 4),
    ("work_split", patterns.work_split(2, 2), True, 4),
    ("dcl_correct", patterns.double_checked_init(False), True, 4),
    ("dcl_broken", patterns.double_checked_init(True), False, 4),
    ("seqlock_correct", patterns.seqlock(False), True, 4),
    ("seqlock_broken", patterns.seqlock(True), False, 4),
]

ENGINES = {
    "zord": VerifierConfig.zord,
    "cbmc": VerifierConfig.cbmc,
    "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
}


@pytest.mark.parametrize("engine", sorted(ENGINES))
@pytest.mark.parametrize("name,src,safe,unwind", CASES)
def test_pattern_verdicts(engine, name, src, safe, unwind):
    config = ENGINES[engine](unwind=unwind, time_limit_s=60)
    result = verify(src, config)
    expected = Verdict.SAFE if safe else Verdict.UNSAFE
    assert result.verdict == expected, (engine, name)


class TestPatternProperties:
    def test_ticket_lock_scales_threads(self):
        src = patterns.ticket_lock(3)
        assert "t2" in src

    def test_work_split_total(self):
        # n=3, per=2: 1+2+...+6 = 21.
        src = patterns.work_split(3, 2)
        assert "== 21" in src

    def test_barrier_neighbour_wraps(self):
        src = patterns.barrier_sum(3)
        # Thread 2's neighbour is thread 0's slot.
        assert "got2 = slot0;" in src
