"""Service-layer chaos: injected faults must never produce a wrong
verdict, lose an acknowledged cached verdict, or hang a client.

Fault specs (``REPRO_FAULTS`` / ``install_faults``) drive the daemon-side
checkpoints added for the durability work: ``kill@service_worker``,
``drop@service_response``, ``delay@service_response``,
``torn@cache_write``, ``crash@cache_compact``.  In-process scenarios
toggle faults programmatically (the fault fires in this process);
worker-kill scenarios seed the fault through the environment before the
pool forks, then clear it so replacement workers come up clean.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.robustness.faults import (
    DropConnection,
    clear_faults,
    install_faults,
)
from repro.service.cache import VerdictCache, cache_key
from repro.service.client import (
    RetryPolicy,
    ServiceClient,
    ServiceUnavailable,
)
from repro.service.persist import CacheStore, JOURNAL_NAME
from repro.service.server import DRAIN_EXIT_CODE, ServiceServer
from repro.verify.config import VerifierConfig
from repro.verify.result import SCHEMA_VERSION as RESULT_SCHEMA_VERSION

pytestmark = pytest.mark.timeout(300)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""

OTHER_PROGRAM = """
int y = 0;
thread t { y = y + 2; }
main { start t; join t; assert(y == 2); }
"""


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    clear_faults()
    yield
    clear_faults()


def _request(server, req):
    return asyncio.run(server.handle_request(req))


def _key(n=0):
    return cache_key(SAFE_PROGRAM, VerifierConfig(unwind=2 + n))


def _result(verdict="safe"):
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "verdict": verdict,
        "config": "test",
        "wall_time_s": 0.01,
        "stats": {},
    }


def _spawn_tcp_daemon(tmp_path=None, faults=None, cache_dir=None):
    """Start a real ``repro serve --tcp`` daemon; returns (proc, addr)."""
    env = dict(os.environ, PYTHONPATH="src")
    env.pop("REPRO_FAULTS", None)
    if faults:
        env["REPRO_FAULTS"] = faults
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--tcp", "127.0.0.1:0", "--workers", "1",
    ]
    if cache_dir:
        cmd += ["--cache-dir", cache_dir]
    proc = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, cwd=REPO_ROOT, env=env,
    )
    line = proc.stdout.readline()  # readiness marker with the bound port
    assert "listening on" in line, line
    port = int(line.rsplit(":", 1)[1])
    return proc, f"127.0.0.1:{port}"


def _stop_daemon(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)


@pytest.mark.slow
class TestWorkerKill:
    def test_killed_worker_reports_error_then_recovers(
        self, tmp_path, monkeypatch
    ):
        """SIGKILL mid-job: the request resolves to a *reported* ERROR
        (never a wrong or fabricated verdict), nothing is cached, a
        replacement worker serves the retry correctly."""
        monkeypatch.setenv("REPRO_FAULTS", "kill@service_worker")
        server = ServiceServer(workers=1, cache_dir=str(tmp_path))
        try:
            server.start_pool()  # worker forks with the kill fault armed
            monkeypatch.delenv("REPRO_FAULTS")  # replacements fork clean

            req = {"id": 1, "op": "verify", "source": SAFE_PROGRAM}
            first = _request(server, req)
            assert first["ok"]
            assert first["result"]["verdict"] == "error"
            assert "worker died" in first["result"]["diagnostic"]
            assert len(server.cache) == 0  # an ERROR is never cached

            deadline = time.monotonic() + 30
            while server.pool.alive() < 1:
                assert time.monotonic() < deadline, "no replacement worker"
                time.sleep(0.1)
            second = _request(server, dict(req, id=2))
            assert second["result"]["verdict"] == "safe"
            assert server.pool.recycles >= 1
        finally:
            server.close()


class TestResponseFaults:
    def test_drop_severs_instead_of_answering(self):
        server = ServiceServer(workers=1)
        try:
            install_faults("drop@service_response")
            with pytest.raises(DropConnection):
                asyncio.run(
                    server.handle_line(json.dumps({"id": 1, "op": "ping"}))
                )
            clear_faults()
            line = asyncio.run(
                server.handle_line(json.dumps({"id": 2, "op": "ping"}))
            )
            assert json.loads(line)["pong"]
        finally:
            clear_faults()
            server.close()

    def test_delay_slows_but_never_corrupts(self):
        server = ServiceServer(workers=1)
        try:
            install_faults("delay@service_response:0.2")
            start = time.monotonic()
            line = asyncio.run(
                server.handle_line(json.dumps({"id": 1, "op": "ping"}))
            )
            assert time.monotonic() - start >= 0.2
            response = json.loads(line)
            assert response["ok"] and response["pong"]
        finally:
            clear_faults()
            server.close()

    @pytest.mark.slow
    def test_dropped_connections_never_hang_the_client(self):
        """A daemon dropping every response: the client's bounded retries
        surface ServiceUnavailable -- never an indefinite hang -- and the
        daemon itself stays alive."""
        proc, addr = _spawn_tcp_daemon(faults="drop@service_response")
        try:
            client = ServiceClient.connect(
                addr,
                retry=RetryPolicy(attempts=2, base_delay_s=0.01),
                request_timeout_s=10.0,
            )
            try:
                start = time.monotonic()
                with pytest.raises(ServiceUnavailable):
                    client.ping()
                assert time.monotonic() - start < 30.0
            finally:
                client.close()
            assert proc.poll() is None  # the fault drops lines, not the daemon
        finally:
            _stop_daemon(proc)


class TestTornCacheWrite:
    def test_only_the_torn_record_is_lost(self, tmp_path):
        """Appends before AND after a torn write survive recovery: the
        journal resynchronizes framing instead of gluing the next frame
        onto the partial line."""
        store = CacheStore(str(tmp_path))
        assert store.append(_key(0), _result())
        install_faults("torn@cache_write")
        assert not store.append(_key(1), _result())
        assert store.torn_writes == 1
        clear_faults()
        assert store.append(_key(2), _result())
        store.close()

        fresh = CacheStore(str(tmp_path))
        entries = fresh.recover()
        assert [k for k, _ in entries] == [_key(0), _key(2)]
        assert fresh.discarded_records == 1

    def test_reopened_store_resynchronizes_after_crash(self, tmp_path):
        """A real crash mid-append (partial line at EOF, process gone):
        the next process's appends must still be recoverable."""
        store = CacheStore(str(tmp_path))
        store.append(_key(0), _result())
        install_faults("torn@cache_write")
        store.append(_key(1), _result())  # partial frame, then "crash"
        clear_faults()
        store.close()

        reopened = CacheStore(str(tmp_path))
        assert reopened.append(_key(2), _result())
        reopened.close()

        fresh = CacheStore(str(tmp_path))
        entries = fresh.recover()
        assert [k for k, _ in entries] == [_key(0), _key(2)]
        assert fresh.discarded_records == 1

    @pytest.mark.slow
    def test_server_survives_torn_write_end_to_end(self, tmp_path):
        """With torn@cache_write armed the client still gets the right
        verdict; after a restart the cleanly-journaled verdict is served
        from cache and the torn one is recomputed -- never misread."""
        server = ServiceServer(workers=1, cache_dir=str(tmp_path))
        try:
            first = _request(
                server, {"id": 1, "op": "verify", "source": SAFE_PROGRAM}
            )
            assert first["result"]["verdict"] == "safe"
            install_faults("torn@cache_write")
            second = _request(
                server, {"id": 2, "op": "verify", "source": OTHER_PROGRAM}
            )
            assert second["result"]["verdict"] == "safe"  # still correct
            assert server.cache.store.torn_writes == 1
        finally:
            clear_faults()
            server.close()

        restarted = ServiceServer(workers=1, cache_dir=str(tmp_path))
        try:
            replay = _request(
                restarted, {"id": 1, "op": "verify", "source": SAFE_PROGRAM}
            )
            assert replay["cache_hit"]
            assert replay["result"]["verdict"] == "safe"
            redo = _request(
                restarted, {"id": 2, "op": "verify", "source": OTHER_PROGRAM}
            )
            assert not redo["cache_hit"]  # torn entry was refused, not misread
            assert redo["result"]["verdict"] == "safe"
        finally:
            restarted.close()


class TestCompactionCrash:
    def test_crash_between_snapshot_and_rotate_loses_nothing(self, tmp_path):
        store = CacheStore(str(tmp_path))
        entries = [(_key(n), _result()) for n in range(4)]
        for key, result in entries:
            store.append(key, result)
        journal_size = os.path.getsize(tmp_path / JOURNAL_NAME)

        install_faults("crash@cache_compact")
        assert not store.compact(entries)
        assert store.compaction_failures == 1
        # The journal was NOT rotated: every entry still lives there.
        assert os.path.getsize(tmp_path / JOURNAL_NAME) == journal_size
        clear_faults()
        store.close()

        fresh = CacheStore(str(tmp_path))
        recovered = fresh.recover()
        # Snapshot replayed + journal replayed over it: idempotent, and
        # nothing lost.
        assert dict(recovered).keys() == {k for k, _ in entries}

    def test_compaction_succeeds_after_faults_cleared(self, tmp_path):
        cache = VerdictCache(cache_dir=str(tmp_path))
        for n in range(3):
            cache.put(_key(n), _result())
        install_faults("crash@cache_compact")
        assert not cache.compact()
        clear_faults()
        assert cache.compact()
        assert os.path.getsize(tmp_path / JOURNAL_NAME) == 0
        cache.close()

        fresh = VerdictCache(cache_dir=str(tmp_path))
        assert len(fresh) == 3
        fresh.close()


@pytest.mark.slow
class TestDrainSignal:
    def test_sigterm_drains_with_distinct_exit_code(self, tmp_path):
        """kill -TERM: the daemon sheds, flushes the journal, exits with
        DRAIN_EXIT_CODE; a restart serves the pre-drain verdict from the
        recovered journal."""
        cache_dir = str(tmp_path / "cache")
        proc, addr = _spawn_tcp_daemon(cache_dir=cache_dir)
        try:
            with ServiceClient.connect(addr) as client:
                result = client.verify(SAFE_PROGRAM)
                assert result.verdict == "safe"
                health = client.health()
                assert health["status"] == "ok" and not health["draining"]
                assert client.ready()
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == DRAIN_EXIT_CODE
        finally:
            _stop_daemon(proc)

        proc, addr = _spawn_tcp_daemon(cache_dir=cache_dir)
        try:
            with ServiceClient.connect(addr) as client:
                result = client.verify(SAFE_PROGRAM)
                assert result.verdict == "safe"
                assert result.stats["cache_hit"] == 1
        finally:
            _stop_daemon(proc)
