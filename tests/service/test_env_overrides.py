"""The consolidated REPRO_* environment knobs.

One inventory-asserting test keeps :data:`repro.verify.config.ENV_VARS`
honest: every ``REPRO_*`` variable the source tree reads must be
documented there, and everything documented must still be read somewhere.
The rest pins :func:`env_overrides` parsing.
"""

import re
from pathlib import Path

from repro.verify.config import ENV_VARS, env_overrides

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

_ENV_RE = re.compile(r"\bREPRO_[A-Z_]+\b")


def _vars_read_in_source() -> set:
    found = set()
    for path in SRC.rglob("*.py"):
        found.update(_ENV_RE.findall(path.read_text()))
    return found


class TestInventory:
    def test_every_env_var_documented(self):
        """The documented inventory and the source tree agree exactly.

        A new ``os.environ['REPRO_X']`` read anywhere in src/ fails this
        test until ENV_VARS documents it; a stale ENV_VARS entry whose
        reader was deleted fails it too.
        """
        assert _vars_read_in_source() == set(ENV_VARS)

    def test_descriptions_are_nonempty(self):
        for name, description in ENV_VARS.items():
            assert name.startswith("REPRO_")
            assert description.strip(), name

    def test_overrides_keyed_by_inventory(self):
        overrides = env_overrides(environ={})
        assert set(overrides) == set(ENV_VARS)


class TestParsing:
    def test_empty_environ_gives_none(self):
        """Unset knobs are ``None`` across the board -- 'unset' and 'set
        to the default' stay distinguishable for callers."""
        overrides = env_overrides(environ={})
        assert all(value is None for value in overrides.values())

    def test_prune_levels(self):
        assert env_overrides(environ={"REPRO_PRUNE": "0"})["REPRO_PRUNE"] == 0
        assert env_overrides(environ={"REPRO_PRUNE": "1"})["REPRO_PRUNE"] == 1
        # Garbage falls back to the default instead of crashing import.
        assert env_overrides(environ={"REPRO_PRUNE": "zap"})["REPRO_PRUNE"] == 2

    def test_unwind_schedule_forms(self):
        def parse(raw):
            return env_overrides(
                environ={"REPRO_UNWIND_SCHEDULE": raw}
            )["REPRO_UNWIND_SCHEDULE"]

        assert parse("1") == "doubling"
        assert parse("true") == "doubling"
        assert parse("2,4,8") == (2, 4, 8)
        assert parse("0") is None
        assert parse("false") is None
        assert parse("garbage") is None

    def test_audit_truthiness(self):
        for raw in ("1", "true", "YES", "on"):
            assert env_overrides(environ={"REPRO_AUDIT": raw})["REPRO_AUDIT"]
        for raw in ("0", "false", "off"):
            assert (
                env_overrides(environ={"REPRO_AUDIT": raw})["REPRO_AUDIT"]
                is False
            )

    def test_faults_split(self):
        env = {"REPRO_FAULTS": "encode:crash:0.5, solve:hang:1.0"}
        assert env_overrides(environ=env)["REPRO_FAULTS"] == (
            "encode:crash:0.5",
            "solve:hang:1.0",
        )

    def test_bench_jobs(self):
        env = {"REPRO_BENCH_JOBS": "7"}
        assert env_overrides(environ=env)["REPRO_BENCH_JOBS"] == 7

    def test_server_stripped(self):
        env = {"REPRO_SERVER": "  127.0.0.1:9000  "}
        assert env_overrides(environ=env)["REPRO_SERVER"] == "127.0.0.1:9000"
        assert env_overrides(environ={"REPRO_SERVER": "  "})["REPRO_SERVER"] is None
