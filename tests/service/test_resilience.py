"""Client resilience: timeouts, retries, hedging, and daemon reaping.

Transport failures are simulated with a small in-process fake JSONL
server (accept-then-close, accept-then-stall, answer-on-retry), so every
scenario is deterministic and fast -- no real solver runs here.  The
spawned-daemon garbage-collection test at the bottom uses a real
``repro serve --stdio`` subprocess (satellite of the durability work:
leaked clients must not strand daemons).
"""

import asyncio
import gc
import json
import socket
import threading
import time

import pytest

from repro.service.client import (
    AsyncServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.verify.result import Verdict, VerificationResult

pytestmark = pytest.mark.timeout(120)

#: Handler sentinel: sever the connection without answering.
CLOSE = object()
#: Handler sentinel: keep the connection open but never answer.
STALL = object()

NO_RETRY = RetryPolicy(attempts=1)
FAST_RETRY = RetryPolicy(attempts=3, base_delay_s=0.01, max_delay_s=0.05)


def _wire_result(verdict=Verdict.SAFE):
    return VerificationResult(verdict, "zord", wall_time_s=0.01).to_dict()


def _ok(req, **fields):
    out = {"id": req.get("id"), "ok": True}
    out.update(fields)
    return out


class FakeServer:
    """A scriptable JSONL endpoint.

    ``handler(conn_no, request) -> response | CLOSE | STALL`` decides the
    fate of each request; ``conn_no`` counts accepted connections (1-based)
    so tests can script "fail the first connection, answer the second".
    """

    def __init__(self, handler):
        self._handler = handler
        self._listener = socket.socket()
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self.connections = 0
        self.requests = []
        self._stall = threading.Event()
        threading.Thread(target=self._serve, daemon=True).start()

    @property
    def address(self):
        return f"127.0.0.1:{self.port}"

    def _serve(self):
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            self.connections += 1
            threading.Thread(
                target=self._session, args=(conn, self.connections),
                daemon=True,
            ).start()

    def _session(self, conn, conn_no):
        stream = conn.makefile("rw", encoding="utf-8", newline="\n")
        try:
            for line in stream:
                if not line.strip():
                    continue
                req = json.loads(line)
                self.requests.append(req)
                reply = self._handler(conn_no, req)
                if reply is CLOSE:
                    return
                if reply is STALL:
                    self._stall.wait(60.0)
                    return
                stream.write(json.dumps(reply) + "\n")
                stream.flush()
        except (OSError, ValueError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._stall.set()
        self._listener.close()


@pytest.fixture()
def fake(request):
    """Build a FakeServer around a handler the test provides later via
    ``fake(handler)``; closed on teardown."""
    servers = []

    def factory(handler):
        server = FakeServer(handler)
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.close()


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


class TestRetryPolicy:
    def test_delay_caps_and_grows(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.4, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.4)  # capped

    def test_jitter_only_shrinks(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0, jitter=0.5)
        for _ in range(50):
            d = policy.delay(0)
            assert 0.05 <= d <= 0.1

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)


class TestConnectFailsFast:
    """Satellite: a dead TCP target must raise, not hang."""

    def test_refused_port_raises_unavailable(self):
        port = _free_port()  # nothing listening here
        start = time.monotonic()
        with pytest.raises(ServiceUnavailable):
            ServiceClient.connect(f"127.0.0.1:{port}", timeout=2.0)
        assert time.monotonic() - start < 2.5

    def test_unresponsive_target_bounded_by_timeout(self):
        """A listener whose accept queue is full never completes the
        handshake -- the client must give up at the connect timeout
        (ServiceTimeout), not hang.  Saturating a listen(0) backlog is
        the deterministic local stand-in for a blackholed host."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(0)
        port = listener.getsockname()[1]
        filled = []
        try:
            for _ in range(64):  # fill the accept + SYN queues
                probe = socket.socket()
                probe.settimeout(0.3)
                try:
                    probe.connect(("127.0.0.1", port))
                    filled.append(probe)
                except socket.timeout:
                    probe.close()
                    break
            else:
                pytest.skip("could not saturate the listen backlog")
            start = time.monotonic()
            with pytest.raises(ServiceTimeout, match="timed out"):
                ServiceClient.connect(f"127.0.0.1:{port}", timeout=0.5)
            assert time.monotonic() - start < 5.0
        finally:
            for probe in filled:
                probe.close()
            listener.close()

    def test_bad_address_shape(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            ServiceClient.connect("not-an-address")

    def test_async_refused_port(self):
        port = _free_port()

        async def go():
            with pytest.raises(ServiceUnavailable):
                await AsyncServiceClient.connect(
                    f"127.0.0.1:{port}", timeout=2.0
                )

        asyncio.run(go())


class TestRequestTimeout:
    def test_sync_read_timeout(self, fake):
        server = fake(lambda conn_no, req: STALL)
        client = ServiceClient.connect(
            server.address, request_timeout_s=0.3, retry=NO_RETRY
        )
        try:
            start = time.monotonic()
            with pytest.raises(ServiceTimeout, match="no response"):
                client.ping()
            assert time.monotonic() - start < 2.0
        finally:
            client.close()

    def test_async_read_timeout(self, fake):
        server = fake(lambda conn_no, req: STALL)

        async def go():
            client = await AsyncServiceClient.connect(
                server.address, request_timeout_s=0.3, retry=NO_RETRY
            )
            try:
                with pytest.raises(ServiceTimeout, match="no response"):
                    await client.ping()
            finally:
                await client.close()

        asyncio.run(go())

    def test_timeout_exhausts_retries_then_raises(self, fake):
        server = fake(lambda conn_no, req: STALL)
        client = ServiceClient.connect(
            server.address, request_timeout_s=0.2, retry=FAST_RETRY
        )
        try:
            with pytest.raises(ServiceTimeout):
                client.ping()
            # Every attempt ran on a fresh connection: the timed-out
            # stream's framing is unusable, so the client must not reuse it.
            assert server.connections == FAST_RETRY.attempts
        finally:
            client.close()


class TestRetryReconnect:
    def test_dropped_connection_retried_on_fresh_one(self, fake):
        server = fake(
            lambda conn_no, req: CLOSE if conn_no == 1 else _ok(req, pong=True)
        )
        client = ServiceClient.connect(server.address, retry=FAST_RETRY)
        try:
            assert client.ping()["pong"]
            assert server.connections == 2
        finally:
            client.close()

    def test_async_dropped_connection_retried(self, fake):
        server = fake(
            lambda conn_no, req: CLOSE if conn_no == 1 else _ok(req, pong=True)
        )

        async def go():
            client = await AsyncServiceClient.connect(
                server.address, retry=FAST_RETRY
            )
            try:
                assert (await client.ping())["pong"]
            finally:
                await client.close()

        asyncio.run(go())
        assert server.connections == 2

    def test_delivered_error_is_never_retried(self, fake):
        """ok:false is an *answer*; retrying it would re-run a request the
        server already rejected."""
        server = fake(
            lambda conn_no, req: {
                "id": req.get("id"), "ok": False, "error": "bad program",
            }
        )
        client = ServiceClient.connect(server.address, retry=FAST_RETRY)
        try:
            with pytest.raises(ServiceError, match="bad program") as info:
                client.ping()
            assert not isinstance(
                info.value, (ServiceTimeout, ServiceUnavailable)
            )
            assert len(server.requests) == 1
        finally:
            client.close()

    def test_shutdown_is_never_retried(self, fake):
        server = fake(lambda conn_no, req: CLOSE)
        client = ServiceClient.connect(server.address, retry=FAST_RETRY)
        try:
            client.shutdown()  # swallows the transport error, no retries
            assert server.connections == 1
        finally:
            client.close()

    def test_persistent_outage_raises_last_error(self, fake):
        server = fake(lambda conn_no, req: CLOSE)
        client = ServiceClient.connect(server.address, retry=FAST_RETRY)
        try:
            with pytest.raises(ServiceUnavailable):
                client.ping()
            assert server.connections == FAST_RETRY.attempts
        finally:
            client.close()


class TestHedging:
    def test_slow_primary_answered_by_hedge(self, fake):
        def handler(conn_no, req):
            if conn_no == 1:
                return STALL
            return _ok(req, result=_wire_result(), cache_hit=True)

        server = fake(handler)
        client = ServiceClient.connect(
            server.address, retry=NO_RETRY, hedge_after_s=0.2
        )
        try:
            start = time.monotonic()
            result = client.verify("int x = 0; main { assert(x == 0); }")
            assert result.verdict == Verdict.SAFE
            assert time.monotonic() - start < 5.0
            assert server.connections == 2  # primary + hedge
        finally:
            client.close()

    def test_fast_primary_never_hedges(self, fake):
        server = fake(
            lambda conn_no, req: _ok(req, result=_wire_result())
        )
        client = ServiceClient.connect(
            server.address, retry=NO_RETRY, hedge_after_s=5.0
        )
        try:
            result = client.verify("int x = 0; main { assert(x == 0); }")
            assert result.verdict == Verdict.SAFE
            assert server.connections == 1
        finally:
            client.close()

    def test_async_slow_primary_answered_by_hedge(self, fake):
        def handler(conn_no, req):
            if conn_no == 1:
                return STALL
            return _ok(req, result=_wire_result(), cache_hit=True)

        server = fake(handler)

        async def go():
            client = await AsyncServiceClient.connect(
                server.address, retry=NO_RETRY, hedge_after_s=0.2
            )
            try:
                result = await client.verify(
                    "int x = 0; main { assert(x == 0); }"
                )
                assert result.verdict == Verdict.SAFE
            finally:
                await client.close()

        asyncio.run(go())
        assert server.connections == 2


@pytest.mark.slow
class TestSpawnedDaemonReaping:
    """Satellite: a spawned stdio daemon must not outlive a client that
    was garbage-collected without close()."""

    def _wait_dead(self, proc, timeout_s=30.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                return True
            time.sleep(0.1)
        return False

    def test_gc_reaps_spawned_daemon(self):
        client = ServiceClient.spawn(workers=1)
        proc = client._proc
        assert proc.poll() is None  # daemon is up
        del client
        gc.collect()
        assert self._wait_dead(proc), (
            "spawned daemon leaked after client GC"
        )

    def test_close_reaps_and_detaches_finalizer(self):
        client = ServiceClient.spawn(workers=1)
        proc = client._proc
        finalizer = client._finalizer
        client.close()
        assert proc.poll() is not None
        assert not finalizer.alive  # close() detached the GC hook
