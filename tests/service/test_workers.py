"""Worker-pool unit tests for the collector's reaping logic.

The end-to-end pool behavior (recycling, death recovery) is exercised in
``test_service_e2e.py``; here we pin down the *race* between a retiring
worker's final DONE message and the reaper observing its process dead --
the completed job's real payload must win over the death diagnosis.
"""

import itertools
import queue
import threading
from concurrent.futures import Future

from repro.service.workers import WorkerPool


class _DeadProc:
    """Stands in for a worker process that has already exited."""

    exitcode = 0

    def is_alive(self):
        return False

    def join(self, timeout=None):
        pass


def _bare_pool() -> WorkerPool:
    """A WorkerPool shell with no real processes or collector thread --
    just the state ``_reap_dead`` / ``_handle_message`` operate on."""
    pool = WorkerPool.__new__(WorkerPool)
    pool._lock = threading.Lock()
    pool._futures = {}
    pool._submitted_at = {}
    pool._queue_wait = {}
    pool._assigned = {}
    pool._procs = {}
    pool._slots = {}
    pool._result_q = queue.Queue()
    pool._wids = itertools.count(100)
    pool.recycles = 0
    pool.jobs_done = 0
    pool._closed = False
    pool._spawn_worker = lambda: None  # no real replacements in this test
    return pool


class TestReapDead:
    def test_queued_done_message_wins_over_death_diagnosis(self):
        """A retiring worker exits right after queueing its DONE; if the
        reaper runs before the collector read that message, the job must
        still resolve with its real result, not 'worker died mid-job'."""
        pool = _bare_pool()
        fut = Future()
        pool._futures[7] = fut
        pool._assigned[7] = 1
        pool._procs[1] = _DeadProc()
        payload = {"result": {"verdict": "safe"}, "retire": "jobs"}
        pool._result_q.put((7, 1, "done", payload, 0.0))

        pool._reap_dead()

        assert fut.done()
        assert fut.result()["result"]["verdict"] == "safe"
        assert "error" not in fut.result()
        # The retirement was honored exactly once (via the DONE message,
        # not a second time via the death path).
        assert pool.recycles == 1
        assert pool._futures == {} and pool._assigned == {}

    def test_truly_dead_worker_still_fails_its_job(self):
        """With nothing queued, a dead worker's in-flight job resolves to
        the died-mid-job error as before."""
        pool = _bare_pool()
        fut = Future()
        pool._futures[9] = fut
        pool._assigned[9] = 2
        pool._procs[2] = _DeadProc()

        pool._reap_dead()

        assert fut.done()
        assert "worker died mid-job" in fut.result()["error"]
        assert pool.recycles == 1
