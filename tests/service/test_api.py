"""The public facade (:mod:`repro.api`) and the deprecation shim.

``repro.api.verify`` is the one front door: plain calls solve in-process,
``portfolio=`` races presets, ``server=``/``REPRO_SERVER`` routes through
a daemon.  The old ``repro.verify.verifier.verify`` spelling must keep
working but warn.
"""

import warnings

import pytest

import repro
from repro import api
from repro.verify import Verdict, VerifierConfig
from repro.verify.result import VerificationResult

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""


class TestFacadeDispatch:
    def test_plain_verify_runs_in_process(self):
        result = api.verify(SAFE_PROGRAM, VerifierConfig(unwind=4))
        assert isinstance(result, VerificationResult)
        assert result.verdict == Verdict.SAFE

    def test_default_config(self):
        assert api.verify(SAFE_PROGRAM).verdict == Verdict.SAFE

    def test_portfolio_dispatch(self):
        outcome = api.verify(
            SAFE_PROGRAM, portfolio=["zord", "cbmc"], jobs=1
        )
        assert outcome.verdict == Verdict.SAFE
        assert outcome.winner in ("zord", "cbmc")

    def test_analyze_dispatch(self):
        report = api.analyze(SAFE_PROGRAM, unwind=4)
        assert report.pairs_total >= 0

    def test_top_level_reexports(self):
        assert repro.verify is api.verify
        assert repro.analyze is api.analyze
        assert repro.serve is api.serve
        assert repro.connect is api.connect
        assert repro.verify_batch is api.verify_batch

    def test_connect_requires_address(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVER", raising=False)
        with pytest.raises(ValueError, match="REPRO_SERVER"):
            api.connect()

    def test_server_kwarg_rejects_dead_address(self):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError):
            api.verify(SAFE_PROGRAM, server="127.0.0.1:1")


class TestDeprecationShim:
    def test_old_import_warns_and_works(self):
        from repro.verify import verifier

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(DeprecationWarning, match="repro.api.verify"):
                verifier.verify  # noqa: B018 - the access itself warns
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = verifier.verify
        assert caught and caught[0].category is DeprecationWarning
        assert legacy is verifier.verify_one
        assert legacy(SAFE_PROGRAM, VerifierConfig(unwind=4)).verdict == (
            Verdict.SAFE
        )

    def test_unrelated_attribute_still_raises(self):
        from repro.verify import verifier

        with pytest.raises(AttributeError):
            verifier.does_not_exist

    def test_package_level_verify_is_quiet(self):
        """``repro.verify.verify`` (the package alias) is the supported
        in-process spelling and must not warn."""
        from repro.verify import verify as package_verify

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = package_verify(SAFE_PROGRAM, VerifierConfig(unwind=4))
        assert result.verdict == Verdict.SAFE

    def test_no_in_repo_callers_of_deprecated_spelling(self):
        """Nothing inside src/ still imports the deprecated name."""
        from pathlib import Path
        import re

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        pattern = re.compile(
            r"from repro\.verify\.verifier import ([\w, ]+)"
        )
        offenders = []
        for path in src.rglob("*.py"):
            if path.name == "verifier.py":
                continue  # the shim's own docstring mentions the spelling
            for match in pattern.finditer(path.read_text()):
                names = {n.strip() for n in match.group(1).split(",")}
                if "verify" in names:
                    offenders.append(str(path))
        assert not offenders, offenders
