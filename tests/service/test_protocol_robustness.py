"""Transport-level protocol robustness.

What the daemon must survive without degrading other traffic: oversized
request lines (structured error while the line is bufferable, answered-
then-closed when it is not), malformed and non-object JSON, and peers
that vanish mid-line or mid-request.  These run against the real asyncio
TCP transport (``_amain_tcp``) in-process, so connection lifecycle --
not just ``handle_request`` dispatch -- is what is under test.
"""

import asyncio
import json

import pytest

from repro.service import protocol
from repro.service.protocol import ProtocolError, decode_line
from repro.service.server import ServiceServer

pytestmark = pytest.mark.timeout(120)

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""


class TestDecodeLine:
    def test_oversized_line_refused(self):
        line = '{"op": "ping", "pad": "' + "x" * protocol.MAX_REQUEST_BYTES
        with pytest.raises(ProtocolError, match="request too large"):
            decode_line(line)

    @pytest.mark.parametrize(
        "line",
        ["[1, 2, 3]", '"just a string"', "42", "null"],
        ids=["array", "string", "number", "null"],
    )
    def test_non_object_refused(self, line):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_line(line)

    def test_missing_op_refused(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_line('{"id": 1}')

    def test_all_documented_ops_accepted(self):
        for op in protocol.OPS:
            assert decode_line(json.dumps({"id": 1, "op": op}))["op"] == op


def _run_tcp(scenario, **server_kw):
    """Run ``scenario(server, reader-less)`` against a live in-process
    TCP transport; tears the transport down afterwards."""
    server = ServiceServer(workers=1, **server_kw)

    async def main():
        transport = asyncio.ensure_future(
            server._amain_tcp("127.0.0.1", 0)
        )
        try:
            while server.tcp_port is None:
                await asyncio.sleep(0.01)
            await scenario(server)
        finally:
            server._shutdown.set()
            await transport

    try:
        asyncio.run(main())
    finally:
        server.close()
    return server


async def _open(server):
    return await asyncio.open_connection("127.0.0.1", server.tcp_port)


def _req(obj) -> bytes:
    return (json.dumps(obj) + "\n").encode("utf-8")


class TestOversizedRequests:
    def test_bufferable_oversize_answered_connection_survives(self):
        """Between the protocol cap and the transport buffer: a
        structured error, and the same connection keeps working."""

        async def scenario(server):
            reader, writer = await _open(server)
            pad = "x" * (protocol.MAX_REQUEST_BYTES + 64)
            writer.write(_req({"id": 7, "op": "ping", "pad": pad}))
            await writer.drain()
            response = json.loads(await reader.readline())
            assert not response["ok"]
            assert "request too large" in response["error"]

            writer.write(_req({"id": 8, "op": "ping"}))
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["ok"] and response["pong"]
            writer.close()

        server = _run_tcp(scenario)
        assert server.protocol_errors == 1

    def test_unbufferable_oversize_answered_then_closed(self):
        """Past twice the cap the stream cannot even frame the line:
        one final error response, then EOF -- never a hang, never a
        misparse of the overflow bytes as a second request."""

        async def scenario(server):
            reader, writer = await _open(server)
            writer.write(b'{"id": 9, "op": "ping", "pad": "')
            writer.write(b"x" * (2 * protocol.MAX_REQUEST_BYTES + 128))
            writer.write(b'"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            assert not response["ok"]
            assert "exceeds transport buffer" in response["error"]
            assert await reader.readline() == b""  # server closed it

            # The daemon itself is fine: fresh connections still served.
            reader2, writer2 = await _open(server)
            writer2.write(_req({"id": 10, "op": "ping"}))
            await writer2.drain()
            assert json.loads(await reader2.readline())["pong"]
            writer2.close()

        server = _run_tcp(scenario)
        assert server.protocol_errors >= 1


class TestMidStreamDisconnects:
    def test_partial_line_then_eof_does_not_kill_others(self):
        """A peer that dies mid-line: its fragment is refused, the
        response write to the dead socket is swallowed, and an in-flight
        verify on another connection still completes."""

        async def scenario(server):
            reader_a, writer_a = await _open(server)
            writer_a.write(
                _req({"id": 1, "op": "verify", "source": SAFE_PROGRAM})
            )
            await writer_a.drain()

            _, writer_b = await _open(server)
            writer_b.write(b'{"id": 2, "op": "ver')  # no newline, then gone
            await writer_b.drain()
            writer_b.close()

            response = json.loads(await reader_a.readline())
            assert response["ok"]
            assert response["result"]["verdict"] == "safe"
            writer_a.close()

        _run_tcp(scenario)

    def test_disconnect_with_request_in_flight(self):
        """A peer that submits a verify and vanishes before the answer:
        the daemon swallows the failed write and keeps serving."""

        async def scenario(server):
            _, writer = await _open(server)
            writer.write(
                _req({"id": 1, "op": "verify", "source": SAFE_PROGRAM})
            )
            await writer.drain()
            writer.close()  # gone before the worker answers

            # Give the orphaned respond() task time to hit the dead socket.
            reader2, writer2 = await _open(server)
            writer2.write(
                _req({"id": 2, "op": "verify", "source": SAFE_PROGRAM})
            )
            await writer2.drain()
            response = json.loads(await reader2.readline())
            assert response["ok"]
            assert response["result"]["verdict"] == "safe"
            writer2.close()

        _run_tcp(scenario)

    def test_empty_and_blank_lines_ignored(self):
        async def scenario(server):
            reader, writer = await _open(server)
            writer.write(b"\n   \n")
            writer.write(_req({"id": 1, "op": "ping"}))
            await writer.drain()
            assert json.loads(await reader.readline())["pong"]
            writer.close()

        server = _run_tcp(scenario)
        assert server.protocol_errors == 0
