"""Wire serialization: exact JSON round-trips for every result type.

The service moves :class:`VerificationResult` (with witnesses),
:class:`RaceWarning`, and :class:`VerifierConfig` across process
boundaries as JSON.  These tests pin the invariant the protocol relies
on: ``from_dict(json.loads(json.dumps(to_dict(x))))`` reconstructs an
object whose re-serialization is *bit-identical* -- nothing is lost to
tuples-vs-lists, enum coercion, or float formatting.
"""

import json

import pytest

from repro.analysis import analyze_program
from repro.verify import verify
from repro.verify.config import PRESETS, VerifierConfig
from repro.verify.result import SCHEMA_VERSION, Verdict, VerificationResult

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""

UNSAFE_PROGRAM = """
int c = 0;
thread a { int t; t = c; c = t + 1; }
thread b { int t; t = c; c = t + 1; }
main { start a; start b; join a; join b; assert(c == 2); }
"""

RACY_PROGRAM = """
int x = 0;
thread t1 { x = 1; }
thread t2 { int a; a = x; }
main { start t1; start t2; join t1; join t2; assert(x >= 0); }
"""


def roundtrip(result: VerificationResult) -> VerificationResult:
    wire = json.dumps(result.to_dict())
    return VerificationResult.from_dict(json.loads(wire))


class TestVerificationResultRoundTrip:
    def test_safe_result_exact(self):
        result = verify(SAFE_PROGRAM, VerifierConfig(unwind=4))
        again = roundtrip(result)
        assert again.to_dict() == result.to_dict()
        assert again.verdict == Verdict.SAFE

    def test_unsafe_result_keeps_witness(self):
        """The witness (trace steps, nondet values, schedule) survives,
        so a round-tripped UNSAFE result is still replayable."""
        result = verify(UNSAFE_PROGRAM, VerifierConfig(unwind=4))
        assert result.verdict == Verdict.UNSAFE
        assert result.witness is not None
        again = roundtrip(result)
        assert again.to_dict() == result.to_dict()
        assert len(again.witness.steps) == len(result.witness.steps)
        assert again.witness.nondet_values == result.witness.nondet_values
        assert again.schedule == result.schedule

    def test_fallback_attempts_survive(self):
        config = PRESETS["zord"](unwind=4, fallbacks=("cbmc",))
        result = verify(SAFE_PROGRAM, config)
        again = roundtrip(result)
        assert again.to_dict() == result.to_dict()
        assert again.attempts == result.attempts

    def test_stats_columns_survive(self):
        result = verify(SAFE_PROGRAM, VerifierConfig(unwind=4))
        again = roundtrip(result)
        assert again.stats == result.stats

    def test_schema_version_stamped(self):
        wire = verify(SAFE_PROGRAM, VerifierConfig(unwind=4)).to_dict()
        assert wire["schema_version"] == SCHEMA_VERSION

    def test_unknown_schema_version_rejected(self):
        wire = verify(SAFE_PROGRAM, VerifierConfig(unwind=4)).to_dict()
        wire["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            VerificationResult.from_dict(wire)


class TestRaceWarningRoundTrip:
    def test_exact(self):
        report = analyze_program(RACY_PROGRAM, unwind=4)
        assert report.warnings, "corpus program must produce a warning"
        from repro.analysis.races import RaceWarning

        for warning in report.warnings:
            wire = json.dumps(warning.to_dict())
            again = RaceWarning.from_dict(json.loads(wire))
            assert again == warning
            assert again.to_dict() == warning.to_dict()


class TestVerifierConfigRoundTrip:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_preset_exact(self, preset):
        config = PRESETS[preset](unwind=4, time_limit_s=2.0)
        wire = json.dumps(config.to_dict())
        again = VerifierConfig.from_dict(json.loads(wire))
        assert again == config
        assert again.to_dict() == config.to_dict()

    def test_tuple_fields_survive(self):
        config = VerifierConfig(
            unwind_schedule=(2, 4, 8), fallbacks=("cbmc", "dartagnan")
        )
        again = VerifierConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert again.unwind_schedule == (2, 4, 8)
        assert again.fallbacks == ("cbmc", "dartagnan")

    def test_preset_reference(self):
        again = VerifierConfig.from_dict({"preset": "zord-tarjan", "unwind": 3})
        assert again.detector == "tarjan"
        assert again.unwind == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            VerifierConfig.from_dict({"not_a_knob": 1})
