"""Crash-safe verdict-cache persistence (repro.service.persist).

Three layers: frame-level tests of the journal format (torn and
corrupted records are refused, never misread), CacheStore/VerdictCache
recovery semantics (version guards, compaction, LRU interaction), and a
full daemon SIGKILL-restart cycle proving cached verdicts survive an
unclean death.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.portfolio.sharing import SIGNATURE_VERSION
from repro.service.cache import VerdictCache, cache_key
from repro.service.persist import (
    CACHE_SCHEMA_VERSION,
    CacheStore,
    JOURNAL_NAME,
    SNAPSHOT_NAME,
    key_from_wire,
    key_to_wire,
    key_token,
    _frame,
    _unframe,
)
from repro.verify.config import VerifierConfig
from repro.verify.result import SCHEMA_VERSION as RESULT_SCHEMA_VERSION

pytestmark = pytest.mark.timeout(120)

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""


def _key(n=0):
    return cache_key(SAFE_PROGRAM, VerifierConfig(unwind=2 + n))


def _result(verdict="safe"):
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "verdict": verdict,
        "config": "test",
        "wall_time_s": 0.01,
        "stats": {},
    }


class TestFraming:
    def test_roundtrip(self):
        rec = {"kind": "entry", "key": [["a", 1]], "result": {"x": 2}}
        assert _unframe(_frame(rec).rstrip(b"\n")) == rec

    def test_torn_prefix_refused(self):
        frame = _frame({"kind": "entry", "key": [], "result": {}})
        for cut in (1, len(frame) // 2, len(frame) - 2):
            assert _unframe(frame[:cut]) is None

    def test_bitflip_refused(self):
        frame = bytearray(_frame({"kind": "entry", "result": {"v": "safe"}}))
        # Flip one byte inside the record payload, keeping valid JSON
        # shape likely broken; either parse fails or the hash mismatches.
        frame[-10] ^= 0x01
        assert _unframe(bytes(frame).rstrip(b"\n")) is None

    def test_key_wire_roundtrip(self):
        key = ("digest", ("sig", 1, ("nested", 2), "sc"))
        assert key_from_wire(key_to_wire(key)) == key

    def test_key_token_stable_and_distinct(self):
        assert key_token(_key(0)) == key_token(_key(0))
        assert key_token(_key(0)) != key_token(_key(1))
        assert len(key_token(_key(0))) == 32


class TestCacheStore:
    def test_append_recover_roundtrip(self, tmp_path):
        store = CacheStore(str(tmp_path))
        assert store.append(_key(0), _result())
        assert store.append(_key(1), _result("unsafe"))
        store.close()

        fresh = CacheStore(str(tmp_path))
        entries = dict(fresh.recover())
        assert entries[_key(0)]["verdict"] == "safe"
        assert entries[_key(1)]["verdict"] == "unsafe"
        assert fresh.recovered_entries == 2

    def test_torn_tail_discarded_earlier_entries_survive(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.append(_key(0), _result())
        store.close()
        frame = _frame({"kind": "entry"})
        with open(tmp_path / JOURNAL_NAME, "ab") as f:
            f.write(frame[: len(frame) // 2])  # simulated mid-write crash

        fresh = CacheStore(str(tmp_path))
        entries = fresh.recover()
        assert len(entries) == 1 and entries[0][0] == _key(0)
        assert fresh.discarded_records == 1

    def test_torn_middle_does_not_poison_rest(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.append(_key(0), _result())
        store.close()
        with open(tmp_path / JOURNAL_NAME, "ab") as f:
            f.write(b'{"len": 3, "sha": "nope", "rec": {}}\n')
        store = CacheStore(str(tmp_path))
        store.append(_key(1), _result())
        store.close()

        fresh = CacheStore(str(tmp_path))
        entries = fresh.recover()
        assert [k for k, _ in entries] == [_key(0), _key(1)]
        assert fresh.discarded_records == 1

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda rec: rec.update(v=CACHE_SCHEMA_VERSION + 1),
            lambda rec: rec.update(sigv=SIGNATURE_VERSION + 1),
            lambda rec: rec["result"].update(
                schema_version=RESULT_SCHEMA_VERSION + 1
            ),
        ],
        ids=["cache-schema", "signature-version", "result-schema"],
    )
    def test_version_mismatch_refused_as_stale(self, tmp_path, mutate):
        rec = {
            "kind": "entry",
            "v": CACHE_SCHEMA_VERSION,
            "sigv": SIGNATURE_VERSION,
            "key": key_to_wire(_key(0)),
            "result": _result(),
        }
        mutate(rec)
        with open(tmp_path / JOURNAL_NAME, "wb") as f:
            f.write(_frame(rec))

        fresh = CacheStore(str(tmp_path))
        assert fresh.recover() == []
        assert fresh.stale_records == 1
        assert fresh.discarded_records == 0

    def test_compaction_rotates_journal(self, tmp_path):
        store = CacheStore(str(tmp_path))
        entries = [(_key(n), _result()) for n in range(3)]
        for key, result in entries:
            store.append(key, result)
        assert store.compact(entries)
        assert os.path.getsize(tmp_path / JOURNAL_NAME) == 0
        store.close()

        fresh = CacheStore(str(tmp_path))
        assert len(fresh.recover()) == 3

    def test_journal_overrides_snapshot(self, tmp_path):
        """Entries appended after the snapshot win on key collision."""
        store = CacheStore(str(tmp_path))
        store.compact([(_key(0), _result("safe"))])
        store.append(_key(0), _result("unsafe"))
        store.close()

        fresh = CacheStore(str(tmp_path))
        entries = fresh.recover()
        assert entries[-1][1]["verdict"] == "unsafe"

    def test_stale_snapshot_refused(self, tmp_path):
        store = CacheStore(str(tmp_path))
        store.compact([(_key(0), _result())])
        store.close()
        with open(tmp_path / SNAPSHOT_NAME) as f:
            obj = json.load(f)
        obj["sigv"] = SIGNATURE_VERSION + 1
        with open(tmp_path / SNAPSHOT_NAME, "w") as f:
            json.dump(obj, f)

        fresh = CacheStore(str(tmp_path))
        assert fresh.recover() == []
        assert fresh.stale_records == 1


class TestVerdictCachePersistence:
    def test_put_survives_reconstruction(self, tmp_path):
        cache = VerdictCache(cache_dir=str(tmp_path))
        key = _key(0)
        assert cache.put(key, _result())
        cache.close()

        fresh = VerdictCache(cache_dir=str(tmp_path))
        hit = fresh.get(key)
        assert hit is not None and hit["verdict"] == "safe"
        assert fresh.snapshot()["cache_persistent"] == 1
        assert fresh.snapshot()["persist_recovered"] == 1
        fresh.close()

    def test_inconclusive_never_journaled(self, tmp_path):
        cache = VerdictCache(cache_dir=str(tmp_path))
        assert not cache.put(_key(0), _result("unknown"))
        cache.close()
        # The journal is created lazily; a refused put must not create
        # (or grow) it.
        assert not os.path.exists(tmp_path / JOURNAL_NAME) or (
            os.path.getsize(tmp_path / JOURNAL_NAME) == 0
        )

    def test_recovery_respects_lru_cap(self, tmp_path):
        cache = VerdictCache(max_entries=8, cache_dir=str(tmp_path))
        for n in range(6):
            cache.put(_key(n), _result())
        cache.close()

        fresh = VerdictCache(max_entries=2, cache_dir=str(tmp_path))
        assert len(fresh) == 2
        assert fresh.get(_key(5)) is not None  # newest survive
        fresh.close()

    def test_auto_compaction_threshold(self, tmp_path):
        cache = VerdictCache(cache_dir=str(tmp_path), compact_every=3)
        for n in range(3):
            cache.put(_key(n), _result())
        assert cache.store.compactions == 1
        assert os.path.getsize(tmp_path / JOURNAL_NAME) == 0
        cache.close()

        fresh = VerdictCache(cache_dir=str(tmp_path))
        assert len(fresh) == 3
        fresh.close()


@pytest.mark.slow
class TestDaemonRestartRecovery:
    def test_sigkill_then_restart_keeps_verdicts(self, tmp_path):
        """SIGKILL (no drain, no flush) must not lose acknowledged
        verdicts: every put was fsynced before its response."""
        cache_dir = str(tmp_path / "cache")
        cmd = [
            sys.executable, "-m", "repro.cli", "serve", "--stdio",
            "--workers", "1", "--cache-dir", cache_dir,
        ]
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, bufsize=1, cwd=os.path.join(
                os.path.dirname(__file__), "..", ".."
            ), env=env,
        )
        try:
            req = {"id": 1, "op": "verify", "source": SAFE_PROGRAM}
            proc.stdin.write(json.dumps(req) + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["result"]["verdict"] == "safe"
            assert not response["cache_hit"]
        finally:
            proc.kill()
            proc.wait(timeout=10)

        proc = subprocess.Popen(
            cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            text=True, bufsize=1, cwd=os.path.join(
                os.path.dirname(__file__), "..", ".."
            ), env=env,
        )
        try:
            req = {"id": 1, "op": "verify", "source": SAFE_PROGRAM}
            proc.stdin.write(json.dumps(req) + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            assert response["result"]["verdict"] == "safe"
            assert response["cache_hit"], (
                "verdict should have been recovered from the journal"
            )
        finally:
            proc.stdin.close()
            proc.wait(timeout=15)
