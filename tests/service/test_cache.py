"""The content-addressed verdict cache: key semantics and poisoning
guards.

The key promise: two jobs share a cache entry iff their programs have
the same canonical (parse->unparse) form AND their configs have the same
*semantic* signature.  Formula-shaping knobs must split the key;
search-only knobs must not; inconclusive verdicts must never be stored.
"""

import pytest

from repro.service.cache import (
    VerdictCache,
    cache_key,
    canonical_source,
    config_signature,
)
from repro.verify.config import PRESETS, VerifierConfig
from repro.verify.result import Verdict, VerificationResult

PROGRAM = """
int x = 0, y = 0;
thread t1 { x = 1; y = 1; }
thread t2 { int a; a = y; }
main { start t1; start t2; join t1; join t2; assert(y >= 0); }
"""

#: The same program under cosmetic rewrites the canonical form must
#: erase: extra whitespace, comments, and reordered global declarations
#: (the unparser normalizes the declaration layout).
WHITESPACE_VARIANT = PROGRAM.replace("\n", "\n   ").replace("; ", ";\n")
COMMENT_VARIANT = PROGRAM.replace(
    "thread t1", "// writer thread\nthread t1"
)
REORDER_VARIANT = PROGRAM.replace(
    "int x = 0, y = 0;", "int x = 0;\nint y = 0;"
)


class TestCanonicalForm:
    def test_identity(self):
        assert canonical_source(PROGRAM) == canonical_source(PROGRAM)

    @pytest.mark.parametrize(
        "variant",
        [WHITESPACE_VARIANT, COMMENT_VARIANT, REORDER_VARIANT],
        ids=["whitespace", "comments", "global-reorder"],
    )
    def test_cosmetic_rewrites_share_canonical_form(self, variant):
        assert canonical_source(variant) == canonical_source(PROGRAM)

    def test_different_programs_differ(self):
        other = PROGRAM.replace("x = 1", "x = 2")
        assert canonical_source(other) != canonical_source(PROGRAM)

    def test_ast_and_source_agree(self):
        from repro.lang import parse

        assert canonical_source(parse(PROGRAM)) == canonical_source(PROGRAM)


class TestCacheKey:
    def test_cosmetic_rewrites_share_key(self):
        config = VerifierConfig()
        base = cache_key(PROGRAM, config)
        for variant in (WHITESPACE_VARIANT, COMMENT_VARIANT, REORDER_VARIANT):
            assert cache_key(variant, config) == base

    def test_formula_shaping_knobs_split_key(self):
        config = VerifierConfig()
        base = cache_key(PROGRAM, config)
        for knob in (
            dict(prune_level=0),
            dict(unwind=4),
            dict(width=16),
            dict(memory_model="tso"),
            dict(theory="idl"),
            dict(fr_encoding=True),
            dict(unwind_schedule=(2, 8)),
        ):
            assert cache_key(PROGRAM, config.with_(**knob)) != base, knob

    def test_search_only_knobs_share_key(self):
        config = VerifierConfig()
        base = cache_key(PROGRAM, config)
        for knob in (
            dict(detector="tarjan"),
            dict(unit_edge=False),
            dict(max_conflicts=100),
            dict(time_limit_s=1.0),
            dict(memory_limit_mb=64.0),
        ):
            assert cache_key(PROGRAM, config.with_(**knob)) == base, knob

    def test_engines_never_collide(self):
        """Distinct engines get distinct signatures -- lazy-cseq's
        unsound-SAFE regime must never answer for a sound engine."""
        sigs = {}
        for name, factory in PRESETS.items():
            sigs.setdefault(config_signature(factory()), []).append(name)
        for sig, names in sigs.items():
            engines = {PRESETS[n]().engine for n in names}
            assert len(engines) == 1, (sig, names)

    def test_parse_error_propagates(self):
        from repro.lang.parser import ParseError

        with pytest.raises(ParseError):
            cache_key("int x = ;", VerifierConfig())


def _result(verdict) -> dict:
    return VerificationResult(verdict, "zord", wall_time_s=0.1).to_dict()


def _chained_result(verdict, *statuses) -> dict:
    """A wire result whose fallback chain ran with the given per-attempt
    statuses (the verdict belongs to the last non-skipped attempt)."""
    from repro.robustness.fallback import Attempt

    result = VerificationResult(verdict, "zord", wall_time_s=0.1)
    result.attempts = [
        Attempt(f"cfg{i}", "smt/ord" if i == 0 else "lazyseq", status,
                verdict=verdict if status == "conclusive" else "unknown")
        .as_dict()
        for i, status in enumerate(statuses)
    ]
    return result.to_dict()


class TestVerdictCache:
    def test_miss_then_hit(self):
        cache = VerdictCache()
        key = cache_key(PROGRAM, VerifierConfig())
        assert cache.get(key) is None
        assert cache.put(key, _result(Verdict.SAFE))
        hit = cache.get(key)
        assert hit is not None and hit["verdict"] == Verdict.SAFE
        assert cache.hits == 1 and cache.misses == 1

    @pytest.mark.parametrize("verdict", [Verdict.UNKNOWN, Verdict.ERROR])
    def test_inconclusive_verdicts_never_cached(self, verdict):
        """Poisoning guard: budget exhaustion and contained crashes are
        facts about one run, not about the program."""
        cache = VerdictCache()
        key = cache_key(PROGRAM, VerifierConfig())
        assert not cache.put(key, _result(verdict))
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_fallback_verdicts_never_cached(self):
        """Poisoning guard: the cache key signs the *primary* config, but
        a verdict from a fallback attempt was produced under the fallback
        engine's own signature -- e.g. a round-bounded lazy-cseq SAFE must
        never answer for a full SMT solve."""
        cache = VerdictCache()
        key = cache_key(PROGRAM, VerifierConfig())
        fallback_safe = _chained_result(
            Verdict.SAFE, "unknown", "conclusive"
        )
        assert not cache.put(key, fallback_safe)
        assert len(cache) == 0
        assert cache.get(key) is None

    def test_primary_verdict_with_chain_is_cached(self):
        """A chain that concluded on its *first* link answered under the
        request's own signature; caching it is sound."""
        cache = VerdictCache()
        key = cache_key(PROGRAM, VerifierConfig())
        primary_safe = _chained_result(Verdict.SAFE, "conclusive")
        assert cache.put(key, primary_safe)
        assert cache.get(key)["verdict"] == Verdict.SAFE

    def test_returned_entry_is_a_private_copy(self):
        cache = VerdictCache()
        key = cache_key(PROGRAM, VerifierConfig())
        cache.put(key, _result(Verdict.UNSAFE))
        first = cache.get(key)
        first["stats"]["cache_hit"] = 1
        first["verdict"] = "mutated"
        second = cache.get(key)
        assert second["verdict"] == Verdict.UNSAFE
        assert "cache_hit" not in second["stats"]

    def test_lru_eviction(self):
        cache = VerdictCache(max_entries=2)
        keys = [("digest%d" % i, ("sig",)) for i in range(3)]
        for key in keys:
            cache.put(key, _result(Verdict.SAFE))
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[2]) is not None
        assert cache.evictions == 1

    def test_snapshot_keys(self):
        snap = VerdictCache().snapshot()
        assert set(snap) == {
            "cache_entries",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "cache_persistent",
        }
        assert snap["cache_persistent"] == 0
