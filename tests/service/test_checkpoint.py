"""Job checkpoint/resume through the iterative-deepening loop.

Layers: the :class:`Checkpoint` value type, engine-side emission from
``_solve_schedule``, the durable :class:`CheckpointStore`, the worker's
resume plumbing (``_prepare_resume``), and the end-to-end property the
whole feature rests on -- a resumed run returns the *same verdict* as a
fresh run, on every example program.
"""

import glob
import os

import pytest

from repro.service.cache import cache_key, key_token
from repro.service.checkpoints import CheckpointStore
from repro.service.workers import WorkerPool, _prepare_resume
from repro.verify.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    checkpoint_sink,
    emit_checkpoint,
)
from repro.verify.config import VerifierConfig
from repro.verify.verifier import verify_one

pytestmark = pytest.mark.timeout(300)

EXAMPLES = sorted(glob.glob(
    os.path.join(os.path.dirname(__file__), "..", "..",
                 "examples", "programs", "*.c")
))

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""

LOOP_PROGRAM = """
int x = 0;
thread t { int i; i = 0; while (i < 3) { x = x + 1; i = i + 1; } }
main { start t; join t; assert(x <= 3); }
"""


def _checkpoint(schedule=(1, 2, 4), completed=(1,)):
    return Checkpoint(schedule=schedule, completed=completed)


class TestCheckpointType:
    def test_remaining(self):
        cp = _checkpoint(schedule=(1, 2, 4, 8), completed=(1, 2))
        assert cp.remaining() == (4, 8)
        assert _checkpoint(completed=()).remaining() == (1, 2, 4)

    def test_dict_roundtrip(self):
        cp = Checkpoint(
            schedule=(1, 4), completed=(1,), conflicts=7,
            clauses_retained=3, elapsed_s=0.5,
        )
        assert Checkpoint.from_dict(cp.to_dict()) == cp

    def test_schema_version_guard(self):
        data = _checkpoint().to_dict()
        data["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema version"):
            Checkpoint.from_dict(data)

    def test_sink_contains_failures(self):
        """A throwing sink must not fail the verification."""
        def bad_sink(cp):
            raise OSError("disk full")

        with checkpoint_sink(bad_sink):
            emit_checkpoint(_checkpoint())  # must not raise

    def test_no_sink_is_noop(self):
        emit_checkpoint(_checkpoint())  # must not raise


class TestEngineEmission:
    def test_emits_after_completed_bounds(self):
        seen = []
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        with checkpoint_sink(seen.append):
            result = verify_one(LOOP_PROGRAM, config)
        assert result.verdict == "safe"
        # One checkpoint per completed non-final bound (the root-level-
        # UNSAT shortcut may legitimately end the schedule early), each
        # a strict prefix extension of the previous.
        assert seen, "expected at least one checkpoint"
        assert seen[0].completed == (1,)
        for prev, cur in zip(seen, seen[1:]):
            assert cur.completed[: len(prev.completed)] == prev.completed
            assert len(cur.completed) == len(prev.completed) + 1
        assert all(cp.schedule == (1, 2, 4) for cp in seen)
        assert all(
            cp.verdict_so_far == "no-violation-within-bound" for cp in seen
        )

    def test_one_shot_emits_nothing(self):
        seen = []
        with checkpoint_sink(seen.append):
            verify_one(SAFE_PROGRAM, VerifierConfig(unwind=4))
        assert seen == []


class TestCheckpointStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        cp = _checkpoint()
        assert store.save("tok", cp)
        assert store.load("tok", (1, 2, 4)) == cp
        assert store.count() == 1

    def test_load_missing_is_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load("nope", (1, 2)) is None

    def test_load_schedule_mismatch_is_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("tok", _checkpoint(schedule=(1, 2, 4)))
        assert store.load("tok", (1, 2, 8)) is None

    def test_load_corrupt_is_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        with open(store.path("tok"), "w") as f:
            f.write('{"schema_version":')  # torn write
        assert store.load("tok", (1, 2, 4)) is None

    def test_load_nothing_remaining_is_none(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("tok", _checkpoint(completed=(1, 2, 4)))
        assert store.load("tok", (1, 2, 4)) is None

    def test_discard(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        store.save("tok", _checkpoint())
        store.discard("tok")
        assert store.count() == 0
        store.discard("tok")  # idempotent


class TestPrepareResume:
    def test_no_store_or_token_passthrough(self):
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        out, sink, resumed, skipped = _prepare_resume(
            None, "tok", config, Checkpoint
        )
        assert out is config and sink is None
        assert resumed is None and skipped == 0

    def test_resume_trims_schedule(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        store.save("tok", _checkpoint(schedule=(1, 2, 4), completed=(1,)))
        out, sink, resumed, skipped = _prepare_resume(
            store, "tok", config, Checkpoint
        )
        assert out.unwind_schedule == (2, 4)
        assert resumed == 1 and skipped == 1
        assert sink is not None

    def test_sink_merges_against_original_schedule(self, tmp_path):
        """A twice-interrupted job must still validate: checkpoints from
        a *resumed* run (whose engine saw the trimmed schedule) are
        persisted against the original schedule with prior completed
        bounds and effort merged in."""
        store = CheckpointStore(str(tmp_path))
        config = VerifierConfig(unwind=8, unwind_schedule=(1, 2, 4, 8))
        store.save(
            "tok",
            Checkpoint(
                schedule=(1, 2, 4, 8), completed=(1,),
                conflicts=10, elapsed_s=1.0,
            ),
        )
        _, sink, _, _ = _prepare_resume(store, "tok", config, Checkpoint)
        # The resumed engine emits against its trimmed schedule (2, 4, 8).
        sink(Checkpoint(
            schedule=(2, 4, 8), completed=(2, 4), conflicts=5, elapsed_s=0.5,
        ))
        merged = store.load("tok", (1, 2, 4, 8))
        assert merged is not None
        assert merged.completed == (1, 2, 4)
        assert merged.conflicts == 15
        assert merged.elapsed_s == pytest.approx(1.5)
        # And a second resume trims past the merged prefix.
        out, _, resumed, skipped = _prepare_resume(
            store, "tok", config, Checkpoint
        )
        assert out.unwind_schedule == (8,)
        assert resumed == 4 and skipped == 3

    def test_fresh_run_with_token_still_persists(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        out, sink, resumed, skipped = _prepare_resume(
            store, "tok", config, Checkpoint
        )
        assert out.unwind_schedule == (1, 2, 4) and resumed is None
        sink(Checkpoint(schedule=(1, 2, 4), completed=(1,)))
        assert store.load("tok", (1, 2, 4)).completed == (1,)


class TestResumeEquivalence:
    """The soundness property: resuming from any completed bound returns
    the same verdict as the fresh run."""

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES]
    )
    def test_resumed_verdict_equals_fresh(self, path):
        with open(path) as f:
            source = f.read()
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        seen = []
        with checkpoint_sink(seen.append):
            fresh = verify_one(source, config)
        # Resume from every checkpoint the fresh run emitted.
        for cp in seen:
            resumed = verify_one(
                source, config.with_(unwind_schedule=cp.remaining())
            )
            assert resumed.verdict == fresh.verdict, (
                f"resume from bound {cp.completed[-1]} changed the verdict"
            )

    def test_unsafe_at_shallow_bound_never_checkpoints_wrong(self):
        """A SAT (UNSAFE) bound concludes the job; no checkpoint may
        claim it was completed."""
        unsafe = """
        int c = 0;
        thread a { int t; t = c; c = t + 1; }
        thread b { int t; t = c; c = t + 1; }
        main { start a; start b; join a; join b; assert(c == 2); }
        """
        seen = []
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        with checkpoint_sink(seen.append):
            result = verify_one(unsafe, config)
        assert result.verdict == "unsafe"
        final_bounds = [cp.completed[-1] for cp in seen]
        # The bound where the bug was found is never in any checkpoint.
        stats_bounds = result.stats["bounds"]
        sat_bound = stats_bounds[-1]["bound"]
        assert sat_bound not in final_bounds


class TestWorkerResume:
    @pytest.fixture()
    def pool(self, tmp_path):
        pool = WorkerPool(size=1, checkpoint_dir=str(tmp_path))
        yield pool
        pool.shutdown()

    def test_seeded_checkpoint_resumes_and_discards(self, pool, tmp_path):
        config = VerifierConfig(unwind=4, unwind_schedule=(1, 2, 4))
        key = cache_key(LOOP_PROGRAM, config)
        token = key_token(key)
        store = CheckpointStore(str(tmp_path))
        store.save("%s" % token, _checkpoint(schedule=(1, 2, 4)))

        _, fut, _ = pool.submit(LOOP_PROGRAM, config.to_dict(), token)
        payload = fut.result(timeout=120)
        result = payload["result"]
        assert result["verdict"] == "safe"
        assert result["stats"]["resumed_from_bound"] == 1
        assert result["stats"]["bounds_skipped"] == 1
        # The resumed run solved only the remaining bounds.
        assert result["stats"]["unwind_schedule"] == [2, 4]
        # Conclusive verdict: the checkpoint is gone.
        assert store.count() == 0

    def test_fresh_job_unannotated(self, pool):
        config = VerifierConfig(unwind=2, unwind_schedule=(1, 2))
        _, fut, _ = pool.submit(LOOP_PROGRAM, config.to_dict(), "tok-fresh")
        result = fut.result(timeout=120)["result"]
        assert result["verdict"] == "safe"
        assert "resumed_from_bound" not in result["stats"]
