"""End-to-end service tests.

Two layers: in-process :class:`ServiceServer` tests exercise the request
core (admission control, deadlines, worker recycling, protocol errors)
without transport overhead, and one spawned ``repro serve --stdio``
daemon -- shared by the whole module -- proves the real subprocess
transport: SAFE/UNSAFE verdicts, cache-hit repeats, and verdict
equivalence with the in-process API on every example program.
"""

import asyncio
import glob
import json
import os
import socket
import threading

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ServiceServer
from repro.verify import Verdict, VerifierConfig
from repro.verify.verifier import verify_one

EXAMPLES = sorted(glob.glob(
    os.path.join(os.path.dirname(__file__), "..", "..",
                 "examples", "programs", "*.c")
))

SAFE_PROGRAM = """
int x = 0;
thread t { x = x + 1; }
main { start t; join t; assert(x == 1); }
"""

UNSAFE_PROGRAM = """
int c = 0;
thread a { int t; t = c; c = t + 1; }
thread b { int t; t = c; c = t + 1; }
main { start a; start b; join a; join b; assert(c == 2); }
"""

#: Exponential-ish workload for deadline/shedding tests: several threads
#: of nondeterministic writes at a deep unwind.
SLOW_PROGRAM = """
int x = 0, y = 0, z = 0;
thread t1 { int i; i = 0; while (i < 6) { x = x + y; y = y + z; i = i + 1; } }
thread t2 { int i; i = 0; while (i < 6) { y = y + x; z = z + x; i = i + 1; } }
thread t3 { int i; i = 0; while (i < 6) { z = z + y; x = x + z; i = i + 1; } }
main {
    start t1; start t2; start t3; join t1; join t2; join t3;
    assert(x + y + z >= 0);
}
"""


def _request(server, req):
    return asyncio.run(server.handle_request(req))


@pytest.fixture()
def server():
    srv = ServiceServer(workers=1, max_queue=2)
    yield srv
    srv.close()


class TestRequestCore:
    def test_verify_and_cache_hit(self, server):
        req = {"id": 1, "op": "verify", "source": UNSAFE_PROGRAM}
        first = _request(server, req)
        assert first["ok"] and not first["cache_hit"]
        assert first["result"]["verdict"] == Verdict.UNSAFE
        second = _request(server, dict(req, id=2))
        assert second["ok"] and second["cache_hit"]
        assert second["result"]["verdict"] == Verdict.UNSAFE
        assert second["result"]["stats"]["cache_hit"] == 1
        assert first["result"]["stats"]["cache_hit"] == 0

    def test_search_knob_change_still_hits(self, server):
        base = {"id": 1, "op": "verify", "source": SAFE_PROGRAM,
                "config": {"preset": "zord"}}
        assert not _request(server, base)["cache_hit"]
        variant = dict(base, id=2, config={"preset": "zord-tarjan"})
        assert _request(server, variant)["cache_hit"]

    def test_formula_knob_change_misses(self, server):
        base = {"id": 1, "op": "verify", "source": SAFE_PROGRAM,
                "config": {"unwind": 4}}
        assert not _request(server, base)["cache_hit"]
        variant = dict(base, id=2, config={"unwind": 5})
        assert not _request(server, variant)["cache_hit"]

    def test_inconclusive_never_cached(self, server):
        """A budget UNKNOWN must not poison the cache for the identical
        request."""
        req = {"id": 1, "op": "verify", "source": SLOW_PROGRAM,
               "config": {"unwind": 6, "max_conflicts": 5}}
        first = _request(server, req)
        assert first["result"]["verdict"] == Verdict.UNKNOWN
        second = _request(server, dict(req, id=2))
        assert not second["cache_hit"]
        assert len(server.cache) == 0

    def test_deadline_rides_budget(self, server):
        req = {"id": 1, "op": "verify", "source": SLOW_PROGRAM,
               "config": {"unwind": 8}, "deadline_s": 0.05}
        response = _request(server, req)
        assert response["ok"]
        assert response["result"]["verdict"] == Verdict.UNKNOWN

    def test_shedding_under_load(self):
        """With the queue full, new jobs come back UNKNOWN/overloaded
        immediately instead of waiting."""
        server = ServiceServer(workers=1, max_queue=1)
        try:
            async def burst():
                slow = {"op": "verify", "source": SLOW_PROGRAM,
                        "config": {"unwind": 6}, "deadline_s": 20.0}
                fast = {"op": "verify", "source": SAFE_PROGRAM}
                tasks = [
                    asyncio.ensure_future(
                        server.handle_request(dict(slow, id=i))
                    )
                    for i in range(3)
                ]
                await asyncio.sleep(0.2)  # let them submit/shed
                late = await server.handle_request(dict(fast, id=99))
                done = await asyncio.gather(*tasks)
                return done + [late]

            responses = asyncio.run(burst())
            verdicts = [r["result"]["verdict"] for r in responses]
            shed = [
                r for r in responses
                if r["result"]["stats"].get("reason") == "overloaded"
            ]
            assert shed, verdicts
            assert server.jobs_shed == len(shed)
            for r in shed:
                assert r["result"]["verdict"] == Verdict.UNKNOWN
                assert "overloaded" in r["result"]["diagnostic"]
        finally:
            server.close()

    def test_pipelined_duplicates_coalesce(self):
        """Identical requests arriving while the first is still computing
        await its result (single-flight) instead of each burning a worker
        job, and report the shared answer as a cache hit."""
        server = ServiceServer(workers=2, max_queue=8)
        try:
            async def burst():
                req = {"op": "verify", "source": UNSAFE_PROGRAM}
                tasks = [
                    asyncio.ensure_future(
                        server.handle_request(dict(req, id=i))
                    )
                    for i in range(4)
                ]
                return await asyncio.gather(*tasks)

            responses = asyncio.run(burst())
            assert all(r["ok"] for r in responses)
            assert {r["result"]["verdict"] for r in responses} == {
                Verdict.UNSAFE
            }
            assert sum(r["cache_hit"] for r in responses) == 3
            assert server.jobs_coalesced == 3
            assert server.pool.jobs_done == 1
        finally:
            server.close()

    def test_inconclusive_leader_not_shared(self):
        """Coalesced duplicates of a job that ends UNKNOWN recompute
        rather than inheriting the inconclusive answer as a 'hit'."""
        server = ServiceServer(workers=2, max_queue=8)
        try:
            async def burst():
                req = {"op": "verify", "source": SLOW_PROGRAM,
                       "config": {"unwind": 6, "max_conflicts": 5}}
                tasks = [
                    asyncio.ensure_future(
                        server.handle_request(dict(req, id=i))
                    )
                    for i in range(2)
                ]
                return await asyncio.gather(*tasks)

            responses = asyncio.run(burst())
            for r in responses:
                assert r["result"]["verdict"] == Verdict.UNKNOWN
                assert not r["cache_hit"]
            assert server.jobs_coalesced == 0
        finally:
            server.close()

    def test_worker_recycling(self):
        server = ServiceServer(workers=1, recycle_after=1)
        try:
            for i, source in enumerate((SAFE_PROGRAM, UNSAFE_PROGRAM)):
                response = _request(
                    server, {"id": i, "op": "verify", "source": source}
                )
                assert response["ok"]
            assert server.pool.recycles >= 1
            assert response["result"]["stats"]["worker_recycles"] >= 1
        finally:
            server.close()

    def test_analyze_op(self, server):
        response = _request(
            server, {"id": 1, "op": "analyze", "source": UNSAFE_PROGRAM}
        )
        assert response["ok"]
        assert response["report"]["pairs_racy"] > 0
        assert response["report"]["races"]

    def test_ping_and_stats(self, server):
        assert _request(server, {"id": 1, "op": "ping"})["pong"]
        _request(server, {"id": 2, "op": "verify", "source": SAFE_PROGRAM})
        stats = _request(server, {"id": 3, "op": "stats"})["stats"]
        assert stats["jobs_total"] == 1
        assert stats["cache_misses"] == 1


class TestProtocolErrors:
    def _line(self, server, line):
        return json.loads(asyncio.run(server.handle_line(line)))

    def test_malformed_json(self, server):
        response = self._line(server, "{nope\n")
        assert not response["ok"] and "JSON" in response["error"]

    def test_unknown_op(self, server):
        response = self._line(server, '{"id": 1, "op": "explode"}\n')
        assert not response["ok"] and "unknown op" in response["error"]

    def test_parse_error_is_request_error(self, server):
        response = _request(
            server, {"id": 1, "op": "verify", "source": "int x = ;"}
        )
        assert not response["ok"] and "ParseError" in response["error"]
        assert response["id"] == 1

    def test_bad_config_is_request_error(self, server):
        response = _request(
            server,
            {"id": 1, "op": "verify", "source": SAFE_PROGRAM,
             "config": {"warp_speed": 9}},
        )
        assert not response["ok"] and "bad config" in response["error"]


class TestSyncClientPipelining:
    def test_threads_share_one_connection(self):
        """Two threads pipeline over one sync client while the server
        answers out of request order -- whichever thread reads the other's
        response must stash it, and the owner must find it in the stash
        instead of blocking in readline() forever."""
        ours, theirs = socket.socketpair()
        stream = ours.makefile("rw", encoding="utf-8", newline="\n")
        client = ServiceClient(stream, stream, sock=ours)
        peer = theirs.makefile("rw", encoding="utf-8", newline="\n")

        def fake_server():
            requests = [json.loads(peer.readline()) for _ in range(2)]
            # Both requests are in before any response goes out, answered
            # in reverse id order: at least one thread reads a response
            # that is not its own.
            for req in sorted(requests, key=lambda r: -r["id"]):
                peer.write(json.dumps({"id": req["id"], "ok": True}) + "\n")
            peer.flush()

        responses = {}

        def caller():
            response = client.request("ping")
            responses[response["id"]] = response

        server = threading.Thread(target=fake_server, daemon=True)
        callers = [threading.Thread(target=caller, daemon=True)
                   for _ in range(2)]
        server.start()
        try:
            for t in callers:
                t.start()
            for t in callers:
                t.join(timeout=10.0)
            assert not any(t.is_alive() for t in callers), (
                "pipelined sync request deadlocked"
            )
            assert set(responses) == {1, 2}
            assert all(r["ok"] for r in responses.values())
        finally:
            client.close()
            peer.close()
            theirs.close()


class TestStdioShutdown:
    def test_shutdown_op_exits_daemon(self):
        """The 'shutdown' op alone must terminate the daemon -- the
        stdin reader must not keep the process alive until the peer
        closes the pipe."""
        client = ServiceClient.spawn(workers=1)
        try:
            assert client.ping()["pong"]
            client.shutdown()
            assert client._proc.wait(timeout=30.0) == 0
        finally:
            client.close()


@pytest.fixture(scope="module")
def client():
    client = ServiceClient.spawn(workers=2)
    yield client
    client.close()


class TestStdioDaemon:
    def test_safe_unsafe_and_cache_hit(self, client):
        unsafe = client.verify(UNSAFE_PROGRAM)
        assert unsafe.verdict == Verdict.UNSAFE
        assert unsafe.stats["cache_hit"] == 0
        safe = client.verify(SAFE_PROGRAM)
        assert safe.verdict == Verdict.SAFE
        repeat = client.verify(UNSAFE_PROGRAM)
        assert repeat.verdict == unsafe.verdict
        assert repeat.stats["cache_hit"] == 1

    def test_ping_stats_shapes(self, client):
        assert client.ping()["protocol"] == 1
        stats = client.stats()
        assert stats["workers"] == 2
        assert stats["jobs_total"] >= 1

    def test_witness_survives_the_wire(self, client):
        result = client.verify(UNSAFE_PROGRAM)
        assert result.witness is not None
        assert result.witness.steps

    def test_service_error_on_garbage(self, client):
        with pytest.raises(ServiceError, match="ParseError"):
            client.verify("int x = ;")

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=[os.path.basename(p) for p in EXAMPLES]
    )
    def test_verdict_equivalence_with_direct_api(self, client, path):
        """Service mode and the in-process pipeline agree on every
        example program (same default config both sides)."""
        with open(path) as f:
            source = f.read()
        direct = verify_one(source, VerifierConfig())
        served = client.verify(source)
        assert served.verdict == direct.verdict
        assert direct.verdict in (Verdict.SAFE, Verdict.UNSAFE)
