"""Unit and property tests for the CDCL SAT core."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import SolveResult, Solver
from repro.sat.solver import luby


def brute_force_sat(nvars, clauses):
    """Reference satisfiability check by exhaustive enumeration."""
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for clause in clauses:
            if not any((bits[abs(l) - 1] if l > 0 else not bits[abs(l) - 1]) for l in clause):
                ok = False
                break
        if ok:
            return True
    return False


def solve_clauses(nvars, clauses, **kw):
    s = Solver()
    for _ in range(nvars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s, s.solve(**kw)


class TestBasics:
    def test_empty_formula_is_sat(self):
        s = Solver()
        assert s.solve() == SolveResult.SAT

    def test_single_unit(self):
        s = Solver()
        v = s.new_var()
        s.add_clause([v])
        assert s.solve() == SolveResult.SAT
        assert s.model_value(v) is True

    def test_unit_conflict(self):
        s = Solver()
        v = s.new_var()
        s.add_clause([v])
        assert s.add_clause([-v]) is False
        assert s.solve() == SolveResult.UNSAT

    def test_empty_clause_is_unsat(self):
        s = Solver()
        s.new_var()
        assert s.add_clause([]) is False
        assert s.solve() == SolveResult.UNSAT

    def test_tautology_ignored(self):
        s = Solver()
        v = s.new_var()
        assert s.add_clause([v, -v]) is True
        assert s.solve() == SolveResult.SAT

    def test_duplicate_literals_collapse(self):
        s = Solver()
        v = s.new_var()
        s.add_clause([v, v, v])
        assert s.solve() == SolveResult.SAT
        assert s.model_value(v) is True

    def test_simple_implication_chain(self):
        s = Solver()
        a, b, c = (s.new_var() for _ in range(3))
        s.add_clause([a])
        s.add_clause([-a, b])
        s.add_clause([-b, c])
        assert s.solve() == SolveResult.SAT
        assert s.model_value(c) is True

    def test_model_lit(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([-a])
        assert s.solve() == SolveResult.SAT
        assert s.model_lit(-a) is True
        assert s.model_lit(a) is False

    def test_unsat_xor_chain(self):
        # x1 xor x2, x2 xor x3, x1 xor x3 with odd parity forced -> UNSAT.
        s = Solver()
        x1, x2, x3 = (s.new_var() for _ in range(3))
        for a, b in [(x1, x2), (x2, x3)]:
            s.add_clause([a, b])
            s.add_clause([-a, -b])
        # Chain implies x1 == x3; force x1 != x3 -> UNSAT.
        s.add_clause([x1, x3])
        s.add_clause([-x1, -x3])
        assert s.solve() == SolveResult.UNSAT

    def test_pigeonhole_3_into_2(self):
        # PHP(3,2): classic small UNSAT instance exercising learning.
        s = Solver()
        p = {(i, j): s.new_var() for i in range(3) for j in range(2)}
        for i in range(3):
            s.add_clause([p[(i, 0)], p[(i, 1)]])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == SolveResult.UNSAT

    def test_pigeonhole_5_into_4(self):
        s = Solver()
        n, m = 5, 4
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == SolveResult.UNSAT

    def test_conflict_budget_returns_unknown(self):
        # PHP(6,5) cannot be refuted within 1 conflict.
        s = Solver()
        n, m = 6, 5
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve(max_conflicts=1) == SolveResult.UNKNOWN

    def test_stats_counters_move(self):
        s, res = solve_clauses(4, [[1, 2], [-1, 3], [-3, -2, 4], [-4, 1]])
        assert res == SolveResult.SAT
        assert s.stats.propagations > 0


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


def clause_strategy(nvars):
    lit = st.integers(min_value=1, max_value=nvars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    return st.lists(lit, min_size=1, max_size=4)


@settings(max_examples=150, deadline=None)
@given(
    nvars=st.integers(min_value=1, max_value=8),
    data=st.data(),
)
def test_random_cnf_matches_brute_force(nvars, data):
    clauses = data.draw(st.lists(clause_strategy(nvars), min_size=0, max_size=25))
    s, res = solve_clauses(nvars, clauses)
    expected = brute_force_sat(nvars, clauses)
    assert res == (SolveResult.SAT if expected else SolveResult.UNSAT)
    if res == SolveResult.SAT:
        # The returned model must satisfy every clause.
        for clause in clauses:
            assert any(s.model_lit(l) for l in clause)


@settings(max_examples=60, deadline=None)
@given(
    nvars=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_random_3cnf_models_are_valid(nvars, data):
    clauses = data.draw(st.lists(clause_strategy(nvars), min_size=0, max_size=50))
    s, res = solve_clauses(nvars, clauses)
    if res == SolveResult.SAT:
        for clause in clauses:
            assert any(s.model_lit(l) for l in clause)


@pytest.mark.parametrize("seed", range(5))
def test_larger_random_instances_complete(seed):
    import random

    rng = random.Random(seed)
    nvars = 40
    clauses = [
        [rng.choice([1, -1]) * rng.randint(1, nvars) for _ in range(3)]
        for _ in range(160)
    ]
    _, res = solve_clauses(nvars, clauses)
    assert res in (SolveResult.SAT, SolveResult.UNSAT)
