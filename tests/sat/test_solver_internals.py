"""Stress tests exercising the solver's restart / DB-reduction machinery
and the theory final_check hook."""

import random

import pytest

from repro.sat import SolveResult, Solver, Theory, TheoryResult


def random_hard_instance(seed, nvars=60, ratio=4.3):
    rng = random.Random(seed)
    clauses = []
    for _ in range(int(nvars * ratio)):
        clause = []
        while len(clause) < 3:
            v = rng.randint(1, nvars)
            if v not in map(abs, clause):
                clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    return clauses


class TestSearchMachinery:
    @pytest.mark.parametrize("seed", range(6))
    def test_near_threshold_instances_complete(self, seed):
        s = Solver()
        nvars = 60
        for _ in range(nvars):
            s.new_var()
        for c in random_hard_instance(seed, nvars):
            s.add_clause(c)
        result = s.solve()
        assert result in (SolveResult.SAT, SolveResult.UNSAT)
        if result == SolveResult.SAT:
            for c in random_hard_instance(seed, nvars):
                assert any(s.model_lit(l) for l in c)

    def test_restarts_occur_on_hard_instances(self):
        # PHP(7,6): needs well over one restart period of conflicts.
        s = Solver()
        n, m = 7, 6
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == SolveResult.UNSAT
        assert s.stats.restarts >= 1
        assert s.stats.learned > 100

    def test_learned_clause_growth_bounded_by_reduction(self):
        # Run a conflict-heavy instance and check the DB was reduced
        # (learned count >> live clauses kept).
        s = Solver()
        n, m = 8, 7
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve(max_conflicts=30000) in (
            SolveResult.UNSAT, SolveResult.UNKNOWN,
        )
        assert s.stats.conflicts > 0


class _FinalCheckTheory(Theory):
    """A theory that only objects at the full assignment: it rejects any
    model assigning its watched variable true (the conflict clause [-var]
    is falsified exactly then)."""

    def __init__(self):
        self.var = None
        self.solver = None
        self.checks = 0

    def relevant(self, var):
        return False  # only acts at final check

    def final_check(self):
        self.checks += 1
        result = TheoryResult()
        if self.solver.value(self.var) is True:
            result.add_conflict([-self.var])
        return result


class TestFinalCheck:
    def test_final_check_rejection_flips_model(self):
        theory = _FinalCheckTheory()
        s = Solver(theory)
        theory.solver = s
        a = s.new_var()
        b = s.new_var()
        theory.var = a
        s.add_clause([a, b])
        # Force the first candidate model to assign a true.
        s.add_clause([a, -b])
        result = s.solve()
        # a true is theory-rejected; a false requires b true via [a, b],
        # but [a, -b] then fails -> UNSAT overall.
        assert result == SolveResult.UNSAT
        assert theory.checks >= 1

    def test_final_check_passes_clean_model(self):
        theory = _FinalCheckTheory()
        s = Solver(theory)
        theory.solver = s
        a = s.new_var()
        b = s.new_var()
        theory.var = a
        s.add_clause([a, b])
        result = s.solve()
        assert result == SolveResult.SAT
        assert theory.checks >= 1
        assert s.model_value(a) is False  # the accepted model avoids a

    def test_final_check_conflict_at_level_zero_is_unsat(self):
        theory = _FinalCheckTheory()
        s = Solver(theory)
        theory.solver = s
        v = s.new_var()
        theory.var = v
        s.add_clause([v])  # v fixed true at level 0: rejection is terminal
        assert s.solve() == SolveResult.UNSAT
