"""Stress tests exercising the solver's restart / DB-reduction machinery
and the theory final_check hook."""

import random

import pytest

from repro.sat import SolveResult, Solver, Theory, TheoryResult
from repro.sat.solver import luby


def random_hard_instance(seed, nvars=60, ratio=4.3):
    rng = random.Random(seed)
    clauses = []
    for _ in range(int(nvars * ratio)):
        clause = []
        while len(clause) < 3:
            v = rng.randint(1, nvars)
            if v not in map(abs, clause):
                clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    return clauses


class TestSearchMachinery:
    @pytest.mark.parametrize("seed", range(6))
    def test_near_threshold_instances_complete(self, seed):
        s = Solver()
        nvars = 60
        for _ in range(nvars):
            s.new_var()
        for c in random_hard_instance(seed, nvars):
            s.add_clause(c)
        result = s.solve()
        assert result in (SolveResult.SAT, SolveResult.UNSAT)
        if result == SolveResult.SAT:
            for c in random_hard_instance(seed, nvars):
                assert any(s.model_lit(l) for l in c)

    def test_restarts_occur_on_hard_instances(self):
        # PHP(7,6): needs well over one restart period of conflicts.
        s = Solver()
        n, m = 7, 6
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve() == SolveResult.UNSAT
        assert s.stats.restarts >= 1
        assert s.stats.learned > 100

    def test_learned_clause_growth_bounded_by_reduction(self):
        # Run a conflict-heavy instance and check the DB was reduced
        # (learned count >> live clauses kept).
        s = Solver()
        n, m = 8, 7
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve(max_conflicts=30000) in (
            SolveResult.UNSAT, SolveResult.UNKNOWN,
        )
        assert s.stats.conflicts > 0


class TestLubyProperties:
    def test_block_boundaries_are_powers_of_two(self):
        # luby(2^k - 1) == 2^(k-1): the last element of each block is the
        # next power of two.
        for k in range(1, 12):
            assert luby(2 ** k - 1) == 2 ** (k - 1)

    def test_sequence_is_self_similar(self):
        # Dropping the trailing power of two of a block replays the
        # sequence prefix: luby(2^k - 1 + i) == luby(i).
        for k in range(2, 9):
            base = 2 ** k - 1
            for i in range(1, base):
                assert luby(base + i) == luby(i)

    def test_values_are_powers_of_two(self):
        for i in range(1, 300):
            v = luby(i)
            assert v & (v - 1) == 0 and v >= 1


def _php_clauses(s, n, m):
    p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
    for i in range(n):
        s.add_clause([p[(i, j)] for j in range(m)])
    for j in range(m):
        for i1 in range(n):
            for i2 in range(i1 + 1, n):
                s.add_clause([-p[(i1, j)], -p[(i2, j)]])


class TestReduceDB:
    def _learned_solver(self):
        """A solver stopped mid-search with a sizeable learned DB."""
        s = Solver()
        _php_clauses(s, 8, 7)
        assert s.solve(max_conflicts=400) == SolveResult.UNKNOWN
        assert len(s._learned) > 10
        return s

    def test_reduction_detaches_removed_clauses(self):
        s = self._learned_solver()
        s._backjump(0)
        before = list(s._learned)
        s._reduce_db()
        removed = [c for c in before if c not in s._learned]
        assert removed  # something was actually dropped
        for clause in removed:
            for watch_list in s._watches:
                assert clause not in watch_list

    def test_reduction_keeps_kept_clauses_watched(self):
        s = self._learned_solver()
        s._backjump(0)
        s._reduce_db()
        for clause in s._learned:
            # Both watched literals still index the clause exactly once.
            for lit in clause.lits[:2]:
                assert s._watches[s._widx(lit)].count(clause) == 1

    def test_reduction_keeps_reason_and_binary_clauses(self):
        s = self._learned_solver()
        learned_ids = {id(c) for c in s._learned}
        locked = {
            id(s._reason[v])
            for v in range(1, s.nvars + 1)
            if s._reason[v] is not None
        } & learned_ids
        binary = {id(c) for c in s._learned if len(c.lits) == 2}
        s._reduce_db()
        kept = {id(c) for c in s._learned}
        assert locked <= kept
        assert binary <= kept

    def test_solving_continues_correctly_after_reduction(self):
        s = self._learned_solver()
        s._backjump(0)
        s._reduce_db()
        assert s.solve() == SolveResult.UNSAT


class _FinalCheckTheory(Theory):
    """A theory that only objects at the full assignment: it rejects any
    model assigning its watched variable true (the conflict clause [-var]
    is falsified exactly then)."""

    def __init__(self):
        self.var = None
        self.solver = None
        self.checks = 0

    def relevant(self, var):
        return False  # only acts at final check

    def final_check(self):
        self.checks += 1
        result = TheoryResult()
        if self.solver.value(self.var) is True:
            result.add_conflict([-self.var])
        return result


class TestFinalCheck:
    def test_final_check_rejection_flips_model(self):
        theory = _FinalCheckTheory()
        s = Solver(theory)
        theory.solver = s
        a = s.new_var()
        b = s.new_var()
        theory.var = a
        s.add_clause([a, b])
        # Force the first candidate model to assign a true.
        s.add_clause([a, -b])
        result = s.solve()
        # a true is theory-rejected; a false requires b true via [a, b],
        # but [a, -b] then fails -> UNSAT overall.
        assert result == SolveResult.UNSAT
        assert theory.checks >= 1

    def test_final_check_passes_clean_model(self):
        theory = _FinalCheckTheory()
        s = Solver(theory)
        theory.solver = s
        a = s.new_var()
        b = s.new_var()
        theory.var = a
        s.add_clause([a, b])
        result = s.solve()
        assert result == SolveResult.SAT
        assert theory.checks >= 1
        assert s.model_value(a) is False  # the accepted model avoids a

    def test_final_check_conflict_at_level_zero_is_unsat(self):
        theory = _FinalCheckTheory()
        s = Solver(theory)
        theory.solver = s
        v = s.new_var()
        theory.var = v
        s.add_clause([v])  # v fixed true at level 0: rejection is terminal
        assert s.solve() == SolveResult.UNSAT
