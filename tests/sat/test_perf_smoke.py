"""Deterministic perf smoke for the flat kernel (CI: ``satcore-smoke``).

Timing assertions are flaky on shared runners, so every check here is
**count-based**: the kernel's exact hot-loop counters (propagations,
watcher visits, heap ops, blocker skips -- all deterministic for a fixed
instance) are compared against structural expectations and against a
recorded object-soup baseline.

Recorded baseline (measured once against
``repro.sat.reference.ReferenceSolver`` on the fixed instance below,
2026-08; see ``docs/SATCORE.md``): the lazy ``(-activity, var)`` tuple
heap performed 3580 heappush+heappop operations over 43 conflicts --
**83.3 heap ops per conflict** -- because every bump pushes a fresh tuple
and pops must discard stale ones.  The indexed heap measured 21.9 ops per
conflict on the same instance (bump = in-place sift, no dead entries).
The threshold asserts the structural win at half the baseline, leaving
room for heuristic drift without letting a stale-entry regression slip
through.
"""

import random

from repro.sat import SolveResult, Solver

#: Recorded ReferenceSolver heap traffic per conflict on FIXED_SEED/NVARS
#: (see module docstring for how it was measured).
REF_HEAP_OPS_PER_CONFLICT = 83.3

FIXED_SEED = 2024
NVARS = 120


def fixed_3sat():
    rng = random.Random(FIXED_SEED)
    clauses = []
    for _ in range(int(NVARS * 4.26)):
        clause = []
        while len(clause) < 3:
            v = rng.randint(1, NVARS)
            if v not in map(abs, clause):
                clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    return clauses


def solved_fixed_instance():
    s = Solver()
    for _ in range(NVARS):
        s.new_var()
    for c in fixed_3sat():
        s.add_clause(c)
    assert s.solve() == SolveResult.SAT
    return s


class TestStructuralCounts:
    def test_binary_chain_propagation_is_linear(self):
        """An implication chain of n vars propagates with exactly one
        watcher visit per edge: the binary-watcher fast path never touches
        the arena and never revisits a pair."""
        n = 2000
        s = Solver()
        for _ in range(n):
            s.new_var()
        for i in range(1, n):
            s.add_clause([-i, i + 1])
        assert s.solve(assumptions=[1]) == SolveResult.SAT
        assert s.stats.propagations == n  # assumption + n-1 implied
        assert s.stats.watcher_visits == n - 1
        assert s.stats.max_trail == n
        assert s.kernel.n_blocked == 0  # binary pairs have no blocker

    def test_chain_core_is_minimal(self):
        n = 200
        s = Solver()
        for _ in range(n):
            s.new_var()
        for i in range(1, n):
            s.add_clause([-i, i + 1])
        assert s.solve(assumptions=[1, -n]) == SolveResult.UNSAT
        assert sorted(s.unsat_core) == [-n, 1]


class TestRecordedBaselineRatios:
    def test_indexed_heap_beats_lazy_heap_traffic(self):
        s = solved_fixed_instance()
        st = s.stats
        assert st.conflicts > 0
        per_conflict = st.heap_ops / st.conflicts
        assert per_conflict < REF_HEAP_OPS_PER_CONFLICT / 2, (
            f"indexed heap regressed: {per_conflict:.1f} ops/conflict vs "
            f"recorded lazy-heap baseline {REF_HEAP_OPS_PER_CONFLICT}"
        )

    def test_blocker_literals_skip_clause_touches(self):
        """On a satisfiable 3-SAT instance a healthy share of watcher
        visits must resolve on the cached blocker literal alone (no arena
        access); measured 0.30 on this instance at rewrite time."""
        s = solved_fixed_instance()
        k = s.kernel
        assert k.n_visits > 0
        assert k.n_blocked / k.n_visits > 0.15

    def test_counters_flow_into_stats_dict(self):
        s = solved_fixed_instance()
        d = s.stats.as_dict()
        assert d["watcher_visits"] == s.kernel.n_visits > 0
        assert d["heap_ops"] == s.kernel.heap.n_ops > 0
        assert d["propagations"] == s.kernel.n_props > 0
