"""Tests for the incremental solving API: assumptions, unsat cores,
clause/variable addition between solves, state retention, and the
clause-sharing channel."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import SolveResult, Solver
from repro.sat.sharing import SerialBroker, ShareChannel

from tests.sat.test_solver import brute_force_sat, clause_strategy, solve_clauses


def brute_force_sat_under(nvars, clauses, assumptions):
    """Brute-force satisfiability restricted to assignments satisfying
    every assumption literal."""
    units = [[lit] for lit in assumptions]
    return brute_force_sat(nvars, clauses + units)


class TestAssumptions:
    def test_assumption_forces_polarity(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a]) == SolveResult.SAT
        assert s.model_value(a) is False
        assert s.model_value(b) is True
        # The same solver answers the opposite query.
        assert s.solve(assumptions=[a]) == SolveResult.SAT
        assert s.model_value(a) is True

    def test_conflicting_assumptions_unsat_with_core(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([-a, b])
        assert s.solve(assumptions=[a, -b]) == SolveResult.UNSAT
        assert set(s.unsat_core) <= {a, -b}
        assert s.unsat_core  # non-empty: caused by the assumptions
        # Not permanent: dropping the assumptions restores SAT.
        assert s.solve() == SolveResult.SAT

    def test_core_is_itself_unsat(self):
        s = Solver()
        a, b, c = (s.new_var() for _ in range(3))
        s.add_clause([-a, -b])
        assert s.solve(assumptions=[c, a, b]) == SolveResult.UNSAT
        core = list(s.unsat_core)
        assert core
        assert set(core) <= {c, a, b}
        # Re-solving under the reported core alone must still be UNSAT.
        assert s.solve(assumptions=core) == SolveResult.UNSAT

    def test_invalid_assumption_literal_raises(self):
        s = Solver()
        s.new_var()
        with pytest.raises(ValueError):
            s.solve(assumptions=[0])
        with pytest.raises(ValueError):
            s.solve(assumptions=[99])

    def test_root_unsat_has_empty_core(self):
        s = Solver()
        v = s.new_var()
        s.add_clause([v])
        s.add_clause([-v])
        assert s.solve(assumptions=[v]) == SolveResult.UNSAT
        # The formula itself is contradictory: no assumption is to blame.
        assert s.unsat_core == []
        assert s.solve() == SolveResult.UNSAT

    def test_assumption_already_true_at_level_zero(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([-a, b])
        assert s.solve(assumptions=[a, b]) == SolveResult.SAT
        assert s.solve(assumptions=[-b]) == SolveResult.UNSAT
        assert s.unsat_core == [-b]


class TestIncrementalGrowth:
    def test_add_clause_between_solves_model_enumeration(self):
        # Classic incremental use: block each model until UNSAT.
        s = Solver()
        vars_ = [s.new_var() for _ in range(3)]
        s.add_clause(vars_)
        models = 0
        while s.solve() == SolveResult.SAT:
            models += 1
            assert models <= 7
            s.add_clause([-v if s.model_value(v) else v for v in vars_])
        assert models == 7  # all assignments except all-false
        assert s.stats.incremental_calls == 8

    def test_new_var_between_solves(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve() == SolveResult.SAT
        b = s.new_var()
        s.add_clause([-a, b])
        assert s.solve() == SolveResult.SAT
        assert s.model_value(b) is True
        assert s.solve(assumptions=[-b]) == SolveResult.UNSAT

    def test_learned_clauses_retained_across_calls(self):
        # A conflict-rich instance: re-solving under assumptions must
        # carry the learned clauses of earlier calls.
        s = Solver()
        n, m = 6, 5
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        sel = s.new_var()  # selector assumption, irrelevant to the CNF
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        assert s.solve(assumptions=[sel]) == SolveResult.UNSAT
        assert s.unsat_core == []  # PHP is UNSAT without the selector
        learned_first = s.stats.learned
        assert learned_first > 0
        assert s.solve(assumptions=[-sel]) == SolveResult.UNSAT
        assert s.stats.clauses_retained > 0
        # The second call starts from the first call's clause database, so
        # it needs (far) fewer new conflicts than the first.
        assert s.stats.incremental_calls == 2


@settings(max_examples=120, deadline=None)
@given(
    nvars=st.integers(min_value=1, max_value=7),
    data=st.data(),
)
def test_random_cnf_under_assumptions_matches_brute_force(nvars, data):
    clauses = data.draw(st.lists(clause_strategy(nvars), min_size=0, max_size=20))
    lit = st.integers(min_value=1, max_value=nvars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    assumptions = data.draw(st.lists(lit, min_size=0, max_size=4, unique_by=abs))
    s, _ = solve_clauses(nvars, clauses, assumptions=assumptions)
    res = s.solve(assumptions=assumptions)
    expected = brute_force_sat_under(nvars, clauses, assumptions)
    assert res == (SolveResult.SAT if expected else SolveResult.UNSAT)
    if res == SolveResult.SAT:
        for a in assumptions:
            assert s.model_lit(a)
        for clause in clauses:
            assert any(s.model_lit(l) for l in clause)
    else:
        # The core is a subset of the assumptions, and sufficient: the
        # formula plus the core alone must still be unsatisfiable.
        assert set(s.unsat_core) <= set(assumptions)
        assert not brute_force_sat_under(nvars, clauses, s.unsat_core)


@pytest.mark.parametrize("seed", range(4))
def test_random_incremental_sequence_matches_fresh_solver(seed):
    """A sequence of (add clauses, solve under assumptions) steps on one
    solver must agree step-by-step with a fresh solver per query."""
    rng = random.Random(seed)
    nvars = 7
    inc = Solver()
    for _ in range(nvars):
        inc.new_var()
    clauses = []
    for _step in range(8):
        for _ in range(rng.randint(0, 4)):
            clause = [
                rng.choice([1, -1]) * rng.randint(1, nvars)
                for _ in range(rng.randint(1, 3))
            ]
            clauses.append(clause)
            inc.add_clause(clause)
        assumptions = [
            rng.choice([1, -1]) * v
            for v in rng.sample(range(1, nvars + 1), rng.randint(0, 2))
        ]
        got = inc.solve(assumptions=assumptions)
        expected = brute_force_sat_under(nvars, clauses, assumptions)
        assert got == (SolveResult.SAT if expected else SolveResult.UNSAT)


class TestShareChannel:
    def test_offer_caps_and_dedups(self):
        sent = []
        ch = ShareChannel(sent.extend, list, max_len=3)
        assert ch.offer([1, 2]) is True
        assert ch.offer([2, 1]) is False  # same literal set
        assert ch.offer([1, 2, 3, 4]) is False  # over the length cap
        assert ch.offer([]) is False
        ch.flush()
        assert sent == [(1, 2)]
        assert ch.exported == 1

    def test_exchange_imports_and_dedups(self):
        inbox = [[(1, 2)], [(2, 1), (3,)]]
        ch = ShareChannel(lambda _: None, lambda: inbox.pop(0))
        assert ch.exchange() == [(1, 2)]
        # (2, 1) is the same literal set as the already-seen (1, 2).
        assert ch.exchange() == [(3,)]
        assert ch.imported == 2

    def test_import_cap(self):
        ch = ShareChannel(
            lambda _: None,
            lambda: [(i, i + 1) for i in range(1, 50)],
            max_import=5,
        )
        assert len(ch.exchange()) == 5

    def test_serial_broker_delivers_to_others_only(self):
        broker = SerialBroker()
        a, b, c = broker.join(), broker.join(), broker.join()
        a.offer([1, 2])
        a.flush()
        assert b.exchange() == [(1, 2)]
        assert c.exchange() == [(1, 2)]
        assert a.exchange() == []  # own clause never comes back

    def test_sharing_preserves_verdict_on_php(self):
        def php_clauses(s):
            n, m = 5, 4
            p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
            for i in range(n):
                s.add_clause([p[(i, j)] for j in range(m)])
            for j in range(m):
                for i1 in range(n):
                    for i2 in range(i1 + 1, n):
                        s.add_clause([-p[(i1, j)], -p[(i2, j)]])

        broker = SerialBroker()
        s1 = Solver()
        s1.share = broker.join()
        s2 = Solver()
        s2.share = broker.join()
        php_clauses(s1)
        php_clauses(s2)
        assert s1.solve() == SolveResult.UNSAT
        assert s1.stats.shared_exported > 0
        # s2 imports s1's learned clauses and must reach the same verdict.
        assert s2.solve() == SolveResult.UNSAT
        assert s2.stats.shared_imported > 0
