"""Differential oracle: the flat-arena kernel solver vs the frozen
pre-rewrite reference core (``repro.sat.reference.ReferenceSolver``).

Three layers of evidence that the kernel rewrite changed no observable
semantics:

* random near-threshold 3-SAT: verdict equality, and each solver's model
  checked against the CNF (models themselves may differ -- both solvers
  are deterministic but branch differently);
* random incremental runs with assumptions: verdict equality per call,
  and *cross-validated* unsat cores -- each solver's reported core must
  be a genuinely sufficient failing subset when replayed on the OTHER
  implementation;
* random concurrent programs through the full Zord pipeline (encoder +
  T_ord theory) with the reference core monkeypatched in: verdict
  equality on real DPLL(T_ord) instances, fast-path/unit-edge/FR
  propagation included.
"""

import random

import pytest

from repro.sat import SolveResult, Solver
from repro.sat.reference import ReferenceSolver
from repro.sat.solver import luby

#: First 64 Luby values (i = 1..64), pinned so the memoized rewrite can
#: never drift from the derivation it replaced.
LUBY_64 = [
    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1,
    1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 16, 1,
    1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 1, 1,
    2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, 16, 32, 1,
]


class TestLubyMemo:
    def test_first_64_values_pinned(self):
        assert [luby(i) for i in range(1, 65)] == LUBY_64

    def test_memo_is_consistent_across_orders(self):
        # Querying out of order must not corrupt the cache.
        assert luby(64) == 1
        assert luby(15) == 8
        assert [luby(i) for i in range(1, 65)] == LUBY_64


def random_cnf(seed, nvars, nclauses, k=3):
    rng = random.Random(seed)
    clauses = []
    for _ in range(nclauses):
        clause = []
        while len(clause) < k:
            v = rng.randint(1, nvars)
            if v not in map(abs, clause):
                clause.append(v if rng.random() < 0.5 else -v)
        clauses.append(clause)
    return clauses


def build(cls, nvars, clauses, theory=None):
    s = cls(theory) if theory is not None else cls()
    for _ in range(nvars):
        s.new_var()
    for c in clauses:
        s.add_clause(c)
    return s


class TestRandomCnfDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_verdict_and_model_equivalence(self, seed):
        nvars = 50
        clauses = random_cnf(seed, nvars, int(nvars * 4.26))
        flat = build(Solver, nvars, clauses)
        ref = build(ReferenceSolver, nvars, clauses)
        rf = flat.solve()
        rr = ref.solve()
        assert rf == rr, f"seed {seed}: flat={rf} reference={rr}"
        if rf == SolveResult.SAT:
            for c in clauses:
                assert any(flat.model_lit(l) for l in c)
                assert any(ref.model_lit(l) for l in c)

    @pytest.mark.parametrize("seed", range(41, 49))
    def test_incremental_assumptions_and_cores(self, seed):
        rng = random.Random(seed * 7919)
        nvars = 40
        clauses = random_cnf(seed, nvars, int(nvars * 4.0))
        flat = build(Solver, nvars, clauses)
        ref = build(ReferenceSolver, nvars, clauses)
        for _ in range(4):
            n_assume = rng.randint(2, 8)
            assumptions = []
            for v in rng.sample(range(1, nvars + 1), n_assume):
                assumptions.append(v if rng.random() < 0.5 else -v)
            rf = flat.solve(assumptions=assumptions)
            rr = ref.solve(assumptions=assumptions)
            assert rf == rr, f"seed {seed} assume {assumptions}: {rf} != {rr}"
            if rf == SolveResult.UNSAT:
                # Cross-validate cores: each implementation's core must be
                # a sufficient failing subset on the other implementation
                # (fresh instance: no learned-clause help).
                for core, other_cls in (
                    (flat.unsat_core, ReferenceSolver),
                    (ref.unsat_core, Solver),
                ):
                    assert core
                    assert set(core) <= set(assumptions)
                    checker = build(other_cls, nvars, clauses)
                    assert checker.solve(assumptions=core) == SolveResult.UNSAT


class TestTheoryPipelineDifferential:
    """Random concurrent programs through the full encoder + T_ord theory,
    with the CDCL core swapped via monkeypatching."""

    @pytest.mark.parametrize("seed", range(12))
    def test_zord_verdict_equivalence(self, seed, monkeypatch):
        import repro.encoding.encoder as encoder_mod
        from repro.api import verify
        from repro.oracle.generator import generate_source
        from repro.verify import VerifierConfig

        source = generate_source(seed)
        cfg = VerifierConfig()
        flat_result = verify(source, cfg)
        monkeypatch.setattr(encoder_mod, "Solver", ReferenceSolver)
        ref_result = verify(source, cfg)
        assert flat_result.verdict == ref_result.verdict, (
            f"seed {seed}: flat={flat_result.verdict} "
            f"reference={ref_result.verdict}"
        )
