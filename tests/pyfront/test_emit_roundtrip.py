"""Python emission and the mini -> Python -> mini cross-check."""

import pytest

from repro.lang.parser import parse as parse_program
from repro.oracle.generator import GenConfig, generate_program
from repro.oracle.pycheck import PY_PROFILE, crosscheck
from repro.pyfront import translate_source
from repro.pyfront.emit import EmitError, emit_python


def roundtrip(mini_source):
    program = parse_program(mini_source)
    python = emit_python(program)
    return python, translate_source(python, filename="<roundtrip>")


UNSAFE_MINI = """\
int counter;

thread t1 {
    int tmp = counter;
    counter = tmp + 1;
}

thread t2 {
    int tmp = counter;
    counter = tmp + 1;
}

main {
    start t1;
    start t2;
    join t1;
    join t2;
    assert(counter == 2);
}
"""


class TestEmit:
    def test_emitted_python_is_valid_python(self):
        program = parse_program(UNSAFE_MINI)
        python = emit_python(program)
        compile(python, "<emitted>", "exec")  # must parse
        assert "import threading" in python
        assert 'if __name__ == "__main__":' in python

    def test_roundtrip_preserves_structure(self):
        _, translation = roundtrip(UNSAFE_MINI)
        prog = translation.program
        assert [g.name for g in prog.globals] == ["counter"]
        assert sorted(t.name for t in prog.threads) == ["t1", "t2"]

    def test_lock_emission(self):
        src = """\
int x;
lock m;

thread t1 {
    lock(m);
    x = x + 1;
    unlock(m);
}

main {
    start t1;
    join t1;
    assert(x == 1);
}
"""
        python, translation = roundtrip(src)
        assert "threading.Lock()" in python
        assert "m" in translation.locks

    def test_randint_idiom_survives_roundtrip(self):
        src = """\
int x;

thread t1 {
    int n = nondet();
    assume(n >= 2 && n <= 5);
    x = n;
}

main {
    start t1;
    join t1;
    assert(x >= 2);
}
"""
        python, translation = roundtrip(src)
        assert "random.randint(2, 5)" in python
        # The back-translation restores the bounded-nondet idiom.
        from repro.lang.unparse import unparse

        out = unparse(translation.program)
        assert "nondet()" in out and "assume(" in out

    def test_bare_nondet_rejected(self):
        src = """\
int x;

thread t1 {
    x = nondet();
}

main {
    start t1;
    join t1;
    assert(x == x);
}
"""
        with pytest.raises(EmitError):
            emit_python(parse_program(src))

    def test_atomic_rejected(self):
        src = """\
int x;

thread t1 {
    atomic {
        x = x + 1;
    }
}

main {
    start t1;
    join t1;
    assert(x == 1);
}
"""
        with pytest.raises(EmitError):
            emit_python(parse_program(src))

    def test_fence_rejected(self):
        src = """\
int x;

thread t1 {
    fence;
    x = 1;
}

main {
    start t1;
    join t1;
    assert(x == 1);
}
"""
        with pytest.raises(EmitError):
            emit_python(parse_program(src))


class TestGeneratorPythonProfile:
    def test_profile_emits_cleanly(self):
        for seed in range(30):
            program = generate_program(seed, PY_PROFILE)
            python = emit_python(program)  # must not raise
            compile(python, f"<seed {seed}>", "exec")
            translate_source(python, filename=f"<seed {seed}>")  # must not raise

    def test_default_config_unchanged_by_new_flags(self):
        # The new GenConfig fields must not perturb existing seeds.
        from repro.lang.unparse import unparse

        a = unparse(generate_program(1234, GenConfig()))
        b = unparse(generate_program(1234, GenConfig(python_profile=False,
                                                     allow_assumes=True)))
        assert a == b


class TestCrossCheck:
    def test_small_sweep_is_clean(self):
        from repro.verify import VerifierConfig

        report = crosscheck(
            range(25), config=VerifierConfig(unwind=4, time_limit_s=20.0)
        )
        assert report.seeds_run == 25
        assert report.ok, report.format()

    def test_report_formatting(self):
        from repro.oracle.pycheck import CrossCheckFinding, CrossCheckReport

        report = CrossCheckReport(seeds_run=3)
        assert report.ok
        report.findings.append(
            CrossCheckFinding(7, "verdict-mismatch",
                              "direct=safe round-trip=unsafe",
                              python_source="import threading\n")
        )
        assert not report.ok
        text = report.format()
        assert "seed 7" in text and "verdict-mismatch" in text
