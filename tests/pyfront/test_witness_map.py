"""Witness mapping: event ids back to Python file:line positions."""

from repro import api
from repro.pyfront import annotate_witness, translate_file
from repro.pyfront.witness import witness_python_lines

from tests.pyfront.corpus import example


def unsafe_result():
    result, translation = api.verify_python(path=example("counter_unsafe.py"))
    assert result.verdict == "unsafe"
    assert result.witness is not None
    return result, translation


def test_annotated_steps_carry_python_lines():
    result, translation = unsafe_result()
    steps = annotate_witness(translation, result.witness)
    assert steps, "witness has no steps"
    lines = [s.line for s in steps if s.line is not None]
    assert lines, "no step mapped back to a Python line"
    n_lines = len(translation.source.splitlines())
    assert all(1 <= ln <= n_lines for ln in lines)


def test_annotated_steps_quote_source(tmp_path):
    result, translation = unsafe_result()
    steps = annotate_witness(translation, result.witness)
    quoted = [s for s in steps if s.source]
    assert quoted
    src_lines = translation.source.splitlines()
    for step in quoted:
        assert step.source == src_lines[step.line - 1].strip()


def test_witness_python_lines_renders():
    result, translation = unsafe_result()
    text = "\n".join(witness_python_lines(translation, result.witness))
    assert "counter_unsafe.py:" in text
    # The racy increment lines must appear in the rendered schedule.
    assert "counter = tmp" in text or "tmp = counter" in text


def test_mapping_survives_service_roundtrip():
    # The eid -> pos map is rebuilt locally from the translation, so it
    # must be valid for a result produced by a *remote* worker too.  The
    # in-process server exercises the same serialize/deserialize path.
    import asyncio

    from repro.service.server import ServiceServer
    from repro.verify.witness import Trace

    translation = translate_file(example("counter_unsafe.py"))
    server = ServiceServer(workers=1, max_queue=4)
    try:
        resp = asyncio.run(
            server.handle_request(
                {
                    "id": 1,
                    "op": "verify",
                    "source": translation.source,
                    "language": "python",
                    "filename": "counter_unsafe.py",
                }
            )
        )
    finally:
        server.close()
    assert resp["ok"], resp
    result = resp["result"]
    assert result["verdict"] == "unsafe"
    trace = Trace.from_dict(result["witness"])
    steps = annotate_witness(translation, trace)
    assert any(s.line is not None for s in steps)
