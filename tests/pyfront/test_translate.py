"""The Python -> mini-language translator: acceptance and rejection."""

import pytest

from repro.lang import ast as mast
from repro.lang.unparse import unparse
from repro.pyfront import SubsetError, translate_source


def tr(src, filename="prog.py"):
    return translate_source(src, filename=filename)


def mini(src):
    return unparse(tr(src).program)


HARNESS = """
if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter >= 0
"""


def worker_program(body, globals_="counter = 0", decls="global counter"):
    lines = ["import threading", "import random", "", globals_, "", "def worker():"]
    lines.append(f"    {decls}")
    lines.extend(f"    {line}" for line in body.splitlines())
    return "\n".join(lines) + "\n" + HARNESS


class TestAcceptedSubset:
    def test_counter_program_structure(self):
        src = worker_program("tmp = counter\ncounter = tmp + 1")
        t = tr(src)
        assert [g.name for g in t.program.globals] == ["counter"]
        assert [th.name for th in t.program.threads] == ["t1"]
        assert t.thread_order[0].target == "worker"
        assert t.program.main is not None

    def test_positions_are_python_positions(self):
        src = worker_program("tmp = counter\ncounter = tmp + 1")
        t = tr(src)
        # The worker body statements carry the Python line numbers of
        # `tmp = counter` (line 8) and `counter = tmp + 1` (line 9).
        body = t.program.threads[0].body
        assigns = [s for s in body if isinstance(s, mast.Assign)]
        assert [s.pos[0] for s in assigns] == [8, 9]

    def test_bool_and_int_literals(self):
        src = """import threading

flag = True
count = -2

def worker():
    global flag
    flag = False

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert count == -2
"""
        t = tr(src)
        inits = {g.name: g.init for g in t.program.globals}
        assert inits == {"flag": 1, "count": -2}

    def test_locks_and_with(self):
        src = """import threading

counter = 0
m = threading.Lock()

def worker():
    global counter
    with m:
        counter = counter + 1

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter == 1
"""
        out = mini(src)
        assert "lock m;" in out
        assert out.index("lock(m);") < out.index("counter = counter + 1;")
        assert out.index("counter = counter + 1;") < out.index("unlock(m);")

    def test_acquire_release_methods(self):
        src = """import threading

counter = 0
m = threading.Lock()

def worker():
    global counter
    m.acquire()
    counter = counter + 1
    m.release()

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter == 1
"""
        out = mini(src)
        assert "lock(m);" in out and "unlock(m);" in out

    def test_rlock_reentry_is_noop(self):
        src = """import threading

counter = 0
m = threading.RLock()

def worker():
    global counter
    with m:
        with m:
            counter = counter + 1

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter == 1
"""
        out = mini(src)
        assert out.count("unlock(m);") == 1
        # count acquire sites without matching the "lock" inside "unlock"
        assert out.replace("unlock(m);", "").count("lock(m);") == 1

    def test_randint_becomes_bounded_nondet(self):
        src = worker_program(
            "n = random.randint(2, 5)\ncounter = n", decls="global counter"
        )
        out = mini(src)
        assert "nondet()" in out
        assert "assume(" in out and ">= 2" in out and "<= 5" in out

    def test_for_range_lowering(self):
        src = worker_program(
            "for i in range(3):\n    counter = counter + 1"
        )
        out = mini(src)
        assert "while (i < 3)" in out
        assert "i = i + 1;" in out

    def test_for_range_two_args(self):
        src = worker_program(
            "for i in range(1, 4):\n    counter = counter + i"
        )
        out = mini(src)
        assert "i = 1;" in out and "while (i < 4)" in out

    def test_augassign(self):
        src = worker_program("counter += 3")
        assert "counter = counter + 3;" in mini(src)

    def test_elif_chain(self):
        src = worker_program(
            "if counter == 0:\n"
            "    counter = 1\n"
            "elif counter == 1:\n"
            "    counter = 2\n"
            "else:\n"
            "    counter = 3"
        )
        out = mini(src)
        assert out.count("if (") == 2 and "else {" in out

    def test_boolean_operators_and_chained_compare(self):
        src = worker_program(
            "if 0 <= counter <= 10 and not counter == 5:\n    counter = 0"
        )
        out = mini(src)
        assert "&&" in out and "!(" in out

    def test_truthiness_becomes_ne_zero(self):
        src = worker_program("if counter:\n    counter = 0")
        assert "if (counter != 0)" in mini(src)

    def test_while_loop(self):
        src = worker_program(
            "while counter < 3:\n    counter = counter + 1"
        )
        assert "while (counter < 3)" in mini(src)

    def test_print_and_pass_become_skip(self):
        src = worker_program('print("hi", counter)\npass')
        assert mini(src).count("skip;") == 2

    def test_helper_function_inlined(self):
        src = """import threading

counter = 0

def bump():
    global counter
    counter = counter + 1

def worker():
    bump()
    bump()

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter == 2
"""
        out = mini(src)
        assert out.count("counter = counter + 1;") == 2

    def test_local_shadows_global_is_renamed(self):
        src = worker_program(
            "counter = 7", decls="pass"  # no global: a *local* counter
        )
        t = tr(src)
        body = t.program.threads[0].body
        assigns = [s for s in body if isinstance(s, mast.Assign)]
        # The write must not hit the shared `counter`.
        assert all(s.name != "counter" for s in assigns)

    def test_main_block_assigns_globals_without_global_stmt(self):
        src = """import threading

counter = 0

def worker():
    global counter
    counter = counter + 1

if __name__ == "__main__":
    counter = 5
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter == 6
"""
        t = tr(src)
        main_assigns = [
            s for s in t.program.main.body if isinstance(s, mast.Assign)
        ]
        assert any(s.name == "counter" for s in main_assigns)

    def test_import_aliases(self):
        src = """import threading as th
import random as rnd

x = 0

def worker():
    global x
    x = rnd.randint(0, 1)

if __name__ == "__main__":
    t = th.Thread(target=worker)
    t.start()
    t.join()
    assert x <= 1
"""
        assert "nondet()" in mini(src)

    def test_shared_lines_cover_condition_reads(self):
        src = worker_program("if counter > 0:\n    pass")
        t = tr(src)
        assert 8 in t.shared_lines  # the `if counter > 0:` line

    def test_keyword_identifiers_are_mangled(self):
        # `lock`, `main`, `thread` are mini-language keywords but fine
        # Python names; the canonical (unparsed) form must re-parse.
        src = """import threading

main = 0
lock = threading.Lock()

def worker():
    global main
    with lock:
        main = main + 1

if __name__ == "__main__":
    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert main == 1
"""
        from repro.lang.parser import parse

        out = mini(src)
        reparsed = parse(out)  # must not raise
        assert sorted(g.name for g in reparsed.globals) == ["lock_", "main_"]
        assert [t.name for t in reparsed.threads] == ["thread_"]

    def test_translation_passes_sema(self):
        from repro.lang.sema import check_program

        src = worker_program("tmp = counter\ncounter = tmp + 1")
        check_program(tr(src).program)  # must not raise


class TestRejections:
    def assert_rejects(self, src, fragment, line=None):
        with pytest.raises(SubsetError) as exc_info:
            tr(src)
        exc = exc_info.value
        assert fragment in str(exc), str(exc)
        assert str(exc).startswith("prog.py:")
        if line is not None:
            assert exc.line == line

    def test_unknown_import(self):
        self.assert_rejects(
            "import os\n" + worker_program("pass"), "unsupported import", 1
        )

    def test_from_import(self):
        self.assert_rejects(
            "from threading import Thread\n" + worker_program("pass"),
            "from ... import", 1,
        )

    def test_missing_main_guard(self):
        with pytest.raises(SubsetError) as exc_info:
            tr("import threading\nx = 0\n")
        assert "__main__" in str(exc_info.value)

    def test_syntax_error_wrapped(self):
        self.assert_rejects("def broken(:\n", "not valid Python", 1)

    def test_class_rejected(self):
        self.assert_rejects(
            "class C:\n    pass\n" + worker_program("pass"),
            "unsupported module-level statement", 1,
        )

    def test_function_with_args(self):
        self.assert_rejects(
            worker_program("pass").replace("def worker():", "def worker(n):"),
            "zero-argument",
        )

    def test_float_literal(self):
        self.assert_rejects(worker_program("counter = 1.5"), "unsupported literal")

    def test_string_global(self):
        self.assert_rejects(
            "import threading\nname = 'x'\n" + worker_program("pass"),
            "int/bool literal", 2,
        )

    def test_division(self):
        self.assert_rejects(worker_program("counter = counter / 2"), "operator")

    def test_write_to_shared_without_global(self):
        # `counter = counter + 1` without `global counter` is a Python
        # local -- but reading it before assignment would be an
        # UnboundLocalError, which the model cannot express faithfully,
        # so the translator maps it to a fresh local initialized to 0.
        # Writing is accepted (see test_local_shadows_global_is_renamed);
        # a *lock* rebind is not.
        self.assert_rejects(
            worker_program("m = 5", globals_="counter = 0\nm = threading.Lock()",
                           decls="global m"),
            "does not name a shared int global",
        )

    def test_early_return(self):
        self.assert_rejects(
            worker_program("if counter == 0:\n    return\ncounter = 1"),
            "return",
        )

    def test_return_value(self):
        self.assert_rejects(worker_program("return 3"), "return")

    def test_thread_outside_main(self):
        self.assert_rejects(
            worker_program("t = threading.Thread(target=worker)"),
            "__main__ block",
        )

    def test_thread_positional_args(self):
        self.assert_rejects(
            worker_program("pass").replace(
                "threading.Thread(target=worker)", "threading.Thread(worker)"
            ),
            "positional",
        )

    def test_double_acquire_plain_lock_static(self):
        self.assert_rejects(
            """import threading

counter = 0
m = threading.Lock()

def worker():
    global counter
    with m:
        with m:
            counter = 1

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert counter >= 0
""",
            "would deadlock",
        )

    def test_recursion_rejected(self):
        self.assert_rejects(
            """import threading

x = 0

def worker():
    worker()

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert x == 0
""",
            "inline depth",
        )

    def test_randint_nonconstant_bounds(self):
        self.assert_rejects(
            worker_program("n = random.randint(counter, 5)"),
            "int literals",
        )

    def test_randint_empty_range(self):
        self.assert_rejects(
            worker_program("n = random.randint(5, 2)"), "empty randint range"
        )

    def test_lock_used_as_value(self):
        self.assert_rejects(
            worker_program(
                "counter = m", globals_="counter = 0\nm = threading.Lock()"
            ),
            "used as a value",
        )

    def test_while_else(self):
        self.assert_rejects(
            worker_program(
                "while counter < 1:\n    counter = 1\nelse:\n    pass"
            ),
            "while/else",
        )

    def test_tuple_assignment(self):
        self.assert_rejects(worker_program("a, b = 1, 2"), "one plain name")

    def test_try_rejected(self):
        self.assert_rejects(
            worker_program("try:\n    pass\nexcept Exception:\n    pass"),
            "unsupported statement",
        )

    def test_col_offsets_are_one_based(self):
        with pytest.raises(SubsetError) as exc_info:
            tr("import os\n", filename="prog.py")
        assert exc_info.value.col == 1
