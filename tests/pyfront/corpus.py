"""Shared helpers for the Python example corpus.

``EXPECTED`` is the manifest of every program under ``examples/python/``
and its expected verdict; ``test_corpus.py`` enforces it and the CI
smoke job replays it, so adding an example means adding a row here.
"""

import os

CORPUS_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "examples", "python"
)

#: filename -> expected verdict ("safe" | "unsafe")
EXPECTED = {
    "counter_unsafe.py": "unsafe",
    "counter_lock_safe.py": "safe",
    "augassign_unsafe.py": "unsafe",
    "check_then_act_unsafe.py": "unsafe",
    "check_then_act_lock_safe.py": "safe",
    "dcl_unsafe.py": "unsafe",
    "dcl_safe.py": "safe",
    "producer_consumer_lock.py": "safe",
    "flag_handshake_unsafe.py": "unsafe",
    "flag_handshake_safe.py": "safe",
    "nondet_guard_safe.py": "safe",
    "loop_counter_unsafe.py": "unsafe",
    "rlock_reentrant_safe.py": "safe",
}


def example(name: str) -> str:
    return os.path.abspath(os.path.join(CORPUS_DIR, name))
