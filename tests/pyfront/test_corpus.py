"""The examples/python corpus: expected verdicts, doubly-confirmed races.

This is the PR's acceptance test.  Every program under
``examples/python/`` must verify to its manifest verdict through the
public :func:`repro.api.verify_python` entry point, and every UNSAFE
verdict must be confirmed **two independent ways**:

1. *symbolic replay* -- the witness schedule replays step-by-step on the
   translated mini program and ends in a failed assert
   (:func:`repro.smc.witness_replay.replay_witness`);
2. *concrete execution* -- the ORIGINAL Python file, run under the
   cooperative randomized scheduler with opcode-level preemption,
   concretely raises the AssertionError (:func:`repro.pyfront.dynexec`).

A verdict the engine produces that neither oracle can reproduce would be
a translation or encoding bug, so both checks are hard assertions.
"""

import os

import pytest

from repro import api
from repro.pyfront import translate_file
from repro.pyfront.dynexec import confirm
from repro.smc.witness_replay import replay_witness

from tests.pyfront.corpus import CORPUS_DIR, EXPECTED, example


def test_manifest_matches_directory():
    on_disk = sorted(
        f for f in os.listdir(CORPUS_DIR) if f.endswith(".py")
    )
    assert on_disk == sorted(EXPECTED), (
        "examples/python/ and tests/pyfront/corpus.py disagree; "
        "every example needs a manifest row"
    )


def test_corpus_has_required_size_and_mix():
    assert len(EXPECTED) >= 10
    assert sum(1 for v in EXPECTED.values() if v == "unsafe") >= 4
    assert sum(1 for v in EXPECTED.values() if v == "safe") >= 4


@pytest.mark.parametrize("name", sorted(EXPECTED))
def test_expected_verdict(name):
    result, translation = api.verify_python(path=example(name))
    expected = EXPECTED[name]
    assert result.verdict == expected, (
        f"{name}: expected {expected}, got {result.verdict} "
        f"({result.diagnostic})"
    )
    if expected == "unsafe":
        assert result.witness is not None, f"{name}: UNSAFE but no witness"
        # Confirmation 1: the symbolic witness replays to a failed assert.
        assert replay_witness(
            translation.program, result.witness, width=8, unwind=8
        ), f"{name}: witness does not replay"
        # Confirmation 2: the real Python program concretely fails under
        # the randomized scheduler (guided trial first, then random).
        outcome = confirm(
            translation, witness=result.witness, trials=120, seed=0
        )
        assert outcome.confirmed, (
            f"{name}: not reproduced concretely in "
            f"{outcome.trials_run} trials: {outcome.problems}"
        )
