"""Concrete confirmation: the cooperative randomized scheduler."""

from repro.pyfront import translate_file
from repro.pyfront.dynexec import confirm, run_trial

from tests.pyfront.corpus import example


def test_racy_counter_is_confirmed():
    translation = translate_file(example("counter_unsafe.py"))
    result = confirm(translation, trials=60, seed=0)
    assert result.confirmed, result.problems
    assert result.outcome is not None
    assert result.outcome.failed


def test_single_line_augassign_race_is_confirmed():
    # `counter += 1` is one Python line; only opcode-level preemption
    # can interleave its LOAD/STORE halves.
    translation = translate_file(example("augassign_unsafe.py"))
    result = confirm(translation, trials=80, seed=0)
    assert result.confirmed, result.problems


def test_locked_counter_is_not_confirmed():
    translation = translate_file(example("counter_lock_safe.py"))
    result = confirm(translation, trials=40, seed=0)
    assert not result.confirmed
    assert result.trials_run == 40


def test_failure_reports_python_line():
    translation = translate_file(example("counter_unsafe.py"))
    result = confirm(translation, trials=60, seed=0)
    assert result.confirmed
    assert result.outcome.line is not None
    # The failing assert lives inside the file.
    assert 1 <= result.outcome.line <= len(translation.source.splitlines())


def test_trials_are_deterministic_in_seed():
    translation = translate_file(example("counter_unsafe.py"))
    a = run_trial(translation, seed=41)
    b = run_trial(translation, seed=41)
    assert a.failed == b.failed
    assert a.schedule == b.schedule


def test_deadlock_is_detected_not_hung():
    import textwrap

    from repro.pyfront import translate_source

    src = textwrap.dedent(
        """\
        import threading

        x = 0
        m = threading.Lock()

        def worker():
            global x
            m.acquire()
            x = 1

        if __name__ == "__main__":
            m.acquire()
            t1 = threading.Thread(target=worker)
            t1.start()
            t1.join()
            assert x == 1
        """
    )
    translation = translate_source(src, filename="deadlock.py")
    outcome = run_trial(translation, seed=0)
    assert outcome.deadlocked
    assert not outcome.failed
