"""The ``repro verify-py`` command, driven in-process."""

import pytest

from repro.cli import EXIT_ERROR, EXIT_SAFE, EXIT_UNSAFE, main

from tests.pyfront.corpus import example


def test_safe_file_exits_zero(capsys):
    code = main(["verify-py", example("counter_lock_safe.py"), "--no-confirm"])
    out = capsys.readouterr().out
    assert code == EXIT_SAFE
    assert "SAFE" in out


def test_unsafe_file_exits_ten(capsys):
    code = main(["verify-py", example("counter_unsafe.py"), "--no-confirm"])
    out = capsys.readouterr().out
    assert code == EXIT_UNSAFE
    assert "UNSAFE" in out


def test_witness_prints_python_lines(capsys):
    code = main(
        ["verify-py", example("counter_unsafe.py"), "--witness", "--no-confirm"]
    )
    out = capsys.readouterr().out
    assert code == EXIT_UNSAFE
    assert "counter_unsafe.py:" in out
    assert "counterexample trace:" in out


def test_confirmation_runs_both_oracles(capsys):
    code = main(
        ["verify-py", example("augassign_unsafe.py"), "--witness",
         "--confirm-trials", "80"]
    )
    out = capsys.readouterr().out
    assert code == EXIT_UNSAFE
    assert "symbolic replay: ok" in out
    assert "concrete execution: CONFIRMED" in out


def test_subset_violation_exits_one_with_location(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import threading\nimport socket\n\n"
        "if __name__ == \"__main__\":\n    pass\n"
    )
    code = main(["verify-py", str(bad)])
    err = capsys.readouterr().err
    assert code == EXIT_ERROR
    assert f"{bad}:2:1" in err  # the `import socket` line, 1-based col
    assert "unsupported import" in err


def test_syntax_error_exits_one(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n")
    code = main(["verify-py", str(bad)])
    err = capsys.readouterr().err
    assert code == EXIT_ERROR
    assert f"{bad}:1:" in err


def test_missing_file_exits_one(tmp_path, capsys):
    code = main(["verify-py", str(tmp_path / "nope.py")])
    assert code == EXIT_ERROR
    assert "nope.py" in capsys.readouterr().err


def test_fuzz_pycheck_flag(capsys):
    code = main(["fuzz", "--pycheck", "--seeds", "5", "--unwind", "4"])
    out = capsys.readouterr().out
    assert code == EXIT_SAFE
    assert "cross-check" in out
