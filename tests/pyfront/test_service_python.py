"""Python submissions through the verification service.

The bugfix satellite lives here: a program outside the supported subset
must NEVER crash (or even reach) a service worker -- it comes back as a
normal ``ok`` response carrying a structured ERROR verdict with the
offending ``file:line:col``, and the server keeps serving afterwards.
"""

import asyncio

import pytest

from repro.service.server import ServiceServer

from tests.pyfront.corpus import example


RACY_PY = open(example("counter_unsafe.py")).read()
SAFE_PY = open(example("counter_lock_safe.py")).read()

BAD_SUBSET_PY = """\
import threading
import os

x = 0

def worker():
    global x
    x = 1

if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t1.start()
    t1.join()
    assert x == 1
"""

NOT_EVEN_PYTHON = "def broken(:\n"


def _request(server, req):
    return asyncio.run(server.handle_request(req))


@pytest.fixture()
def server():
    srv = ServiceServer(workers=1, max_queue=4)
    yield srv
    srv.close()


def test_python_language_verifies(server):
    resp = _request(
        server,
        {"id": 1, "op": "verify", "source": RACY_PY,
         "language": "python", "filename": "counter_unsafe.py"},
    )
    assert resp["ok"], resp
    assert resp["result"]["verdict"] == "unsafe"
    assert resp["result"]["witness"] is not None


def test_python_shares_cache_with_mini_twin(server):
    from repro.lang.unparse import unparse
    from repro.pyfront import translate_source

    first = _request(
        server,
        {"id": 1, "op": "verify", "source": SAFE_PY, "language": "python"},
    )
    assert first["ok"] and not first["cache_hit"]
    # The translated mini form must hit the cache entry the Python
    # submission created: the key is the canonical translated program.
    mini = unparse(translate_source(SAFE_PY, filename="x.py").program)
    second = _request(server, {"id": 2, "op": "verify", "source": mini})
    assert second["ok"] and second["cache_hit"], second


def test_subset_violation_is_structured_error_not_crash(server):
    resp = _request(
        server,
        {"id": 1, "op": "verify", "source": BAD_SUBSET_PY,
         "language": "python", "filename": "bad.py"},
    )
    # ok=true: this is an engine-level verdict, not a protocol error.
    assert resp["ok"], resp
    result = resp["result"]
    assert result["verdict"] == "error"
    assert "python subset" in result["diagnostic"]
    assert "bad.py:2:" in result["diagnostic"]  # the `import os` line
    assert result["stats"].get("reason") == "subset-error"


def test_syntax_error_is_structured_error(server):
    resp = _request(
        server,
        {"id": 1, "op": "verify", "source": NOT_EVEN_PYTHON,
         "language": "python", "filename": "broken.py"},
    )
    assert resp["ok"], resp
    assert resp["result"]["verdict"] == "error"
    assert "broken.py:1:" in resp["result"]["diagnostic"]


def test_server_keeps_serving_after_subset_errors(server):
    # A burst of rejects must not poison the worker pool.
    for i in range(3):
        resp = _request(
            server,
            {"id": i, "op": "verify", "source": BAD_SUBSET_PY,
             "language": "python"},
        )
        assert resp["ok"] and resp["result"]["verdict"] == "error"
    resp = _request(
        server,
        {"id": 99, "op": "verify", "source": RACY_PY, "language": "python"},
    )
    assert resp["ok"] and resp["result"]["verdict"] == "unsafe"


def test_unknown_language_is_protocol_error(server):
    resp = _request(
        server,
        {"id": 1, "op": "verify", "source": RACY_PY, "language": "prolog"},
    )
    assert not resp["ok"]
    assert "language" in resp["error"]
