"""Tests for loop unrolling and SSA lowering."""

import pytest

from repro.encoding import formula as F
from repro.frontend import EventKind, build_symbolic_program
from repro.lang import parse


def lower(src, unwind=4, width=8):
    return build_symbolic_program(parse(src), unwind=unwind, width=width)


class TestEvents:
    def test_paper_example_event_counts(self):
        # Figure 2: x has 5 accesses (2 writes incl. init, 3 reads).
        src = """
        int x = 0, y = 0, m = 0, n = 0;
        thread thr1 {
            if (x == 1) { m = 1; } else { m = x; }
            y = x + 1;
        }
        thread thr2 {
            if (y == 1) { n = 1; } else { n = y; }
            x = y + 1;
        }
        main {
            start thr1; start thr2; join thr1; join thr2;
            assert(!(m == 1 && n == 1));
        }
        """
        prog = lower(src)
        xs_w = prog.writes_of("x")
        xs_r = prog.reads_of("x")
        # init write + thr2's write; reads: thr1 cond, thr1 else, thr1 y=x+1.
        assert len(xs_w) == 2
        assert len(xs_r) == 3
        # m: init write, two guarded writes, one read in main's assert.
        assert len(prog.writes_of("m")) == 3
        assert len(prog.reads_of("m")) == 1
        assert len(prog.error_disjuncts) == 1

    def test_init_writes_unconditional(self):
        prog = lower("int x = 7; thread t { x = 1; } ")
        init_writes = [e for e in prog.writes_of("x") if e.thread == "main"]
        assert len(init_writes) == 1
        assert init_writes[0].guard is F.TRUE

    def test_read_in_branch_guarded(self):
        prog = lower(
            "int x, y; thread t { if (y == 0) { x = x + 1; } }"
        )
        guarded_reads = [e for e in prog.reads_of("x")]
        assert len(guarded_reads) == 1
        assert guarded_reads[0].guard is not F.TRUE

    def test_local_accesses_produce_no_events(self):
        prog = lower("thread t { int a; int b; a = 1; b = a + 2; }")
        assert prog.memory_events() == []

    def test_unstarted_thread_not_lowered(self):
        src = "int x; thread t1 { x = 1; } thread t2 { x = 2; } main { start t1; join t1; }"
        prog = lower(src)
        threads = {t.name for t in prog.threads}
        assert threads == {"main", "t1"}

    def test_implicit_main_starts_all(self):
        prog = lower("int x; thread a { x = 1; } thread b { x = 2; }")
        threads = {t.name for t in prog.threads}
        assert threads == {"main", "a", "b"}


class TestProgramOrder:
    def test_po_chain_within_thread(self):
        prog = lower("int x; thread t { x = 1; x = 2; x = 3; }")
        t_events = next(t for t in prog.threads if t.name == "t").events
        eids = [e.eid for e in t_events]
        chain = [(a, b) for a, b in prog.po_edges if a in eids and b in eids]
        assert len(chain) == len(eids) - 1

    def test_create_join_edges_present(self):
        src = "int x; thread t { x = 1; } main { start t; join t; x = 9; }"
        prog = lower(src)
        t_events = next(t for t in prog.threads if t.name == "t").events
        anchors = [e for e in prog.events if e.kind == EventKind.ANCHOR]
        assert len(anchors) == 2
        start_a, join_a = anchors
        assert (start_a.eid, t_events[0].eid) in prog.po_edges
        assert (t_events[-1].eid, join_a.eid) in prog.po_edges


class TestLoops:
    def test_unrolled_reads(self):
        # Loop body reads x once per iteration; bound 3 -> cond evaluated
        # 4 times (3 iterations + unwinding check), each reading y.
        src = "int x, y; thread t { while (y == 0) { x = x + 1; } }"
        prog = lower(src, unwind=3)
        assert len(prog.reads_of("y")) == 4
        assert len(prog.reads_of("x")) == 3
        assert len(prog.writes_of("x")) == 1 + 3  # init + 3 unrolled writes

    def test_unwind_zero_only_assumption(self):
        src = "int y; thread t { while (y == 0) { skip; } }"
        prog = lower(src, unwind=0)
        assert len(prog.reads_of("y")) == 1


class TestLocksAndAtomic:
    def test_lock_desugars_to_tas(self):
        prog = lower("lock m; thread t { lock(m); unlock(m); }")
        assert len(prog.reads_of("m")) == 1
        assert len(prog.writes_of("m")) == 3  # init, acquire, release
        assert len(prog.rmw_groups) == 1
        g = prog.rmw_groups[0]
        assert prog.event(g.read_eid).is_read
        assert prog.event(g.write_eid).is_write

    def test_atomic_increment_group(self):
        prog = lower("int x; thread t { atomic { x = x + 1; } }")
        assert len(prog.rmw_groups) == 1

    def test_atomic_without_write_no_group(self):
        prog = lower("int x; thread t { int a; atomic { a = x; } }")
        assert prog.rmw_groups == []


class TestValueConstraints:
    def test_nondet_creates_free_var(self):
        prog = lower("int x; thread t { x = nondet(); }")
        assert any(v.startswith("nondet") for v in prog.free_vars)

    def test_uninitialized_local_is_free(self):
        prog = lower("int x; thread t { int a; x = a; }")
        assert any(".a#" in v for v in prog.free_vars)

    def test_assert_creates_error_disjunct(self):
        prog = lower("int x; thread t { assert(x == 0); }")
        assert len(prog.error_disjuncts) == 1

    def test_assume_creates_constraint(self):
        with_assume = lower("int x; thread t { assume(x == 0); }")
        without = lower("int x; thread t { skip; }")
        assert len(with_assume.constraints) > len(without.constraints)

    def test_stats(self):
        prog = lower("int x; thread t { x = x + 1; }")
        s = prog.stats()
        assert s["reads"] == 1 and s["writes"] == 2
