"""Fault-injection harness tests: spec parsing, checkpoint firing, and
end-to-end containment of injected faults in every engine."""

import pytest

from repro.robustness import checkpoint
from repro.robustness.faults import (
    ENV_VAR,
    FaultInjected,
    active_spec,
    clear_faults,
    fault_point,
    install_faults,
    parse_faults,
)
from repro.verify import Verdict, verify
from repro.verify.config import PRESETS
from tests.verify.programs import PAPER_FIG2


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_faults()
    yield
    clear_faults()


class TestParse:
    def test_single(self):
        assert parse_faults("crash@encode") == {"encode": [("crash", None)]}

    def test_arg_and_multiple(self):
        table = parse_faults("delay@solve:0.5,crash@encode")
        assert table["solve"] == [("delay", "0.5")]
        assert table["encode"] == [("crash", None)]

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            parse_faults("explode@encode")

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_faults("crash")

    def test_empty_checkpoint_rejected(self):
        with pytest.raises(ValueError, match="empty checkpoint"):
            parse_faults("crash@")

    def test_install_validates_eagerly(self):
        with pytest.raises(ValueError):
            install_faults("nope@x")
        assert active_spec() is None


class TestFirePoint:
    def test_noop_without_spec(self):
        fault_point("encode")  # must not raise

    def test_crash_fires_at_named_checkpoint_only(self):
        install_faults("crash@encode")
        fault_point("solve")
        with pytest.raises(FaultInjected) as ei:
            fault_point("encode")
        assert ei.value.checkpoint == "encode"

    def test_oom_raises_memory_error(self):
        install_faults("oom@engine")
        with pytest.raises(MemoryError):
            fault_point("engine")

    def test_delay_sleeps(self):
        import time

        install_faults("delay@solve:0.05")
        t0 = time.monotonic()
        fault_point("solve")
        assert time.monotonic() - t0 >= 0.05

    def test_memspike_allocates_ballast(self):
        from repro.robustness import faults

        install_faults("memspike@engine:1")
        fault_point("engine")
        assert sum(len(b) for b in faults._ballast) >= 1_000_000
        clear_faults()
        assert not faults._ballast

    def test_env_var_spec(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "crash@theory")
        with pytest.raises(FaultInjected):
            fault_point("theory")

    def test_checkpoint_fires_faults(self):
        install_faults("crash@frontend")
        with pytest.raises(FaultInjected):
            checkpoint("frontend")


@pytest.mark.parametrize("preset", sorted(PRESETS))
@pytest.mark.parametrize("spec_checkpoint", ["frontend", "engine"])
def test_injected_crash_contained_in_every_engine(preset, spec_checkpoint):
    """With a crash injected at any pipeline checkpoint, every engine must
    return a structured ERROR (or conclusive verdict when the engine never
    visits that checkpoint) -- never an uncaught exception."""
    install_faults(f"crash@{spec_checkpoint}")
    try:
        result = verify(PAPER_FIG2, PRESETS[preset]())
    finally:
        clear_faults()
    assert result.verdict in (Verdict.ERROR, Verdict.SAFE)
    if result.verdict == Verdict.ERROR:
        assert "injected fault" in result.diagnostic


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_injected_oom_degrades_to_unknown(preset):
    """An allocation failure anywhere in the engine is budget exhaustion:
    UNKNOWN, not a crash."""
    config = PRESETS[preset]()
    checkpoint_name = "frontend" if config.engine in ("smt", "closure") else "engine"
    install_faults(f"oom@{checkpoint_name}")
    try:
        result = verify(PAPER_FIG2, config)
    finally:
        clear_faults()
    assert result.verdict == Verdict.UNKNOWN
    assert result.stats["budget_limit"] == "memory"
