"""Deep-event-graph hardening: both cycle detectors must survive long
chains without hitting Python's recursion limit, and a long straight-line
program must verify end-to-end under both detectors."""

import sys

import pytest

from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.icd import IncrementalCycleDetector
from repro.ordering.tarjan import TarjanCycleDetector
from repro.verify import Verdict, VerifierConfig, verify

_CHAIN = 5_000  # far above the default ~1000-frame recursion limit


def _build_chain(detector_cls, n):
    graph = EventGraph(n)
    det = detector_cls(graph)
    for i in range(n - 1):
        result = det.add_edge(Edge(i, i + 1, EdgeKind.PO))
        assert not result.cycle
    return graph, det


@pytest.mark.parametrize("detector_cls", [IncrementalCycleDetector, TarjanCycleDetector])
class TestDeepChains:
    def test_long_chain_no_recursion_error(self, detector_cls):
        """Insert a 5000-node chain, then close the cycle: the full-length
        search this forces must be iterative."""
        graph, det = _build_chain(detector_cls, _CHAIN)
        result = det.add_edge(Edge(_CHAIN - 1, 0, EdgeKind.RF, (1,), 1))
        assert result.cycle

    def test_long_chain_under_tight_recursion_limit(self, detector_cls):
        """Same, with the recursion limit clamped: proves the detectors do
        not lean on deep Python recursion at all."""
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(200)
        try:
            graph, det = _build_chain(detector_cls, 2_000)
            result = det.add_edge(Edge(1_999, 0, EdgeKind.RF, (1,), 1))
            assert result.cycle
        finally:
            sys.setrecursionlimit(limit)


def _straight_line_program(n_writes):
    body = "\n".join(f"    x = {i % 7};" for i in range(n_writes))
    return f"""
int x = 0;
thread t1 {{
{body}
}}
main {{
    start t1; join t1;
    assert(x < 7);
}}
"""


@pytest.mark.slow
@pytest.mark.parametrize("preset_detector", ["icd", "tarjan"])
def test_long_straight_line_program_end_to_end(preset_detector):
    """Regression for deep event graphs: a long straight-line program must
    come back with a verdict (never a RecursionError) under both
    detectors, within a budget."""
    source = _straight_line_program(120)
    config = VerifierConfig(
        name=f"deep-{preset_detector}",
        detector=preset_detector,
        time_limit_s=60.0,
    )
    result = verify(source, config)
    assert result.verdict in (Verdict.SAFE, Verdict.UNKNOWN)
    if result.verdict == Verdict.UNKNOWN:
        # Exhaustion must be the structured budget kind, not a crash.
        assert result.stats.get("budget_limit") or result.stats["conflicts"] >= 0
    assert result.verdict != Verdict.ERROR
