"""Robustness tests: budgets, crash containment, fallbacks, fault injection."""
