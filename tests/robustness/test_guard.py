"""Crash-containment tests: any engine exception becomes a structured
ERROR result with a captured diagnostic -- never an uncaught traceback."""

import pytest

from repro.robustness.budget import Budget, BudgetExceeded
from repro.robustness.guard import describe_exception, run_guarded
from repro.verify import Verdict, VerificationResult, VerifierConfig, verify
from repro.verify import registry
from tests.verify.programs import PAPER_FIG2


@pytest.fixture()
def crashing_engine():
    def _loader():
        def run(program, config, telemetry=None):
            raise RuntimeError("engine exploded")

        return run

    registry.register_engine("crashy", _loader, description="test engine")
    yield "crashy"
    registry.unregister_engine("crashy")


class TestRunGuarded:
    def _config(self):
        return VerifierConfig()

    def test_passthrough(self):
        ok = VerificationResult(Verdict.SAFE, "zord")
        result = run_guarded(
            lambda p, c, telemetry=None: ok, None, self._config()
        )
        assert result is ok

    def test_exception_becomes_error(self):
        def boom(p, c, telemetry=None):
            raise ValueError("bad things")

        result = run_guarded(boom, None, self._config())
        assert result.verdict == Verdict.ERROR
        assert result.stats["error_type"] == "ValueError"
        assert "bad things" in result.diagnostic
        assert "Traceback" not in result.diagnostic

    def test_recursion_error_contained(self):
        def deep(p, c, telemetry=None):
            def f():
                return f()

            return f()

        result = run_guarded(deep, None, self._config())
        assert result.verdict == Verdict.ERROR
        assert result.stats["error_type"] == "RecursionError"

    def test_budget_exceeded_becomes_unknown(self):
        def exhausted(p, c, telemetry=None):
            raise BudgetExceeded("time", "solve", 2.0, 1.0, {"conflicts": 5})

        budget = Budget(time_limit_s=1.0)
        result = run_guarded(exhausted, None, self._config(), budget=budget)
        assert result.verdict == Verdict.UNKNOWN
        assert result.stats["budget_limit"] == "time"
        assert result.stats["budget_phase"] == "solve"
        assert result.stats["conflicts"] == 5  # partial stats preserved
        assert "budget_elapsed_s" in result.stats

    def test_memory_error_is_budget_not_bug(self):
        def oom(p, c, telemetry=None):
            raise MemoryError("cannot allocate")

        result = run_guarded(oom, None, self._config())
        assert result.verdict == Verdict.UNKNOWN
        assert result.stats["budget_limit"] == "memory"

    def test_keyboard_interrupt_propagates(self):
        def interrupted(p, c, telemetry=None):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_guarded(interrupted, None, self._config())

    def test_system_exit_propagates(self):
        def exiting(p, c, telemetry=None):
            raise SystemExit(3)

        with pytest.raises(SystemExit):
            run_guarded(exiting, None, self._config())


class TestDescribeException:
    def test_includes_type_message_location(self):
        try:
            raise KeyError("missing")
        except KeyError as exc:
            text = describe_exception(exc)
        assert "KeyError" in text
        assert "missing" in text
        assert "test_guard.py" in text

    def test_capped_length(self):
        text = describe_exception(ValueError("x" * 10_000))
        assert len(text) <= 600


class TestVerifyContainment:
    def test_engine_crash_yields_error_result(self, crashing_engine):
        result = verify(PAPER_FIG2, VerifierConfig(engine=crashing_engine))
        assert result.verdict == Verdict.ERROR
        assert result.is_error
        assert "engine exploded" in result.diagnostic
        assert result.wall_time_s >= 0.0
        # Stats are still normalized for downstream consumers.
        assert "conflicts" in result.stats

    def test_error_result_str_mentions_diagnostic(self, crashing_engine):
        result = verify(PAPER_FIG2, VerifierConfig(engine=crashing_engine))
        assert "engine exploded" in str(result)
