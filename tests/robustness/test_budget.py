"""Budget unit tests + the per-engine budget-exhaustion contract:
every preset must degrade to a structured UNKNOWN (never an exception,
never a wrong verdict) under a tiny time or conflict budget."""

import time

import pytest

from repro.robustness.budget import (
    Budget,
    BudgetExceeded,
    active_budget,
    effective_time_limit,
    get_active,
)
from repro.verify import Verdict, verify
from repro.verify.config import PRESETS
from repro.verify.telemetry import STAT_KEYS
from tests.verify.programs import PAPER_FIG2


class TestBudgetUnit:
    def test_unlimited_budget_never_raises(self):
        b = Budget()
        b.check("x")
        b.charge_conflicts(10**9, "x")
        b.charge_events(10**9, "x")

    def test_time_limit(self):
        b = Budget(time_limit_s=0.0)
        time.sleep(0.001)
        with pytest.raises(BudgetExceeded) as ei:
            b.check("solve")
        assert ei.value.limit == "time"
        assert ei.value.phase == "solve"

    def test_conflicts_cumulative(self):
        b = Budget(max_conflicts=10)
        b.charge_conflicts(6, "solve")
        b.charge_conflicts(4, "solve")  # == cap: still fine
        with pytest.raises(BudgetExceeded) as ei:
            b.charge_conflicts(1, "solve")
        assert ei.value.limit == "conflicts"
        assert ei.value.used == 11

    def test_events_cumulative(self):
        b = Budget(max_events=3)
        b.charge_events(3, "frontend")
        with pytest.raises(BudgetExceeded) as ei:
            b.charge_events(1, "frontend")
        assert ei.value.limit == "events"

    def test_memory_cap_is_growth_not_absolute(self):
        # The cap measures growth since creation, so a fresh budget with a
        # generous cap must not trip on the interpreter's existing RSS.
        b = Budget(memory_limit_mb=10_000.0)
        b.check("x")

    def test_memory_cap_trips_on_allocation(self):
        b = Budget(memory_limit_mb=1.0)
        if b.memory_used_mb() is None:
            pytest.skip("no RSS source on this platform")
        ballast = bytearray(64 * 1024 * 1024)
        with pytest.raises(BudgetExceeded) as ei:
            b.check("engine")
        assert ei.value.limit == "memory"
        del ballast

    def test_partial_stats_carried(self):
        exc = BudgetExceeded("time", "solve", 1.0, 0.5, {"conflicts": 7})
        assert exc.partial_stats["conflicts"] == 7

    def test_snapshot_keys(self):
        b = Budget(max_conflicts=5)
        b.charge_conflicts(2, "x")
        snap = b.snapshot()
        assert snap["budget_conflicts"] == 2
        assert snap["budget_elapsed_s"] >= 0.0

    def test_active_budget_nesting(self):
        outer, inner = Budget(), Budget()
        assert get_active() is None
        with active_budget(outer):
            assert get_active() is outer
            with active_budget(inner):
                assert get_active() is inner
            assert get_active() is outer
        assert get_active() is None

    def test_effective_time_limit_takes_min(self):
        b = Budget(time_limit_s=100.0)
        with active_budget(b):
            assert effective_time_limit(5.0) == 5.0
            assert effective_time_limit(None) == pytest.approx(100.0, abs=1.0)
            assert effective_time_limit(1000.0) <= 100.0
        assert effective_time_limit(5.0) == 5.0  # no active budget


@pytest.mark.parametrize("preset", sorted(PRESETS))
class TestEveryEngineHonorsBudgets:
    """Satellite contract: UNKNOWN + populated stats under tiny budgets."""

    def test_tiny_time_limit(self, preset):
        result = verify(PAPER_FIG2, PRESETS[preset](time_limit_s=1e-9))
        assert result.verdict == Verdict.UNKNOWN
        assert set(STAT_KEYS) <= set(result.stats)
        # SMT-pipeline presets surface which limit tripped where.
        if "budget_limit" in result.stats and result.stats["budget_limit"]:
            assert result.stats["budget_limit"] == "time"
            assert result.stats["budget_phase"]

    def test_tiny_conflict_budget(self, preset):
        result = verify(PAPER_FIG2, PRESETS[preset](max_conflicts=1))
        assert result.verdict == Verdict.UNKNOWN
        assert set(STAT_KEYS) <= set(result.stats)

    def test_tiny_event_budget(self, preset):
        config = PRESETS[preset](max_events=2)
        result = verify(PAPER_FIG2, config)
        if config.engine in ("smt", "closure"):
            # Event-graph engines charge the cap in the frontend.
            assert result.verdict == Verdict.UNKNOWN
            assert result.stats["budget_limit"] == "events"
        else:
            # Interpreter engines build no event graph; the cap is inert
            # but must never produce a crash or a wrong verdict.
            assert result.verdict in (Verdict.SAFE, Verdict.UNKNOWN)


def test_memory_budget_smt():
    """A memspike fault supplies deterministic RSS growth: relying on the
    verifier's own allocations is flaky once the allocator is warm."""
    from repro.robustness.faults import clear_faults, install_faults

    install_faults("memspike@frontend:48")
    try:
        result = verify(PAPER_FIG2, PRESETS["zord"](memory_limit_mb=16))
    finally:
        clear_faults()
    assert result.verdict == Verdict.UNKNOWN
    assert result.stats["budget_limit"] == "memory"


def test_budget_unknown_carries_partial_solver_stats():
    result = verify(PAPER_FIG2, PRESETS["zord"](max_conflicts=1))
    # The SAT core returns UNKNOWN at its own cap with its stats intact.
    assert result.stats["conflicts"] >= 1
