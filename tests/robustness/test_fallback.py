"""Fallback-chain tests: crash -> next preset, budget exhaustion -> next
preset, attempts recorded, one shared deadline."""

import pytest

from repro.robustness.faults import clear_faults, install_faults
from repro.robustness.fallback import resolve_chain
from repro.verify import Verdict, VerifierConfig, verify
from repro.verify.config import PRESETS
from tests.verify.programs import PAPER_FIG2, RACE_UNSAFE


@pytest.fixture(autouse=True)
def _clean_faults():
    clear_faults()
    yield
    clear_faults()


class TestResolveChain:
    def test_no_fallbacks_is_singleton(self):
        chain = resolve_chain(VerifierConfig())
        assert len(chain) == 1
        assert chain[0][0].name == "zord"

    def test_fallbacks_expand_in_order(self):
        config = VerifierConfig(fallbacks=("zord-tarjan", "dartagnan"))
        chain = resolve_chain(config)
        assert [c.name for c, _ in chain] == ["zord", "zord-tarjan", "dartagnan"]

    def test_fallbacks_inherit_bounds(self):
        config = VerifierConfig(
            unwind=3, width=4, time_limit_s=7.0, fallbacks=("dartagnan",)
        )
        fb = resolve_chain(config)[1][0]
        assert (fb.unwind, fb.width, fb.time_limit_s) == (3, 4, 7.0)

    def test_incompatible_fallback_is_skipped_not_fatal(self):
        # A TSO primary cannot fall back to the SC-only explicit engine.
        config = VerifierConfig(memory_model="tso", fallbacks=("cpa-seq",))
        chain = resolve_chain(config)
        cfg, skipped = chain[1]
        assert cfg is None
        assert skipped.status == "skipped"
        assert "memory model" in skipped.reason

    def test_unknown_fallback_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown fallback preset"):
            VerifierConfig(fallbacks=("not-a-preset",))


class TestVerifyWithFallbacks:
    def test_crash_recovers_through_chain(self):
        """The acceptance demo: injected smt crash -> closure verdict.
        The 'encode' checkpoint is visited by the smt pipeline only, so
        the closure fallback runs clean."""
        install_faults("crash@encode")
        result = verify(
            PAPER_FIG2,
            VerifierConfig(fallbacks=("dartagnan",)),
        )
        assert result.verdict == Verdict.SAFE
        assert result.stats["fallback_attempts"] == 2
        statuses = [a["status"] for a in result.attempts]
        assert statuses == ["error", "conclusive"]
        assert result.attempts[0]["config_name"] == "zord"
        assert result.attempts[1]["config_name"] == "dartagnan"
        assert "injected fault" in result.attempts[0]["reason"]

    def test_crash_recovers_unsafe_verdict_too(self):
        install_faults("crash@encode")
        result = verify(
            RACE_UNSAFE, VerifierConfig(fallbacks=("dartagnan",))
        )
        assert result.verdict == Verdict.UNSAFE
        assert result.witness is not None

    def test_detector_fallback(self):
        """smt crash -> retry with the tarjan detector (same engine)."""
        # 'encode' is visited under both detectors, so the two smt
        # attempts crash and the interpreter engine wins.
        install_faults("crash@encode")
        result = verify(
            PAPER_FIG2,
            VerifierConfig(fallbacks=("zord-tarjan", "cpa-seq")),
        )
        assert result.verdict == Verdict.SAFE
        statuses = [a["status"] for a in result.attempts]
        assert statuses == ["error", "error", "conclusive"]

    def test_no_fallback_when_primary_conclusive(self):
        result = verify(
            PAPER_FIG2, VerifierConfig(fallbacks=("dartagnan",))
        )
        assert result.verdict == Verdict.SAFE
        assert [a["status"] for a in result.attempts] == ["conclusive"]
        assert result.stats["fallback_attempts"] == 1

    def test_all_attempts_fail_returns_last(self):
        install_faults("crash@frontend")  # both engines build the frontend
        result = verify(
            PAPER_FIG2, VerifierConfig(fallbacks=("dartagnan",))
        )
        assert result.verdict == Verdict.ERROR
        assert [a["status"] for a in result.attempts] == ["error", "error"]

    def test_skipped_fallback_recorded(self):
        # TSO primary: the SC-only explicit engine is skipped, the cbmc
        # preset (smt engine, TSO-capable) is attempted.
        result = verify(
            PAPER_FIG2,
            VerifierConfig(
                memory_model="tso", max_conflicts=1,
                fallbacks=("cpa-seq", "cbmc"),
            ),
        )
        statuses = {a["config_name"]: a["status"] for a in result.attempts}
        assert statuses["cpa-seq"] == "skipped"
        assert statuses["cbmc"] == "unknown"
        assert result.verdict == Verdict.UNKNOWN

    def test_chain_shares_one_deadline(self):
        """A fallback must not restart the wall clock: with the deadline
        already blown, every later attempt is budget-UNKNOWN."""
        install_faults("delay@encode:0.3")
        result = verify(
            PAPER_FIG2,
            VerifierConfig(time_limit_s=0.2, fallbacks=("dartagnan",)),
        )
        assert result.verdict == Verdict.UNKNOWN
        assert result.stats["budget_limit"] == "time"
        assert [a["status"] for a in result.attempts] == ["unknown", "unknown"]


def test_fallback_presets_validated():
    for preset in ("zord", "dartagnan"):
        assert preset in PRESETS
