"""Portfolio hardening tests: workers that die, hang, or ignore SIGTERM
must degrade to ``status="error"`` without stalling the race.

Faults are injected through the ``REPRO_FAULTS`` environment variable,
which propagates into the forked worker processes."""

import os

import pytest

from repro.robustness.faults import ENV_VAR
from repro.verify import Verdict, VerifierConfig
from repro.portfolio import verify_portfolio
from tests.verify.programs import PAPER_FIG2

pytestmark = pytest.mark.timeout(120)


@pytest.fixture()
def worker_fault(monkeypatch):
    """Install a fault spec in the environment so forked workers see it."""

    def install(spec):
        monkeypatch.setenv(ENV_VAR, spec)

    yield install
    monkeypatch.delenv(ENV_VAR, raising=False)


def _fork_available():
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fault env propagation requires fork"
)


@needs_fork
@pytest.mark.slow
class TestWorkerDeath:
    def test_sigkilled_worker_reports_error_not_hang(self, worker_fault):
        """A worker OOM-killed (here: SIGKILL fault) before reporting must
        come back as status='error', and the race must still finish."""
        worker_fault("kill@portfolio_worker")
        outcome = verify_portfolio(
            PAPER_FIG2, ["zord", "dartagnan"], jobs=2, hang_timeout_s=5.0
        )
        assert outcome.verdict == Verdict.UNKNOWN
        assert [r.status for r in outcome.runs] == ["error", "error"]
        for run in outcome.runs:
            assert "without reporting" in run.error

    def test_crash_in_worker_is_error_with_diagnostic(self, worker_fault):
        # Fault fires inside verify() in the worker; the crash guard turns
        # it into an ERROR verdict, which the parent maps to status=error.
        worker_fault("crash@encode")
        outcome = verify_portfolio(
            PAPER_FIG2, ["zord", "zord-tarjan"], jobs=2, hang_timeout_s=30.0
        )
        assert outcome.verdict == Verdict.UNKNOWN
        for run in outcome.runs:
            assert run.status == "error"
            assert "injected fault" in run.error


@needs_fork
@pytest.mark.slow
class TestHangDetection:
    def test_sigstopped_worker_detected_as_hung(self, worker_fault):
        """A SIGSTOP'd worker stays alive but stops heartbeating; the
        parent must declare it hung and kill it instead of waiting.
        (Killing a stopped process also exercises the SIGTERM -> SIGKILL
        escalation: SIGTERM stays pending on a stopped process.)"""
        worker_fault("sigstop@portfolio_worker")
        outcome = verify_portfolio(
            PAPER_FIG2,
            ["zord", "dartagnan"],
            jobs=2,
            hang_timeout_s=1.5,
            term_grace_s=1.0,
            heartbeat_s=0.1,
        )
        assert outcome.verdict == Verdict.UNKNOWN
        for run in outcome.runs:
            assert run.status == "error"
            assert "hung" in run.error

    def test_sigkill_escalation_for_term_ignoring_worker(self, worker_fault):
        """A worker that ignores SIGTERM and sleeps for a minute must be
        SIGKILLed after the grace period when the wall budget expires --
        without escalation this call would block for the full sleep."""
        import time

        worker_fault("ignoreterm@portfolio_worker,hang@portfolio_worker:60")
        t0 = time.monotonic()
        outcome = verify_portfolio(
            PAPER_FIG2,
            ["zord", "dartagnan"],
            jobs=2,
            wall_budget_s=1.0,
            term_grace_s=0.5,
            heartbeat_s=0.1,
            hang_timeout_s=None,
        )
        elapsed = time.monotonic() - t0
        assert elapsed < 20.0  # far below the 60s worker sleep
        assert outcome.verdict == Verdict.UNKNOWN
        for run in outcome.runs:
            assert run.status == "cancelled"


@needs_fork
class TestHealthyRaceUnaffected:
    def test_clean_race_with_hardening_enabled(self):
        outcome = verify_portfolio(
            PAPER_FIG2,
            ["zord", "dartagnan"],
            jobs=2,
            hang_timeout_s=30.0,
            heartbeat_s=0.1,
        )
        assert outcome.verdict == Verdict.SAFE
        assert outcome.winner is not None

    def test_serial_path_maps_error_verdicts(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "crash@encode")
        outcome = verify_portfolio(PAPER_FIG2, ["zord", "cpa-seq"], jobs=1)
        assert outcome.runs[0].status == "error"
        assert "injected fault" in outcome.runs[0].error
        # The interpreter engine never visits 'encode': it wins.
        assert outcome.runs[1].status == "conclusive"
        assert outcome.verdict == Verdict.SAFE
