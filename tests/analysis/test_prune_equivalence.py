"""Soundness off-switch: pruning must never change a verdict.

Runs the whole tier-1 corpus (and a lock-heavy benchmark sample) through
the zord preset at prune level 0 and level 2 and asserts identical
SAFE/UNSAFE verdicts, plus the headline encoding-size claim: the
lock-heavy family drops >= 20% of its RF/WS variables.
"""

import pytest

from repro.verify import VerifierConfig, verify
from tests.verify.programs import ALL_PROGRAMS, LOCKED_COUNTER_SAFE


def _run(source, level, **kw):
    return verify(source, VerifierConfig.zord(prune_level=level, **kw))


@pytest.mark.parametrize(
    "name,source,is_safe",
    ALL_PROGRAMS,
    ids=[name for name, _, _ in ALL_PROGRAMS],
)
def test_corpus_verdicts_identical(name, source, is_safe):
    unpruned = _run(source, 0)
    pruned = _run(source, 2)
    assert unpruned.verdict == pruned.verdict
    assert pruned.is_safe == is_safe


def test_bench_patterns_verdicts_identical():
    from repro.bench.patterns import bank_transfer, ticket_lock, work_split

    for source, is_safe in (
        (ticket_lock(2), True),
        (bank_transfer(True), True),
        (bank_transfer(False), False),
        (work_split(2, 2), True),
    ):
        unpruned = _run(source, 0, unwind=4)
        pruned = _run(source, 2, unwind=4)
        assert unpruned.verdict == pruned.verdict
        assert pruned.is_safe == is_safe


def test_lock_heavy_family_drops_twenty_percent():
    unpruned = _run(LOCKED_COUNTER_SAFE, 0)
    pruned = _run(LOCKED_COUNTER_SAFE, 2)
    size = lambda r: r.stats["rf_vars"] + r.stats["ws_vars"]  # noqa: E731
    assert pruned.stats["analysis_pairs_pruned"] > 0
    assert size(pruned) <= 0.8 * size(unpruned)


def test_pruned_stats_are_reported(capsys):
    result = _run(LOCKED_COUNTER_SAFE, 2)
    assert result.stats["analysis_pairs_total"] > 0
    assert result.stats["analysis_pairs_pruned"] > 0
    assert result.stats["analysis_time_s"] >= 0


def test_env_var_default(monkeypatch):
    monkeypatch.setenv("REPRO_PRUNE", "0")
    assert VerifierConfig.zord().prune_level == 0
    monkeypatch.delenv("REPRO_PRUNE")
    assert VerifierConfig.zord().prune_level == 2
    monkeypatch.setenv("REPRO_PRUNE", "garbage")
    assert VerifierConfig.zord().prune_level == 2


def test_invalid_level_rejected():
    with pytest.raises(ValueError):
        VerifierConfig.zord(prune_level=3)
    with pytest.raises(ValueError):
        VerifierConfig.zord(prune_level=-1)
