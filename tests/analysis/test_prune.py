"""The prune plan: rule-level unit tests against the encoder."""

from repro.analysis.prune import build_prune_plan
from repro.encoding.encoder import encode_program
from repro.frontend import build_symbolic_program
from repro.lang import parse
from repro.sat import SolveResult
from tests.verify.programs import LOCKED_COUNTER_SAFE


def _sym(source, unwind=4):
    return build_symbolic_program(parse(source), unwind=unwind, width=8)


def _encode_pair(source, level=2, unwind=4):
    """Encode with and without a plan; return (baseline, pruned)."""
    base = encode_program(_sym(source, unwind))
    sym = _sym(source, unwind)
    pruned = encode_program(sym, prune_plan=build_prune_plan(sym, level))
    return base, pruned


class TestPlanConstruction:
    def test_level_zero_is_empty(self):
        plan = build_prune_plan(_sym(LOCKED_COUNTER_SAFE), 0)
        assert plan.level == 0
        assert plan.po_reach == []

    def test_level_one_skips_lock_facts(self):
        plan = build_prune_plan(_sym(LOCKED_COUNTER_SAFE), 1)
        assert plan.po_reach
        assert not plan.acquire_reads

    def test_level_two_collects_lock_facts(self):
        plan = build_prune_plan(_sym(LOCKED_COUNTER_SAFE), 2)
        assert plan.acquire_reads and plan.acquire_writes

    def test_level_clamped(self):
        plan = build_prune_plan(_sym(LOCKED_COUNTER_SAFE), 99)
        assert plan.level == 2


class TestEncodingShrinks:
    def test_po_ws_rule_halves_sequential_ws_vars(self):
        # All writes to x are in one thread: every WS pair is PO-ordered,
        # so exactly one var per pair survives.
        src = """
        int x = 0;
        thread t { x = 1; x = 2; x = 3; }
        main { start t; join t; assert(x == 3); }
        """
        base, pruned = _encode_pair(src, level=1)
        assert pruned.stats.ws_vars * 2 == base.stats.ws_vars
        assert pruned.stats.analysis_pairs_pruned > 0
        assert (
            pruned.stats.analysis_pairs_total
            == base.stats.analysis_pairs_total
        )

    def test_lock_val_rule_prunes_acquire_rf(self):
        base, pruned = _encode_pair(LOCKED_COUNTER_SAFE, level=2)
        level1 = encode_program(
            (sym := _sym(LOCKED_COUNTER_SAFE)),
            prune_plan=build_prune_plan(sym, 1),
        )
        assert pruned.stats.rf_vars < level1.stats.rf_vars
        assert level1.stats.rf_vars <= base.stats.rf_vars

    def test_guard_shadow_rule(self):
        # Both writes in the branch are under the same guard; the first
        # one is shadowed for the PO-later read even though it is not
        # unconditional (the baseline skip cannot see it).
        src = """
        int x = 0; int f = 0;
        thread t { if (f == 0) { x = 1; x = 2; } }
        thread u { f = 1; }
        main { start t; start u; join t; join u; assert(x != 1); }
        """
        base, pruned = _encode_pair(src, level=1)
        assert pruned.stats.rf_vars < base.stats.rf_vars

    def test_stats_totals_identical_across_levels(self):
        base, pruned = _encode_pair(LOCKED_COUNTER_SAFE, level=2)
        assert (
            base.stats.analysis_pairs_total
            == pruned.stats.analysis_pairs_total
        )
        assert base.stats.analysis_pairs_pruned == 0
        assert pruned.stats.analysis_pairs_pruned > 0


class TestSolverEquivalence:
    def test_sat_answer_identical(self):
        for src in (
            LOCKED_COUNTER_SAFE,
            """
            int x = 0;
            thread t1 { x = x + 1; }
            thread t2 { x = x + 1; }
            main { start t1; start t2; join t1; join t2; assert(x == 2); }
            """,
        ):
            base, pruned = _encode_pair(src)
            a = base.solver.solve()
            b = pruned.solver.solve()
            assert a == b
            assert a in (SolveResult.SAT, SolveResult.UNSAT)
