"""Race detector: verdict classification and source-located warnings."""

from pathlib import Path

from repro.analysis import analyze_program, render_report
from tests.verify.programs import (
    ATOMIC_COUNTER_SAFE,
    LOCKED_COUNTER_SAFE,
    LOST_UPDATE_UNSAFE,
    MAIN_ONLY_SAFE,
    RACE_UNSAFE,
)

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "programs"


class TestVerdicts:
    def test_locked_counter_is_fully_protected(self):
        report = analyze_program(LOCKED_COUNTER_SAFE)
        assert not report.has_races
        assert report.pairs_racy == 0
        assert report.pairs_protected > 0

    def test_atomic_counter_is_fully_protected(self):
        report = analyze_program(ATOMIC_COUNTER_SAFE)
        assert not report.has_races
        assert report.pairs_racy == 0
        assert report.pairs_protected > 0

    def test_racy_counter_reports_races(self):
        report = analyze_program(RACE_UNSAFE)
        assert report.has_races
        assert report.pairs_racy > 0

    def test_lost_update_reports_write_write_race(self):
        report = analyze_program(LOST_UPDATE_UNSAFE)
        assert report.has_races
        assert any(w.both_writes for w in report.warnings)

    def test_single_thread_has_no_pairs_at_all(self):
        report = analyze_program(MAIN_ONLY_SAFE)
        assert report.pairs_total == 0
        assert not report.has_races

    def test_sequentialized_threads_are_ordered(self):
        report = analyze_program(
            """
            int x = 0;
            thread t1 { x = 1; }
            thread t2 { x = 2; }
            main { start t1; join t1; start t2; join t2; assert(x == 2); }
            """
        )
        assert not report.has_races
        assert report.pairs_ordered == report.pairs_total > 0

    def test_counts_are_consistent(self):
        report = analyze_program(RACE_UNSAFE)
        assert (
            report.pairs_ordered + report.pairs_protected + report.pairs_racy
            == report.pairs_total
            == len(report.verdicts)
        )


class TestWarnings:
    def test_source_locations_on_example_file(self):
        source = (EXAMPLES / "counter_racy.c").read_text()
        report = analyze_program(source)
        assert report.has_races
        w = report.warnings[0]
        assert w.pos_a is not None and w.pos_b is not None
        text = w.describe("counter_racy.c")
        assert "counter_racy.c:" in text
        assert "counter" in text

    def test_protected_example_file_is_clean(self):
        source = (EXAMPLES / "counter_safe.c").read_text()
        report = analyze_program(source)
        assert not report.has_races
        assert "no data races" in render_report(report)

    def test_warnings_deduplicated_across_unrolling(self):
        # The loop body races in every unrolled iteration, but the warning
        # is per source-statement pair, not per event pair.
        report = analyze_program(
            """
            int x = 0;
            thread t1 { int i; i = 0; while (i < 3) { x = x + 1; i = i + 1; } }
            thread t2 { x = 9; }
            main { start t1; start t2; join t1; join t2; assert(x >= 0); }
            """,
            unwind=4,
        )
        assert report.has_races
        assert report.pairs_racy > len(report.warnings)

    def test_render_mentions_threads(self):
        report = analyze_program(RACE_UNSAFE)
        text = render_report(report)
        assert "potential data race" in text
