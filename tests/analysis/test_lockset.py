"""Lockset analysis: acquire/release recognition, guards, atomic blocks."""

from repro.analysis.lockset import (
    ATOMIC_PSEUDO_LOCK,
    compute_locksets,
    guard_implies,
)
from repro.encoding import formula as F
from repro.frontend import build_symbolic_program
from repro.lang import parse


def _sym(source, unwind=4):
    return build_symbolic_program(parse(source), unwind=unwind, width=8)


def _accesses(sym, thread, addr):
    for t in sym.threads:
        if t.name == thread:
            return [e for e in t.events if e.addr == addr]
    raise AssertionError(thread)


class TestGuardImplies:
    def test_true_is_implied_by_everything(self):
        g = F.bool_var("g")
        assert guard_implies(g, F.TRUE)
        assert guard_implies(F.TRUE, F.TRUE)

    def test_identity(self):
        g = F.bool_var("g")
        assert guard_implies(g, g)

    def test_conjunct_subset(self):
        a, b = F.bool_var("a"), F.bool_var("b")
        both = F.mk_and(a, b)
        assert guard_implies(both, a)
        assert guard_implies(both, b)
        assert not guard_implies(a, both)

    def test_unrelated_guards(self):
        assert not guard_implies(F.bool_var("a"), F.bool_var("b"))


class TestLocksets:
    def test_critical_section(self):
        sym = _sym(
            """
            int c = 0; lock m;
            thread t { int v; lock(m); v = c; c = v + 1; unlock(m); }
            main { start t; join t; assert(c >= 0); }
            """
        )
        info = compute_locksets(sym)
        for ev in _accesses(sym, "t", "c"):
            assert info.lockset(ev.eid) == frozenset({"m"})

    def test_outside_critical_section(self):
        sym = _sym(
            """
            int c = 0; lock m;
            thread t { c = 1; lock(m); c = 2; unlock(m); c = 3; }
            main { start t; join t; assert(c >= 0); }
            """
        )
        info = compute_locksets(sym)
        pre, inside, post = _accesses(sym, "t", "c")
        assert info.lockset(pre.eid) == frozenset()
        assert info.lockset(inside.eid) == frozenset({"m"})
        assert info.lockset(post.eid) == frozenset()

    def test_acquire_and_release_events_classified(self):
        sym = _sym(
            """
            int c = 0; lock m;
            thread t { lock(m); c = 1; unlock(m); }
            main { start t; join t; assert(c >= 0); }
            """
        )
        info = compute_locksets(sym)
        assert len(info.acquire_reads) == 1
        assert len(info.acquire_writes) == 1
        assert len(info.release_writes) == 1
        # The releasing store itself still holds the lock (the critical
        # section extends through it).
        (rel,) = info.release_writes
        assert "m" in info.lockset(rel)

    def test_nested_locks(self):
        sym = _sym(
            """
            int c = 0; lock m; lock n;
            thread t { lock(m); lock(n); c = 1; unlock(n); c = 2; unlock(m); }
            main { start t; join t; assert(c >= 0); }
            """
        )
        info = compute_locksets(sym)
        both, only_m = _accesses(sym, "t", "c")
        assert info.lockset(both.eid) == frozenset({"m", "n"})
        assert info.lockset(only_m.eid) == frozenset({"m"})

    def test_atomic_block_pseudo_lock(self):
        sym = _sym(
            """
            int c = 0;
            thread t { atomic { c = c + 1; } c = 5; }
            main { start t; join t; assert(c >= 0); }
            """
        )
        info = compute_locksets(sym)
        events = _accesses(sym, "t", "c")
        in_region = [e for e in events if ATOMIC_PSEUDO_LOCK in info.lockset(e.eid)]
        outside = [e for e in events if not info.lockset(e.eid)]
        assert len(in_region) == 2  # the read and the write of c = c + 1
        assert len(outside) == 1

    def test_conditional_acquire_does_not_protect_unconditional_access(self):
        sym = _sym(
            """
            int c = 0; int f = 0; lock m;
            thread t { if (f == 1) { lock(m); } c = 1; }
            main { start t; join t; assert(c >= 0); }
            """
        )
        info = compute_locksets(sym)
        (w,) = _accesses(sym, "t", "c")
        # c = 1 runs whether or not the branch took the lock.
        assert info.lockset(w.eid) == frozenset()
