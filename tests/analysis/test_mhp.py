"""MHP analysis: start/join structure and the reachability bitmasks."""

from repro.analysis.mhp import (
    may_happen_in_parallel,
    ordered,
    po_reachability,
    program_reachability,
)
from repro.frontend import build_symbolic_program
from repro.lang import parse


def _sym(source, unwind=4):
    return build_symbolic_program(parse(source), unwind=unwind, width=8)


def _events_of(sym, thread):
    for t in sym.threads:
        if t.name == thread:
            return [e for e in t.events if e.addr is not None]
    raise AssertionError(thread)


class TestPoReachability:
    def test_chain(self):
        reach = po_reachability(3, [(0, 1), (1, 2)])
        assert reach[0] == 0b110
        assert reach[1] == 0b100
        assert reach[2] == 0

    def test_diamond(self):
        reach = po_reachability(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert reach[0] == 0b1110
        assert ordered(reach, 1, 3) and ordered(reach, 2, 3)
        assert may_happen_in_parallel(reach, 1, 2)

    def test_matches_theory_solver(self):
        from repro.ordering import OrderingTheory

        sym = _sym(
            """
            int x = 0; int y = 0;
            thread t1 { x = 1; }
            thread t2 { y = x; }
            main { start t1; start t2; join t1; join t2; assert(y >= 0); }
            """
        )
        theory = OrderingTheory(len(sym.events), sym.po_edges)
        assert program_reachability(sym) == theory.po_reach


class TestStartJoin:
    SRC = """
    int x = 0;
    thread t1 { x = 1; }
    thread t2 { x = 2; }
    main { x = 5; start t1; join t1; start t2; join t2; assert(x > 0); }
    """

    def test_sequentialized_threads_are_ordered(self):
        sym = _sym(self.SRC)
        reach = program_reachability(sym)
        (w1,) = _events_of(sym, "t1")
        (w2,) = _events_of(sym, "t2")
        # t1 is joined before t2 starts: fully ordered.
        assert ordered(reach, w1.eid, w2.eid)
        assert not may_happen_in_parallel(reach, w1.eid, w2.eid)

    def test_main_accesses_ordered_with_thread(self):
        sym = _sym(self.SRC)
        reach = program_reachability(sym)
        (w1,) = _events_of(sym, "t1")
        main_events = _events_of(sym, "main")
        for ev in main_events:
            assert ordered(reach, ev.eid, w1.eid)

    def test_parallel_threads_are_mhp(self):
        sym = _sym(
            """
            int x = 0;
            thread t1 { x = 1; }
            thread t2 { x = 2; }
            main { start t1; start t2; join t1; join t2; assert(x > 0); }
            """
        )
        reach = program_reachability(sym)
        (w1,) = _events_of(sym, "t1")
        (w2,) = _events_of(sym, "t2")
        assert may_happen_in_parallel(reach, w1.eid, w2.eid)
