"""Regression tests for the witness/replay bugs found by the
differential fuzz sweep (see docs/ORACLE.md):

1. a thread parked at ``nondet()`` before a ``start``/``join`` it gates
   deadlocked the replay schedule (nondet values were only flushed for
   the thread owning the current trace step);
2. an event-free ``atomic`` block produces no encoder events, so the
   witness could never schedule past it;
3. the trace linearization could interleave an outside read between an
   atomic region's read and write -- legal in the partial order, but the
   replayer commits a region as one indivisible step;
4. contracting a *guard-disabled* atomic region crashed linearization:
   disabled events can carry spurious-but-consistent ordering edges
   (the IDL baseline's upfront FR encoding leaves disabled-event atoms
   unconstrained), so forcing their adjacency manufactured a cycle;
5. even with disabled events barred from the groups, a spurious edge
   chain *through* disabled intermediates could wrap around an enabled
   contracted region and close the same cycle -- disabled events' non-PO
   edges must not constrain the linearization at all.
"""

import pytest

from repro.lang import parse
from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.icd import IncrementalCycleDetector
from repro.smc.witness_replay import replay_witness
from repro.verify import Verdict, VerifierConfig, verify
from repro.verify.witness import _atomic_groups, _linearize


def unsafe_witness(src, unwind=4, width=8):
    result = verify(src, VerifierConfig(unwind=unwind, width=width))
    assert result.verdict == Verdict.UNSAFE, result.diagnostic
    assert result.witness is not None and result.witness.steps
    return result.witness


class TestNondetFlushing:
    def test_nondet_before_start(self):
        # main parks at nondet() before starting t0; the first trace step
        # belongs to t0.  Bug 1 deadlocked here.
        src = """int g = 0;
thread t0 { g = 1; }
main { int c; c = nondet(); assume(c == c); start t0; join t0; assert(g == 0); }
"""
        witness = unsafe_witness(src)
        assert replay_witness(src, witness, width=8, unwind=4) is True

    def test_nondet_blocking_join(self):
        # t0's trailing nondet() must be flushed before main's join can
        # proceed to the asserting read.
        src = """int g = 0;
thread t0 { int c; g = 1; c = nondet(); }
main { start t0; join t0; assert(g == 0); }
"""
        witness = unsafe_witness(src)
        assert replay_witness(src, witness, width=8, unwind=4) is True

    def test_nondet_chain_fixpoint(self):
        # Feeding main's nondet starts t0, whose own nondet gates its only
        # write: resolving one park exposes the next (the fixpoint case).
        src = """int g = 0;
thread t0 { int d; d = nondet(); g = 1; }
main { int c; c = nondet(); start t0; join t0; assert(g == 0); }
"""
        witness = unsafe_witness(src)
        assert replay_witness(src, witness, width=8, unwind=4) is True


class TestEventFreeAtomic:
    def test_empty_atomic_block(self):
        src = """int g = 0;
thread t0 { atomic { } g = 1; }
main { start t0; join t0; assert(g == 0); }
"""
        witness = unsafe_witness(src)
        assert replay_witness(src, witness, width=8, unwind=4) is True

    def test_local_only_atomic_block(self):
        src = """int g = 0;
thread t0 { int x; atomic { x = 5; } g = x; }
main { start t0; join t0; assert(g == 0); }
"""
        witness = unsafe_witness(src)
        assert replay_witness(src, witness, width=8, unwind=4) is True


class TestAtomicRegionAdjacency:
    SRC = """int g = 0;
thread t0 { atomic { g = g + 1; } }
thread t1 { int r; r = g; r = g; }
main { start t0; start t1; join t0; join t1; assert(g == 0); }
"""

    def test_region_events_adjacent_in_trace(self):
        witness = unsafe_witness(self.SRC)
        # The atomic region's read and write must be consecutive steps.
        t0_positions = [
            i for i, s in enumerate(witness.steps) if s.thread == "t0"
        ]
        assert t0_positions, "t0's atomic region must appear in the trace"
        lo, hi = min(t0_positions), max(t0_positions)
        assert hi - lo == len(t0_positions) - 1, (
            f"atomic region interleaved: t0 steps at {t0_positions}"
        )

    def test_replay_accepts_trace(self):
        witness = unsafe_witness(self.SRC)
        assert replay_witness(self.SRC, witness, width=8, unwind=4) is True

    def test_replay_rejects_corrupted_value(self):
        # Sanity-check the oracle itself: a witness claiming a read value
        # the concrete machine cannot observe must be rejected.
        witness = unsafe_witness(self.SRC)
        reads = [s for s in witness.steps if s.thread == "t1" and s.kind == "R"]
        assert reads, "t1 must read g in the trace"
        reads[0].value = 77  # g is only ever 0 or 1
        with pytest.raises(AssertionError):
            replay_witness(self.SRC, witness, width=8, unwind=4)


class TestDisabledRegionContraction:
    # Minimized by the shrinker from fuzz seed 815: t0's atomic region is
    # conditional, and under the IDL baseline's full FR encoding its
    # disabled events carried ordering edges that made the contracted
    # graph cyclic ("accepted event graph must be acyclic").
    SRC = """int g0;
lock m0;
thread t0 {
    int l0 = 0;
    if (!(0 * 1 != l0 - g0)) {
        atomic { g0 = g0 - 1; }
    }
}
thread t1 {
    atomic { g0 = g0 - 2; }
}
thread t2 {
    int l5 = nondet() * 2;
    l5 = g0 + g0 + g0;
    l5 = 1 + l5 + l5;
    int l6 = 0;
    while (l6 < 3) {
        atomic { g0 = g0 - l5; }
        l6 = l6 + 1;
    }
}
main {
    start t0;
    start t1;
    int l7 = g0;
    start t2;
    join t0;
    join t1;
    join t2;
    assert(l7 + g0 == g0 * 0);
}
"""

    def test_idl_witness_extraction_succeeds(self):
        result = verify(self.SRC, VerifierConfig.cbmc(unwind=4, width=8))
        assert result.verdict == Verdict.UNSAFE, result.diagnostic
        assert result.witness is not None and result.witness.steps
        assert replay_witness(self.SRC, result.witness, width=8, unwind=4) is True

    def test_all_quick_engines_agree_and_replay(self):
        from repro.oracle.harness import run_program
        from repro.oracle.matrix import build_matrix

        _, findings = run_program(self.SRC, build_matrix("quick"), seed=815)
        assert findings == []


class TestSpuriousDisabledEdgeChain:
    # Minimized by the shrinker from fuzz seed 7809: t0's atomic region
    # is *enabled* in the model, but t1's branch events are disabled and
    # (under the IDL baseline's upfront FR encoding) carry spurious FR
    # atoms.  A chain region-read -> disabled write -> po -> disabled
    # read -> region-write wrapped around the contracted super-node and
    # crashed linearization even after disabled events were barred from
    # the groups themselves.
    SRC = """int g0 = 1;
thread t0 {
    assume(g0 - 3 > nondet() + nondet());
    atomic { g0 = g0 - 1; }
}
thread t1 {
    if (!(2 > nondet() - nondet())) {
        if (!(g0 > 1 * 2)) { g0 = g0 + 2; } else { g0 = g0; }
    }
}
main { start t0; start t1; join t0; join t1; assert(g0 < 0); }
"""

    def test_idl_witness_extraction_succeeds(self):
        result = verify(self.SRC, VerifierConfig.cbmc(unwind=4, width=8))
        assert result.verdict == Verdict.UNSAFE, result.diagnostic
        assert result.witness is not None and result.witness.steps
        assert replay_witness(self.SRC, result.witness, width=8, unwind=4) is True

    def test_all_quick_engines_agree_and_replay(self):
        from repro.oracle.harness import run_program
        from repro.oracle.matrix import build_matrix

        _, findings = run_program(self.SRC, build_matrix("quick"), seed=7809)
        assert findings == []


class TestLinearizeContraction:
    def _graph(self):
        # 0: outside write, 1: region read, 2: region write, 3: outside
        # read ordered 0 -> 3 -> 2 (the read must precede the region's
        # write), plus 0 -> 1 into the region.
        g = EventGraph(4)
        det = IncrementalCycleDetector(g)
        for src, dst in ((0, 1), (0, 3), (3, 2), (1, 2)):
            det.add_edge(Edge(src, dst, EdgeKind.PO))
        return g

    def test_group_members_adjacent(self):
        g = self._graph()
        pos = _linearize(g, groups=[[1, 2]])
        assert pos[2] == pos[1] + 1
        assert sorted(pos.values()) == list(range(4))
        # All active edges still respected across the contraction.
        for edges in g.out:
            for e in edges:
                if e.active:
                    assert pos[e.src] < pos[e.dst]

    def test_no_groups_is_plain_topo(self):
        g = self._graph()
        pos = _linearize(g)
        assert sorted(pos.values()) == list(range(4))
        for edges in g.out:
            for e in edges:
                if e.active:
                    assert pos[e.src] < pos[e.dst]

    def _wrapped_region_graph(self):
        # Region (1, 2) with a spurious FR chain through disabled events
        # 3 and 4 wrapped around it: 1 -fr-> 3 -po-> 4 -fr-> 2.  The
        # uncontracted graph is acyclic, but contracting (1, 2) closes
        # the loop unless the disabled events' non-PO edges are ignored.
        g = EventGraph(6)
        det = IncrementalCycleDetector(g)
        det.add_edge(Edge(0, 1, EdgeKind.PO))
        det.add_edge(Edge(1, 2, EdgeKind.PO))
        det.add_edge(Edge(0, 3, EdgeKind.PO))
        det.add_edge(Edge(3, 4, EdgeKind.PO))
        det.add_edge(Edge(4, 5, EdgeKind.PO))
        det.add_edge(Edge(1, 3, EdgeKind.FR, (8,), 8))
        det.add_edge(Edge(4, 2, EdgeKind.FR, (9,), 9))
        return g

    def test_spurious_chain_would_cycle_without_disabled(self):
        g = self._wrapped_region_graph()
        with pytest.raises(AssertionError):
            _linearize(g, groups=[[1, 2]])

    def test_disabled_drops_spurious_edges_but_keeps_po(self):
        g = self._wrapped_region_graph()
        pos = _linearize(g, groups=[[1, 2]], disabled={3, 4})
        assert sorted(pos.values()) == list(range(6))
        assert pos[2] == pos[1] + 1  # region stays contracted
        # PO through the disabled nodes still orders 0 before 5.
        assert pos[0] < pos[3] < pos[4] < pos[5]
        assert pos[0] < pos[1]

    def test_disabled_member_never_contracted(self):
        g = self._wrapped_region_graph()
        # A group clipped below two enabled members degenerates to no
        # contraction at all (the seed-815 fix, now routed via disabled).
        pos = _linearize(g, groups=[[2, 3]], disabled={3, 4})
        assert sorted(pos.values()) == list(range(6))

    def test_atomic_groups_merge_overlaps(self):
        class Group:
            def __init__(self, r, w):
                self.read_eid, self.write_eid = r, w
                self.addr = "m"

        class Sym:
            rmw_groups = [Group(1, 2), Group(2, 4)]
            atomic_regions = [[6, 7, 8], [9]]

        groups = _atomic_groups(Sym())
        assert sorted(map(tuple, groups)) == [(1, 2, 4), (6, 7, 8)]
