"""The delta-debugging shrinker: minimization, validity preservation."""

from repro.lang import parse
from repro.lang.sema import check_program
from repro.lang.unparse import unparse
from repro.oracle.generator import generate_source
from repro.oracle.shrinker import shrink, shrink_source


class TestShrink:
    def test_minimizes_to_predicate_core(self):
        # Predicate: an atomic block exists.  Everything else should go.
        src = """int g0 = 0, g1 = 0;
lock m0;
thread t0 { g1 = 3; atomic { g0 = g0 + 1; } g1 = g1 + 1; }
thread t1 { lock(m0); g1 = 2; unlock(m0); }
main { start t0; start t1; join t0; join t1; assert(g0 == 1); }
"""
        out = shrink_source(src, lambda s: "atomic" in s)
        assert "atomic" in out
        assert "t1" not in out  # the unrelated thread is gone
        assert "lock(" not in out
        # Compare sizes in normalized (unparsed) form: the shrinker's
        # output is pretty-printed, the input above is hand-compacted.
        assert len(out) < len(unparse(parse(src)))

    def test_preserves_validity_at_every_step(self):
        seen = []

        def predicate(p):
            check_program(p)  # raises if the shrinker handed us junk
            seen.append(p)
            return len(p.threads) >= 1

        program = parse(generate_source(3))
        out = shrink(program, predicate, max_checks=200)
        check_program(out)
        assert seen  # the predicate actually ran

    def test_uninteresting_input_returned_unchanged(self):
        program = parse("int g; main { assert(g == 0); }")
        assert shrink(program, lambda p: False) is program

    def test_start_join_consistency_kept(self):
        # Threads are only removed together with their start/join.
        src = """int g;
thread t0 { g = 1; }
thread t1 { g = 2; }
main { start t0; start t1; join t0; join t1; assert(g == 0); }
"""

        def predicate(s):
            p = parse(s)
            check_program(p)
            return "t0" in s

        out = shrink_source(src, predicate)
        assert "t1" not in out
        assert "start t0" in out and "join t0" in out

    def test_lock_regions_stay_balanced(self):
        src = """int g;
lock m;
thread t0 { lock(m); g = 1; unlock(m); g = 2; }
main { start t0; join t0; assert(g == 0); }
"""

        def predicate(s):
            acquires = s.count("lock(m)") - s.count("unlock(m)")
            assert acquires == s.count("unlock(m)")
            return "g = 1" in s

        out = shrink_source(src, predicate)
        assert "g = 1" in out

    def test_expression_simplification(self):
        src = """int g;
main { g = (1 + 2) * 2 + 0; assert(g == 6); }
"""
        out = shrink_source(src, lambda s: "assert" in s)
        # The assignment's right-hand side should have collapsed.
        assert "(1 + 2)" not in out
