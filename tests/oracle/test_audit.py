"""The invariant auditor: helper checks, wiring, and the trail-sync
regression around from-read derivation conflicts."""

import pytest

from repro.oracle.audit import (
    AuditError,
    audit_enabled,
    check_conflict_clause,
    check_icd_labels,
    check_propagation_reason,
    check_theory_sync,
    enable_audit,
)
from repro.ordering import OrderingTheory
from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.icd import IncrementalCycleDetector
from repro.sat import SolveResult, Solver
from repro.verify import Verdict, VerifierConfig, verify

UNSAFE_SRC = """int counter = 0;
thread inc1 { int t; t = counter; counter = t + 1; }
thread inc2 { int t; t = counter; counter = t + 1; }
main { start inc1; start inc2; join inc1; join inc2; assert(counter == 2); }
"""

SAFE_SRC = """int g = 0;
lock m;
thread a { lock(m); g = g + 1; unlock(m); }
thread b { lock(m); g = g + 1; unlock(m); }
main { start a; start b; join a; join b; assert(g == 2); }
"""


def make_theory(n, po_edges, **kw):
    theory = OrderingTheory(n, po_edges, **kw)
    solver = Solver(theory)
    return solver, theory


class TestAuditEnabled:
    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        assert audit_enabled() is False
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert audit_enabled() is True
        monkeypatch.setenv("REPRO_AUDIT", "off")
        assert audit_enabled() is False

    def test_config_resolves_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        assert VerifierConfig().audit is True
        monkeypatch.delenv("REPRO_AUDIT")
        assert VerifierConfig().audit is False
        assert VerifierConfig(audit=True).audit is True

    def test_enable_audit_reaches_all_layers(self, monkeypatch):
        monkeypatch.delenv("REPRO_AUDIT", raising=False)
        solver, theory = make_theory(2, [])
        assert solver.audit is False and theory.audit is False

        class Enc:
            pass

        enc = Enc()
        enc.solver, enc.theory = solver, theory
        enable_audit(enc)
        assert solver.audit and theory.audit and theory.detector.audit


class TestIcdLabels:
    def test_consistent_graph_passes(self):
        g = EventGraph(4)
        det = IncrementalCycleDetector(g)
        det.add_edge(Edge(2, 1, EdgeKind.PO))
        det.add_edge(Edge(1, 3, EdgeKind.PO))
        check_icd_labels(g)

    def test_corrupted_label_caught(self):
        g = EventGraph(3)
        det = IncrementalCycleDetector(g)
        det.add_edge(Edge(0, 1, EdgeKind.PO))
        g.ord[0], g.ord[1] = g.ord[1], g.ord[0]  # break the discipline
        with pytest.raises(AuditError):
            check_icd_labels(g)

    def test_non_permutation_caught(self):
        g = EventGraph(3)
        g.ord[0] = g.ord[1]
        with pytest.raises(AuditError):
            check_icd_labels(g)

    def test_detector_window_audit(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        g = EventGraph(5)
        det = IncrementalCycleDetector(g)
        assert det.audit is True
        # Force real reorders; a correct reorder must not raise.
        det.add_edge(Edge(3, 2, EdgeKind.PO))
        det.add_edge(Edge(2, 1, EdgeKind.PO))
        det.add_edge(Edge(4, 0, EdgeKind.PO))
        check_icd_labels(g)


class TestTheorySync:
    def test_clean_theory_passes(self):
        solver, theory = make_theory(3, [(0, 1)])
        v = solver.new_var(relevant=True)
        theory.add_rf_var(v, 1, 2)
        assert solver.solve([v]) == SolveResult.SAT
        check_theory_sync(theory)

    def test_popped_index_desync_caught(self):
        solver, theory = make_theory(3, [])
        v = solver.new_var(relevant=True)
        theory.add_rf_var(v, 0, 1)
        theory.assign(v, 1)
        theory._out_rf[0].pop()  # simulate a lost index entry
        with pytest.raises(AuditError):
            check_theory_sync(theory)

    def test_stale_trail_entry_caught(self):
        solver, theory = make_theory(3, [])
        v = solver.new_var(relevant=True)
        theory.add_ws_var(v, 0, 1)
        theory.assign(v, 1)
        edge = theory._trail[-1][0]
        # Deactivate behind the theory's back: trail and graph now disagree.
        theory.graph.deactivate(edge)
        with pytest.raises(AuditError):
            check_theory_sync(theory)


class TestFrConflictTrailSync:
    """Regression: when ``_derive_from_read`` hits a cycle *after* the
    parent RF/WS edge was already pushed (trail + partner indices), the
    theory state must stay consistent through the conflict and across the
    subsequent backjump."""

    def _setup(self):
        # PO: 2 -> 1.  RF: 0 -> 1.  WS: 0 -> 2.  Activating both variable
        # edges derives FR (1, 2) by Axiom 2, which closes a cycle with
        # the PO edge -- inside the *second* activation, whose parent edge
        # is already on the trail.
        solver, theory = make_theory(3, [(2, 1)])
        rf = solver.new_var(relevant=True)
        theory.add_rf_var(rf, 0, 1)
        ws = solver.new_var(relevant=True)
        theory.add_ws_var(ws, 0, 2)
        return solver, theory, rf, ws

    def test_conflict_leaves_state_consistent(self):
        _, theory, rf, ws = self._setup()
        res = theory.assign(rf, level=1)
        assert not res.conflicts
        check_theory_sync(theory)
        res = theory.assign(ws, level=2)
        assert res.conflicts, "derived FR must close the PO cycle"
        # Parent WS edge stays active (the SAT core will backjump); the
        # trail, indices and graph must nonetheless agree.
        check_theory_sync(theory)
        check_icd_labels(theory.graph)

    def test_backjump_after_fr_conflict_restores(self):
        _, theory, rf, ws = self._setup()
        theory.assign(rf, level=1)
        theory.assign(ws, level=2)
        theory.backjump(1)
        check_theory_sync(theory)
        assert len(theory._out_ws[0]) == 0
        assert len(theory._out_rf[0]) == 1
        theory.backjump(0)
        check_theory_sync(theory)
        assert theory._trail == []
        assert theory.graph.n_active_edges == 1  # the PO edge

    def test_end_to_end_under_solver(self):
        solver, theory, rf, ws = self._setup()
        solver.add_clause([rf])
        solver.add_clause([ws])
        assert solver.solve() == SolveResult.UNSAT
        check_theory_sync(theory)

    def test_audited_solve(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        solver, theory, rf, ws = self._setup()
        assert theory.audit is True
        solver.add_clause([rf])
        solver.add_clause([ws])
        assert solver.solve() == SolveResult.UNSAT


class TestSatChecks:
    def test_conflict_clause_falsified_ok(self):
        values = {1: True, 2: True}

        def value_of(lit):
            v = values.get(abs(lit))
            return v if v is None or lit > 0 else not v

        check_conflict_clause(value_of, [-1, -2])
        with pytest.raises(AuditError):
            check_conflict_clause(value_of, [-1, 2])
        with pytest.raises(AuditError):
            check_conflict_clause(value_of, [-1, 3])  # 3 unassigned

    def test_propagation_reason(self):
        values = {1: True, 2: False}

        def value_of(lit):
            v = values.get(abs(lit))
            return v if v is None or lit > 0 else not v

        check_propagation_reason(value_of, 3, [3, -1, 2])
        with pytest.raises(AuditError):
            check_propagation_reason(value_of, 3, [-1, 2])  # lit missing
        with pytest.raises(AuditError):
            check_propagation_reason(value_of, 3, [3, 1])  # 1 is true


class TestEndToEndAudit:
    """Audited verification of whole programs: verdicts unchanged, and a
    deliberately broken invariant surfaces as a contained ERROR."""

    def test_verdicts_unchanged_under_audit(self):
        for src, expected in ((UNSAFE_SRC, Verdict.UNSAFE), (SAFE_SRC, Verdict.SAFE)):
            plain = verify(src, VerifierConfig(audit=False))
            audited = verify(src, VerifierConfig(audit=True))
            assert plain.verdict == expected
            assert audited.verdict == expected

    def test_audit_env_flows_through_verify(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        result = verify(UNSAFE_SRC, VerifierConfig())
        assert result.verdict == Verdict.UNSAFE

    def test_unsat_core_audit_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "1")
        solver = Solver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a, b])
        assert solver.solve(assumptions=[-b]) == SolveResult.UNSAT
        assert solver.unsat_core  # audited internally without recursion

    def test_ablations_pass_audited(self):
        for preset in ("zord", "zord-", "zord'", "zord-tarjan", "cbmc"):
            from repro.verify.config import PRESETS

            cfg = PRESETS[preset](audit=True, unwind=3)
            assert verify(UNSAFE_SRC, cfg).verdict == Verdict.UNSAFE
