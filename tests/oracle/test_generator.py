"""The random program generator: validity, determinism, coverage."""

from repro.lang import parse
from repro.lang.sema import check_program
from repro.lang.unparse import unparse
from repro.oracle.generator import GenConfig, generate_program, generate_source

N_SEEDS = 200


class TestValidity:
    def test_every_seed_parses_and_checks(self):
        for seed in range(N_SEEDS):
            program = parse(generate_source(seed))
            check_program(program)

    def test_round_trips_through_unparse(self):
        for seed in range(0, N_SEEDS, 7):
            src = generate_source(seed)
            assert unparse(parse(src)) == src


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in (0, 1, 17, 99, 12345):
            assert generate_source(seed) == generate_source(seed)

    def test_different_seeds_differ_somewhere(self):
        sources = {generate_source(seed) for seed in range(50)}
        assert len(sources) > 25  # collisions are fine, monoculture is not


class TestCoverage:
    """The corpus must exercise every language feature it claims to."""

    def _corpus(self):
        return [generate_source(seed) for seed in range(N_SEEDS)]

    def test_features_all_appear(self):
        corpus = "\n".join(self._corpus())
        for token in (
            "atomic",
            "lock(",
            "unlock(",
            "while",
            "if",
            "nondet()",
            "assume(",
            "assert(",
            "fence;",
            "start ",
            "join ",
        ):
            assert token in corpus, f"no generated program uses {token!r}"

    def test_every_program_has_an_assertion(self):
        for src in self._corpus():
            assert "assert(" in src

    def test_multi_threaded_programs_exist(self):
        assert any("thread t1" in src for src in self._corpus())


class TestGenConfig:
    def test_feature_gates_respected(self):
        cfg = GenConfig(
            allow_loops=False,
            allow_atomics=False,
            allow_locks=False,
            allow_nondet=False,
            allow_fences=False,
        )
        for seed in range(60):
            src = generate_source(seed, cfg)
            for token in ("while", "atomic", "lock(", "nondet()", "fence;"):
                assert token not in src

    def test_thread_cap(self):
        cfg = GenConfig(max_threads=1)
        for seed in range(30):
            program = generate_program(seed, cfg)
            assert len(program.threads) == 1
