"""The differential harness: finding classification and the fuzz driver."""

import json

from repro.oracle.harness import _consensus, fuzz, run_program
from repro import api as api_mod  # run_program verifies via the repro.api facade
from repro.oracle.matrix import EngineSpec, build_matrix
from repro.oracle.report import EngineOutcome, FuzzReport
from repro.verify import Verdict
from repro.verify.witness import Trace, TraceStep

RACY = """int counter = 0;
thread inc1 { int t; t = counter; counter = t + 1; }
thread inc2 { int t; t = counter; counter = t + 1; }
main { start inc1; start inc2; join inc1; join inc2; assert(counter == 2); }
"""

SAFE = """int g = 0;
lock m;
thread a { lock(m); g = g + 1; unlock(m); }
thread b { lock(m); g = g + 1; unlock(m); }
main { start a; start b; join a; join b; assert(g == 2); }
"""


class FakeResult:
    def __init__(self, verdict, diagnostic=None, witness=None):
        self.verdict = verdict
        self.diagnostic = diagnostic
        self.witness = witness


def fake_spec(key="fake", **kw):
    kw.setdefault("preset", "zord")
    return EngineSpec(key=key, **kw)


class TestRunProgram:
    def test_racy_program_clean_through_quick_matrix(self):
        outcomes, findings = run_program(RACY, build_matrix("quick"), seed=0)
        assert findings == []
        assert all(o.verdict == Verdict.UNSAFE for o in outcomes)
        replayed = [o for o in outcomes if o.replay_ok is not None]
        assert replayed and all(o.replay_ok for o in replayed)

    def test_safe_program_clean(self):
        outcomes, findings = run_program(SAFE, build_matrix("quick"))
        assert findings == []
        assert all(o.verdict == Verdict.SAFE for o in outcomes)

    def test_verdict_mismatch_detected(self, monkeypatch):
        answers = iter([Verdict.SAFE, Verdict.UNSAFE])
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(next(answers)),
        )
        specs = [fake_spec("a"), fake_spec("b")]
        _, findings = run_program(RACY, specs, replay=False)
        assert [f.kind for f in findings] == ["verdict_mismatch"]
        assert "a" in findings[0].detail and "b" in findings[0].detail

    def test_unknown_never_indicts(self, monkeypatch):
        answers = iter([Verdict.SAFE, Verdict.UNKNOWN])
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(next(answers)),
        )
        _, findings = run_program(RACY, [fake_spec("a"), fake_spec("b")], replay=False)
        assert findings == []

    def test_unsound_safe_engine_cannot_indict(self, monkeypatch):
        answers = iter([Verdict.SAFE, Verdict.UNSAFE])
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(next(answers)),
        )
        specs = [fake_spec("a", sound_safe=False), fake_spec("b")]
        _, findings = run_program(RACY, specs, replay=False)
        assert findings == []

    def test_engine_error_classified(self, monkeypatch):
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(Verdict.ERROR, diagnostic="boom"),
        )
        _, findings = run_program(RACY, [fake_spec()], replay=False)
        assert [f.kind for f in findings] == ["engine_error"]

    def test_audit_violation_classified(self, monkeypatch):
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(
                Verdict.ERROR, diagnostic="AuditError: ord not a permutation"
            ),
        )
        _, findings = run_program(RACY, [fake_spec()], replay=False)
        assert [f.kind for f in findings] == ["audit_violation"]

    def test_bad_witness_classified(self, monkeypatch):
        # An UNSAFE verdict whose witness claims an impossible read.
        bogus = Trace(steps=[TraceStep("inc1", "R", "counter", 99, eid=0)])
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(Verdict.UNSAFE, witness=bogus),
        )
        specs = [fake_spec(replayable=True)]
        _, findings = run_program(RACY, specs, replay=True)
        assert [f.kind for f in findings] == ["bad_witness"]


class TestConsensus:
    def test_rules(self):
        def out(v):
            return EngineOutcome(key="k", verdict=v, wall_s=0.0)

        assert _consensus([out(Verdict.UNSAFE), out(Verdict.SAFE)]) == Verdict.UNSAFE
        assert _consensus([out(Verdict.SAFE), out(Verdict.SAFE)]) == Verdict.SAFE
        assert _consensus([out(Verdict.SAFE), out(Verdict.UNKNOWN)]) == Verdict.SAFE
        assert _consensus([out(Verdict.UNKNOWN)]) == Verdict.UNKNOWN


class TestFuzz:
    def test_small_clean_run(self):
        report = fuzz(seeds=range(3), matrix="quick", shrink=False)
        assert report.ok
        assert report.seeds_run == 3
        assert report.engine_runs == 3 * len(build_matrix("quick"))
        assert (
            report.programs_safe + report.programs_unsafe + report.programs_unknown
            == 3
        )

    def test_max_findings_stops_early(self, monkeypatch):
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(Verdict.ERROR, diagnostic="boom"),
        )
        report = fuzz(
            seeds=range(50),
            matrix=[fake_spec()],
            shrink=False,
            max_findings=2,
        )
        assert not report.ok
        assert len(report.findings) >= 2
        assert report.seeds_run < 50

    def test_shrunk_finding_is_minimized(self, monkeypatch):
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(Verdict.ERROR, diagnostic="boom"),
        )
        report = fuzz(
            seeds=range(1), matrix=[fake_spec()], shrink=True, shrink_checks=30,
            max_findings=1,
        )
        f = report.findings[0]
        assert f.shrunk_source is not None
        assert len(f.shrunk_source) < len(f.source)

    def test_progress_callback(self):
        seen = []
        fuzz(
            seeds=range(2),
            matrix="quick",
            shrink=False,
            progress=lambda seed, rep: seen.append(seed),
        )
        assert seen == [0, 1]

    def test_report_jsonl(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            api_mod, "verify",
            lambda src, cfg: FakeResult(Verdict.ERROR, diagnostic="boom"),
        )
        report = fuzz(
            seeds=range(1), matrix=[fake_spec()], shrink=False, max_findings=1
        )
        out = tmp_path / "findings.jsonl"
        report.write_jsonl(str(out))
        lines = [json.loads(l) for l in out.read_text().splitlines() if l]
        assert lines[-1].get("summary") or "seeds_run" in lines[-1]
        assert any(rec.get("kind") == "engine_error" for rec in lines[:-1])

    def test_report_format_mentions_counts(self):
        report = FuzzReport(seeds_run=5, engine_runs=15)
        text = report.format()
        assert "5" in text and "15" in text
