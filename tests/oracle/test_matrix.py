"""Engine matrices: spec integrity and config construction."""

import pytest

from repro.oracle.matrix import EngineSpec, build_matrix
from repro.verify.config import VerifierConfig


class TestBuildMatrix:
    def test_known_names(self):
        for name in ("quick", "smt", "full"):
            specs = build_matrix(name)
            assert specs and all(isinstance(s, EngineSpec) for s in specs)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            build_matrix("nope")

    def test_keys_unique_per_matrix(self):
        for name in ("quick", "smt", "full"):
            keys = [s.key for s in build_matrix(name)]
            assert len(keys) == len(set(keys)), f"duplicate key in {name}"

    def test_matrices_nest(self):
        quick = {s.key for s in build_matrix("quick")}
        smt = {s.key for s in build_matrix("smt")}
        full = {s.key for s in build_matrix("full")}
        assert quick < smt < full

    def test_unsound_flags(self):
        by_key = {s.key: s for s in build_matrix("full")}
        assert by_key["lazy-cseq"].sound_safe is False
        assert all(
            s.sound_unsafe for s in by_key.values()
        ), "no engine claims unsound UNSAFE"

    def test_replayable_engines_exist(self):
        assert any(s.replayable for s in build_matrix("quick"))


class TestMakeConfig:
    def test_returns_config_with_requested_knobs(self):
        spec = build_matrix("quick")[0]
        cfg = spec.make_config(unwind=3, width=6, time_limit_s=2.5)
        assert isinstance(cfg, VerifierConfig)
        assert cfg.unwind == 3
        assert cfg.width == 6
        assert cfg.time_limit_s == 2.5

    def test_overrides_applied(self):
        by_key = {s.key: s for s in build_matrix("smt")}
        assert by_key["zord/prune0"].make_config().prune_level == 0
        assert by_key["zord/prune1"].make_config().prune_level == 1
        # The schedule is clamped to the final unwind bound.
        sched = by_key["zord/sched"].make_config(unwind=16).unwind_schedule
        assert sched == (1, 2, 4, 8, 16)
        assert by_key["zord/sched"].make_config(unwind=4).unwind_schedule == (1, 2, 4)

    def test_audit_flag_threads_through(self):
        spec = build_matrix("quick")[0]
        assert spec.make_config(audit=True).audit is True
        assert spec.make_config(audit=False).audit is False

    def test_env_independent(self, monkeypatch):
        # make_config(audit=False) must not be flipped by the env var.
        monkeypatch.setenv("REPRO_AUDIT", "1")
        spec = build_matrix("quick")[0]
        assert spec.make_config(audit=False).audit is False

    def test_portfolio_specs(self):
        by_key = {s.key: s for s in build_matrix("full")}
        assert by_key["portfolio/serial"].portfolio
        assert by_key["portfolio/parallel"].jobs == 2
