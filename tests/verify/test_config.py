"""VerifierConfig preset integrity."""

import dataclasses

import pytest

from repro.verify import VerifierConfig, VerificationResult, Verdict


class TestPresets:
    def test_preset_names(self):
        assert VerifierConfig.zord().name == "zord"
        assert VerifierConfig.zord_minus().name == "zord-"
        assert VerifierConfig.zord_prime().name == "zord'"
        assert VerifierConfig.zord_tarjan().name == "zord-tarjan"
        assert VerifierConfig.cbmc().name == "cbmc"

    def test_zord_flags(self):
        c = VerifierConfig.zord()
        assert c.engine == "smt" and c.theory == "ord"
        assert c.detector == "icd" and c.unit_edge and not c.fr_encoding

    def test_zord_minus_encodes_fr(self):
        assert VerifierConfig.zord_minus().fr_encoding is True

    def test_zord_prime_disables_unit_edge(self):
        assert VerifierConfig.zord_prime().unit_edge is False

    def test_zord_tarjan_detector(self):
        assert VerifierConfig.zord_tarjan().detector == "tarjan"

    def test_cbmc_uses_idl_with_fr(self):
        c = VerifierConfig.cbmc()
        assert c.theory == "idl" and c.fr_encoding is True

    def test_engines_of_non_smt_presets(self):
        assert VerifierConfig.dartagnan().engine == "closure"
        assert VerifierConfig.cpa_seq().engine == "explicit"
        assert VerifierConfig.lazy_cseq().engine == "lazyseq"
        assert VerifierConfig.nidhugg_rfsc().engine == "smc-rfsc"
        assert VerifierConfig.genmc().engine == "smc-genmc"

    def test_presets_accept_common_kwargs(self):
        c = VerifierConfig.zord(unwind=3, width=16, time_limit_s=1.0)
        assert (c.unwind, c.width, c.time_limit_s) == (3, 16, 1.0)

    def test_with_overrides(self):
        c = VerifierConfig.zord().with_(unwind=2)
        assert c.unwind == 2 and c.name == "zord"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            VerifierConfig.zord().unwind = 3


class TestResultStr:
    def test_str_contains_verdict_and_time(self):
        r = VerificationResult(Verdict.SAFE, "zord", wall_time_s=1.5)
        s = str(r)
        assert "SAFE" in s and "zord" in s and "1.500" in s
