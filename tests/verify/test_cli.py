"""CLI tests (repro-verify)."""

import pytest

from repro.cli import main
from tests.verify.programs import PAPER_FIG2, RACE_UNSAFE


@pytest.fixture()
def program_file(tmp_path):
    def write(source):
        path = tmp_path / "prog.c"
        path.write_text(source)
        return str(path)

    return write


class TestCli:
    def test_safe_program(self, program_file, capsys):
        rc = main([program_file(PAPER_FIG2)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SAFE" in out

    def test_unsafe_with_witness(self, program_file, capsys):
        rc = main([program_file(RACE_UNSAFE), "--witness"])
        out = capsys.readouterr().out
        assert rc == 10  # UNSAFE is a distinct nonzero exit code
        assert "UNSAFE" in out
        assert "counterexample trace" in out

    def test_stats_flag(self, program_file, capsys):
        main([program_file(PAPER_FIG2), "--stats"])
        out = capsys.readouterr().out
        assert "rf_vars" in out

    def test_engine_selection(self, program_file, capsys):
        for engine in ("cbmc", "dartagnan", "cpa-seq", "nidhugg-rfsc"):
            rc = main([program_file(PAPER_FIG2), "--engine", engine])
            assert rc == 0
            assert "SAFE" in capsys.readouterr().out

    def test_unwind_and_width_flags(self, program_file, capsys):
        src = "int x = 0; main { x = 127; x = x + 1; assert(x == 128); }"
        rc = main([program_file(src), "--width", "16"])
        assert rc == 0
        assert "SAFE" in capsys.readouterr().out

    def test_unknown_engine_rejected(self, program_file):
        with pytest.raises(SystemExit):
            main([program_file(PAPER_FIG2), "--engine", "nope"])

    def test_trace_jsonl_flag(self, program_file, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        rc = main([program_file(PAPER_FIG2), "--trace-jsonl", trace])
        assert rc == 0
        assert "verify_start" in open(trace).read()


class TestExitCodes:
    def test_safe_is_zero(self, program_file):
        assert main([program_file(PAPER_FIG2)]) == 0

    def test_unsafe_is_ten(self, program_file):
        assert main([program_file(RACE_UNSAFE)]) == 10

    def test_unknown_is_two(self, program_file):
        # A sub-microsecond budget forces budget exhaustion in the solver.
        rc = main([program_file(PAPER_FIG2), "--timeout", "0.0000001"])
        assert rc == 2

    def test_input_error_is_one(self, program_file):
        assert main([program_file("int x = ;")]) == 1


class TestPortfolioCli:
    def test_portfolio_safe(self, program_file, capsys):
        rc = main([
            program_file(PAPER_FIG2), "--portfolio", "zord,cbmc", "--jobs", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SAFE" in out and "winner" in out

    def test_portfolio_unsafe_exit_code(self, program_file, capsys):
        rc = main([
            program_file(RACE_UNSAFE), "--portfolio", "zord,cbmc",
            "--jobs", "1", "--witness",
        ])
        out = capsys.readouterr().out
        assert rc == 10
        assert "counterexample trace" in out

    def test_portfolio_unknown_preset_rejected(self, program_file, capsys):
        rc = main([program_file(PAPER_FIG2), "--portfolio", "zord,nope"])
        assert rc == 1
        assert "unknown preset" in capsys.readouterr().err


class TestDumpFlags:
    def test_dump_smt2(self, program_file, tmp_path, capsys):
        out = str(tmp_path / "out.smt2")
        rc = main([program_file(PAPER_FIG2), "--dump-smt2", out])
        assert rc == 0
        text = open(out).read()
        assert "(set-logic QF_BV)" in text

    def test_dump_dimacs(self, program_file, tmp_path, capsys):
        out = str(tmp_path / "out.cnf")
        rc = main([program_file(RACE_UNSAFE), "--dump-dimacs", out])
        assert rc == 0
        assert "p cnf " in open(out).read()

    def test_weak_model_flag(self, program_file, capsys):
        src = """
        int x = 0, y = 0, a = 0, b = 0;
        thread t1 { x = 1; a = y; }
        thread t2 { y = 1; b = x; }
        main { start t1; start t2; join t1; join t2;
               assert(!(a == 0 && b == 0)); }
        """
        rc = main([program_file(src), "--memory-model", "tso"])
        assert rc == 10
        assert "UNSAFE" in capsys.readouterr().out


class TestErrorHandling:
    def test_parse_error_graceful(self, program_file, capsys):
        rc = main([program_file("int x = ;")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_semantic_error_graceful(self, program_file, capsys):
        rc = main([program_file("thread t { y = 1; }")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_lex_error_graceful(self, program_file, capsys):
        rc = main([program_file("int x $ 1;")])
        assert rc == 1
        assert "error" in capsys.readouterr().err
