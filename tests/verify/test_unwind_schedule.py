"""Iterative-deepening BMC (``unwind_schedule``): verdict equivalence with
one-shot solving, per-bound telemetry, and the shallow-bug fast path."""

import pytest

from repro.verify import Verdict, VerifierConfig, verify

from tests.verify.programs import ALL_PROGRAMS

#: A nondet-bounded loop whose assertion already fails when the loop runs
#: twice: the schedule must report SAT at bound 2, not pay the full bound.
SHALLOW_BUG = """
int counter = 0;
thread worker {
    int n; int i; int t;
    n = nondet();
    assume(n <= 8);
    i = 0;
    while (i < n) { t = counter; counter = t + 1; i = i + 1; }
}
main {
    start worker;
    join worker;
    assert(counter < 2);
}
"""

#: Deterministic loop to full depth: every bound below the maximum is
#: UNSAT, so the sweep must run to the deepest bound before deciding.
DEEP_LOOP_SAFE = """
int x = 0;
thread t {
    int i;
    i = 0;
    while (i < 5) { int tmp; tmp = x; x = tmp + 1; i = i + 1; }
}
main { start t; join t; assert(x == 5); }
"""


def _cfg(schedule, **kw):
    return VerifierConfig.zord(unwind_schedule=schedule, **kw)


@pytest.mark.parametrize(
    "name,source,is_safe",
    ALL_PROGRAMS,
    ids=[name for name, _, _ in ALL_PROGRAMS],
)
def test_schedule_matches_oneshot_verdict(name, source, is_safe):
    expected = Verdict.SAFE if is_safe else Verdict.UNSAFE
    oneshot = verify(source, _cfg(()))
    sched = verify(source, _cfg((1, 2, 4, 8)))
    assert oneshot.verdict == expected
    assert sched.verdict == expected


def test_shallow_bug_found_at_shallow_bound():
    result = verify(SHALLOW_BUG, _cfg((1, 2, 4, 8)))
    assert result.verdict == Verdict.UNSAFE
    bounds = result.stats["bounds"]
    assert [b["bound"] for b in bounds] == [1, 2]
    assert bounds[0]["answer"] == "unsat"
    assert bounds[1]["answer"] == "sat"
    assert result.witness is not None

    # One-shot finds the same bug, paying the full-depth search.
    oneshot = verify(SHALLOW_BUG, _cfg(()))
    assert oneshot.verdict == Verdict.UNSAFE


def test_deep_safe_loop_sweeps_every_useful_bound():
    result = verify(DEEP_LOOP_SAFE, _cfg((1, 2, 4, 8)))
    assert result.verdict == Verdict.SAFE
    bounds = result.stats["bounds"]
    assert all(b["answer"] == "unsat" for b in bounds)
    # Solver state is retained between bounds from the second solve on.
    if len(bounds) > 1:
        assert bounds[-1]["clauses_retained"] >= 0
        assert result.stats["incremental_calls"] == len(bounds)


def test_loop_free_program_solves_only_deepest_bound():
    src = dict((n, (s, ok)) for n, s, ok in ALL_PROGRAMS)["lost_update_unsafe"][0]
    result = verify(src, _cfg((1, 2, 4, 8)))
    assert result.verdict == Verdict.UNSAFE
    # No loop frontier: bounds 1/2/4 impose nothing and are skipped.
    assert [b["bound"] for b in result.stats["bounds"]] == [8]


def test_schedule_normalization():
    cfg = VerifierConfig.zord(unwind=8, unwind_schedule=(4, 1, 4, 20))
    # Sorted, deduplicated, clamped below the unwind bound, ending at it.
    assert cfg.unwind_schedule == (1, 4, 8)
    assert VerifierConfig.zord(unwind_schedule=()).unwind_schedule == ()
    with pytest.raises(ValueError):
        VerifierConfig.zord(unwind_schedule=(0, 2))


def test_env_var_enables_schedule(monkeypatch):
    monkeypatch.setenv("REPRO_UNWIND_SCHEDULE", "1")
    assert VerifierConfig.zord(unwind=8).unwind_schedule == (1, 2, 4, 8)
    monkeypatch.setenv("REPRO_UNWIND_SCHEDULE", "2,4")
    assert VerifierConfig.zord(unwind=8).unwind_schedule == (2, 4, 8)
    monkeypatch.setenv("REPRO_UNWIND_SCHEDULE", "0")
    assert VerifierConfig.zord(unwind=8).unwind_schedule == ()
    monkeypatch.delenv("REPRO_UNWIND_SCHEDULE")
    # Explicit () beats the environment.
    monkeypatch.setenv("REPRO_UNWIND_SCHEDULE", "1")
    assert VerifierConfig.zord(unwind_schedule=()).unwind_schedule == ()


def test_non_smt_engine_ignores_schedule():
    cfg = VerifierConfig.cpa_seq(unwind_schedule=(1, 2))
    assert cfg.unwind_schedule == ()


def test_schedule_with_conflict_budget_returns_unknown():
    result = verify(DEEP_LOOP_SAFE, _cfg((1, 2, 4, 8), max_conflicts=0))
    assert result.verdict == Verdict.UNKNOWN
