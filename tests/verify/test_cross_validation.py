"""Cross-validation: on random programs, the SMT engine (DPLL(T_ord)),
its ablations, and the stateless explorer must produce identical verdicts.

This pits three fully independent implementations of the semantics against
each other: the bit-blasted ordering-consistency encoding, the
clock-difference baseline, and the operational interpreter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import parse
from repro.smc import Explorer, compile_program
from repro.verify import Verdict, VerifierConfig, verify

# Random thread body fragments over shared x, y and a lock m.  Each entry
# is (statement template, needs_local).
_FRAGMENTS = [
    "x = 1;",
    "x = 2;",
    "y = x;",
    "x = y + 1;",
    "int L; L = x; x = L + 1;",
    "if (x == 1) { y = 1; } else { y = 2; }",
    "atomic { x = x + 1; }",
    "lock(m); x = 5; unlock(m);",
    "int L; L = y; if (L > 0) { x = L; }",
]

_ASSERTS = [
    "assert(x != 3 || y != 1);",
    "assert(x <= 6);",
    "assert(!(x == 2 && y == 2));",
    "assert(y != 5);",
]


def _gen_program(body_ids, assert_id):
    decls = "int x = 0; int y = 0; lock m;"
    threads = []
    for i, ids in enumerate(body_ids):
        stmts = " ".join(
            _FRAGMENTS[k].replace("L", f"L{i}_{j}") for j, k in enumerate(ids)
        )
        threads.append(f"thread t{i} {{ {stmts} }}")
    starts = " ".join(f"start t{i};" for i in range(len(body_ids)))
    joins = " ".join(f"join t{i};" for i in range(len(body_ids)))
    main = f"main {{ {starts} {joins} {_ASSERTS[assert_id]} }}"
    return decls + "\n" + "\n".join(threads) + "\n" + main


@settings(max_examples=50, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_FRAGMENTS) - 1), min_size=1, max_size=2),
        min_size=1,
        max_size=3,
    ),
    assert_id=st.integers(0, len(_ASSERTS) - 1),
)
def test_engines_agree_on_random_programs(body_ids, assert_id):
    src = _gen_program(body_ids, assert_id)

    # Ground truth: exhaustive naive interleaving enumeration.
    compiled = compile_program(parse(src), width=8, unwind=3)
    truth = Explorer(compiled, mode="naive").run()
    assert truth.verdict in ("safe", "unsafe")
    expected = Verdict.SAFE if truth.verdict == "safe" else Verdict.UNSAFE

    for config in (
        VerifierConfig.zord(unwind=3),
        VerifierConfig.zord_minus(unwind=3),
        VerifierConfig.zord_tarjan(unwind=3),
        VerifierConfig.cbmc(unwind=3),
    ):
        result = verify(src, config)
        assert result.verdict == expected, (config.name, src)

    dpor = Explorer(compiled, mode="dpor").run()
    assert dpor.verdict == truth.verdict, src


@settings(max_examples=20, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_FRAGMENTS) - 1), min_size=1, max_size=2),
        min_size=1,
        max_size=2,
    ),
    assert_id=st.integers(0, len(_ASSERTS) - 1),
)
def test_closure_engine_agrees_on_random_programs(body_ids, assert_id):
    src = _gen_program(body_ids, assert_id)
    compiled = compile_program(parse(src), width=8, unwind=3)
    truth = Explorer(compiled, mode="naive").run()
    expected = Verdict.SAFE if truth.verdict == "safe" else Verdict.UNSAFE
    result = verify(src, VerifierConfig.dartagnan(unwind=3))
    assert result.verdict == expected, src
