"""Structured telemetry: normalized stats and the JSONL event trace."""

import json

import pytest

from repro.verify import STAT_KEYS, VerifierConfig, normalize_stats, verify
from repro.verify.telemetry import TraceWriter, read_trace
from tests.verify.programs import PAPER_FIG2, RACE_UNSAFE


class TestNormalizedStats:
    def test_canonical_keys_always_present(self):
        for config in (VerifierConfig.zord(), VerifierConfig.cpa_seq(),
                       VerifierConfig.genmc()):
            result = verify(RACE_UNSAFE, config)
            missing = [k for k in STAT_KEYS if k not in result.stats]
            assert not missing, (config.name, missing)

    def test_normalize_fills_missing_and_keeps_extras(self):
        out = normalize_stats({"decisions": 3, "custom": 7})
        assert out["decisions"] == 3
        assert out["custom"] == 7
        assert out["conflicts"] == 0
        assert set(STAT_KEYS) <= set(out)

    def test_normalize_accepts_none(self):
        out = normalize_stats(None)
        assert all(out[k] == 0 for k in STAT_KEYS)

    def test_smt_phase_times_reported(self):
        result = verify(RACE_UNSAFE, VerifierConfig.zord())
        for key in ("time_frontend_s", "time_encode_s", "time_solve_s"):
            assert key in result.stats
            assert result.stats[key] >= 0


class TestJsonlTrace:
    def _events(self, path):
        with open(path) as f:
            records = [json.loads(line) for line in f]
        assert all("t" in r and "event" in r for r in records)
        return records

    def test_trace_written_and_well_formed(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        result = verify(RACE_UNSAFE, VerifierConfig.zord(trace_jsonl=trace))
        assert result.trace_path == trace
        records = self._events(trace)
        events = [r["event"] for r in records]
        assert events[0] == "verify_start"
        assert events[-1] == "verify_end"
        assert "solve_start" in events and "solve_end" in events
        assert "phase" in events

    def test_trace_timestamps_monotonic(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        verify(PAPER_FIG2, VerifierConfig.zord(trace_jsonl=trace))
        times = [r["t"] for r in self._events(trace)]
        assert times == sorted(times)

    def test_solve_end_carries_counters(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        verify(RACE_UNSAFE, VerifierConfig.zord(trace_jsonl=trace))
        (solve_end,) = [
            r for r in self._events(trace) if r["event"] == "solve_end"
        ]
        assert "conflicts" in solve_end and "decisions" in solve_end
        assert solve_end["result"] in ("sat", "unsat", "unknown")

    def test_verdict_recorded_in_verify_end(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        result = verify(RACE_UNSAFE, VerifierConfig.zord(trace_jsonl=trace))
        (end,) = [r for r in self._events(trace) if r["event"] == "verify_end"]
        assert end["verdict"] == result.verdict

    def test_no_trace_without_config(self):
        result = verify(PAPER_FIG2, VerifierConfig.zord())
        assert result.trace_path is None

    def test_icd_reorders_counted(self):
        result = verify(RACE_UNSAFE, VerifierConfig.zord())
        assert "theory_icd_reorders" in result.stats

    def test_icd_fast_path_counted(self):
        # Most ICD insertions on a realistic instance satisfy
        # ``ord[u] < ord[v]`` outright and skip the bounded search.
        result = verify(RACE_UNSAFE, VerifierConfig.zord())
        assert result.stats["theory_icd_fast_path"] > 0
        # The Tarjan baseline has no ICD, so the counter stays zero.
        baseline = verify(RACE_UNSAFE, VerifierConfig.zord_tarjan())
        assert baseline.stats.get("theory_icd_fast_path", 0) == 0


class TestStatCoercion:
    """Engines cannot poison canonical counters with non-numeric junk."""

    def test_numeric_strings_coerced(self):
        out = normalize_stats({"decisions": "12", "analysis_time_s": "0.5"})
        assert out["decisions"] == 12
        assert out["analysis_time_s"] == 0.5
        assert "stats_dropped" not in out

    def test_bools_become_ints(self):
        out = normalize_stats({"restarts": True})
        assert out["restarts"] == 1 and out["restarts"] is not True

    def test_garbage_dropped_and_flagged(self):
        out = normalize_stats(
            {"conflicts": None, "learned": "lots", "decisions": float("nan")}
        )
        assert out["conflicts"] == 0
        assert out["learned"] == 0
        assert out["decisions"] == 0
        assert out["stats_dropped"] == ["conflicts", "decisions", "learned"]

    def test_extras_pass_through_uncoerced(self):
        out = normalize_stats({"engine_note": "portfolio winner"})
        assert out["engine_note"] == "portfolio winner"


class TestTraceWriterRobustness:
    """A killed portfolio worker must not cost us its trace."""

    def test_emit_flushes_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        writer = TraceWriter(path)
        try:
            writer.emit("solve_start", nvars=3)
            # Read back *without* closing: the line must already be on
            # disk, as it would be when the process is SIGKILL'd now.
            with open(path) as f:
                lines = f.readlines()
            assert len(lines) == 1
            assert json.loads(lines[0])["event"] == "solve_start"
        finally:
            writer.close()

    def test_read_trace_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"t": 0.0, "event": "a"})
            + "\n"
            + '{"t": 0.1, "eve'  # writer killed mid-record
        )
        records = list(read_trace(str(path)))
        assert [r["event"] for r in records] == ["a"]

    def test_read_trace_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '{"t": 0.0, "eve\n' + json.dumps({"t": 0.1, "event": "b"}) + "\n"
        )
        with pytest.raises(json.JSONDecodeError):
            list(read_trace(str(path)))

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as writer:
            writer.emit("verify_start")
        assert writer._file.closed
        assert [r["event"] for r in read_trace(path)] == ["verify_start"]
