"""Structured telemetry: normalized stats and the JSONL event trace."""

import json

from repro.verify import STAT_KEYS, VerifierConfig, normalize_stats, verify
from tests.verify.programs import PAPER_FIG2, RACE_UNSAFE


class TestNormalizedStats:
    def test_canonical_keys_always_present(self):
        for config in (VerifierConfig.zord(), VerifierConfig.cpa_seq(),
                       VerifierConfig.genmc()):
            result = verify(RACE_UNSAFE, config)
            missing = [k for k in STAT_KEYS if k not in result.stats]
            assert not missing, (config.name, missing)

    def test_normalize_fills_missing_and_keeps_extras(self):
        out = normalize_stats({"decisions": 3, "custom": 7})
        assert out["decisions"] == 3
        assert out["custom"] == 7
        assert out["conflicts"] == 0
        assert set(STAT_KEYS) <= set(out)

    def test_normalize_accepts_none(self):
        out = normalize_stats(None)
        assert all(out[k] == 0 for k in STAT_KEYS)

    def test_smt_phase_times_reported(self):
        result = verify(RACE_UNSAFE, VerifierConfig.zord())
        for key in ("time_frontend_s", "time_encode_s", "time_solve_s"):
            assert key in result.stats
            assert result.stats[key] >= 0


class TestJsonlTrace:
    def _events(self, path):
        with open(path) as f:
            records = [json.loads(line) for line in f]
        assert all("t" in r and "event" in r for r in records)
        return records

    def test_trace_written_and_well_formed(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        result = verify(RACE_UNSAFE, VerifierConfig.zord(trace_jsonl=trace))
        assert result.trace_path == trace
        records = self._events(trace)
        events = [r["event"] for r in records]
        assert events[0] == "verify_start"
        assert events[-1] == "verify_end"
        assert "solve_start" in events and "solve_end" in events
        assert "phase" in events

    def test_trace_timestamps_monotonic(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        verify(PAPER_FIG2, VerifierConfig.zord(trace_jsonl=trace))
        times = [r["t"] for r in self._events(trace)]
        assert times == sorted(times)

    def test_solve_end_carries_counters(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        verify(RACE_UNSAFE, VerifierConfig.zord(trace_jsonl=trace))
        (solve_end,) = [
            r for r in self._events(trace) if r["event"] == "solve_end"
        ]
        assert "conflicts" in solve_end and "decisions" in solve_end
        assert solve_end["result"] in ("sat", "unsat", "unknown")

    def test_verdict_recorded_in_verify_end(self, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        result = verify(RACE_UNSAFE, VerifierConfig.zord(trace_jsonl=trace))
        (end,) = [r for r in self._events(trace) if r["event"] == "verify_end"]
        assert end["verdict"] == result.verdict

    def test_no_trace_without_config(self):
        result = verify(PAPER_FIG2, VerifierConfig.zord())
        assert result.trace_path is None

    def test_icd_reorders_counted(self):
        result = verify(RACE_UNSAFE, VerifierConfig.zord())
        assert "theory_icd_reorders" in result.stats
