"""CLI: the ``repro analyze`` race-report mode and the prune flags."""

from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "programs"


@pytest.fixture()
def program_file(tmp_path):
    def write(source):
        path = tmp_path / "prog.c"
        path.write_text(source)
        return str(path)

    return write


class TestAnalyze:
    def test_racy_example_reports_races(self, capsys):
        rc = main(["analyze", str(EXAMPLES / "counter_racy.c")])
        out = capsys.readouterr().out
        assert rc == 10
        assert "race on 'counter'" in out
        assert "counter_racy.c:" in out  # source-located

    def test_protected_example_is_clean(self, capsys):
        rc = main(["analyze", str(EXAMPLES / "counter_safe.c")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no data races" in out
        assert "protected" in out

    def test_missing_file(self, capsys):
        rc = main(["analyze", "/nonexistent/prog.c"])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_parse_error(self, program_file, capsys):
        rc = main(["analyze", program_file("int x = ;")])
        assert rc == 1
        assert "error" in capsys.readouterr().err

    def test_unwind_flag(self, program_file, capsys):
        src = """
        int x = 0;
        thread t { int i; i = 0; while (i < 2) { x = x + 1; i = i + 1; } }
        main { start t; join t; assert(x >= 0); }
        """
        rc = main(["analyze", program_file(src), "--unwind", "2"])
        assert rc == 0
        assert "no data races" in capsys.readouterr().out


class TestPruneFlags:
    SRC_PATH = str(EXAMPLES / "counter_safe.c")

    def test_no_prune_same_verdict(self, capsys):
        assert main([self.SRC_PATH]) == 0
        assert main([self.SRC_PATH, "--no-prune"]) == 0

    def test_stats_show_pruning(self, capsys):
        main([self.SRC_PATH, "--stats"])
        out = capsys.readouterr().out
        assert "analysis_pairs_pruned" in out

    def test_no_prune_zeroes_the_counter(self, capsys):
        main([self.SRC_PATH, "--no-prune", "--stats"])
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if "analysis_pairs_pruned" in l
        )
        assert line.split(":")[1].strip() in ("0", "0.0")

    def test_prune_flag_forces_level_two(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_PRUNE", "0")
        main([self.SRC_PATH, "--prune", "--stats"])
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if "analysis_pairs_pruned" in l
        )
        assert line.split(":")[1].strip() not in ("0", "0.0")
