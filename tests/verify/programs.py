"""Shared corpus of programs with known SC verdicts, used across the
end-to-end tests of every engine."""

PAPER_FIG2 = """
int x = 0, y = 0, m = 0, n = 0;
thread thr1 {
    if (x == 1) { m = 1; } else { m = x; }
    y = x + 1;
}
thread thr2 {
    if (y == 1) { n = 1; } else { n = y; }
    x = y + 1;
}
main {
    start thr1; start thr2; join thr1; join thr2;
    assert(!(m == 1 && n == 1));
}
"""

STORE_BUFFERING = """
int x = 0, y = 0, a = 0, b = 0;
thread t1 { x = 1; a = y; }
thread t2 { y = 1; b = x; }
main {
    start t1; start t2; join t1; join t2;
    assert(!(a == 0 && b == 0));
}
"""

MESSAGE_PASSING = """
int x = 0, y = 0, a = 0, b = 0;
thread t1 { x = 1; y = 1; }
thread t2 { a = y; b = x; }
main {
    start t1; start t2; join t1; join t2;
    assert(!(a == 1 && b == 0));
}
"""

LOAD_BUFFERING = """
int x = 0, y = 0, a = 0, b = 0;
thread t1 { a = y; x = 1; }
thread t2 { b = x; y = 1; }
main {
    start t1; start t2; join t1; join t2;
    assert(!(a == 1 && b == 1));
}
"""

COHERENCE_CO_RR = """
int x = 0, a = 0, b = 0;
thread t1 { x = 1; x = 2; }
thread t2 { a = x; b = x; }
main {
    start t1; start t2; join t1; join t2;
    assert(!(a == 2 && b == 1));
}
"""

RACE_UNSAFE = """
int x = 0;
thread t1 { x = 1; }
thread t2 { x = 2; }
main {
    start t1; start t2; join t1; join t2;
    assert(x == 1);
}
"""

LOST_UPDATE_UNSAFE = """
int c = 0;
thread t1 { int tmp; tmp = c; c = tmp + 1; }
thread t2 { int tmp; tmp = c; c = tmp + 1; }
main {
    start t1; start t2; join t1; join t2;
    assert(c == 2);
}
"""

LOCKED_COUNTER_SAFE = """
int c = 0;
lock m;
thread t1 { int tmp; lock(m); tmp = c; c = tmp + 1; unlock(m); }
thread t2 { int tmp; lock(m); tmp = c; c = tmp + 1; unlock(m); }
main {
    start t1; start t2; join t1; join t2;
    assert(c == 2);
}
"""

ATOMIC_COUNTER_SAFE = """
int c = 0;
thread t1 { atomic { c = c + 1; } }
thread t2 { atomic { c = c + 1; } }
main {
    start t1; start t2; join t1; join t2;
    assert(c == 2);
}
"""

PETERSON_SAFE = """
int flag0 = 0, flag1 = 0, turn = 0, critical = 0, bad = 0;
thread p0 {
    flag0 = 1;
    turn = 1;
    int f; int t;
    f = flag1; t = turn;
    while (f == 1 && t == 1) { f = flag1; t = turn; }
    critical = critical + 1;
    if (critical != 1) { bad = 1; }
    critical = critical - 1;
    flag0 = 0;
}
thread p1 {
    flag1 = 1;
    turn = 0;
    int f; int t;
    f = flag0; t = turn;
    while (f == 1 && t == 0) { f = flag0; t = turn; }
    critical = critical + 1;
    if (critical != 1) { bad = 1; }
    critical = critical - 1;
    flag1 = 0;
}
main {
    start p0; start p1; join p0; join p1;
    assert(bad == 0);
}
"""

ASSUME_SAFE = """
int x = 0;
thread t { x = nondet(); assume(x == 3); }
main { start t; join t; assert(x == 3); }
"""

NONDET_UNSAFE = """
int x = 0;
thread t { x = nondet(); }
main { start t; join t; assert(x == 3); }
"""

LOOP_SUM_SAFE = """
int x = 0;
thread t {
    int i;
    i = 0;
    while (i < 3) { int tmp; tmp = x; x = tmp + 1; i = i + 1; }
}
main { start t; join t; assert(x == 3); }
"""

SEQUENTIAL_OVERWRITE_SAFE = """
int x = 0;
thread t { x = 5; x = 7; }
main { start t; join t; assert(x == 7); }
"""

MAIN_ONLY_SAFE = """
int x = 0;
main { x = 1; x = x + 1; assert(x == 2); }
"""

#: (name, source, is_safe) for every corpus program.
ALL_PROGRAMS = [
    ("paper_fig2", PAPER_FIG2, True),
    ("store_buffering", STORE_BUFFERING, True),
    ("message_passing", MESSAGE_PASSING, True),
    ("load_buffering", LOAD_BUFFERING, True),
    ("coherence_co_rr", COHERENCE_CO_RR, True),
    ("race_unsafe", RACE_UNSAFE, False),
    ("lost_update_unsafe", LOST_UPDATE_UNSAFE, False),
    ("locked_counter_safe", LOCKED_COUNTER_SAFE, True),
    ("atomic_counter_safe", ATOMIC_COUNTER_SAFE, True),
    ("peterson_safe", PETERSON_SAFE, True),
    ("assume_safe", ASSUME_SAFE, True),
    ("nondet_unsafe", NONDET_UNSAFE, False),
    ("loop_sum_safe", LOOP_SUM_SAFE, True),
    ("sequential_overwrite_safe", SEQUENTIAL_OVERWRITE_SAFE, True),
    ("main_only_safe", MAIN_ONLY_SAFE, True),
]
