"""Coverage for smaller paths: trace helpers, SMC budget exhaustion,
wrong-verdict rendering."""

from repro.bench import Task
from repro.bench.harness import TaskResult, render_table3, run_task
from repro.verify import Verdict, VerifierConfig, verify
from repro.verify.witness import Trace, TraceStep


class TestTraceHelpers:
    def test_values_of_filters_by_address(self):
        trace = Trace(
            [
                TraceStep("t1", "W", "x", 1),
                TraceStep("t1", "R", "y", 0),
                TraceStep("t2", "W", "x", 2),
            ]
        )
        assert trace.values_of("x") == [1, 2]
        assert trace.values_of("y") == [0]

    def test_str_numbers_steps(self):
        trace = Trace([TraceStep("t1", "W", "x", 1)])
        text = str(trace)
        assert "1." in text and "write x = 1" in text


class TestSmcBudgets:
    BIG = "\n".join(
        ["int x = 0;"]
        + [f"thread t{i} {{ int a{i}; a{i} = x; x = a{i} + 1; }}" for i in range(6)]
    ) + "\nmain { "\
        + " ".join(f"start t{i};" for i in range(6)) \
        + " " + " ".join(f"join t{i};" for i in range(6)) \
        + " assert(x >= 1); }"

    def test_rfsc_time_budget_gives_unknown(self):
        result = verify(self.BIG, VerifierConfig.nidhugg_rfsc(time_limit_s=0.05))
        assert result.verdict in (Verdict.UNKNOWN, Verdict.SAFE)

    def test_genmc_reports_stats_on_unknown(self):
        result = verify(self.BIG, VerifierConfig.genmc(time_limit_s=0.05))
        assert "transitions" in result.stats


class TestTable3Rendering:
    def test_wrong_verdict_marked(self):
        task = Task("demo/x", "demo", "int x;", True)
        wrong = TaskResult("demo/x", "demo", "toolA", "unsafe", False, 0.5)
        right = TaskResult("demo/x", "demo", "toolB", "safe", True, 0.5)
        unknown = TaskResult("demo/x", "demo", "toolC", "unknown", None, 10.0)
        table = render_table3(
            [task],
            {"toolA": [wrong], "toolB": [right], "toolC": [unknown]},
            tool_order=("toolA", "toolB", "toolC"),
            traces_from="toolB",
        )
        assert "(!)" in table   # wrong verdict flagged
        assert "TO" in table    # budget exhaustion flagged


class TestRunTaskBudget:
    def test_unknown_has_none_correct(self):
        task = Task(
            "demo/slow", "demo",
            TestSmcBudgets.BIG, True,
        )
        result = run_task(
            task, VerifierConfig.nidhugg_rfsc, time_limit_s=0.05
        )
        assert result.correct in (None, True)
