"""Witness validity: every extracted counterexample trace must be a
sequentially consistent execution -- each read observes the latest
preceding write to its address in the linearization.

Run over random unsafe programs: this validates the model extraction, the
event-graph linearization, and the RF/WS/FR semantics end to end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify import Verdict, VerifierConfig, verify


def assert_sc_consistent(trace, shared_inits):
    """Replay the linearized trace against a memory; every read must see
    the current value of its address."""
    mem = dict(shared_inits)
    for step in trace.steps:
        value = step.value & 0xFF  # traces display signed; compare raw
        if step.kind == "W":
            mem[step.addr] = value
        else:
            current = mem[step.addr] & 0xFF
            assert current == value, (
                f"read of {step.addr} saw {value}, memory holds {current}\n"
                f"{trace}"
            )


_FRAGMENTS = [
    "x = 1;",
    "x = 2;",
    "x = y;",
    "y = x + 1;",
    "int L; L = x; x = L + 1;",
    "if (x >= 1) { y = 3; }",
    "atomic { y = y + 1; }",
]


@settings(max_examples=40, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_FRAGMENTS) - 1), min_size=1, max_size=2),
        min_size=1,
        max_size=3,
    ),
    bound=st.integers(0, 6),
)
def test_witnesses_are_sc_consistent(body_ids, bound):
    decls = "int x = 0; int y = 0;"
    threads = []
    for i, ids in enumerate(body_ids):
        stmts = " ".join(
            _FRAGMENTS[k].replace("L", f"L{i}_{j}") for j, k in enumerate(ids)
        )
        threads.append(f"thread t{i} {{ {stmts} }}")
    starts = " ".join(f"start t{i};" for i in range(len(body_ids)))
    joins = " ".join(f"join t{i};" for i in range(len(body_ids)))
    # An assertion that is often violable, so we frequently get a witness.
    main = f"main {{ {starts} {joins} assert(x + y != {bound}); }}"
    src = decls + "\n" + "\n".join(threads) + "\n" + main

    for config in (VerifierConfig.zord(unwind=3), VerifierConfig.cbmc(unwind=3)):
        result = verify(src, config)
        if result.verdict == Verdict.UNSAFE:
            assert result.witness is not None
            assert_sc_consistent(result.witness, {"x": 0, "y": 0})
            # The violated assertion must actually be violated by the
            # final memory contents of the trace.
            mem = {"x": 0, "y": 0}
            for step in result.witness.steps:
                if step.kind == "W":
                    mem[step.addr] = step.value & 0xFF
            signed = {
                k: v - 256 if v & 0x80 else v for k, v in mem.items()
            }
            assert (signed["x"] + signed["y"]) % 256 == bound % 256, (
                f"final memory {signed} does not violate assert(x+y != {bound})"
            )


def test_witness_respects_rmw_atomicity():
    # The witness of this unsafe program must still keep each atomic
    # increment's read adjacent to its write (no write in between).
    src = """
    int x = 0, y = 0;
    thread t1 { atomic { x = x + 1; } y = 1; }
    thread t2 { atomic { x = x + 1; } }
    main { start t1; start t2; join t1; join t2; assert(y == 0); }
    """
    result = verify(src, VerifierConfig.zord())
    assert result.verdict == Verdict.UNSAFE
    steps = [s for s in result.witness.steps if s.addr == "x"]
    # Pattern: init write, then (R,W) pairs with matching increments.
    assert steps[0].kind == "W" and steps[0].value == 0
    body = steps[1:]
    for i in range(0, len(body), 2):
        r, w = body[i], body[i + 1]
        assert r.kind == "R" and w.kind == "W"
        assert w.value == r.value + 1
        assert r.thread == w.thread
