"""Engine/theory registry: registration, lookup, config validation."""

import pytest

from repro.verify import Verdict, VerifierConfig, verify, registry
from repro.verify.config import PRESETS
from repro.verify.result import VerificationResult


def _always_safe_loader():
    def run(program, config, telemetry=None):
        return VerificationResult(Verdict.SAFE, config.name)

    return run


class TestConfigValidation:
    def test_unknown_engine_rejected_at_construction(self):
        with pytest.raises(ValueError) as excinfo:
            VerifierConfig(engine="nope")
        # The error names the registered alternatives.
        assert "unknown engine" in str(excinfo.value)
        assert "smt" in str(excinfo.value)

    def test_unknown_theory_rejected_at_construction(self):
        with pytest.raises(ValueError, match="theory"):
            VerifierConfig(theory="bogus")

    def test_unknown_detector_rejected_at_construction(self):
        with pytest.raises(ValueError, match="detector"):
            VerifierConfig(detector="floyd")

    def test_weak_memory_rejected_for_non_smt_engines(self):
        for preset in (VerifierConfig.cpa_seq, VerifierConfig.lazy_cseq,
                       VerifierConfig.dartagnan, VerifierConfig.nidhugg_rfsc):
            with pytest.raises(ValueError, match="memory model"):
                preset(memory_model="tso")

    def test_valid_combinations_construct(self):
        VerifierConfig(theory="idl")
        VerifierConfig(detector="tarjan")
        VerifierConfig.zord(memory_model="pso")
        VerifierConfig.genmc()

    def test_with_revalidates(self):
        config = VerifierConfig.zord()
        with pytest.raises(ValueError):
            config.with_(engine="nope")


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert set(registry.engine_names()) >= {
            "smt", "closure", "explicit", "lazyseq", "smc-rfsc", "smc-genmc",
        }

    def test_builtin_theories_registered(self):
        assert set(registry.theory_names()) >= {"ord", "idl"}

    def test_duplicate_engine_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register_engine("smt", _always_safe_loader)

    def test_duplicate_theory_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register_theory("ord", _always_safe_loader)

    def test_unknown_engine_lookup_lists_registered(self):
        with pytest.raises(ValueError, match="registered engines"):
            registry.get_engine("nope")

    def test_unknown_theory_lookup_lists_registered(self):
        with pytest.raises(ValueError, match="registered theories"):
            registry.get_theory("nope")

    def test_custom_engine_roundtrip(self):
        registry.register_engine(
            "always-safe", _always_safe_loader, description="test stub"
        )
        try:
            config = VerifierConfig(name="always-safe", engine="always-safe")
            result = verify("int x = 0; main { assert(x == 0); }", config)
            assert result.is_safe
            assert result.config_name == "always-safe"
        finally:
            registry.unregister_engine("always-safe")
        with pytest.raises(ValueError):
            VerifierConfig(engine="always-safe")

    def test_replace_requires_flag(self):
        registry.register_engine("tmp-engine", _always_safe_loader)
        try:
            with pytest.raises(ValueError):
                registry.register_engine("tmp-engine", _always_safe_loader)
            registry.register_engine(
                "tmp-engine", _always_safe_loader, replace=True
            )
        finally:
            registry.unregister_engine("tmp-engine")

    def test_engine_spec_metadata(self):
        spec = registry.get_engine("smt")
        assert spec.theories == ("ord", "idl")
        assert spec.detectors == ("icd", "tarjan")
        assert set(spec.memory_models) == {"sc", "tso", "pso"}


class TestPresetTable:
    def test_presets_resolve_through_registry(self):
        # Every preset's engine/theory combination must be registered --
        # the CLI derives its choices from this table.
        for name, factory in PRESETS.items():
            config = factory()
            assert config.engine in registry.engine_names(), name

    def test_presets_classmethod_matches_table(self):
        assert VerifierConfig.presets() == PRESETS

    def test_cli_derives_choices_from_table(self):
        from repro import cli

        assert cli._PRESETS is PRESETS
