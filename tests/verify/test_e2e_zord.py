"""End-to-end verification with the Zord engine and its ablations.

Every corpus program must get its known verdict under every ablation
configuration (the ablations change performance, never verdicts).
"""

import pytest

from repro.verify import Verdict, VerifierConfig, verify
from tests.verify.programs import ALL_PROGRAMS, PAPER_FIG2, RACE_UNSAFE

CONFIGS = {
    "zord": VerifierConfig.zord(),
    "zord_minus": VerifierConfig.zord_minus(),
    "zord_prime": VerifierConfig.zord_prime(),
    "zord_tarjan": VerifierConfig.zord_tarjan(),
}


@pytest.mark.parametrize("name,source,is_safe", ALL_PROGRAMS)
def test_zord_verdicts(name, source, is_safe):
    result = verify(source, VerifierConfig.zord(unwind=4))
    expected = Verdict.SAFE if is_safe else Verdict.UNSAFE
    assert result.verdict == expected, name


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize(
    "name,source,is_safe",
    [p for p in ALL_PROGRAMS if p[0] in (
        "paper_fig2", "store_buffering", "race_unsafe", "lost_update_unsafe",
        "locked_counter_safe", "atomic_counter_safe",
    )],
)
def test_ablations_agree(config_name, name, source, is_safe):
    config = CONFIGS[config_name].with_(unwind=4)
    result = verify(source, config)
    expected = Verdict.SAFE if is_safe else Verdict.UNSAFE
    assert result.verdict == expected, (config_name, name)


class TestPaperExample:
    def test_fig2_is_safe(self):
        # Section 5.5 walks through proving this program safe.
        result = verify(PAPER_FIG2)
        assert result.verdict == Verdict.SAFE

    def test_fig2_weakened_assertion_is_violable(self):
        # m == 1 alone IS reachable (x reads 1 written by thr2).
        src = PAPER_FIG2.replace(
            "assert(!(m == 1 && n == 1));", "assert(!(m == 1));"
        )
        result = verify(src)
        assert result.verdict == Verdict.UNSAFE


class TestWitness:
    def test_unsafe_has_witness(self):
        result = verify(RACE_UNSAFE)
        assert result.verdict == Verdict.UNSAFE
        assert result.witness is not None
        assert len(result.witness.steps) > 0

    def test_witness_respects_program_order(self):
        result = verify(RACE_UNSAFE)
        steps = result.witness.steps
        # The final value of x observed by main's assert read must be the
        # last write to x in the linearization.
        writes = [s for s in steps if s.addr == "x" and s.kind == "W"]
        reads = [s for s in steps if s.addr == "x" and s.kind == "R"]
        assert reads, "assert must read x"
        last_read = reads[-1]
        assert last_read.value != 1  # violating execution

    def test_witness_values_consistent(self):
        # Every read's value equals some preceding write's value.
        result = verify(RACE_UNSAFE)
        steps = result.witness.steps
        seen_writes = {}
        for s in steps:
            if s.kind == "W":
                seen_writes.setdefault(s.addr, []).append(s.value)
            else:
                assert s.value in seen_writes.get(s.addr, []), (
                    f"read of {s.addr}={s.value} has no preceding write"
                )

    def test_safe_has_no_witness(self):
        result = verify(PAPER_FIG2)
        assert result.witness is None


class TestBudgets:
    def test_tiny_time_budget_gives_unknown_or_verdict(self):
        result = verify(PAPER_FIG2, VerifierConfig.zord(time_limit_s=0.0))
        assert result.verdict in (Verdict.UNKNOWN, Verdict.SAFE)

    def test_no_asserts_trivially_safe(self):
        result = verify("int x; thread t { x = 1; }")
        assert result.verdict == Verdict.SAFE

    def test_stats_populated(self):
        result = verify(PAPER_FIG2)
        assert result.stats["rf_vars"] > 0
        assert result.stats["ws_vars"] > 0
        assert "theory_consistency_checks" in result.stats


class TestWidthSemantics:
    def test_overflow_wraps(self):
        src = """
        int x = 0;
        main { x = 127; x = x + 1; assert(x == -128); }
        """
        assert verify(src, VerifierConfig.zord(width=8)).verdict == Verdict.SAFE

    def test_wider_width_no_wrap(self):
        src = """
        int x = 0;
        main { x = 127; x = x + 1; assert(x == 128); }
        """
        assert verify(src, VerifierConfig.zord(width=16)).verdict == Verdict.SAFE
