"""Witness soundness (end to end): every UNSAFE verdict from the zord
preset must come with a witness whose value order, replayed through the
concrete SMC interpreter, actually drives the program into a failed
assertion."""

import pytest

from repro.smc.witness_replay import ReplayError, replay_witness
from repro.verify import VerifierConfig, verify
from tests.verify.programs import ALL_PROGRAMS

UNSAFE_PROGRAMS = [
    (name, source) for name, source, is_safe in ALL_PROGRAMS if not is_safe
]

LOCKED_UNSAFE = """
int c = 0; lock m;
thread t1 { int v; lock(m); v = c; c = v + 1; unlock(m); }
thread t2 { int v; lock(m); v = c; c = v + 1; unlock(m); }
main { start t1; start t2; join t1; join t2; assert(c == 3); }
"""

ATOMIC_UNSAFE = """
int c = 0;
thread t1 { atomic { c = c + 1; } }
thread t2 { atomic { c = c + 1; } }
main { start t1; start t2; join t1; join t2; assert(c == 3); }
"""

NONDET_LOOP_UNSAFE = """
int x = 0;
thread t { int i; i = 0; while (i < 2) { x = x + nondet(); i = i + 1; } }
main { start t; join t; assert(x < 9); }
"""


@pytest.mark.parametrize(
    "name,source", UNSAFE_PROGRAMS, ids=[n for n, _ in UNSAFE_PROGRAMS]
)
def test_tier1_unsafe_witnesses_replay(name, source):
    result = verify(source, VerifierConfig.zord())
    assert result.is_unsafe
    assert result.witness is not None
    assert replay_witness(source, result.witness)


@pytest.mark.parametrize(
    "name,source",
    [
        ("locked_unsafe", LOCKED_UNSAFE),
        ("atomic_unsafe", ATOMIC_UNSAFE),
        ("nondet_loop_unsafe", NONDET_LOOP_UNSAFE),
    ],
)
def test_sync_heavy_witnesses_replay(name, source):
    result = verify(source, VerifierConfig.zord())
    assert result.is_unsafe
    assert replay_witness(source, result.witness)


def test_replay_works_with_pruning_disabled():
    _, source = UNSAFE_PROGRAMS[0]
    result = verify(source, VerifierConfig.zord(prune_level=0))
    assert result.is_unsafe
    assert replay_witness(source, result.witness)


def test_corrupted_witness_is_rejected():
    name, source = UNSAFE_PROGRAMS[0]
    result = verify(source, VerifierConfig.zord())
    trace = result.witness
    # Flip a read's claimed value: the replay must notice the mismatch
    # (or, if the corrupted step is unconsumed, fail to complete).
    reads = [s for s in trace.steps if s.kind == "R"]
    assert reads
    reads[0].value ^= 1
    with pytest.raises(ReplayError):
        if not replay_witness(source, trace):
            raise ReplayError("replay completed without violation")
