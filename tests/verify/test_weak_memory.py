"""Weak memory models (TSO/PSO): the paper's stated future work.

Classic litmus outcomes distinguish the models:

=============  ====  ====  ====
litmus          SC    TSO   PSO
=============  ====  ====  ====
SB (weak out)  forb  ALLOW ALLOW
MP (weak out)  forb  forb  ALLOW
LB (weak out)  forb  forb  forb
CoRR           forb  forb  forb
IRIW           forb  forb  forb
=============  ====  ====  ====

The "weak outcome" is what the assertion rules out, so ALLOW = UNSAFE.
"""

import pytest

from repro.verify import Verdict, VerifierConfig, verify

SB = """
int x = 0, y = 0, a = 0, b = 0;
thread t1 { x = 1; a = y; }
thread t2 { y = 1; b = x; }
main { start t1; start t2; join t1; join t2; assert(!(a == 0 && b == 0)); }
"""

SB_FENCED = """
int x = 0, y = 0, a = 0, b = 0;
thread t1 { x = 1; fence; a = y; }
thread t2 { y = 1; fence; b = x; }
main { start t1; start t2; join t1; join t2; assert(!(a == 0 && b == 0)); }
"""

MP = """
int d = 0, f = 0, r1 = 0, r2 = 0;
thread p { d = 1; f = 1; }
thread c { r1 = f; r2 = d; }
main { start p; start c; join p; join c; assert(!(r1 == 1 && r2 == 0)); }
"""

MP_FENCED = """
int d = 0, f = 0, r1 = 0, r2 = 0;
thread p { d = 1; fence; f = 1; }
thread c { r1 = f; r2 = d; }
main { start p; start c; join p; join c; assert(!(r1 == 1 && r2 == 0)); }
"""

LB = """
int x = 0, y = 0, a = 0, b = 0;
thread t1 { a = y; x = 1; }
thread t2 { b = x; y = 1; }
main { start t1; start t2; join t1; join t2; assert(!(a == 1 && b == 1)); }
"""

CORR = """
int x = 0, a = 0, b = 0;
thread w { x = 1; x = 2; }
thread r { a = x; b = x; }
main { start w; start r; join w; join r; assert(!(a == 2 && b == 1)); }
"""

IRIW = """
int x = 0, y = 0, r1 = 0, r2 = 0, r3 = 0, r4 = 0;
thread wa { x = 1; }
thread wb { y = 1; }
thread ra { r1 = x; r2 = y; }
thread rb { r3 = y; r4 = x; }
main {
    start wa; start wb; start ra; start rb;
    join wa; join wb; join ra; join rb;
    assert(!(r1 == 1 && r2 == 0 && r3 == 1 && r4 == 0));
}
"""

#: (name, source, verdict under sc, tso, pso)
LITMUS = [
    ("SB", SB, "safe", "unsafe", "unsafe"),
    ("SB+fences", SB_FENCED, "safe", "safe", "safe"),
    ("MP", MP, "safe", "safe", "unsafe"),
    ("MP+fence", MP_FENCED, "safe", "safe", "safe"),
    ("LB", LB, "safe", "safe", "safe"),
    ("CoRR", CORR, "safe", "safe", "safe"),
    ("IRIW", IRIW, "safe", "safe", "safe"),
]


@pytest.mark.parametrize("model_idx,model", [(2, "sc"), (3, "tso"), (4, "pso")])
@pytest.mark.parametrize("name,source,sc,tso,pso", LITMUS)
def test_litmus_outcomes(name, source, sc, tso, pso, model_idx, model):
    expected = (None, None, sc, tso, pso)[model_idx]
    result = verify(source, VerifierConfig.zord(memory_model=model))
    assert result.verdict == expected, (name, model)


@pytest.mark.parametrize("model", ["tso", "pso"])
class TestWeakModelMachinery:
    def test_idl_baseline_agrees(self, model):
        for name, source, _sc, tso, pso in LITMUS:
            expected = tso if model == "tso" else pso
            result = verify(source, VerifierConfig.cbmc(memory_model=model))
            assert result.verdict == expected, (name, model)

    def test_locks_act_as_fences(self, model):
        src = """
        int c = 0;
        lock m;
        thread t1 { int t; lock(m); t = c; c = t + 1; unlock(m); }
        thread t2 { int t; lock(m); t = c; c = t + 1; unlock(m); }
        main { start t1; start t2; join t1; join t2; assert(c == 2); }
        """
        result = verify(src, VerifierConfig.zord(memory_model=model))
        assert result.verdict == Verdict.SAFE

    def test_atomic_rmw_acts_as_fence(self, model):
        src = """
        int c = 0;
        thread t1 { atomic { c = c + 1; } }
        thread t2 { atomic { c = c + 1; } }
        main { start t1; start t2; join t1; join t2; assert(c == 2); }
        """
        result = verify(src, VerifierConfig.zord(memory_model=model))
        assert result.verdict == Verdict.SAFE

    def test_explicit_engines_reject_weak_models(self, model):
        with pytest.raises(ValueError):
            verify(SB, VerifierConfig.cpa_seq(memory_model=model))


class TestPpoComputation:
    def test_sc_keeps_all_edges(self):
        from repro.encoding.ppo import preserved_program_order
        from repro.frontend import build_symbolic_program
        from repro.lang import parse

        sym = build_symbolic_program(parse(SB))
        assert preserved_program_order(sym, "sc") == sym.po_edges

    def test_tso_drops_w_r_pairs(self):
        from repro.encoding.ppo import preserved_program_order
        from repro.frontend import build_symbolic_program
        from repro.lang import parse

        sym = build_symbolic_program(parse(SB))
        ppo = preserved_program_order(sym, "tso")
        # t1: write x then read y -- that intra-thread pair must be gone.
        t1 = next(t for t in sym.threads if t.name == "t1")
        w_x = t1.events[0].eid
        r_y = t1.events[1].eid
        assert (w_x, r_y) in sym.po_edges
        assert (w_x, r_y) not in ppo

    def test_unknown_model_rejected(self):
        from repro.encoding.ppo import preserved_program_order
        from repro.frontend import build_symbolic_program
        from repro.lang import parse

        sym = build_symbolic_program(parse(SB))
        with pytest.raises(ValueError):
            preserved_program_order(sym, "arm")

    def test_same_address_order_kept_under_pso(self):
        from repro.encoding.ppo import preserved_program_order
        from repro.frontend import build_symbolic_program
        from repro.lang import parse

        src = "int x = 0; thread t { x = 1; x = 2; } "
        sym = build_symbolic_program(parse(src))
        ppo = set(preserved_program_order(sym, "pso"))
        t = next(th for th in sym.threads if th.name == "t")
        assert (t.events[0].eid, t.events[1].eid) in ppo


# ---------------------------------------------------------------------------
# Monotonicity: weaker models admit strictly more behaviours, so verdicts
# can only move from safe to unsafe as the model weakens.
# ---------------------------------------------------------------------------

from hypothesis import given, settings
from hypothesis import strategies as st

_FRAGMENTS = [
    "x = 1;",
    "y = 1;",
    "x = y;",
    "y = x;",
    "int L; L = x; y = L + 1;",
    "fence;",
    "x = 2; y = 2;",
]


@settings(max_examples=30, deadline=None)
@given(
    body_ids=st.lists(
        st.lists(st.integers(0, len(_FRAGMENTS) - 1), min_size=1, max_size=3),
        min_size=2,
        max_size=3,
    ),
    assert_id=st.integers(0, 2),
)
def test_verdicts_monotone_in_model_strength(body_ids, assert_id):
    asserts = [
        "assert(!(x == 1 && y == 0));",
        "assert(x != 2 || y != 1);",
        "assert(x + y != 3);",
    ]
    decls = "int x = 0; int y = 0;"
    threads = []
    for i, ids in enumerate(body_ids):
        stmts = " ".join(
            _FRAGMENTS[k].replace("L", f"L{i}_{j}") for j, k in enumerate(ids)
        )
        threads.append(f"thread t{i} {{ {stmts} }}")
    starts = " ".join(f"start t{i};" for i in range(len(body_ids)))
    joins = " ".join(f"join t{i};" for i in range(len(body_ids)))
    src = (decls + "\n" + "\n".join(threads)
           + f"\nmain {{ {starts} {joins} {asserts[assert_id]} }}")

    verdicts = {}
    for model in ("sc", "tso", "pso"):
        verdicts[model] = verify(
            src, VerifierConfig.zord(unwind=3, memory_model=model)
        ).verdict
    # SC-unsafe implies TSO-unsafe implies PSO-unsafe.
    if verdicts["sc"] == "unsafe":
        assert verdicts["tso"] == "unsafe", src
    if verdicts["tso"] == "unsafe":
        assert verdicts["pso"] == "unsafe", src
