"""Tests for incremental cycle detection, cross-validated against both the
Tarjan-style baseline and a from-scratch reachability oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import (
    Edge,
    EdgeKind,
    EventGraph,
    IncrementalCycleDetector,
    TarjanCycleDetector,
)


def mk_edge(u, v, var=None):
    kind = EdgeKind.WS if var is not None else EdgeKind.PO
    reason = (var,) if var is not None else ()
    return Edge(u, v, kind, reason, var)


@pytest.fixture(params=["icd", "tarjan"])
def detector_cls(request):
    return (
        IncrementalCycleDetector if request.param == "icd" else TarjanCycleDetector
    )


class TestBasicCycles:
    def test_chain_is_acyclic(self, detector_cls):
        g = EventGraph(4)
        det = detector_cls(g)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            assert det.add_edge(mk_edge(u, v)).cycle is False
        assert g.has_path(0, 3)

    def test_direct_cycle_detected(self, detector_cls):
        g = EventGraph(2)
        det = detector_cls(g)
        assert det.add_edge(mk_edge(0, 1)).cycle is False
        assert det.add_edge(mk_edge(1, 0)).cycle is True
        # Rejected edge must not be in the graph.
        assert g.n_active_edges == 1
        assert not g.has_path(1, 0)

    def test_long_cycle_detected(self, detector_cls):
        g = EventGraph(5)
        det = detector_cls(g)
        for u, v in [(0, 1), (1, 2), (2, 3), (3, 4)]:
            assert det.add_edge(mk_edge(u, v)).cycle is False
        assert det.add_edge(mk_edge(4, 0)).cycle is True

    def test_diamond_no_cycle(self, detector_cls):
        g = EventGraph(4)
        det = detector_cls(g)
        for u, v in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            assert det.add_edge(mk_edge(u, v)).cycle is False

    def test_parallel_edges_allowed(self, detector_cls):
        g = EventGraph(2)
        det = detector_cls(g)
        assert det.add_edge(mk_edge(0, 1)).cycle is False
        assert det.add_edge(mk_edge(0, 1, var=7)).cycle is False
        assert g.n_active_edges == 2

    def test_remove_reopens(self, detector_cls):
        g = EventGraph(3)
        det = detector_cls(g)
        e01 = mk_edge(0, 1, var=1)
        e12 = mk_edge(1, 2, var=2)
        det.add_edge(e01)
        det.add_edge(e12)
        e20 = mk_edge(2, 0, var=3)
        assert det.add_edge(e20).cycle is True
        # Remove in LIFO order; then 2->0 becomes insertable.
        det.remove_edge(e12)
        assert det.add_edge(e20).cycle is False


class TestFastPathFlag:
    def test_flag_set_on_consistent_insert(self):
        g = EventGraph(3)
        det = IncrementalCycleDetector(g)
        assert det.add_edge(mk_edge(0, 1)).fast_path is True

    def test_flag_clear_when_search_runs(self):
        g = EventGraph(3)
        det = IncrementalCycleDetector(g)
        res = det.add_edge(mk_edge(2, 0))  # ord[2] > ord[0]: must search
        assert res.cycle is False
        assert res.fast_path is False

    def test_theory_stat_counts_fast_paths(self):
        from repro.ordering import OrderingTheory
        from repro.sat import Solver

        theory = OrderingTheory(3, [(0, 1)])
        solver = Solver(theory)
        v = solver.new_var(relevant=True)
        theory.add_rf_var(v, 1, 2)  # ord[1] < ord[2] holds already
        theory.assign(v, 1)
        assert theory.stats.icd_fast_path == 1
        w = solver.new_var(relevant=True)
        theory.add_ws_var(w, 2, 0)  # against the current order: searches
        theory.assign(w, 2)
        assert theory.stats.icd_fast_path == 1


class TestSearchSets:
    def test_fast_path_sets(self):
        g = EventGraph(3)
        det = IncrementalCycleDetector(g)
        res = det.add_edge(mk_edge(0, 1))
        # ord already consistent (0 < 1): trivial sets.
        assert res.back_nodes == [0]
        assert res.fwd_nodes == [1]

    def test_search_sets_cover_window(self):
        g = EventGraph(4)
        det = IncrementalCycleDetector(g)
        # Force a reorder: insert edges against the initial order.
        det.add_edge(mk_edge(2, 3))
        res = det.add_edge(mk_edge(3, 1))  # ord[3] > ord[1] -> search
        assert 3 in res.back_nodes
        assert 1 in res.fwd_nodes

    def test_pseudo_topological_order_invariant(self):
        import random

        rng = random.Random(7)
        g = EventGraph(30)
        det = IncrementalCycleDetector(g)
        edges = []
        for _ in range(200):
            u, v = rng.randrange(30), rng.randrange(30)
            if u == v:
                continue
            e = mk_edge(u, v, var=len(edges) + 1)
            if not det.add_edge(e).cycle:
                edges.append(e)
                # Invariant: ord increases along every active edge.
                for ed in edges:
                    assert g.ord[ed.src] < g.ord[ed.dst]

    def test_path_reasons(self):
        g = EventGraph(4)
        det = IncrementalCycleDetector(g)
        det.add_edge(mk_edge(1, 2, var=5))
        det.add_edge(mk_edge(2, 3, var=6))
        # Insert 3 -> 0: backward search from 3 reaches 1 via vars 6, 5.
        res = det.add_edge(mk_edge(3, 0, var=7))
        assert res.cycle is False
        if 1 in res.parent_b:
            assert sorted(res.back_path_reason(1)) == [5, 6]


class _Oracle:
    """Reachability oracle recomputed from scratch (multigraph-aware)."""

    def __init__(self, n):
        self.n = n
        self.adj = {i: [] for i in range(n)}  # parallel edges preserved

    def reaches(self, a, b):
        seen, stack = {a}, [a]
        while stack:
            x = stack.pop()
            if x == b:
                return True
            for y in self.adj[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        return False

    def add(self, u, v):
        self.adj[u].append(v)

    def remove(self, u, v):
        self.adj[u].remove(v)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(3, 10),
    ops=st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=60),
    data=st.data(),
)
def test_icd_matches_oracle_with_removals(n, ops, data):
    """Random insert/rollback sequences: ICD verdicts equal fresh search."""
    g = EventGraph(n)
    det = IncrementalCycleDetector(g)
    oracle = _Oracle(n)
    trail = []
    var = 0
    for u, v in ops:
        u, v = u % n, v % n
        if u == v:
            continue
        # Occasionally roll back a suffix (LIFO, like DPLL backjumping).
        if trail and data.draw(st.integers(0, 4)) == 0:
            k = data.draw(st.integers(1, len(trail)))
            for _ in range(k):
                e = trail.pop()
                det.remove_edge(e)
                oracle.remove(e.src, e.dst)
        var += 1
        e = mk_edge(u, v, var=var)
        expected_cycle = oracle.reaches(v, u)
        res = det.add_edge(e)
        assert res.cycle == expected_cycle, (u, v, trail)
        if not res.cycle:
            trail.append(e)
            oracle.add(u, v)
            for ed in trail:
                assert g.ord[ed.src] < g.ord[ed.dst]


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(3, 8),
    ops=st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40),
)
def test_icd_and_tarjan_agree(n, ops):
    g1, g2 = EventGraph(n), EventGraph(n)
    d1, d2 = IncrementalCycleDetector(g1), TarjanCycleDetector(g2)
    var = 0
    for u, v in ops:
        u, v = u % n, v % n
        if u == v:
            continue
        var += 1
        r1 = d1.add_edge(mk_edge(u, v, var=var))
        r2 = d2.add_edge(mk_edge(u, v, var=var))
        assert r1.cycle == r2.cycle
