"""Incremental re-solve protocol of the ordering theory: reset between
queries (backjump to level 0), event-graph extension between solves, and
state restoration under alternating assumptions."""

import pytest

from repro.ordering import OrderingTheory
from repro.sat import SolveResult, Solver


def make(n_events, po_edges, **kw):
    theory = OrderingTheory(n_events, po_edges, **kw)
    solver = Solver(theory)
    return solver, theory


def new_ws(solver, theory, w1, w2):
    v = solver.new_var(relevant=True)
    theory.add_ws_var(v, w1, w2)
    return v


class TestResetBetweenSolves:
    def test_alternating_assumptions_see_fresh_graph(self):
        # a activates 0->1, b activates 1->0.  Each alone is consistent;
        # together they cycle.  A stale edge surviving a reset would make
        # the later single-assumption queries wrongly UNSAT.
        solver, theory = make(2, [])
        a = new_ws(solver, theory, 0, 1)
        b = new_ws(solver, theory, 1, 0)
        assert solver.solve(assumptions=[a]) == SolveResult.SAT
        assert solver.solve(assumptions=[b]) == SolveResult.SAT
        assert solver.solve(assumptions=[a, b]) == SolveResult.UNSAT
        assert set(solver.unsat_core) <= {a, b}
        assert solver.solve(assumptions=[a]) == SolveResult.SAT
        assert solver.solve(assumptions=[b]) == SolveResult.SAT

    def test_reset_deactivates_non_root_edges(self):
        solver, theory = make(3, [(0, 1)])
        a = new_ws(solver, theory, 1, 2)
        # Assumption-activated: the edge enters at decision level 1.
        assert solver.solve(assumptions=[a]) == SolveResult.SAT
        # Post-SAT the search edge is still active (witness extraction
        # reads the live graph); only the PO edge is permanent.
        assert theory.graph.n_active_edges == 2
        theory.reset()
        assert theory.graph.n_active_edges == 1

    def test_root_level_edges_survive_reset(self):
        solver, theory = make(2, [])
        a = new_ws(solver, theory, 0, 1)
        solver.add_clause([a])  # unit: activated at level 0
        assert solver.solve() == SolveResult.SAT
        theory.reset()
        assert theory.graph.n_active_edges == 1


class TestExtendBetweenSolves:
    def test_extend_grows_graph_and_detects_cross_cycles(self):
        solver, theory = make(2, [(0, 1)])
        assert solver.solve() == SolveResult.SAT
        theory.reset()
        theory.extend(3, po_edges=[(1, 2)])
        c = new_ws(solver, theory, 2, 0)
        # 0 ->po 1 ->po 2 ->ws 0 closes a cycle across old and new events.
        assert solver.solve(assumptions=[c]) == SolveResult.UNSAT
        assert solver.unsat_core == [c]
        assert solver.solve(assumptions=[-c]) == SolveResult.SAT

    def test_extend_updates_po_reachability(self):
        solver, theory = make(2, [(0, 1)])
        theory.extend(4, po_edges=[(1, 2), (2, 3)])
        assert (theory.po_reach[0] >> 3) & 1  # 0 reaches 3 through the delta
        # A pre-contradicted variable in the extended region is fixed false.
        v = new_ws(solver, theory, 3, 0)
        assert [-v] in theory.initial_unit_clauses()

    def test_extend_cannot_shrink(self):
        _, theory = make(3, [])
        with pytest.raises(ValueError):
            theory.extend(2)

    def test_extend_rejects_cyclic_po(self):
        _, theory = make(2, [(0, 1)])
        with pytest.raises(ValueError):
            theory.extend(2, po_edges=[(1, 0)])

    def test_extend_preserves_topological_consistency(self):
        # New nodes get the largest order labels; the ICD order must stay a
        # permutation so subsequent insertions behave.
        _, theory = make(3, [(0, 1)])
        theory.extend(6, po_edges=[(3, 4), (4, 5), (1, 3)])
        g = theory.graph
        assert g.n == 6
        assert sorted(g.ord) == list(range(6))
