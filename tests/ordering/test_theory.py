"""Integration tests: OrderingTheory plugged into the CDCL core.

The key property test compares DPLL(T_ord) against a brute-force oracle
that enumerates all ordering-variable assignments and checks the theory
axioms (acyclicity after from-read closure) directly.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import OrderingTheory
from repro.sat import SolveResult, Solver


def make(n_events, po_edges, detector="icd", unit_edge=True, fr_propagation=True):
    theory = OrderingTheory(
        n_events, po_edges, detector=detector, unit_edge=unit_edge,
        fr_propagation=fr_propagation,
    )
    solver = Solver(theory)
    return solver, theory


def new_rf(solver, theory, w, r):
    v = solver.new_var(relevant=True)
    theory.add_rf_var(v, w, r)
    return v


def new_ws(solver, theory, w1, w2):
    v = solver.new_var(relevant=True)
    theory.add_ws_var(v, w1, w2)
    return v


class TestDirectCycles:
    def test_two_vars_cycle_unsat(self):
        solver, theory = make(2, [])
        a = new_rf(solver, theory, 0, 1)
        b = new_ws(solver, theory, 1, 0)
        solver.add_clause([a])
        solver.add_clause([b])
        assert solver.solve() == SolveResult.UNSAT

    def test_one_direction_sat(self):
        solver, theory = make(2, [])
        a = new_rf(solver, theory, 0, 1)
        solver.add_clause([a])
        assert solver.solve() == SolveResult.SAT

    def test_po_plus_var_cycle_unsat(self):
        solver, theory = make(2, [(0, 1)])
        a = new_ws(solver, theory, 1, 0)
        solver.add_clause([a])
        assert solver.solve() == SolveResult.UNSAT

    def test_choice_avoids_cycle(self):
        # a: 0->1, b: 1->0.  a | b satisfiable (pick either), a & b not.
        solver, theory = make(2, [])
        a = new_ws(solver, theory, 0, 1)
        b = new_ws(solver, theory, 1, 0)
        solver.add_clause([a, b])
        assert solver.solve() == SolveResult.SAT
        assert not (solver.model_value(a) and solver.model_value(b))

    def test_three_cycle_needs_backjumping(self):
        solver, theory = make(3, [])
        ab = new_ws(solver, theory, 0, 1)
        bc = new_ws(solver, theory, 1, 2)
        ca = new_ws(solver, theory, 2, 0)
        solver.add_clause([ab])
        solver.add_clause([bc])
        solver.add_clause([ca])
        assert solver.solve() == SolveResult.UNSAT


class TestInitialPropagation:
    def test_po_contradicted_var_fixed_false(self):
        solver, theory = make(2, [(0, 1)])
        a = new_ws(solver, theory, 1, 0)
        for clause in theory.initial_unit_clauses():
            solver.add_clause(clause)
        assert solver.solve() == SolveResult.SAT
        assert solver.model_value(a) is False

    def test_po_transitive_contradiction(self):
        solver, theory = make(3, [(0, 1), (1, 2)])
        a = new_rf(solver, theory, 2, 0)
        units = theory.initial_unit_clauses()
        assert [-a] in units


class TestFromReadPropagation:
    def _fr_scenario(self, fr_propagation):
        # Events: w=0, w'=1, r=2.  rf(w,r) & ws(w,w') derive fr(r,w').
        # Adding rf(w',r) then closes the cycle r -fr-> w' -rf-> r.
        solver, theory = make(3, [], fr_propagation=fr_propagation)
        rf_wr = new_rf(solver, theory, 0, 2)
        ws = new_ws(solver, theory, 0, 1)
        rf_w2r = new_rf(solver, theory, 1, 2)
        solver.add_clause([rf_wr])
        solver.add_clause([ws])
        solver.add_clause([rf_w2r])
        return solver, theory

    def test_axiom2_cycle_detected(self):
        solver, _ = self._fr_scenario(fr_propagation=True)
        assert solver.solve() == SolveResult.UNSAT

    def test_without_fr_propagation_missed(self):
        # Demonstrates why Zord⁻ must encode rho_fr in the formula.
        solver, _ = self._fr_scenario(fr_propagation=False)
        assert solver.solve() == SolveResult.SAT

    def test_ws_after_rf_derives_too(self):
        # Same scenario but WS assigned after RF: derivation must trigger
        # from the WS side as well (order independence).
        solver, theory = make(3, [])
        rf_wr = new_rf(solver, theory, 0, 2)
        ws = new_ws(solver, theory, 0, 1)
        rf_w2r = new_rf(solver, theory, 1, 2)
        # Force assignment order rf, rf, ws via implication chain.
        solver.add_clause([rf_wr])
        solver.add_clause([-rf_wr, rf_w2r])
        solver.add_clause([-rf_w2r, ws])
        assert solver.solve() == SolveResult.UNSAT

    def test_fr_stats_counted(self):
        solver, theory = make(3, [])
        rf = new_rf(solver, theory, 0, 2)
        ws = new_ws(solver, theory, 0, 1)
        solver.add_clause([rf])
        solver.add_clause([ws])
        assert solver.solve() == SolveResult.SAT
        assert theory.stats.fr_derived >= 1


class TestUnitEdgePropagation:
    def test_unit_edge_forces_false(self):
        # Per the paper, unit-edge propagation scans the B/F sets of the
        # ICD two-way search, so we arrange an insertion that triggers a
        # search: after a: 1->2 and b: 2->3 (fast path), inserting
        # w: 3->0 searches backward to B={3,2,1} and forward to F={0};
        # the inactive edge u: 0->1 is then a unit edge.
        solver, theory = make(4, [])
        a = new_ws(solver, theory, 1, 2)
        b = new_ws(solver, theory, 2, 3)
        w = new_ws(solver, theory, 3, 0)
        u = new_ws(solver, theory, 0, 1)
        solver.add_clause([a])
        solver.add_clause([b])
        solver.add_clause([w])
        assert solver.solve() == SolveResult.SAT
        assert solver.model_value(u) is False
        assert theory.stats.unit_propagations >= 1

    def test_disabled_unit_edge_still_sound(self):
        solver, theory = make(4, [(1, 2)], unit_edge=False)
        a = new_ws(solver, theory, 0, 1)
        b = new_ws(solver, theory, 2, 3)
        u = new_ws(solver, theory, 3, 0)
        solver.add_clause([a])
        solver.add_clause([b])
        solver.add_clause([u])
        assert solver.solve() == SolveResult.UNSAT
        assert theory.stats.unit_propagations == 0


# ---------------------------------------------------------------------------
# Brute-force cross-validation
# ---------------------------------------------------------------------------

def _oracle_consistent(n, po_edges, true_rf, true_ws):
    """Check T_ord axioms directly: acyclicity after one FR-closure step."""
    edges = list(po_edges)
    edges += [(w, r) for (w, r) in true_rf]
    edges += [(a, b) for (a, b) in true_ws]
    for (w, r) in true_rf:
        for (a, b) in true_ws:
            if a == w:
                edges.append((r, b))  # Axiom 2
    # Cycle check.
    adj = {i: [] for i in range(n)}
    for a, b in edges:
        adj[a].append(b)
    color = [0] * n
    def dfs(x):
        color[x] = 1
        for y in adj[x]:
            if color[y] == 1:
                return False
            if color[y] == 0 and not dfs(y):
                return False
        color[x] = 2
        return True
    return all(color[i] or dfs(i) for i in range(n))


def _oracle_sat(n, po_edges, rf_pairs, ws_pairs, forced):
    nvars = len(rf_pairs) + len(ws_pairs)
    for bits in itertools.product([False, True], repeat=nvars):
        ok = True
        for f in forced:
            idx = abs(f) - 1
            if bits[idx] != (f > 0):
                ok = False
                break
        if not ok:
            continue
        true_rf = [p for p, b in zip(rf_pairs, bits[: len(rf_pairs)]) if b]
        true_ws = [p for p, b in zip(ws_pairs, bits[len(rf_pairs):]) if b]
        if _oracle_consistent(n, po_edges, true_rf, true_ws):
            return True
    return False


@settings(max_examples=80, deadline=None)
@given(data=st.data())
def test_dpllt_matches_bruteforce_oracle(data):
    n = data.draw(st.integers(3, 6))
    # Random PO chain over a prefix of the nodes.
    chain_len = data.draw(st.integers(0, n - 1))
    po_edges = [(i, i + 1) for i in range(chain_len)]
    # Type the events as in the real theory: a prefix of nodes are writes,
    # the rest are reads (rf goes write->read, ws goes write->write).
    n_writes = data.draw(st.integers(1, n - 1))
    writes = list(range(n_writes))
    reads = list(range(n_writes, n))
    rf_pair = st.tuples(st.sampled_from(writes), st.sampled_from(reads))
    ws_pair = st.tuples(st.sampled_from(writes), st.sampled_from(writes)).filter(
        lambda p: p[0] != p[1]
    )
    rf_pairs = data.draw(st.lists(rf_pair, max_size=3))
    ws_pairs = data.draw(st.lists(ws_pair, max_size=3))
    nvars = len(rf_pairs) + len(ws_pairs)
    # Random forced literals (a conjunction of unit clauses).
    forced = []
    for i in range(nvars):
        choice = data.draw(st.integers(0, 2))
        if choice == 1:
            forced.append(i + 1)
        elif choice == 2:
            forced.append(-(i + 1))

    for detector in ("icd", "tarjan"):
        for unit_edge in (True, False):
            solver, theory = make(
                n, po_edges, detector=detector, unit_edge=unit_edge
            )
            vars_ = []
            for (w, r) in rf_pairs:
                vars_.append(new_rf(solver, theory, w, r))
            for (a, b) in ws_pairs:
                vars_.append(new_ws(solver, theory, a, b))
            for f in forced:
                solver.add_clause([f if f > 0 else f])
            got = solver.solve()
            expected = _oracle_sat(n, po_edges, rf_pairs, ws_pairs, forced)
            assert got == (SolveResult.SAT if expected else SolveResult.UNSAT), (
                detector, unit_edge, n, po_edges, rf_pairs, ws_pairs, forced
            )
