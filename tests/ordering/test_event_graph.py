"""Direct tests for the event graph structure."""

import pytest

from repro.ordering import Edge, EdgeKind, EventGraph


def edge(u, v, kind=EdgeKind.WS, var=None):
    reason = (var,) if var is not None else ()
    return Edge(u, v, kind, reason, var)


class TestAdjacency:
    def test_activate_adds_to_both_lists(self):
        g = EventGraph(3)
        e = edge(0, 1)
        g.activate(e)
        assert e in g.out[0]
        assert e in g.inc[1]
        assert g.n_active_edges == 1

    def test_lifo_deactivation(self):
        g = EventGraph(3)
        e1, e2 = edge(0, 1), edge(0, 2)
        g.activate(e1)
        g.activate(e2)
        g.deactivate(e2)
        g.deactivate(e1)
        assert g.n_active_edges == 0
        assert g.out[0] == []

    def test_non_lifo_deactivation_rejected(self):
        g = EventGraph(3)
        e1, e2 = edge(0, 1), edge(0, 2)
        g.activate(e1)
        g.activate(e2)
        with pytest.raises(AssertionError):
            g.deactivate(e1)  # e2 was activated later on out[0]

    def test_double_activation_rejected(self):
        g = EventGraph(2)
        e = edge(0, 1)
        g.activate(e)
        with pytest.raises(AssertionError):
            g.activate(e)


class TestInactiveIndex:
    def test_registered_edge_found(self):
        g = EventGraph(3)
        e = edge(0, 1, var=5)
        g.register_inactive(e)
        assert g.inactive_edges_between(0, 1) == [e]
        assert g.inactive_edges_between(1, 0) == []

    def test_activation_removes_from_index(self):
        g = EventGraph(3)
        e = edge(0, 1, var=5)
        g.register_inactive(e)
        g.activate(e)
        assert g.inactive_edges_between(0, 1) == []

    def test_deactivation_restores_index(self):
        g = EventGraph(3)
        e = edge(0, 1, var=5)
        g.register_inactive(e)
        g.activate(e)
        g.deactivate(e)
        assert g.inactive_edges_between(0, 1) == [e]

    def test_parallel_inactive_edges(self):
        g = EventGraph(3)
        e1 = edge(0, 1, var=5)
        e2 = Edge(0, 1, EdgeKind.RF, (6,), 6)
        g.register_inactive(e1)
        g.register_inactive(e2)
        assert len(g.inactive_edges_between(0, 1)) == 2


class TestReachability:
    def test_has_path(self):
        g = EventGraph(4)
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            g.activate(edge(u, v))
        assert g.has_path(0, 3)
        assert not g.has_path(3, 0)
        assert g.has_path(1, 1)  # reflexive by definition

    def test_active_edges_iteration(self):
        g = EventGraph(3)
        g.activate(edge(0, 1))
        g.activate(edge(1, 2))
        assert len(list(g.active_edges())) == 2
