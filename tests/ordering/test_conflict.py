"""Tests for shortest-width conflict clause generation (Section 5.3)."""

import pytest

from repro.ordering.conflict import generate_conflicts
from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.icd import IncrementalCycleDetector
from repro.ordering.solver import OrderingTheory


def build(n, po_edges, var_edges):
    """Build a graph with PO skeleton and activated variable edges."""
    g = EventGraph(n)
    det = IncrementalCycleDetector(g)
    for u, v in po_edges:
        assert det.add_edge(Edge(u, v, EdgeKind.PO)).cycle is False
    for var, u, v, kind in var_edges:
        e = Edge(u, v, kind, (var,), var)
        assert det.add_edge(e).cycle is False
    po_reach = OrderingTheory._compute_po_reachability(n, po_edges)
    return g, po_reach


class TestSimpleCycles:
    def test_two_edge_cycle(self):
        # Active: 0 -rf(v1)-> 1.  New edge 1 -ws(v2)-> 0 closes the cycle.
        g, po = build(2, [], [(1, 0, 1, EdgeKind.RF)])
        new = Edge(1, 0, EdgeKind.WS, (2,), 2)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-1, -2]]

    def test_cycle_through_po_costs_nothing(self):
        # PO chain 0->1->2; active 2 -rf(v1)-> 3.  New 3 -ws(v2)-> 0.
        g, po = build(4, [(0, 1), (1, 2)], [(1, 2, 3, EdgeKind.RF)])
        new = Edge(3, 0, EdgeKind.WS, (2,), 2)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-1, -2]]

    def test_pure_po_path_gives_unit_clause(self):
        # PO 0->1; new edge 1 -rf(v9)-> 0: conflict involves only v9.
        g, po = build(2, [(0, 1)], [])
        new = Edge(1, 0, EdgeKind.RF, (9,), 9)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-9]]

    def test_fr_edge_reason_has_two_literals(self):
        # Derived FR edge carries the pair (rf, ws) as its reason.
        g, po = build(2, [], [(4, 0, 1, EdgeKind.WS)])
        new = Edge(1, 0, EdgeKind.FR, (5, 6))
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-4, -5, -6]]


class TestShortestWidth:
    def test_po_path_preferred_over_wider(self):
        # Two paths 1 ⇝ 0: pure PO (width 0) and via var edge (width 1).
        # Only the PO path's reason should be reported.
        g, po = build(3, [(1, 2), (2, 0)], [(3, 1, 0, EdgeKind.WS)])
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-7]]

    def test_po_chord_removes_dominated_edge(self):
        # rf edge 0->1 parallel to PO 0->1 (the Figure 3b situation):
        # the rf edge must be filtered, so the single shortest reason
        # uses PO only.
        g, po = build(
            3, [(0, 1), (1, 2)], [(3, 0, 1, EdgeKind.RF)]
        )
        new = Edge(2, 0, EdgeKind.WS, (8,), 8)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-8]]

    def test_all_shortest_cycles_reported(self):
        # Two disjoint width-1 paths 1 ⇝ 0: report both.
        g, po = build(
            4,
            [],
            [(3, 1, 2, EdgeKind.WS), (4, 2, 0, EdgeKind.WS),
             (5, 1, 3, EdgeKind.WS), (6, 3, 0, EdgeKind.WS)],
        )
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        clauses = generate_conflicts(g, po, new)
        assert len(clauses) == 2
        sets = {frozenset(c) for c in clauses}
        assert frozenset([-3, -4, -7]) in sets
        assert frozenset([-5, -6, -7]) in sets

    def test_wider_cycles_suppressed(self):
        # width-1 path and width-2 path: only width-1 reported.
        g, po = build(
            4,
            [],
            [(3, 1, 0, EdgeKind.WS),
             (5, 1, 2, EdgeKind.WS), (6, 2, 0, EdgeKind.WS)],
        )
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-3, -7]]

    def test_max_clauses_cap(self):
        # Many parallel width-1 paths; cap limits output.
        var_edges = []
        var = 10
        n = 12
        for mid in range(2, n):
            var_edges.append((var, 1, mid, EdgeKind.WS))
            var_edges.append((var + 1, mid, 0, EdgeKind.WS))
            var += 2
        g, po = build(n, [], var_edges)
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        clauses = generate_conflicts(g, po, new, max_clauses=3)
        assert len(clauses) == 3

    def test_duplicate_reasons_deduplicated(self):
        # Same literal appearing twice on a path collapses in the clause.
        g, po = build(3, [], [(3, 1, 2, EdgeKind.WS), (3, 2, 0, EdgeKind.WS)])
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        clauses = generate_conflicts(g, po, new)
        assert clauses == [[-3, -7]]


class TestDeterminism:
    def _parallel_paths(self, order):
        var_edges = []
        var = 10
        for mid in (2, 3, 4, 5):
            var_edges.append((var, 1, mid, EdgeKind.WS))
            var_edges.append((var + 1, mid, 0, EdgeKind.WS))
            var += 2
        if order == "reversed":
            var_edges = list(reversed(var_edges))
        g, po = build(6, [], var_edges)
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        return generate_conflicts(g, po, new, max_clauses=3)

    def test_repeated_calls_identical(self):
        assert self._parallel_paths("fwd") == self._parallel_paths("fwd")

    def test_insertion_order_irrelevant(self):
        # The same cycles activated in a different order must yield the
        # same clauses in the same order (no set-iteration nondeterminism).
        assert self._parallel_paths("fwd") == self._parallel_paths("reversed")

    def test_emission_sorted_shortest_first(self):
        # One single-literal cycle and one two-literal cycle, same width
        # in non-PO edges is impossible here -- instead check the emitted
        # clause list is ordered by clause size then literals.
        clauses = self._parallel_paths("fwd")
        keys = [(len(c), tuple(sorted(-lit for lit in c))) for c in clauses]
        assert keys == sorted(keys)


class TestCapAtFinalAccumulation:
    def test_cap_does_not_lose_distinct_cycles(self):
        # Six distinct width-1 cycles through a shared hub: a cap applied
        # to the per-node reason sets *mid-propagation* (at the hub) would
        # crowd out distinct reasons; applied only at the final
        # accumulation, a cap of 5 must still return 5 distinct clauses.
        var_edges = []
        var = 10
        hub = 2
        var_edges.append((9, hub, 0, EdgeKind.WS))
        for mid in range(3, 9):
            var_edges.append((var, 1, mid, EdgeKind.WS))
            var_edges.append((var + 1, mid, hub, EdgeKind.WS))
            var += 2
        g, po = build(9, [], var_edges)
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        clauses = generate_conflicts(g, po, new, max_clauses=5)
        assert len(clauses) == 5
        assert len({frozenset(c) for c in clauses}) == 5

    def test_cap_above_cycle_count_returns_all(self):
        g, po = build(
            4,
            [],
            [(3, 1, 2, EdgeKind.WS), (4, 2, 0, EdgeKind.WS),
             (5, 1, 3, EdgeKind.WS), (6, 3, 0, EdgeKind.WS)],
        )
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        assert len(generate_conflicts(g, po, new, max_clauses=100)) == 2


class TestErrors:
    def test_no_cycle_raises(self):
        g, po = build(2, [], [])
        new = Edge(0, 1, EdgeKind.RF, (7,), 7)
        with pytest.raises(ValueError):
            generate_conflicts(g, po, new)
