"""Portfolio semantics: first-verdict-wins, loser cancellation, serial
equivalence, verdict aggregation."""

import time

import pytest

from repro.bench import Task, run_suite
from repro.bench.patterns import bank_transfer, flag_handoff
from repro.portfolio import verify_batch, verify_portfolio
from repro.verify import Verdict, VerifierConfig, registry
from repro.verify.result import VerificationResult

SAFE_SRC = bank_transfer(locked=True)
UNSAFE_SRC = bank_transfer(locked=False)
CHAIN_SRC = flag_handoff(2)


def _sleepy_loader():
    def run(program, config, telemetry=None):
        time.sleep(30)
        return VerificationResult(Verdict.SAFE, config.name)

    return run


def _undecided_loader():
    def run(program, config, telemetry=None):
        return VerificationResult(Verdict.UNKNOWN, config.name)

    return run


@pytest.fixture()
def sleepy_engine():
    registry.register_engine("sleepy", _sleepy_loader)
    yield VerifierConfig(name="sleepy", engine="sleepy")
    registry.unregister_engine("sleepy")


@pytest.fixture()
def undecided_engine():
    registry.register_engine("undecided", _undecided_loader)
    yield
    registry.unregister_engine("undecided")


class TestFirstVerdictWins:
    def test_fast_engine_wins_and_loser_is_cancelled(self, sleepy_engine):
        start = time.monotonic()
        outcome = verify_portfolio(
            SAFE_SRC, [sleepy_engine, VerifierConfig.zord()], jobs=2
        )
        elapsed = time.monotonic() - start
        assert outcome.verdict == Verdict.SAFE
        assert outcome.winner == "zord"
        assert outcome.result is not None and outcome.result.is_safe
        # The sleepy engine (30s of work) lost the race and was SIGTERMed:
        # the portfolio finishes in roughly the fast engine's wall time.
        assert outcome.runs[0].status == "cancelled"
        assert elapsed < 15

    def test_unsafe_verdict_wins_with_witness(self):
        outcome = verify_portfolio(
            UNSAFE_SRC, [VerifierConfig.zord(), VerifierConfig.cbmc()], jobs=2
        )
        assert outcome.verdict == Verdict.UNSAFE
        assert outcome.is_unsafe and not outcome.is_safe
        assert outcome.result is not None
        assert outcome.result.witness is not None

    def test_runs_aligned_with_configs(self, sleepy_engine):
        outcome = verify_portfolio(
            SAFE_SRC, [sleepy_engine, VerifierConfig.zord()], jobs=2
        )
        assert [r.config_name for r in outcome.runs] == ["sleepy", "zord"]


class TestSerialFallback:
    def test_jobs1_matches_parallel_verdict(self):
        configs = [VerifierConfig.zord(), VerifierConfig.cbmc()]
        serial = verify_portfolio(SAFE_SRC, configs, jobs=1)
        parallel = verify_portfolio(SAFE_SRC, configs, jobs=2)
        assert serial.verdict == parallel.verdict == Verdict.SAFE

    def test_jobs1_deterministic_winner_is_first_conclusive(self):
        outcome = verify_portfolio(
            SAFE_SRC, [VerifierConfig.cbmc(), VerifierConfig.zord()], jobs=1
        )
        assert outcome.winner == "cbmc"
        # The remaining config never ran.
        assert outcome.runs[1].status == "cancelled"

    def test_single_config_portfolio_runs_serially(self):
        outcome = verify_portfolio(SAFE_SRC, [VerifierConfig.zord()], jobs=8)
        assert outcome.verdict == Verdict.SAFE
        assert outcome.winner == "zord"


class TestAggregation:
    def test_all_unknown_aggregates_to_unknown(self, undecided_engine):
        configs = [
            VerifierConfig(name="u1", engine="undecided"),
            VerifierConfig(name="u2", engine="undecided"),
        ]
        outcome = verify_portfolio(SAFE_SRC, configs, jobs=2)
        assert outcome.verdict == Verdict.UNKNOWN
        assert outcome.winner is None and outcome.result is None
        assert [r.status for r in outcome.runs] == ["unknown", "unknown"]

    def test_unknown_then_conclusive(self, undecided_engine):
        configs = [
            VerifierConfig(name="u1", engine="undecided"),
            VerifierConfig.zord(),
        ]
        outcome = verify_portfolio(SAFE_SRC, configs, jobs=1)
        assert outcome.verdict == Verdict.SAFE
        assert outcome.winner == "zord"
        assert outcome.runs[0].status == "unknown"


class TestInputs:
    def test_preset_names_accepted(self):
        outcome = verify_portfolio(SAFE_SRC, ["zord", "cbmc"], jobs=1)
        assert outcome.verdict == Verdict.SAFE

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown preset"):
            verify_portfolio(SAFE_SRC, ["zord", "nope"], jobs=1)

    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            verify_portfolio(SAFE_SRC, [], jobs=1)

    def test_parse_error_raises_in_parent(self):
        from repro.lang.parser import ParseError

        with pytest.raises(ParseError):
            verify_portfolio("int x = ;", ["zord", "cbmc"], jobs=2)

    def test_time_limit_applied_to_unbudgeted_configs(self):
        outcome = verify_portfolio(
            SAFE_SRC, [VerifierConfig.zord()], jobs=1, time_limit_s=60.0
        )
        assert outcome.verdict == Verdict.SAFE

    def test_ast_program_accepted(self):
        from repro.lang import parse

        outcome = verify_portfolio(parse(SAFE_SRC), ["zord"], jobs=1)
        assert outcome.verdict == Verdict.SAFE

    def test_str_rendering(self):
        outcome = verify_portfolio(SAFE_SRC, ["zord"], jobs=1)
        text = str(outcome)
        assert "SAFE" in text and "zord" in text and "winner" in text


class TestVerifyBatch:
    TASKS = [
        Task("portfolio/locked", "demo", SAFE_SRC, True, unwind=4),
        Task("portfolio/racy", "demo", UNSAFE_SRC, False, unwind=4),
        Task("portfolio/chain", "demo", CHAIN_SRC, True, unwind=4),
    ]
    CONFIGS = {"zord": VerifierConfig.zord, "cbmc": VerifierConfig.cbmc}

    def test_grid_shape_and_alignment(self):
        results = verify_batch(self.TASKS, self.CONFIGS, jobs=2,
                               time_limit_s=30.0)
        assert set(results) == {"zord", "cbmc"}
        for rows in results.values():
            assert [r.task for r in rows] == [t.name for t in self.TASKS]

    def test_parallel_matches_serial_verdicts(self):
        serial = run_suite(self.TASKS, self.CONFIGS, time_limit_s=30.0)
        parallel = run_suite(self.TASKS, self.CONFIGS, time_limit_s=30.0,
                             jobs=2)
        for name in self.CONFIGS:
            assert [r.verdict for r in serial[name]] == [
                r.verdict for r in parallel[name]
            ]
            assert all(r.correct for r in parallel[name])

    def test_accepts_config_instances_and_preset_names(self):
        results = verify_batch(self.TASKS[:1], [VerifierConfig.zord(), "cbmc"],
                               jobs=1, time_limit_s=30.0)
        assert set(results) == {"zord", "cbmc"}

    def test_jobs1_serial_path(self):
        results = verify_batch(self.TASKS[:2], self.CONFIGS, jobs=1,
                               time_limit_s=30.0)
        assert results["zord"][0].verdict == Verdict.SAFE
        assert results["zord"][1].verdict == Verdict.UNSAFE
