"""Portfolio clause sharing: signature grouping, verdict preservation with
sharing on/off, and the serial share-forward path."""

import pytest

from repro.portfolio import verify_portfolio
from repro.portfolio.sharing import encoding_signature, share_groups
from repro.verify import Verdict, VerifierConfig

from tests.verify.programs import ALL_PROGRAMS

_BY_NAME = {name: (source, safe) for name, source, safe in ALL_PROGRAMS}


class TestSignatures:
    def test_search_side_ablations_share(self):
        # Zord and its search-side ablations solve the identical CNF.
        sigs = {
            encoding_signature(c)
            for c in (
                VerifierConfig.zord(),
                VerifierConfig.zord_prime(),
                VerifierConfig.zord_tarjan(),
            )
        }
        assert len(sigs) == 1

    def test_formula_shaping_knobs_split_groups(self):
        base = encoding_signature(VerifierConfig.zord())
        assert encoding_signature(VerifierConfig.zord_minus()) != base
        assert encoding_signature(VerifierConfig.cbmc()) != base
        assert encoding_signature(VerifierConfig.zord(unwind=4)) != base
        assert encoding_signature(VerifierConfig.zord(width=16)) != base
        assert encoding_signature(VerifierConfig.zord(prune_level=0)) != base
        assert (
            encoding_signature(VerifierConfig.zord(unwind_schedule=(1, 2, 8)))
            != base
        )

    def test_non_smt_engines_never_share(self):
        assert encoding_signature(VerifierConfig.cpa_seq()) is None
        assert encoding_signature(VerifierConfig.dartagnan()) is None

    def test_share_groups_drops_singletons(self):
        cfgs = [
            VerifierConfig.zord(),
            VerifierConfig.zord_prime(),
            VerifierConfig.cbmc(),  # different encoding, alone in its group
            VerifierConfig.cpa_seq(),  # no SAT core at all
        ]
        groups = share_groups(cfgs)
        assert list(groups.values()) == [[0, 1]]

    def test_search_budgets_do_not_split_groups(self):
        a = encoding_signature(VerifierConfig.zord())
        b = encoding_signature(VerifierConfig.zord(max_conflicts=5))
        c = encoding_signature(VerifierConfig.zord(time_limit_s=1.0))
        assert a == b == c


CFGS = [
    VerifierConfig.zord(),
    VerifierConfig.zord_prime(),
    VerifierConfig.zord_tarjan(),
]

EQUIV_PROGRAMS = [
    "paper_fig2", "lost_update_unsafe", "locked_counter_safe", "race_unsafe",
]


class TestVerdictPreservation:
    @pytest.mark.parametrize("name", EQUIV_PROGRAMS)
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_sharing_never_changes_the_verdict(self, name, jobs):
        source, safe = _BY_NAME[name]
        expected = Verdict.SAFE if safe else Verdict.UNSAFE
        on = verify_portfolio(source, CFGS, jobs=jobs, share_clauses=True)
        off = verify_portfolio(source, CFGS, jobs=jobs, share_clauses=False)
        assert on.verdict == expected
        assert off.verdict == expected
        assert off.shared_clauses == 0

    def test_serial_share_forward_imports(self):
        # First member exhausts a tiny conflict budget (inconclusive) but
        # publishes its learned clauses; the second member imports them and
        # still reaches the correct verdict.
        source, _ = _BY_NAME["peterson_safe"]
        result = verify_portfolio(
            source,
            [VerifierConfig.zord(max_conflicts=20), VerifierConfig.zord_prime()],
            jobs=1,
            share_clauses=True,
        )
        assert result.verdict == Verdict.SAFE
        assert result.winner == "zord'"
        assert result.shared_clauses > 0
        winner_stats = result.result.stats
        assert winner_stats["shared_imported"] > 0

    def test_incompatible_members_never_exchange(self):
        source, _ = _BY_NAME["lost_update_unsafe"]
        result = verify_portfolio(
            source,
            [VerifierConfig.zord(), VerifierConfig.cbmc()],
            jobs=1,
            share_clauses=True,
        )
        assert result.verdict == Verdict.UNSAFE
        assert result.shared_clauses == 0
