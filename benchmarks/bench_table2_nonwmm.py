"""Table 2: summary results with the wmm sub-category excluded.

Paper shape: the same ordering as Table 1 holds on the larger, more
realistic non-wmm tasks.
"""

from conftest import write_output

from repro.bench.harness import render_summary_table
from repro.verify import VerifierConfig, verify
from tests.verify.programs import LOCKED_COUNTER_SAFE


def test_table2(benchmark, svcomp_results, svcomp_tasks):
    benchmark.pedantic(
        lambda: verify(LOCKED_COUNTER_SAFE, VerifierConfig.zord()),
        rounds=3,
        iterations=1,
    )
    keep = [i for i, t in enumerate(svcomp_tasks) if t.category != "wmm"]
    filtered = {
        name: [rows[i] for i in keep] for name, rows in svcomp_results.items()
    }
    table = render_summary_table(
        filtered,
        reference="zord",
        title=f"Table 2: {len(keep)} non-wmm tasks "
        "(#solved; CPU time and memory on both-solved cases)",
    )
    write_output("table2.txt", table)

    zord = filtered["zord"]
    n_zord = sum(1 for r in zord if r.solved)
    for tool in ("cbmc", "cpa-seq", "dartagnan"):
        n_tool = sum(1 for r in filtered[tool] if r.solved)
        assert n_zord >= n_tool, f"zord should solve at least as many as {tool}"
