"""Shared experiment fixtures for the benchmark suite.

Each paper table/figure has its own ``bench_*.py`` file; expensive engine
grids are computed once per session here and shared.  Rendered tables are
written to ``benchmarks/out/`` and printed (visible with ``-s`` /
``--capture=no``).

With ``REPRO_SERVER=HOST:PORT`` pointing at a running ``repro serve``
daemon, every serial task the harness runs is routed through the service
(see :mod:`repro.api`), turning the bench suites into service traffic
generators: repeat runs answer from the verdict cache, and the daemon's
``stats`` op reports the hit rate.  ``benchmarks/bench_ext_service.py``
measures the service itself (spawning its own private daemon).
"""

from __future__ import annotations

import os

import pytest

from repro.bench import nidhugg_suite, run_suite, svcomp_suite
from repro.bench.harness import results_to_csv
from repro.verify import VerifierConfig

#: Per-task wall-clock budget for the SV-COMP-like grid (seconds).
SVCOMP_TIME_LIMIT = 10.0
#: Per-task budget for the Nidhugg grid (seconds).
NIDHUGG_TIME_LIMIT = 30.0
#: Worker processes for the engine grids (``REPRO_BENCH_JOBS=8`` runs the
#: paper's engine-vs-engine figures in parallel via repro.portfolio).
#: Serial (1) remains the default: per-task wall times are the figures'
#: payload and are cleanest on an unloaded machine.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_output(name: str, text: str) -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, name), "w") as f:
        f.write(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def svcomp_tasks():
    return svcomp_suite(scale=1)


@pytest.fixture(scope="session")
def svcomp_results(svcomp_tasks):
    """Table 1 / Figures 5-7 grid: all comparison engines on the suite."""
    configs = {
        "zord": VerifierConfig.zord,
        "cbmc": VerifierConfig.cbmc,
        "dartagnan": VerifierConfig.dartagnan,
        "cpa-seq": VerifierConfig.cpa_seq,
        "lazy-cseq": VerifierConfig.lazy_cseq,
    }
    results = run_suite(
        svcomp_tasks, configs, time_limit_s=SVCOMP_TIME_LIMIT,
        measure_memory=True, jobs=BENCH_JOBS,
    )
    write_output("svcomp_grid.csv", results_to_csv(results).rstrip())
    return results


@pytest.fixture(scope="session")
def ablation_results(svcomp_tasks):
    """Figures 8-10 grid: Zord against its own ablations."""
    configs = {
        "zord": VerifierConfig.zord,
        "zord-": VerifierConfig.zord_minus,
        "zord'": VerifierConfig.zord_prime,
        "zord-tarjan": VerifierConfig.zord_tarjan,
    }
    return run_suite(
        svcomp_tasks, configs, time_limit_s=SVCOMP_TIME_LIMIT, jobs=BENCH_JOBS
    )


@pytest.fixture(scope="session")
def nidhugg_tasks():
    return nidhugg_suite()


@pytest.fixture(scope="session")
def nidhugg_results(nidhugg_tasks):
    """Table 3 grid: SMC tools vs BMC tools on the Nidhugg programs."""
    configs = {
        "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
        "genmc": VerifierConfig.genmc,
        "cbmc": VerifierConfig.cbmc,
        "zord": VerifierConfig.zord,
    }
    results = run_suite(
        nidhugg_tasks, configs, time_limit_s=NIDHUGG_TIME_LIMIT, jobs=BENCH_JOBS
    )
    write_output("nidhugg_grid.csv", results_to_csv(results).rstrip())
    return results
