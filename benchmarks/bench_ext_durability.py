"""Extension benchmark: service durability.

Measured and recorded to ``out/BENCH_durability*.json``:

1. **Journal recovery.**  The SV-COMP-like suite is run against a daemon
   with a persistent cache dir, the daemon is shut down, and a *fresh*
   daemon is started on the same dir.  Every conclusive verdict from the
   first daemon must answer as a cache hit in the second -- the journal
   recovered hit rate is asserted at 100% -- and the recovered pass is
   timed against the cold one.
2. **Checkpoint resume.**  A deep ``unwind_schedule`` job is solved from
   scratch and again from a seeded checkpoint past most of the schedule.
   The resumed run must return the same verdict while skipping the
   completed bounds; both wall times are recorded.

Together these put numbers on what the chaos suite proves qualitatively:
restart cost is a journal replay, not a recomputation, and a retried
deep job pays only for the bounds it had not finished.
"""

import json
import time

from conftest import write_output

from repro.bench import svcomp_suite
from repro.service.cache import cache_key, key_token
from repro.service.checkpoints import CheckpointStore
from repro.service.client import ServiceClient
from repro.service.workers import WorkerPool
from repro.verify import Verdict
from repro.verify.checkpoint import Checkpoint
from repro.verify.config import VerifierConfig

LOOP_PROGRAM = """
int x = 0;
thread t { int i; i = 0; while (i < 8) { x = x + 1; i = i + 1; } }
main { start t; join t; assert(x <= 8); }
"""

SCHEDULE = (1, 2, 4, 8)


def _run_pass(client, tasks):
    wall = 0.0
    outcomes = []
    for task in tasks:
        config = {"preset": "zord", "unwind": task.unwind}
        t0 = time.perf_counter()
        result = client.verify(task.source, config)
        wall += time.perf_counter() - t0
        outcomes.append((task, result))
    return wall, outcomes


def test_journal_recovery_hit_rate_and_speedup(tmp_path):
    tasks = svcomp_suite(scale=1)
    cache_dir = str(tmp_path / "cache")

    client = ServiceClient.spawn(workers=2, cache_dir=cache_dir)
    try:
        cold_wall, cold = _run_pass(client, tasks)
        client.shutdown()
    finally:
        client.close()

    # A brand-new daemon on the same dir: its only knowledge of the
    # suite is what the journal preserved.
    client = ServiceClient.spawn(workers=2, cache_dir=cache_dir)
    try:
        recovered_wall, recovered = _run_pass(client, tasks)
        stats = client.stats()
    finally:
        client.close()

    # Verdict fidelity on both passes.
    mismatches = []
    for pass_name, outcomes in (("cold", cold), ("recovered", recovered)):
        for task, result in outcomes:
            expected = Verdict.SAFE if task.expected_safe else Verdict.UNSAFE
            if result.verdict != expected:
                mismatches.append((pass_name, task.name, result.verdict))
    assert not mismatches, mismatches

    # Every conclusive cold verdict (all of them, per the fidelity
    # check) must have survived the restart: recovered hit rate 100%.
    conclusive = sum(
        1 for _, r in cold if r.verdict in (Verdict.SAFE, Verdict.UNSAFE)
    )
    recovered_hits = sum(r.stats["cache_hit"] for _, r in recovered)
    hit_rate = recovered_hits / conclusive if conclusive else 0.0
    assert hit_rate == 1.0, (
        f"journal recovery served {recovered_hits}/{conclusive} verdicts"
    )
    # Distinct journal entries (duplicate tasks share a key) -- all clean.
    assert stats["persist_recovered"] > 0
    assert stats["persist_discarded"] == 0

    speedup = cold_wall / recovered_wall if recovered_wall > 0 else float("inf")
    record = {
        "tasks": len(tasks),
        "cold_wall_s": round(cold_wall, 4),
        "recovered_wall_s": round(recovered_wall, 4),
        "recovery_speedup": round(speedup, 1),
        "recovered_hit_rate": round(hit_rate, 3),
        "journal_entries_recovered": stats["persist_recovered"],
        "journal_discarded": stats["persist_discarded"],
        "server_stats": stats,
    }
    write_output("BENCH_durability.json", json.dumps(record, indent=2))


def test_checkpoint_resume_vs_from_scratch(tmp_path):
    config = VerifierConfig(unwind=SCHEDULE[-1], unwind_schedule=SCHEDULE)
    token = key_token(cache_key(LOOP_PROGRAM, config))

    pool = WorkerPool(size=1, checkpoint_dir=str(tmp_path))
    try:
        t0 = time.perf_counter()
        _, fut, _ = pool.submit(LOOP_PROGRAM, config.to_dict(), "tok-scratch")
        scratch = fut.result(timeout=300)["result"]
        scratch_wall = time.perf_counter() - t0
        assert scratch["verdict"] == "safe"

        # Seed the checkpoint a retried job would have left behind:
        # everything but the last bound already completed.
        store = CheckpointStore(str(tmp_path))
        store.save(token, Checkpoint(schedule=SCHEDULE,
                                     completed=SCHEDULE[:-1]))
        t0 = time.perf_counter()
        _, fut, _ = pool.submit(LOOP_PROGRAM, config.to_dict(), token)
        resumed = fut.result(timeout=300)["result"]
        resumed_wall = time.perf_counter() - t0
    finally:
        pool.shutdown()

    # Same verdict, most of the schedule skipped.
    assert resumed["verdict"] == scratch["verdict"] == "safe"
    assert resumed["stats"]["resumed_from_bound"] == SCHEDULE[-2]
    assert resumed["stats"]["bounds_skipped"] == len(SCHEDULE) - 1
    assert resumed["stats"]["unwind_schedule"] == [SCHEDULE[-1]]

    record = {
        "schedule": list(SCHEDULE),
        "scratch_wall_s": round(scratch_wall, 4),
        "resumed_wall_s": round(resumed_wall, 4),
        "bounds_skipped": resumed["stats"]["bounds_skipped"],
        "resumed_from_bound": resumed["stats"]["resumed_from_bound"],
        "scratch_conflicts": scratch["stats"].get("conflicts"),
        "resumed_conflicts": resumed["stats"].get("conflicts"),
    }
    write_output("BENCH_durability_resume.json", json.dumps(record, indent=2))
