"""Extension ablation: all shortest-width conflict clauses vs just one.

Section 5.3 argues for returning *all* shortest-width critical cycles per
inconsistency ("If there are multiple critical cycles with the shortest
width, we generate them all") because their reasons prune more search
space.  This ablation caps the generator at a single clause and compares.
"""

from conftest import write_output

from repro.bench import run_suite
from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import PAPER_FIG2


def test_conflict_clause_cap(benchmark, svcomp_tasks):
    benchmark.pedantic(
        lambda: verify(PAPER_FIG2, VerifierConfig.zord(max_conflict_clauses=1)),
        rounds=3,
        iterations=1,
    )
    # Restrict to the non-trivial tasks (conflict-heavy ones).
    tasks = [
        t for t in svcomp_tasks
        if t.category in ("pthread", "complex", "lit", "ext", "C-DAC")
    ]
    results = run_suite(
        tasks,
        {
            "zord-all-cc": lambda **kw: VerifierConfig.zord(
                max_conflict_clauses=8, **kw
            ).with_(name="zord-all-cc"),
            "zord-one-cc": lambda **kw: VerifierConfig.zord(
                max_conflict_clauses=1, **kw
            ).with_(name="zord-one-cc"),
        },
        time_limit_s=10.0,
    )
    fig = render_scatter(
        results, "zord-one-cc", "zord-all-cc",
        "Extension ablation: all shortest-width conflict clauses vs one",
    )
    write_output("ext_conflict_clauses.txt", fig)

    both = [
        (a, b)
        for a, b in zip(results["zord-one-cc"], results["zord-all-cc"])
        if a.solved and b.solved
    ]
    conf_one = sum(a.stats.get("conflicts", 0) for a, _ in both)
    conf_all = sum(b.stats.get("conflicts", 0) for _, b in both)
    write_output(
        "ext_conflict_clauses_counters.txt",
        f"SAT conflicts: all-cc={conf_all} one-cc={conf_one}",
    )
    # Both must solve everything; the multi-clause variant should not need
    # more conflicts than the single-clause one (its lemmas prune more).
    assert all(a.solved for a, _ in both)
    assert conf_all <= conf_one * 1.2
