"""Figure 6: per-task CPU time, Zord vs the Lazy-CSeq-style baseline.

Paper shape: Zord is faster on most (but not all) tasks; Lazy-CSeq remains
competitive on bug-finding tasks where a shallow schedule exposes the bug.
"""

from conftest import write_output

from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import STORE_BUFFERING


def test_fig6(benchmark, svcomp_results):
    benchmark.pedantic(
        lambda: verify(STORE_BUFFERING, VerifierConfig.lazy_cseq(rounds=3)),
        rounds=3,
        iterations=1,
    )
    fig = render_scatter(
        svcomp_results,
        "lazy-cseq",
        "zord",
        "Figure 6: Zord vs Lazy-CSeq (per-task seconds)",
    )
    write_output("fig6.txt", fig)

    zord = svcomp_results["zord"]
    lazy = svcomp_results["lazy-cseq"]
    solved_both = [(a, b) for a, b in zip(lazy, zord) if a.solved and b.solved]
    t_lazy = sum(a.time_s for a, _ in solved_both)
    t_zord = sum(b.time_s for _, b in solved_both)
    assert t_zord <= t_lazy, "Zord should be faster overall on both-solved"
