"""Extension micro-benchmark: incremental vs fresh cycle detection on the
bare event-graph data structure.

Figure 10 measures the effect end-to-end through the whole verifier; this
companion isolates the algorithmic claim: per-insertion cost of the
two-way-search ICD (amortized O(min(m^1/2, n^2/3))) against fresh full
search (O(n+m)) as the graph grows.
"""

import random

import pytest
from conftest import write_output

from repro.ordering import (
    Edge,
    EdgeKind,
    EventGraph,
    IncrementalCycleDetector,
    TarjanCycleDetector,
)


def _insert_workload(n_nodes, n_edges, seed=7):
    """A random DAG-respecting edge sequence (u < v keeps it acyclic)."""
    rng = random.Random(seed)
    edges = []
    while len(edges) < n_edges:
        u = rng.randrange(n_nodes - 1)
        v = rng.randrange(u + 1, n_nodes)
        edges.append((u, v))
    return edges


def _run(detector_cls, n_nodes, edges):
    graph = EventGraph(n_nodes)
    det = detector_cls(graph)
    var = 0
    for u, v in edges:
        var += 1
        res = det.add_edge(Edge(u, v, EdgeKind.WS, (var,), var))
        assert not res.cycle
    return graph.n_active_edges


@pytest.mark.parametrize("n_nodes,n_edges", [(200, 800), (400, 1600)])
def test_icd_micro(benchmark, n_nodes, n_edges):
    edges = _insert_workload(n_nodes, n_edges)
    benchmark.pedantic(
        lambda: _run(IncrementalCycleDetector, n_nodes, edges),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("n_nodes,n_edges", [(200, 800)])
def test_tarjan_micro(benchmark, n_nodes, n_edges):
    edges = _insert_workload(n_nodes, n_edges)
    benchmark.pedantic(
        lambda: _run(TarjanCycleDetector, n_nodes, edges),
        rounds=3,
        iterations=1,
    )


def test_icd_vs_tarjan_scaling(benchmark):
    """The gap must widen as the graph grows."""
    import time

    edges_small = _insert_workload(100, 400)
    benchmark.pedantic(
        lambda: _run(IncrementalCycleDetector, 100, edges_small),
        rounds=3,
        iterations=1,
    )

    rows = ["n_nodes n_edges icd_s tarjan_s ratio"]
    ratios = []
    for n_nodes, n_edges in [(100, 400), (200, 800), (400, 1600)]:
        edges = _insert_workload(n_nodes, n_edges)
        t0 = time.monotonic()
        _run(IncrementalCycleDetector, n_nodes, edges)
        t_icd = time.monotonic() - t0
        t0 = time.monotonic()
        _run(TarjanCycleDetector, n_nodes, edges)
        t_tarjan = time.monotonic() - t0
        ratio = t_tarjan / max(t_icd, 1e-9)
        ratios.append(ratio)
        rows.append(
            f"{n_nodes} {n_edges} {t_icd:.4f} {t_tarjan:.4f} {ratio:.2f}"
        )
    # The hot-path classes on this workload declare __slots__: no
    # per-instance __dict__, so edge activation stays allocation-lean.
    # Record that the layout holds -- a regression back to dict-backed
    # instances shows up in these timings first.
    slot_note = " ".join(
        f"{cls.__name__}={'__dict__' not in cls.__dict__}"
        for cls in (Edge, EventGraph, IncrementalCycleDetector, TarjanCycleDetector)
    )
    rows.append(f"slots: {slot_note}")
    assert "False" not in slot_note, slot_note
    write_output("ext_icd_micro.txt", "\n".join(rows))
    # Fresh detection must be clearly slower at the largest size.
    assert ratios[-1] > 2.0, rows
