"""Extension micro-benchmark: incremental vs fresh cycle detection on the
bare event-graph data structure.

Figure 10 measures the effect end-to-end through the whole verifier; this
companion isolates the algorithmic claim: per-insertion cost of the
two-way-search ICD (amortized O(min(m^1/2, n^2/3))) against fresh full
search (O(n+m)) as the graph grows.

The scaling table also carries **before/after columns**: the recorded
timings of the pre-rewrite object-soup implementation (per-insertion
``{node: Edge}`` parent dicts, per-search visited sets, tuple-chasing
path walks) next to the live timings of the packed kernel
(:mod:`repro.ordering.kernel`: epoch-stamped search scratch, interned
edge ids, flat reason pool).  Read the columns honestly: on this
DAG-ordered workload most insertions hit the ICD fast path, so the
packed kernel is near parity (the one-time edge interning shows up
because every edge here is fresh); the packed layout wins on
search-heavy loads and in allocation behaviour, and those numbers live
in ``docs/SATCORE.md``.
"""

import random

import pytest
from conftest import write_output

from repro.ordering import (
    Edge,
    EdgeKind,
    EventGraph,
    IncrementalCycleDetector,
    TarjanCycleDetector,
)


#: Recorded timings (seconds) of the pre-rewrite object-soup detectors on
#: this exact workload (``_insert_workload(n, m, seed=7)``, best of 7),
#: measured at rewrite time on the development machine -- the "before"
#: columns of the scaling table.  Absolute wall clock is
#: machine-dependent; the columns are for eyeballing the shape, not for
#: CI assertions.
BASELINE_OBJECT_SOUP = {
    "icd": {(100, 400): 0.0008, (200, 800): 0.0011, (400, 1600): 0.0022},
    "tarjan": {(100, 400): 0.0025, (200, 800): 0.0071, (400, 1600): 0.0193},
}


def _insert_workload(n_nodes, n_edges, seed=7):
    """A random DAG-respecting edge sequence (u < v keeps it acyclic)."""
    rng = random.Random(seed)
    edges = []
    while len(edges) < n_edges:
        u = rng.randrange(n_nodes - 1)
        v = rng.randrange(u + 1, n_nodes)
        edges.append((u, v))
    return edges


def _run(detector_cls, n_nodes, edges):
    graph = EventGraph(n_nodes)
    det = detector_cls(graph)
    var = 0
    for u, v in edges:
        var += 1
        res = det.add_edge(Edge(u, v, EdgeKind.WS, (var,), var))
        assert not res.cycle
    return graph.n_active_edges


@pytest.mark.parametrize("n_nodes,n_edges", [(200, 800), (400, 1600)])
def test_icd_micro(benchmark, n_nodes, n_edges):
    edges = _insert_workload(n_nodes, n_edges)
    benchmark.pedantic(
        lambda: _run(IncrementalCycleDetector, n_nodes, edges),
        rounds=3,
        iterations=1,
    )


@pytest.mark.parametrize("n_nodes,n_edges", [(200, 800)])
def test_tarjan_micro(benchmark, n_nodes, n_edges):
    edges = _insert_workload(n_nodes, n_edges)
    benchmark.pedantic(
        lambda: _run(TarjanCycleDetector, n_nodes, edges),
        rounds=3,
        iterations=1,
    )


def test_icd_vs_tarjan_scaling(benchmark):
    """The gap must widen as the graph grows."""
    import time

    edges_small = _insert_workload(100, 400)
    benchmark.pedantic(
        lambda: _run(IncrementalCycleDetector, 100, edges_small),
        rounds=3,
        iterations=1,
    )

    rows = [
        "n_nodes n_edges icd_s tarjan_s ratio icd_before_s tarjan_before_s"
    ]
    ratios = []
    for n_nodes, n_edges in [(100, 400), (200, 800), (400, 1600)]:
        edges = _insert_workload(n_nodes, n_edges)
        t0 = time.monotonic()
        _run(IncrementalCycleDetector, n_nodes, edges)
        t_icd = time.monotonic() - t0
        t0 = time.monotonic()
        _run(TarjanCycleDetector, n_nodes, edges)
        t_tarjan = time.monotonic() - t0
        ratio = t_tarjan / max(t_icd, 1e-9)
        ratios.append(ratio)
        before_icd = BASELINE_OBJECT_SOUP["icd"][(n_nodes, n_edges)]
        before_tarjan = BASELINE_OBJECT_SOUP["tarjan"][(n_nodes, n_edges)]
        rows.append(
            f"{n_nodes} {n_edges} {t_icd:.4f} {t_tarjan:.4f} {ratio:.2f}"
            f" {before_icd:.4f} {before_tarjan:.4f}"
        )
    # The hot-path classes on this workload declare __slots__: no
    # per-instance __dict__, so edge activation stays allocation-lean.
    # Record that the layout holds -- a regression back to dict-backed
    # instances shows up in these timings first.
    slot_note = " ".join(
        f"{cls.__name__}={'__dict__' not in cls.__dict__}"
        for cls in (Edge, EventGraph, IncrementalCycleDetector, TarjanCycleDetector)
    )
    rows.append(f"slots: {slot_note}")
    assert "False" not in slot_note, slot_note
    write_output("ext_icd_micro.txt", "\n".join(rows))
    # Fresh detection must be clearly slower at the largest size.
    assert ratios[-1] > 2.0, rows
