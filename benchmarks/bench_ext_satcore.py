"""Extension benchmark: the flat-arena CDCL kernel vs the frozen
pre-rewrite reference core (ROADMAP item 2).

Two claims, measured separately and recorded to ``out/BENCH_satcore*.json``:

* **speed** -- on propagation-bound families (deep binary implication
  chains, incremental assumption re-solves, wide watcher fan-out) the
  flat kernel must be >= 3x faster than ``ReferenceSolver``.  These
  families isolate unit propagation: (near-)zero conflicts, so the time
  is watcher traversal + trail maintenance, which is exactly what the
  arena/binary-watcher/indexed-heap rewrite targets.  Mixed
  search-bound loads (random 3-SAT, core-extraction probes) are
  reported alongside without the 3x gate -- conflict analysis and core
  extraction were not the rewrite's hot path and gain less.
* **equivalence** -- the two cores must agree on every ``examples/``
  program and on a 200-seed generated-program sweep through the full
  Zord pipeline (encoder + T_ord theory), reference core monkeypatched
  in via ``repro.encoding.encoder.Solver``.
"""

import json
import random
import statistics
import time

import pytest
from conftest import write_output

from repro.sat import SolveResult, Solver
from repro.sat.reference import ReferenceSolver

#: Required speedup on the propagation-bound families (ROADMAP item 2).
TARGET_RATIO = 3.0


# ----------------------------------------------------------------------
# Workload families
# ----------------------------------------------------------------------


def _chain(cls, n):
    s = cls()
    for _ in range(n):
        s.new_var()
    for i in range(1, n):
        s.add_clause([-i, i + 1])
    return s


def fam_chain_once(cls):
    """Deep binary implication chain, one assumption-driven solve."""
    s = _chain(cls, 100_000)
    t0 = time.perf_counter()
    assert s.solve(assumptions=[1]) == SolveResult.SAT
    return time.perf_counter() - t0


def fam_chain_incremental(cls):
    """30 incremental re-solves of the same chain: propagation plus the
    backjump/heap churn of assumption-based incremental solving."""
    s = _chain(cls, 3_000)
    t0 = time.perf_counter()
    for _ in range(30):
        assert s.solve(assumptions=[1]) == SolveResult.SAT
    return time.perf_counter() - t0


def fam_fanout(cls):
    """Star implication: one literal watches 30k binary clauses -- a
    single very long watcher-list traversal per solve."""
    n = 30_000
    s = cls()
    for _ in range(n):
        s.new_var()
    for v in range(2, n + 1):
        s.add_clause([-1, v])
    t0 = time.perf_counter()
    for _ in range(10):
        assert s.solve(assumptions=[1]) == SolveResult.SAT
    return time.perf_counter() - t0


def fam_unsat_probe(cls):
    """Contradictory assumption probes: propagation to conflict plus
    final-conflict core extraction (reported, not gated)."""
    s = _chain(cls, 3_000)
    t0 = time.perf_counter()
    for _ in range(30):
        assert s.solve(assumptions=[1, -3_000]) == SolveResult.UNSAT
        assert sorted(s.unsat_core) == [-3_000, 1]
    return time.perf_counter() - t0


def fam_random_3sat(cls):
    """Near-threshold random 3-SAT: search-bound (reported, not gated)."""
    t0 = time.perf_counter()
    for seed in range(8):
        rng = random.Random(seed)
        nvars = 120
        s = cls()
        for _ in range(nvars):
            s.new_var()
        for _ in range(int(nvars * 4.26)):
            clause = []
            while len(clause) < 3:
                v = rng.randint(1, nvars)
                if v not in map(abs, clause):
                    clause.append(v if rng.random() < 0.5 else -v)
            s.add_clause(clause)
        assert s.solve() in (SolveResult.SAT, SolveResult.UNSAT)
    return time.perf_counter() - t0


PROPAGATION_BOUND = [
    ("chain", fam_chain_once),
    ("chain-incremental", fam_chain_incremental),
    ("fanout", fam_fanout),
]
REPORTED_ONLY = [
    ("unsat-probe", fam_unsat_probe),
    ("random-3sat", fam_random_3sat),
]


def _best_of(fn, cls, rounds=3):
    return min(fn(cls) for _ in range(rounds))


def test_flat_kernel_speedup(benchmark):
    benchmark.pedantic(
        lambda: fam_chain_incremental(Solver), rounds=3, iterations=1
    )
    rows = []
    gated = []
    for name, fn in PROPAGATION_BOUND + REPORTED_ONLY:
        t_flat = _best_of(fn, Solver)
        t_ref = _best_of(fn, ReferenceSolver)
        ratio = t_ref / max(t_flat, 1e-9)
        gate = name in dict(PROPAGATION_BOUND)
        if gate:
            gated.append((name, ratio))
        rows.append(
            {
                "family": name,
                "flat_s": round(t_flat, 4),
                "reference_s": round(t_ref, 4),
                "ratio": round(ratio, 2),
                "propagation_bound": gate,
            }
        )
    record = {
        "benchmark": "satcore",
        "target_ratio": TARGET_RATIO,
        "families": rows,
        "geomean_propagation_bound": round(
            statistics.geometric_mean(r for _, r in gated), 2
        ),
    }
    write_output("BENCH_satcore.json", json.dumps(record, indent=2))
    for name, ratio in gated:
        assert ratio >= TARGET_RATIO, (
            f"{name}: flat kernel only {ratio:.2f}x vs reference "
            f"(target {TARGET_RATIO}x)\n{json.dumps(record, indent=2)}"
        )


# ----------------------------------------------------------------------
# Verdict equivalence
# ----------------------------------------------------------------------


def _verify_both(source):
    """Verdicts from the flat pipeline and the reference-core pipeline."""
    import repro.encoding.encoder as encoder_mod
    from repro.api import verify

    flat = verify(source).verdict
    saved = encoder_mod.Solver
    encoder_mod.Solver = ReferenceSolver
    try:
        ref = verify(source).verdict
    finally:
        encoder_mod.Solver = saved
    return str(flat), str(ref)


def test_equivalence_examples_and_sweep(benchmark):
    from pathlib import Path

    from repro.oracle.generator import generate_source

    examples_dir = Path(__file__).resolve().parent.parent / "examples" / "programs"
    examples = sorted(examples_dir.glob("*"))
    assert examples, "examples/programs/ missing"
    rows = []
    mismatches = []
    t0 = time.perf_counter()
    for path in examples:
        flat, ref = _verify_both(path.read_text())
        rows.append({"task": path.name, "flat": flat, "reference": ref})
        if flat != ref:
            mismatches.append(path.name)
    n_seeds = 200
    agree = 0
    for seed in range(n_seeds):
        flat, ref = _verify_both(generate_source(seed))
        if flat == ref:
            agree += 1
        else:
            mismatches.append(f"seed-{seed}")
    benchmark.pedantic(
        lambda: _verify_both(examples[0].read_text()), rounds=1, iterations=1
    )
    record = {
        "benchmark": "satcore-equivalence",
        "examples": rows,
        "sweep_seeds": n_seeds,
        "sweep_agreements": agree,
        "mismatches": mismatches,
        "elapsed_s": round(time.perf_counter() - t0, 1),
    }
    write_output("BENCH_satcore_equiv.json", json.dumps(record, indent=2))
    assert not mismatches, f"verdict mismatches: {mismatches}"
    assert agree == n_seeds
