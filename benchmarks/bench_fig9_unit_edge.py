"""Figure 9: Zord vs Zord′ (unit-edge propagation disabled).

Paper shape: unit-edge propagation reduces decisions, propagations and
conflicts (to 84.4%, 90.1% and 79.0% in the paper), and total time drops.
"""

from conftest import write_output

from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import PAPER_FIG2, PETERSON_SAFE


def test_fig9(benchmark, ablation_results):
    benchmark.pedantic(
        lambda: verify(PETERSON_SAFE, VerifierConfig.zord_prime(unwind=3)),
        rounds=3,
        iterations=1,
    )
    fig = render_scatter(
        ablation_results, "zord'", "zord",
        "Figure 9: Zord vs Zord′ (per-task seconds)",
    )
    write_output("fig9.txt", fig)

    zord = ablation_results["zord"]
    prime = ablation_results["zord'"]
    both = [(a, b) for a, b in zip(prime, zord) if a.solved and b.solved]
    # Aggregate SAT-search effort on both-solved cases.
    dec_prime = sum(a.stats.get("decisions", 0) for a, _ in both)
    dec_zord = sum(b.stats.get("decisions", 0) for _, b in both)
    conf_prime = sum(a.stats.get("conflicts", 0) for a, _ in both)
    conf_zord = sum(b.stats.get("conflicts", 0) for _, b in both)
    summary = (
        f"decisions zord/zord' = {dec_zord}/{dec_prime}; "
        f"conflicts zord/zord' = {conf_zord}/{conf_prime}"
    )
    write_output("fig9_counters.txt", summary)
    assert dec_zord <= dec_prime, "unit-edge propagation should cut decisions"
    assert conf_zord <= conf_prime, "unit-edge propagation should cut conflicts"
    # Unit-edge propagation must actually fire somewhere in the suite.
    assert any(
        b.stats.get("theory_unit_propagations", 0) > 0 for _, b in both
    )
