"""Extension benchmark: the incremental solving core.

Three claims are measured and recorded to ``out/BENCH_incremental.json``:

1. **Iterative deepening wins on shallow bugs.**  On a family of
   nondet-bounded-loop programs whose bug is reachable after two loop
   iterations, solving the doubling bound schedule 1,2,4,...,max
   incrementally finds the counterexample at bound 2 and never pays the
   full-depth search that one-shot BMC commits to up front.
2. **State is retained across bounds.**  On deterministic-loop SAFE
   programs every bound is UNSAT and each deeper re-solve starts from the
   shallower bounds' learned clauses (``clauses_retained > 0``).
3. **Portfolio clause sharing preserves verdicts.**  Racing Zord against
   its search-side ablations with clause exchange on and off yields the
   same verdict; the shared-clause counter is recorded.

The loop family must be *nondeterministically* bounded: a deterministic
``while (i < 8)`` loop forces every complete execution to full depth, so
every shallow bound is UNSAT and deepening cannot win (see
``docs/INCREMENTAL.md``).
"""

import json
import time

from conftest import write_output

from repro.portfolio import verify_portfolio
from repro.verify import Verdict, VerifierConfig, verify


def shallow_bug_program(n_threads: int, max_iters: int = 8) -> str:
    """Unlocked counter incremented in nondet-bounded loops.

    The assertion bound is ``2 * n_threads``, so a violation needs two
    full iterations from every thread (racy interleavings only *lose*
    updates): the bug is reachable at loop bound 2 and no earlier,
    regardless of the thread count."""
    decls = ["int counter = 0;"]
    body = []
    for t in range(n_threads):
        body.append(
            f"thread w{t} {{ int n; int i; int t; n = nondet(); "
            f"assume(n <= {max_iters}); i = 0; "
            "while (i < n) { t = counter; counter = t + 1; i = i + 1; } }"
        )
    starts = " ".join(f"start w{t};" for t in range(n_threads))
    joins = " ".join(f"join w{t};" for t in range(n_threads))
    main = f"main {{ {starts} {joins} assert(counter < {2 * n_threads}); }}"
    return "\n".join(decls + body + [main])


def deeper_bug_program(depth: int, max_iters: int = 8) -> str:
    """Two racing nondet-bounded loops whose bug needs ``depth``
    iterations from each thread: every schedule bound below ``depth`` is
    UNSAT *because of* the bound assumption (non-empty core, real search
    with learned conflicts), so the sweep deepens incrementally and each
    deeper solve starts from the shallower bounds' clause database."""
    return f"""
int counter = 0;
thread w0 {{
    int n; int i; int t;
    n = nondet();
    assume(n <= {max_iters});
    i = 0;
    while (i < n) {{ t = counter; counter = t + 1; i = i + 1; }}
}}
thread w1 {{
    int n; int i; int t;
    n = nondet();
    assume(n <= {max_iters});
    i = 0;
    while (i < n) {{ t = counter; counter = t + 1; i = i + 1; }}
}}
main {{ start w0; start w1; join w0; join w1; assert(counter < {2 * depth}); }}
"""


def deep_safe_program(iters: int) -> str:
    """Deterministic loop to full depth: SAFE, every bound UNSAT."""
    return f"""
int x = 0;
thread t {{
    int i;
    i = 0;
    while (i < {iters}) {{ int tmp; tmp = x; x = tmp + 1; i = i + 1; }}
}}
main {{ start t; join t; assert(x == {iters}); }}
"""


def _timed(source, schedule, unwind=8):
    cfg = VerifierConfig.zord(unwind=unwind, unwind_schedule=schedule)
    t0 = time.monotonic()
    result = verify(source, cfg)
    return time.monotonic() - t0, result


def test_iterative_deepening_beats_oneshot_on_shallow_bugs():
    family = {f"shallow-{k}threads": shallow_bug_program(k) for k in (1, 2)}
    rows = []
    total_oneshot = total_sched = 0.0
    for name, source in family.items():
        t_one, r_one = _timed(source, ())
        t_sched, r_sched = _timed(source, (1, 2, 4, 8))
        assert r_one.verdict == Verdict.UNSAFE
        assert r_sched.verdict == Verdict.UNSAFE
        bounds = r_sched.stats["bounds"]
        # The bug is found at bound 2: the deep search is never paid.
        assert bounds[-1]["bound"] == 2, (name, bounds, r_sched.stats.get("unwind_schedule"))
        assert bounds[-1]["answer"] == "sat"
        total_oneshot += t_one
        total_sched += t_sched
        rows.append(
            {
                "task": name,
                "oneshot_s": round(t_one, 4),
                "schedule_s": round(t_sched, 4),
                "speedup": round(t_one / max(t_sched, 1e-9), 2),
                "bounds": bounds,
            }
        )
    # The acceptance bar: incremental wall-clock no worse than one-shot on
    # the shallow-bug family (in practice a multiple faster).
    assert total_sched <= total_oneshot, rows
    write_output(
        "BENCH_incremental.json",
        json.dumps(
            {
                "shallow_bug_family": rows,
                "total_oneshot_s": round(total_oneshot, 4),
                "total_schedule_s": round(total_sched, 4),
            },
            indent=2,
        ),
    )


def test_clauses_retained_across_bounds():
    _, result = _timed(deeper_bug_program(4), (1, 2, 4, 8))
    assert result.verdict == Verdict.UNSAFE
    stats = result.stats
    # Bounds 1 and 2 refute under their assumptions; bound 4 finds the bug
    # starting from the clauses the shallower solves learned.
    assert [b["bound"] for b in stats["bounds"]] == [1, 2, 4]
    assert stats["incremental_calls"] == 3
    assert stats["clauses_retained"] > 0


def test_deterministic_safe_loop_collapses_at_first_bound():
    # A deterministic loop terminates within the unwind bound in every
    # execution, so the formula is UNSAT without any bound assumption: the
    # empty-core shortcut declares SAFE after the first scheduled solve.
    _, result = _timed(deep_safe_program(5), (1, 2, 4, 8))
    assert result.verdict == Verdict.SAFE
    bounds = result.stats["bounds"]
    assert len(bounds) == 1 and bounds[0]["answer"] == "unsat"


def test_clause_sharing_portfolio_equivalence():
    cfgs = [
        VerifierConfig.zord(),
        VerifierConfig.zord_prime(),
        VerifierConfig.zord_tarjan(),
    ]
    rows = []
    for name, source, expected in [
        ("shallow-2threads", shallow_bug_program(2), Verdict.UNSAFE),
        ("deep-safe-5", deep_safe_program(5), Verdict.SAFE),
    ]:
        t0 = time.monotonic()
        on = verify_portfolio(source, cfgs, jobs=3, share_clauses=True)
        t_on = time.monotonic() - t0
        t0 = time.monotonic()
        off = verify_portfolio(source, cfgs, jobs=3, share_clauses=False)
        t_off = time.monotonic() - t0
        assert on.verdict == expected
        assert off.verdict == expected
        rows.append(
            {
                "task": name,
                "verdict": on.verdict,
                "sharing_on_s": round(t_on, 4),
                "sharing_off_s": round(t_off, 4),
                "shared_clauses": on.shared_clauses,
            }
        )
    write_output(
        "BENCH_incremental_sharing.json", json.dumps(rows, indent=2)
    )
