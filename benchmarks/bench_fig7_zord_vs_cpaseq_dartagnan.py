"""Figure 7: per-task CPU time, Zord vs CPA-Seq (blue) and Dartagnan
(orange).

Paper shape: Zord dominates both baselines on essentially every task;
Dartagnan additionally fails (UNKNOWN) on many larger tasks.
"""

from conftest import write_output

from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import MESSAGE_PASSING


def test_fig7(benchmark, svcomp_results):
    benchmark.pedantic(
        lambda: verify(MESSAGE_PASSING, VerifierConfig.dartagnan()),
        rounds=3,
        iterations=1,
    )
    fig_a = render_scatter(
        svcomp_results, "cpa-seq", "zord",
        "Figure 7a: Zord vs CPA-Seq (per-task seconds)",
    )
    fig_b = render_scatter(
        svcomp_results, "dartagnan", "zord",
        "Figure 7b: Zord vs Dartagnan (per-task seconds)",
    )
    write_output("fig7.txt", fig_a + "\n\n" + fig_b)

    zord = svcomp_results["zord"]
    for tool in ("cpa-seq", "dartagnan"):
        rows = svcomp_results[tool]
        both = [(a, b) for a, b in zip(rows, zord) if a.solved and b.solved]
        t_tool = sum(a.time_s for a, _ in both)
        t_zord = sum(b.time_s for _, b in both)
        assert t_zord <= t_tool, f"Zord should beat {tool} on both-solved"
