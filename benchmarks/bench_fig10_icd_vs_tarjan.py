"""Figure 10: incremental cycle detection vs fresh (Tarjan-style) detection.

Paper shape: similar on small tasks; ICD pulls ahead as tasks grow (2.03x
overall in the paper).
"""

from conftest import write_output

from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import PAPER_FIG2


def test_fig10(benchmark, ablation_results):
    benchmark.pedantic(
        lambda: verify(PAPER_FIG2, VerifierConfig.zord_tarjan()),
        rounds=3,
        iterations=1,
    )
    fig = render_scatter(
        ablation_results, "zord-tarjan", "zord",
        "Figure 10: ICD vs Tarjan-style fresh detection (per-task seconds)",
    )
    write_output("fig10.txt", fig)

    zord = ablation_results["zord"]
    tarjan = ablation_results["zord-tarjan"]
    both = [(a, b) for a, b in zip(tarjan, zord) if a.solved and b.solved]
    t_tarjan = sum(a.time_s for a, _ in both)
    t_zord = sum(b.time_s for _, b in both)
    # Allow slack: on tiny tasks the two are equivalent by design.
    assert t_zord <= t_tarjan * 1.25, (
        f"ICD ({t_zord:.2f}s) should not lose clearly to fresh detection "
        f"({t_tarjan:.2f}s)"
    )
