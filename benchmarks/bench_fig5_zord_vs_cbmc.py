"""Figure 5: per-task CPU time, Zord vs the CBMC-style IDL baseline.

Paper shape: points cluster below the diagonal (Zord faster), with a
bottom-left cluster of trivial tasks where both are instantaneous.
"""

from conftest import write_output

from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import PETERSON_SAFE


def test_fig5(benchmark, svcomp_results):
    benchmark.pedantic(
        lambda: verify(PETERSON_SAFE, VerifierConfig.zord(unwind=3)),
        rounds=3,
        iterations=1,
    )
    fig = render_scatter(
        svcomp_results, "cbmc", "zord", "Figure 5: Zord vs CBMC (per-task seconds)"
    )
    write_output("fig5.txt", fig)

    total_cbmc = sum(r.time_s for r in svcomp_results["cbmc"])
    total_zord = sum(r.time_s for r in svcomp_results["zord"])
    # Small slack absorbs scheduler/tracemalloc noise on a loaded machine.
    assert total_zord <= total_cbmc * 1.15
