"""Table 1: summary results on the SV-COMP-like suite (all categories).

Paper shape: Zord solves more tasks than CBMC, CPA-Seq and Dartagnan; on
both-solved cases it is faster and uses less memory than every baseline.
"""

from conftest import write_output

from repro.bench.harness import render_summary_table
from repro.verify import VerifierConfig, verify
from tests.verify.programs import PAPER_FIG2


def _solved(rows):
    return sum(1 for r in rows if r.solved)


def _both_solved_time(rows, ref):
    both = [(a, b) for a, b in zip(rows, ref) if a.solved and b.solved]
    return sum(a.time_s for a, _ in both), sum(b.time_s for _, b in both)


def test_table1(benchmark, svcomp_results, svcomp_tasks):
    benchmark.pedantic(
        lambda: verify(PAPER_FIG2, VerifierConfig.zord()), rounds=3, iterations=1
    )
    table = render_summary_table(
        svcomp_results,
        reference="zord",
        title=f"Table 1: {len(svcomp_tasks)} SV-COMP-like tasks "
        "(#solved; CPU time and memory on both-solved cases)",
    )
    write_output("table1.txt", table)

    zord = svcomp_results["zord"]
    # Shape claims from the paper (Table 1).
    assert _solved(zord) >= _solved(svcomp_results["cbmc"])
    assert _solved(zord) > _solved(svcomp_results["cpa-seq"])
    assert _solved(zord) > _solved(svcomp_results["dartagnan"])
    # Small slack absorbs scheduler/tracemalloc noise on a loaded machine.
    t_cbmc, t_zord = _both_solved_time(svcomp_results["cbmc"], zord)
    assert t_zord <= t_cbmc * 1.15, "Zord should be faster than the IDL baseline"
    t_dart, t_zord_d = _both_solved_time(svcomp_results["dartagnan"], zord)
    assert t_zord_d <= t_dart * 1.15, "Zord should beat the closure encoding"
