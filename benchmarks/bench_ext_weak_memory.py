"""Extension experiment: the litmus matrix under SC / TSO / PSO.

The paper's conclusion names weak-memory support as future work; this
reproduction implements it by feeding the event graph the preserved
program order of the weak model (see repro/encoding/ppo.py).  The bench
regenerates the classic litmus verdict matrix.
"""

from conftest import write_output

from repro.verify import VerifierConfig, verify
from tests.verify.test_weak_memory import LITMUS


def test_weak_memory_matrix(benchmark):
    benchmark.pedantic(
        lambda: verify(LITMUS[0][1], VerifierConfig.zord(memory_model="tso")),
        rounds=3,
        iterations=1,
    )
    models = ("sc", "tso", "pso")
    lines = [f"{'litmus':<14}" + "".join(f"{m.upper():>8}" for m in models)]
    for name, src, *expected in LITMUS:
        row = f"{name:<14}"
        for model, exp in zip(models, expected):
            result = verify(src, VerifierConfig.zord(memory_model=model))
            cell = "forbid" if result.verdict == "safe" else "ALLOW"
            row += f"{cell:>8}"
            assert result.verdict == exp, (name, model)
        lines.append(row)
    write_output("ext_weak_memory.txt", "\n".join(lines))
