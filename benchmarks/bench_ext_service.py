"""Extension benchmark: the verification service.

Measured and recorded to ``out/BENCH_service.json``:

1. **Cache speedup.**  Every task of the SV-COMP-like suite is submitted
   to one stdio daemon twice (cold pass, warm pass).  The warm pass must
   be answered entirely from the verdict cache -- every repeat a hit --
   and at least 10x faster in wall time than the cold pass: the service
   amortizes parsing, encoding and search into a content lookup.
2. **Verdict fidelity.**  Both passes must agree with each task's
   ground-truth verdict; the cache can only ever return what a sound
   engine concluded.
3. **Throughput.**  Jobs/second for both passes, plus the daemon's own
   counters (hit rate, queue waits, recycles) from its ``stats`` op.

Conclusive-only caching means UNKNOWN tasks (none at these bounds) would
simply miss twice; the assertion set tolerates them by counting only
conclusive repeats as required hits.
"""

import json
import time

from conftest import write_output

from repro.bench import svcomp_suite
from repro.service.client import ServiceClient
from repro.verify import Verdict


def _run_pass(client, tasks):
    wall = 0.0
    outcomes = []
    for task in tasks:
        config = {"preset": "zord", "unwind": task.unwind}
        t0 = time.perf_counter()
        result = client.verify(task.source, config)
        wall += time.perf_counter() - t0
        outcomes.append((task, result))
    return wall, outcomes


def test_service_cache_speedup():
    tasks = svcomp_suite(scale=1)
    client = ServiceClient.spawn(workers=2, cache_size=4 * len(tasks))
    try:
        cold_wall, cold = _run_pass(client, tasks)
        warm_wall, warm = _run_pass(client, tasks)
        stats = client.stats()
    finally:
        client.close()

    # Verdict fidelity on both passes.
    mismatches = []
    for pass_name, outcomes in (("cold", cold), ("warm", warm)):
        for task, result in outcomes:
            expected = Verdict.SAFE if task.expected_safe else Verdict.UNSAFE
            if result.verdict != expected:
                mismatches.append((pass_name, task.name, result.verdict))
    assert not mismatches, mismatches

    # The warm pass is pure cache: conclusive cold verdicts (all of them,
    # per the fidelity check) must repeat as hits.
    warm_hits = sum(r.stats["cache_hit"] for _, r in warm)
    cold_hits = sum(r.stats["cache_hit"] for _, r in cold)
    assert warm_hits == len(tasks)

    speedup = cold_wall / warm_wall if warm_wall > 0 else float("inf")
    assert speedup >= 10.0, (
        f"cache speedup {speedup:.1f}x below the 10x bar "
        f"(cold {cold_wall:.3f}s, warm {warm_wall:.3f}s)"
    )

    record = {
        "tasks": len(tasks),
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "speedup": round(speedup, 1),
        "cold_throughput_jobs_per_s": round(len(tasks) / cold_wall, 1),
        "warm_throughput_jobs_per_s": round(len(tasks) / warm_wall, 1),
        "cold_cache_hits": cold_hits,
        "warm_cache_hits": warm_hits,
        "server_stats": stats,
    }
    write_output("BENCH_service.json", json.dumps(record, indent=2))


def test_service_mixed_load_hit_rate():
    """A zipf-ish mixed stream (a few hot programs, a long cold tail)
    records the hit rate a sustained workload would see."""
    tasks = svcomp_suite(scale=1)
    hot = tasks[: max(3, len(tasks) // 10)]
    stream = []
    for i, task in enumerate(tasks):
        stream.append(task)
        stream.append(hot[i % len(hot)])

    client = ServiceClient.spawn(workers=2)
    try:
        t0 = time.perf_counter()
        hits = 0
        for task in stream:
            result = client.verify(
                task.source, {"preset": "zord", "unwind": task.unwind}
            )
            hits += int(result.stats["cache_hit"])
        wall = time.perf_counter() - t0
        stats = client.stats()
    finally:
        client.close()

    hit_rate = hits / len(stream)
    # Every hot repeat after its first occurrence can hit.
    assert hits >= len(stream) // 2 - len(hot)

    record = {
        "stream_jobs": len(stream),
        "distinct_programs": len(tasks),
        "hot_set": len(hot),
        "wall_s": round(wall, 4),
        "throughput_jobs_per_s": round(len(stream) / wall, 1),
        "cache_hits": hits,
        "hit_rate": round(hit_rate, 3),
        "server_stats": stats,
    }
    write_output("BENCH_service_mixed.json", json.dumps(record, indent=2))
