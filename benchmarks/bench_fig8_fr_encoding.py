"""Figure 8: Zord vs Zord⁻ (all from-read constraints encoded upfront).

Paper shape: omitting rho_fr from the formula and deriving FR orders inside
the theory solver yields a smaller formula and lower total solving time.
"""

from conftest import write_output

from repro.bench.harness import render_scatter
from repro.verify import VerifierConfig, verify
from tests.verify.programs import PAPER_FIG2


def test_fig8(benchmark, ablation_results, svcomp_tasks):
    benchmark.pedantic(
        lambda: verify(PAPER_FIG2, VerifierConfig.zord_minus()),
        rounds=3,
        iterations=1,
    )
    fig = render_scatter(
        ablation_results, "zord-", "zord",
        "Figure 8: Zord vs Zord⁻ (per-task seconds)",
    )
    write_output("fig8.txt", fig)

    zord = ablation_results["zord"]
    minus = ablation_results["zord-"]
    both = [(a, b) for a, b in zip(minus, zord) if a.solved and b.solved]
    t_minus = sum(a.time_s for a, _ in both)
    t_zord = sum(b.time_s for _, b in both)
    # The paper measures a 1.4x speedup at CBMC/Z3 scale (formulas with
    # ~10^5 FR constraints).  At this reproduction's scale the FR clause
    # sets are small enough that SAT-level unit propagation over them is
    # competitive with theory-side derivation, so we only assert that
    # on-demand derivation stays in the same ballpark; EXPERIMENTS.md
    # discusses the deviation.
    assert t_zord <= t_minus * 2.0, (
        f"on-demand FR derivation degraded badly: {t_zord:.2f}s vs "
        f"{t_minus:.2f}s"
    )
    # The formula-size claim reproduces unconditionally: Zord creates no
    # FR variables/constraints at all.
    r_zord = verify(PAPER_FIG2, VerifierConfig.zord())
    r_minus = verify(PAPER_FIG2, VerifierConfig.zord_minus())
    assert r_zord.stats["fr_vars"] == 0
    assert r_minus.stats["fr_vars"] > 0
    assert r_zord.stats["sat_vars"] < r_minus.stats["sat_vars"]
