"""Extension: static-analysis encoding pruning (repro.analysis).

Measures, over the fig5/fig6 program families (the SV-COMP-style suite),
what the :mod:`repro.analysis` prune plan removes from the encoding --
RF/WS variable counts via the new ``analysis_pairs_*`` STAT_KEYS -- and
that verdicts are bit-for-bit identical with pruning on and off (the
soundness claim the off-switch exists to check).

The headline assertion: the lock-heavy families (``C-DAC``,
``ldv-races``, ``divine`` -- programs that serialize through locks) lose
at least 20% of their RF/WS ordering variables at prune level 2.
"""

from conftest import write_output

from repro.analysis import build_prune_plan
from repro.bench import run_suite
from repro.bench.svcomp import svcomp_suite
from repro.encoding.encoder import encode_program
from repro.frontend import build_symbolic_program
from repro.lang import parse
from repro.verify import VerifierConfig

LOCK_HEAVY = ("C-DAC", "ldv-races", "divine")


def _encoding_sizes(task):
    """(rf+ws unpruned, rf+ws pruned, pairs pruned) for one task."""
    def sizes(plan):
        sym = build_symbolic_program(
            parse(task.source), unwind=task.unwind, width=8
        )
        enc = encode_program(
            sym,
            prune_plan=build_prune_plan(sym, 2) if plan else None,
        )
        return enc.stats

    base = sizes(False)
    pruned = sizes(True)
    return (
        base.rf_vars + base.ws_vars,
        pruned.rf_vars + pruned.ws_vars,
        pruned.analysis_pairs_pruned,
    )


def test_analysis_pruning(svcomp_tasks):
    # --- encoding-size deltas, per category --------------------------
    per_cat = {}
    for task in svcomp_tasks:
        base, pruned, vetoed = _encoding_sizes(task)
        cat = per_cat.setdefault(task.category, [0, 0, 0])
        cat[0] += base
        cat[1] += pruned
        cat[2] += vetoed

    lines = [
        f"{'category':<10} {'rf+ws off':>10} {'rf+ws on':>10} "
        f"{'pruned':>8} {'saved':>7}"
    ]
    for cat in sorted(per_cat):
        base, pruned, vetoed = per_cat[cat]
        saved = 100.0 * (base - pruned) / base if base else 0.0
        lines.append(
            f"{cat:<10} {base:>10} {pruned:>10} {vetoed:>8} {saved:>6.1f}%"
        )
    write_output("ext_analysis_pruning_sizes.txt", "\n".join(lines))

    # Lock-heavy families must drop >= 20% of their RF/WS variables.
    for cat in LOCK_HEAVY:
        base, pruned, _ = per_cat[cat]
        assert pruned <= 0.8 * base, (
            f"{cat}: expected >=20% RF/WS reduction, got "
            f"{base} -> {pruned}"
        )

    # --- verdict equivalence + wall-time delta on the suite ----------
    results = run_suite(
        svcomp_tasks,
        {
            "zord-prune": lambda **kw: VerifierConfig.zord(
                prune_level=2, **kw
            ).with_(name="zord-prune"),
            "zord-noprune": lambda **kw: VerifierConfig.zord(
                prune_level=0, **kw
            ).with_(name="zord-noprune"),
        },
        time_limit_s=10.0,
    )
    mismatches = [
        (a.task, a.verdict, b.verdict)
        for a, b in zip(results["zord-prune"], results["zord-noprune"])
        if a.verdict != b.verdict
        and "unknown" not in (a.verdict, b.verdict)
    ]
    assert not mismatches, f"prune changed verdicts: {mismatches}"

    both = [
        (a, b)
        for a, b in zip(results["zord-prune"], results["zord-noprune"])
        if a.solved and b.solved
    ]
    t_on = sum(a.time_s for a, _ in both)
    t_off = sum(b.time_s for _, b in both)
    vetoed = sum(
        a.stats.get("analysis_pairs_pruned", 0) for a, _ in both
    )
    write_output(
        "ext_analysis_pruning_time.txt",
        f"tasks solved by both: {len(both)}\n"
        f"wall time  prune-on: {t_on:.2f}s  prune-off: {t_off:.2f}s\n"
        f"ordering variables vetoed: {vetoed}",
    )
    assert all(a.verdict == b.verdict for a, b in both)
