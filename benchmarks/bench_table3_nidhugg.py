"""Table 3: Nidhugg benchmark programs -- SMC vs BMC.

Paper shape:

* trace-sparse programs (CO-2+2W, float_r): SMC flat-fast, BMC cost grows
  with the parameter;
* branching/racy programs (airline, fib_bench, szymanski): SMC time grows
  with the trace count, Zord stays comparatively flat;
* cir_buf: the trace count explodes; Zord is the only engine that keeps
  solving the largest instance;
* account (buggy): SMC finds the violation after a handful of traces.
"""

from conftest import write_output

from repro.bench.harness import render_table3
from repro.verify import VerifierConfig, verify
from repro.bench.nidhugg import FAMILIES


def test_table3(benchmark, nidhugg_results, nidhugg_tasks):
    gen, _paper, ours = FAMILIES["fib_bench"]
    task = gen(ours[0])
    benchmark.pedantic(
        lambda: verify(task.source, VerifierConfig.zord(unwind=task.unwind)),
        rounds=3,
        iterations=1,
    )
    table = render_table3(nidhugg_tasks, nidhugg_results)
    write_output("table3.txt", table)

    by_task = {t.name: i for i, t in enumerate(nidhugg_tasks)}

    def time_of(tool, name):
        return nidhugg_results[tool][by_task[name]].time_s

    def solved(tool, name):
        return nidhugg_results[tool][by_task[name]].solved

    # No engine may report a wrong verdict anywhere.
    for tool, rows in nidhugg_results.items():
        assert all(r.correct is not False for r in rows), tool

    # Trace-sparse families: SMC stays fast at the largest parameter.
    assert time_of("nidhugg-rfsc", "CO-2+2W(25)") < 1.0
    assert time_of("nidhugg-rfsc", "float_r(50)") < 2.0

    # Racy families: SMC cost grows with the parameter.
    assert time_of("nidhugg-rfsc", "airline(4)") > time_of(
        "nidhugg-rfsc", "airline(2)"
    )

    # The buggy benchmark is found by every engine.
    for tool in nidhugg_results:
        assert solved(tool, "account(4)"), tool
