"""Stateless model checking demo: trace spaces and partial-order reduction.

Explores the Table 3 benchmark families with naive enumeration and
Source-DPOR, printing the interleaving counts vs the reads-from
equivalence-class counts -- the quantities that decide when stateless
checkers beat symbolic ones (Section 6.4).

Run:  python examples/stateless_model_checking.py
"""

from repro.bench.nidhugg import FAMILIES
from repro.lang import parse
from repro.smc import Explorer, compile_program


def explore(task, mode, time_limit=10.0):
    compiled = compile_program(parse(task.source), width=8, unwind=task.unwind)
    return Explorer(compiled, mode=mode, time_limit_s=time_limit).run()


def main() -> None:
    header = (
        f"{'program':<16} {'naive':>10} {'dpor':>8} {'rf-classes':>11} "
        f"{'verdict':>8}"
    )
    print(header)
    print("-" * len(header))
    for family in ("CO-2+2W", "airline", "fib_bench", "parker", "account"):
        gen, _paper, ours = FAMILIES[family]
        for param in ours[:2]:
            task = gen(param)
            naive = explore(task, "naive", time_limit=5.0)
            dpor = explore(task, "dpor")
            naive_count = (
                str(naive.traces) if naive.verdict != "unknown" else ">10^?"
            )
            print(
                f"{task.name:<16} {naive_count:>10} {dpor.traces:>8} "
                f"{dpor.rf_classes:>11} {dpor.verdict:>8}"
            )
    print()
    print("Source-DPOR explores one interleaving per Mazurkiewicz trace;")
    print("the rf-classes column is what Nidhugg/rfsc and GenMC scale with.")


if __name__ == "__main__":
    main()
