"""Mini Table 1: run every engine over a slice of the benchmark suite.

Run:  python examples/engine_shootout.py [scale] [jobs]

With jobs > 1 the engine grid is distributed over a process pool
(repro.portfolio.verify_batch) -- same verdicts, a fraction of the wall
time on multicore.
"""

import sys

from repro.bench import run_suite, svcomp_suite
from repro.bench.harness import render_summary_table
from repro.verify import VerifierConfig


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    tasks = svcomp_suite(scale=scale)[:30]
    print(f"running 6 engines on {len(tasks)} tasks with {jobs} worker(s) "
          "(5s per-task budget)...")
    configs = {
        "zord": VerifierConfig.zord,
        "cbmc": VerifierConfig.cbmc,
        "dartagnan": VerifierConfig.dartagnan,
        "cpa-seq": VerifierConfig.cpa_seq,
        "lazy-cseq": VerifierConfig.lazy_cseq,
        "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
    }
    results = run_suite(tasks, configs, time_limit_s=5.0, measure_memory=True,
                        jobs=jobs)
    print()
    print(render_summary_table(results, reference="zord",
                               title="Mini summary (Table 1 layout)"))
    print()
    wrong = [
        (name, r.task)
        for name, rows in results.items()
        for r in rows
        if r.correct is False
    ]
    if wrong:
        print("WRONG verdicts:", wrong)
    else:
        print("no engine produced a wrong verdict.")


if __name__ == "__main__":
    main()
