"""A guided tour of the ordering-consistency theory solver, used directly
as a library (no front end).

We build the event graph by hand, register read-from / write-serialization
variables, and watch the three mechanisms of Section 5 fire:

1. incremental consistency checking (cycle detection on edge activation),
2. minimal conflict clause generation (shortest-width critical cycles),
3. theory propagation (unit edges and from-read derivation).

Run:  python examples/theory_solver_tour.py
"""

from repro.ordering import OrderingTheory
from repro.sat import SolveResult, Solver


def banner(title: str) -> None:
    print()
    print(f"--- {title} ---")


def main() -> None:
    banner("1. Acyclicity: a forced 2-cycle is UNSAT")
    # Events 0 and 1; rf: 0 -> 1 and ws: 1 -> 0 cannot both hold.
    theory = OrderingTheory(n_events=2, po_edges=[])
    solver = Solver(theory)
    rf = solver.new_var(relevant=True)
    theory.add_rf_var(rf, 0, 1)
    ws = solver.new_var(relevant=True)
    theory.add_ws_var(ws, 1, 0)
    solver.add_clause([rf])
    solver.add_clause([ws])
    print("result:", solver.solve())
    print("cycles detected:", theory.stats.cycles)
    print("conflict clauses generated:", theory.stats.conflict_clauses)

    banner("2. Level-0 propagation against the PO skeleton")
    # PO chain 0 -> 1 -> 2; a ws edge 2 -> 0 contradicts it statically.
    theory = OrderingTheory(n_events=3, po_edges=[(0, 1), (1, 2)])
    solver = Solver(theory)
    ws_back = solver.new_var(relevant=True)
    theory.add_ws_var(ws_back, 2, 0)
    units = theory.initial_unit_clauses()
    print("initial unit clauses:", units)
    for clause in units:
        solver.add_clause(clause)
    print("result:", solver.solve())
    print("ws(2,0) fixed to:", solver.model_value(ws_back))

    banner("3. From-read derivation (Axiom 2)")
    # Events: w=0, w'=1 (writes), r=2 (read), same address.
    # rf(w, r) and ws(w, w') derive fr(r, w') inside the solver; asserting
    # rf(w', r) then closes the cycle r -fr-> w' -rf-> r.
    theory = OrderingTheory(n_events=3, po_edges=[])
    solver = Solver(theory)
    rf_wr = solver.new_var(relevant=True)
    theory.add_rf_var(rf_wr, 0, 2)
    ws_ww = solver.new_var(relevant=True)
    theory.add_ws_var(ws_ww, 0, 1)
    rf_w2r = solver.new_var(relevant=True)
    theory.add_rf_var(rf_w2r, 1, 2)
    solver.add_clause([rf_wr])
    solver.add_clause([ws_ww])
    solver.add_clause([rf_w2r])
    print("result:", solver.solve())
    print("from-read orders derived:", theory.stats.fr_derived)
    print("(the same formula is SAT if fr propagation is disabled and")
    print(" rho_fr is not encoded -- exactly why Zord⁻ must encode it)")

    banner("4. Unit-edge propagation")
    # After activating 1->2, 2->3, 3->0, the inactive edge 0->1 would
    # close a cycle: its variable is forced false without any search.
    theory = OrderingTheory(n_events=4, po_edges=[])
    solver = Solver(theory)
    edges = {}
    for name, (a, b) in {
        "a(1,2)": (1, 2), "b(2,3)": (2, 3), "w(3,0)": (3, 0), "u(0,1)": (0, 1)
    }.items():
        var = solver.new_var(relevant=True)
        theory.add_ws_var(var, a, b)
        edges[name] = var
    for name in ("a(1,2)", "b(2,3)", "w(3,0)"):
        solver.add_clause([edges[name]])
    print("result:", solver.solve())
    print("u(0,1) propagated to:", solver.model_value(edges["u(0,1)"]))
    print("unit-edge propagations:", theory.stats.unit_propagations)


if __name__ == "__main__":
    main()
