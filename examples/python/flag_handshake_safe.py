"""The flag handshake fixed: publish the payload before the flag (sound
under sequential consistency)."""
import threading

ready = 0
data = 0


def sender():
    global ready, data
    data = 7
    ready = 1


def receiver():
    if ready == 1:
        assert data == 7


if __name__ == "__main__":
    s = threading.Thread(target=sender)
    r = threading.Thread(target=receiver)
    s.start()
    r.start()
    s.join()
    r.join()
