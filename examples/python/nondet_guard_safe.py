"""random.randint nondeterminism: whatever value the dice roll takes,
the guarded update keeps the invariant."""
import threading
import random

total = 0
lock = threading.Lock()


def roller():
    global total
    n = random.randint(1, 3)
    with lock:
        total = total + n


if __name__ == "__main__":
    t1 = threading.Thread(target=roller)
    t2 = threading.Thread(target=roller)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert total >= 2
    assert total <= 6
