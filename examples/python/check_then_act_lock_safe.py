"""Check-then-act made atomic: the check and the act share a lock."""
import threading

slots = 1
taken = 0
lock = threading.Lock()


def grab():
    global slots, taken
    with lock:
        if slots > 0:
            slots = slots - 1
            taken = taken + 1


if __name__ == "__main__":
    t1 = threading.Thread(target=grab)
    t2 = threading.Thread(target=grab)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert slots >= 0
    assert taken <= 1
