"""A single-line `counter += 1` race: the read and the write hide in one
statement, so only opcode-level preemption can expose it concretely."""
import threading

counter = 0


def worker():
    global counter
    counter += 1


if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert counter == 2
