"""A broken flag handshake: `ready` is raised before the payload write,
so the consumer can observe the flag and read a stale payload."""
import threading

ready = 0
data = 0


def sender():
    global ready, data
    ready = 1
    data = 7


def receiver():
    if ready == 1:
        assert data == 7


if __name__ == "__main__":
    s = threading.Thread(target=sender)
    r = threading.Thread(target=receiver)
    s.start()
    r.start()
    s.join()
    r.join()
