"""Double-checked locking done right: the payload is written before the
flag is published, and under sequential consistency the reader can then
never see the flag without the data."""
import threading

initialized = 0
data = 0
lock = threading.Lock()


def publisher():
    global initialized, data
    if initialized == 0:
        with lock:
            if initialized == 0:
                data = 42
                initialized = 1


def reader():
    if initialized == 1:
        assert data == 42


if __name__ == "__main__":
    t1 = threading.Thread(target=publisher)
    t2 = threading.Thread(target=reader)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
