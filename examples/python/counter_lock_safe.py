"""The counter race fixed: increments under a mutex."""
import threading

counter = 0
lock = threading.Lock()


def worker():
    global counter
    with lock:
        tmp = counter
        counter = tmp + 1


if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert counter == 2
