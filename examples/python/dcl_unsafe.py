"""Broken double-checked locking: the `initialized` flag is published
before the payload is written, so a reader can see the flag without the
data."""
import threading

initialized = 0
data = 0
lock = threading.Lock()


def publisher():
    global initialized, data
    if initialized == 0:
        with lock:
            if initialized == 0:
                initialized = 1
                data = 42


def reader():
    if initialized == 1:
        assert data == 42


if __name__ == "__main__":
    t1 = threading.Thread(target=publisher)
    t2 = threading.Thread(target=reader)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
