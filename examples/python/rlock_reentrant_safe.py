"""Reentrant locking: the helper re-enters the RLock the caller already
holds (a no-op in the model, legal at runtime), and the counter stays
consistent."""
import threading

counter = 0
lock = threading.RLock()


def bump():
    global counter
    with lock:
        counter = counter + 1


def worker():
    global counter
    with lock:
        bump()
        counter = counter + 1


if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert counter == 4
