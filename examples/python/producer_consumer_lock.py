"""Producer/consumer over a lock-protected one-slot buffer: every
production is matched by at most one consumption, so the consumed count
never exceeds the produced count."""
import threading

produced = 0
consumed = 0
full = 0
lock = threading.Lock()


def producer():
    global produced, full
    for i in range(3):
        with lock:
            if full == 0:
                full = 1
                produced = produced + 1


def consumer():
    global consumed, full
    for i in range(3):
        with lock:
            if full == 1:
                full = 0
                consumed = consumed + 1


if __name__ == "__main__":
    p = threading.Thread(target=producer)
    c = threading.Thread(target=consumer)
    p.start()
    c.start()
    p.join()
    c.join()
    assert consumed <= produced
    assert produced <= 3
