"""Unprotected shared counter: the classic lost-update race."""
import threading

counter = 0


def worker():
    global counter
    tmp = counter
    counter = tmp + 1


if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert counter == 2
