"""Lost updates amplified by a loop: two threads each add 2, but the
unprotected read-modify-write can drop increments."""
import threading

counter = 0


def worker():
    global counter
    for i in range(2):
        tmp = counter
        counter = tmp + 1


if __name__ == "__main__":
    t1 = threading.Thread(target=worker)
    t2 = threading.Thread(target=worker)
    t1.start()
    t2.start()
    t1.join()
    t2.join()
    assert counter == 4
