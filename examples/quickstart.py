"""Quickstart: verify a multi-threaded program under sequential consistency.

Run:  python examples/quickstart.py
"""

from repro import VerifierConfig, verify

# A racy counter: two threads increment without synchronization, so an
# interleaving can lose an update and the final assertion can fail.
RACY = """
int counter = 0;

thread inc1 { int t; t = counter; counter = t + 1; }
thread inc2 { int t; t = counter; counter = t + 1; }

main {
    start inc1; start inc2;
    join inc1;  join inc2;
    assert(counter == 2);
}
"""

# The same program with a lock: now the assertion holds in every
# interleaving (within the bounds).
LOCKED = """
int counter = 0;
lock m;

thread inc1 { int t; lock(m); t = counter; counter = t + 1; unlock(m); }
thread inc2 { int t; lock(m); t = counter; counter = t + 1; unlock(m); }

main {
    start inc1; start inc2;
    join inc1;  join inc2;
    assert(counter == 2);
}
"""


def main() -> None:
    print("=== racy counter ===")
    result = verify(RACY)
    print(f"verdict: {result.verdict.upper()}  ({result.wall_time_s:.3f}s)")
    if result.witness:
        print(result.witness)

    print()
    print("=== locked counter ===")
    result = verify(LOCKED, VerifierConfig.zord())
    print(f"verdict: {result.verdict.upper()}  ({result.wall_time_s:.3f}s)")
    print(
        f"ordering variables: {result.stats['rf_vars']} read-from, "
        f"{result.stats['ws_vars']} write-serialization"
    )
    print(
        "theory solver: "
        f"{result.stats['theory_consistency_checks']} consistency checks, "
        f"{result.stats['theory_fr_derived']} from-read orders derived, "
        f"{result.stats['theory_unit_propagations']} unit-edge propagations"
    )


if __name__ == "__main__":
    main()
