"""Weak memory models: the paper's future-work extension.

The ordering-consistency machinery is model-agnostic: feeding the event
graph the *preserved* program order of TSO or PSO instead of the full
program order re-uses the whole solver unchanged.  This script shows the
classic litmus tests flipping verdicts across models, and fences
restoring order.

Run:  python examples/weak_memory.py
"""

from repro.verify import VerifierConfig, verify

LITMUS = {
    "store buffering (SB)": """
        int x = 0, y = 0, a = 0, b = 0;
        thread t1 { x = 1; a = y; }
        thread t2 { y = 1; b = x; }
        main { start t1; start t2; join t1; join t2;
               assert(!(a == 0 && b == 0)); }
    """,
    "SB with fences": """
        int x = 0, y = 0, a = 0, b = 0;
        thread t1 { x = 1; fence; a = y; }
        thread t2 { y = 1; fence; b = x; }
        main { start t1; start t2; join t1; join t2;
               assert(!(a == 0 && b == 0)); }
    """,
    "message passing (MP)": """
        int d = 0, f = 0, r1 = 0, r2 = 0;
        thread p { d = 1; f = 1; }
        thread c { r1 = f; r2 = d; }
        main { start p; start c; join p; join c;
               assert(!(r1 == 1 && r2 == 0)); }
    """,
    "MP with fence": """
        int d = 0, f = 0, r1 = 0, r2 = 0;
        thread p { d = 1; fence; f = 1; }
        thread c { r1 = f; r2 = d; }
        main { start p; start c; join p; join c;
               assert(!(r1 == 1 && r2 == 0)); }
    """,
    "load buffering (LB)": """
        int x = 0, y = 0, a = 0, b = 0;
        thread t1 { a = y; x = 1; }
        thread t2 { b = x; y = 1; }
        main { start t1; start t2; join t1; join t2;
               assert(!(a == 1 && b == 1)); }
    """,
}


def main() -> None:
    models = ("sc", "tso", "pso")
    header = f"{'litmus test':<24}" + "".join(f"{m.upper():>10}" for m in models)
    print(header)
    print("-" * len(header))
    for name, src in LITMUS.items():
        row = f"{name:<24}"
        for model in models:
            result = verify(src, VerifierConfig.zord(memory_model=model))
            cell = "ok" if result.verdict == "safe" else "WEAK!"
            row += f"{cell:>10}"
        print(row)
    print()
    print("'WEAK!' = the assertion ruling out the weak outcome is violable:")
    print("store buffering appears under TSO/PSO, message passing breaks")
    print("only under PSO, and fences restore sequential behaviour.")


if __name__ == "__main__":
    main()
