"""Fallback-chain demo: a crashing engine degrades to a working verdict.

A production verifier cannot afford to turn one engine's bug into a lost
answer.  This demo injects a crash into the SMT engine's encoding phase
(via the fault harness, ``REPRO_FAULTS``-style) and configures
``fallbacks=("zord-tarjan", "dartagnan")``: the primary attempt crashes,
the Tarjan-detector retry crashes the same way (same pipeline), and the
pure-SAT closure baseline -- which never visits the ``encode`` checkpoint
-- delivers the verdict.  Every attempt is recorded on the result.

Run:  python examples/fallback_demo.py
"""

from repro.robustness.faults import clear_faults, install_faults
from repro.verify import VerifierConfig, verify

PROGRAM = """
int x = 0, y = 0, m = 0, n = 0;
thread thr1 {
    if (x == 1) { m = 1; } else { m = x; }
    y = x + 1;
}
thread thr2 {
    if (y == 1) { n = 1; } else { n = y; }
    x = y + 1;
}
main {
    start thr1; start thr2; join thr1; join thr2;
    assert(!(m == 1 && n == 1));
}
"""


def main() -> None:
    config = VerifierConfig(
        time_limit_s=60.0,
        fallbacks=("zord-tarjan", "dartagnan"),
    )

    print("=== healthy run (no fault): primary engine answers ===")
    result = verify(PROGRAM, config)
    print(f"verdict: {result.verdict.upper()}")
    for attempt in result.attempts:
        print(
            f"  attempt {attempt['config_name']:<12} ({attempt['engine']}): "
            f"{attempt['status']}"
        )
    print()

    print("=== injected smt crash: chain degrades to the closure engine ===")
    install_faults("crash@encode")
    try:
        result = verify(PROGRAM, config)
    finally:
        clear_faults()
    print(f"verdict: {result.verdict.upper()}")
    for attempt in result.attempts:
        reason = f"  [{attempt['reason']}]" if attempt["reason"] else ""
        print(
            f"  attempt {attempt['config_name']:<12} ({attempt['engine']}): "
            f"{attempt['status']}{reason}"
        )
    assert result.verdict == "safe", "the fallback chain must recover"
    print("\nrecovered: an engine crash cost one retry, not the answer")


if __name__ == "__main__":
    main()
