"""The paper's running example (Figure 2 / Section 5.5).

The two-threaded program below cannot reach m == 1 && n == 1 under
sequential consistency; Section 5.5 of the paper walks through how the
ordering-consistency theory solver proves this.  This script reproduces the
verdict with the full tool (Zord), each ablation, and the baselines, and
shows the statistics that drive the paper's analysis (e.g. Zord encodes no
from-read constraints at all, while Zord⁻ and the CBMC-style baseline pay
for them upfront).

Run:  python examples/paper_example.py
"""

from repro import VerifierConfig, verify

FIGURE_2 = """
int x = 0, y = 0, m = 0, n = 0;

thread thr1 {
    if (x == 1) { m = 1; } else { m = x; }
    y = x + 1;
}

thread thr2 {
    if (y == 1) { n = 1; } else { n = y; }
    x = y + 1;
}

main {
    start thr1; start thr2;
    join thr1;  join thr2;
    assert(!(m == 1 && n == 1));
}
"""

ENGINES = [
    ("Zord (the paper's tool)", VerifierConfig.zord()),
    ("Zord⁻ (rho_fr encoded upfront)", VerifierConfig.zord_minus()),
    ("Zord′ (no unit-edge propagation)", VerifierConfig.zord_prime()),
    ("Zord/Tarjan (fresh cycle detection)", VerifierConfig.zord_tarjan()),
    ("CBMC-style (clock differences)", VerifierConfig.cbmc()),
    ("Dartagnan-style (closure SAT)", VerifierConfig.dartagnan()),
    ("CPA-Seq-style (explicit states)", VerifierConfig.cpa_seq()),
    ("Nidhugg-style (Source-DPOR)", VerifierConfig.nidhugg_rfsc()),
    ("GenMC-style (rf classes)", VerifierConfig.genmc()),
]


def main() -> None:
    print("Figure 2 program: assert(!(m == 1 && n == 1)) under SC\n")
    header = f"{'engine':<38} {'verdict':>8} {'time':>9}  notes"
    print(header)
    print("-" * len(header))
    for name, config in ENGINES:
        result = verify(FIGURE_2, config)
        notes = []
        if "fr_vars" in result.stats:
            notes.append(f"fr_vars={result.stats['fr_vars']}")
        if "sat_vars" in result.stats:
            notes.append(f"sat_vars={result.stats['sat_vars']}")
        if "traces" in result.stats:
            notes.append(f"traces={result.stats['traces']}")
        if "states" in result.stats:
            notes.append(f"states={result.stats['states']}")
        print(
            f"{name:<38} {result.verdict.upper():>8} "
            f"{result.wall_time_s:>8.3f}s  {' '.join(notes)}"
        )

    # The Section 5.5 deduction ends in UNSAT: flipping the assertion to
    # something reachable demonstrates counterexample extraction.
    print("\nWeakened assertion (m == 1 alone IS reachable):")
    weakened = FIGURE_2.replace(
        "assert(!(m == 1 && n == 1));", "assert(!(m == 1));"
    )
    result = verify(weakened, VerifierConfig.zord())
    print(f"verdict: {result.verdict.upper()}")
    print(result.witness)


if __name__ == "__main__":
    main()
