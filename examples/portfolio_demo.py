"""Portfolio verification demo: race engines, first conclusive verdict wins.

The paper's engines diverge by orders of magnitude per task (Section 6),
so racing a diverse portfolio over worker processes routinely beats every
fixed engine choice.  This demo races four engines on a ticket-lock
program and on an unlocked bank transfer, printing the per-engine
outcome for each.

Run:  python examples/portfolio_demo.py
"""

from repro import verify_portfolio
from repro.bench.patterns import bank_transfer, ticket_lock

SAFE = ticket_lock(2)
UNSAFE = bank_transfer(locked=False)


def main() -> None:
    for label, source in (("ticket_lock(2)", SAFE),
                          ("bank_transfer(unlocked)", UNSAFE)):
        print(f"=== {label} ===")
        outcome = verify_portfolio(
            source,
            ["zord", "cbmc", "cpa-seq", "nidhugg-rfsc"],
            jobs=4,
            time_limit_s=30.0,
        )
        print(outcome)
        if outcome.result is not None and outcome.result.witness is not None:
            print(outcome.result.witness)
        print()


if __name__ == "__main__":
    main()
