int counter = 0;
thread worker {
    int n;
    int i;
    int t;
    n = nondet();
    assume(n <= 8);
    i = 0;
    while (i < n) {
        t = counter;
        counter = t + 1;
        i = i + 1;
    }
}
main {
    start worker;
    join worker;
    assert(counter < 2);
}
