int counter = 0;
lock m;
thread inc1 { int t; lock(m); t = counter; counter = t + 1; unlock(m); }
thread inc2 { int t; lock(m); t = counter; counter = t + 1; unlock(m); }
main {
    start inc1; start inc2; join inc1; join inc2;
    assert(counter == 2);
}
