int counter = 0;
thread inc1 { int t; t = counter; counter = t + 1; }
thread inc2 { int t; t = counter; counter = t + 1; }
main {
    start inc1; start inc2; join inc1; join inc2;
    assert(counter == 2);
}
