"""The documented public surface of the library.

Five entry points, stable across releases:

* :func:`verify` -- verify one program.  Dispatches on its arguments:
  a ``portfolio=`` list races several engine presets
  (:func:`repro.portfolio.verify_portfolio`), a ``server=`` address (or
  the ``REPRO_SERVER`` environment variable) routes the job through a
  running verification service (:mod:`repro.service`), and otherwise the
  in-process pipeline runs directly.
* :func:`verify_batch` -- a (tasks x configs) grid over a process pool.
* :func:`analyze` -- the static race analysis, no solver involved.
* :func:`serve` -- run a verification service daemon (blocking).
* :func:`connect` -- open a client to a running service.

Library users should import from here (or from :mod:`repro`, which
re-exports the same names); ``repro.verify.verifier.verify`` is a
deprecated spelling kept as a warning shim.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from repro.lang import ast
from repro.verify import VerifierConfig
from repro.verify.verifier import verify_one

__all__ = [
    "verify",
    "verify_python",
    "verify_batch",
    "analyze",
    "serve",
    "connect",
]


def verify(
    program: Union[str, "ast.Program"],
    config: Optional[VerifierConfig] = None,
    *,
    portfolio: Optional[Sequence[Union[str, VerifierConfig]]] = None,
    jobs: Optional[int] = None,
    server: Optional[str] = None,
    measure_memory: bool = False,
):
    """Verify ``program``: the one front door.

    Args:
        program: source text or a parsed AST.
        config: engine selection (see :class:`VerifierConfig`); defaults
            to the Zord preset.  Ignored when ``portfolio`` is given.
        portfolio: race these presets/configs instead of running one
            engine; the first conclusive verdict wins.  Returns a
            :class:`~repro.portfolio.runner.PortfolioResult`.
        jobs: worker processes for ``portfolio`` (default: one per
            member, capped at the CPU count).
        server: ``HOST:PORT`` of a running verification service; the job
            is submitted there (warm workers + verdict cache) instead of
            solving in-process.  Defaults to the ``REPRO_SERVER``
            environment variable; portfolio runs always stay local.
        measure_memory: trace peak allocation (slower; in-process only).

    Returns:
        A :class:`VerificationResult` (or a ``PortfolioResult`` when
        ``portfolio`` is given).  Service-routed results carry
        ``stats["cache_hit"]`` / ``stats["queue_wait_s"]``.
    """
    if portfolio is not None:
        from repro.portfolio import verify_portfolio

        return verify_portfolio(program, portfolio, jobs=jobs)
    if server is None:
        server = os.environ.get("REPRO_SERVER") or None
    if server is not None:
        from repro.service.client import ServiceClient

        with ServiceClient.connect(server) as client:
            return client.verify(program, config)
    return verify_one(program, config, measure_memory=measure_memory)


def verify_python(
    source: Optional[str] = None,
    *,
    path: Optional[str] = None,
    filename: str = "<python>",
    config: Optional[VerifierConfig] = None,
    server: Optional[str] = None,
    measure_memory: bool = False,
):
    """Verify a Python ``threading`` program (the ``pyfront`` frontend).

    Exactly one of ``source`` (program text) and ``path`` (a ``.py``
    file) must be given.  The program is translated onto the mini
    language (:mod:`repro.pyfront`) and then verified through
    :func:`verify` unchanged -- so ``REPRO_SERVER`` routing, the verdict
    cache (keyed on the canonical *translated* form: differently
    formatted Python files sharing a translation share cache entries),
    budgets, pruning and unwind schedules all apply.

    Returns:
        ``(result, translation)`` -- the :class:`VerificationResult`
        plus the :class:`~repro.pyfront.translate.Translation`, which
        maps witnesses back to Python source lines
        (:func:`repro.pyfront.witness.witness_python_lines`) and drives
        the concrete confirmation executor
        (:mod:`repro.pyfront.dynexec`).

    Raises:
        repro.pyfront.SubsetError: the program is outside the supported
            subset (or not valid Python); the message carries the
            offending ``file:line:col``.
    """
    from repro.pyfront import translate_file, translate_source

    if (source is None) == (path is None):
        raise ValueError("verify_python needs exactly one of source=/path=")
    if path is not None:
        translation = translate_file(path)
    else:
        translation = translate_source(source, filename=filename)
    result = verify(
        translation.program,
        config,
        server=server,
        measure_memory=measure_memory,
    )
    return result, translation


def verify_batch(
    tasks,
    configs,
    jobs: Optional[int] = None,
    time_limit_s: Optional[float] = 10.0,
    measure_memory: bool = False,
):
    """Run a (tasks x configs) grid over a process pool; see
    :func:`repro.portfolio.batch.verify_batch`."""
    from repro.portfolio.batch import verify_batch as _verify_batch

    return _verify_batch(
        tasks, configs, jobs=jobs, time_limit_s=time_limit_s,
        measure_memory=measure_memory,
    )


def analyze(
    program: Union[str, "ast.Program"],
    unwind: int = 8,
    width: int = 8,
):
    """Static race analysis (MHP x locksets); returns an
    :class:`~repro.analysis.races.AnalysisReport`, no solver involved."""
    from repro.analysis import analyze_program

    return analyze_program(program, unwind=unwind, width=width)


def serve(
    stdio: bool = False,
    tcp: Optional[str] = None,
    workers: Optional[int] = None,
    recycle_after: int = 64,
    max_queue: int = 64,
    cache_size: int = 1024,
    time_limit_s: Optional[float] = None,
    cache_dir: Optional[str] = None,
    drain_timeout_s: float = 10.0,
) -> int:
    """Run a verification service daemon (blocking until EOF/shutdown).

    Exactly one transport must be selected: ``stdio=True`` speaks JSONL
    on stdin/stdout, ``tcp="HOST:PORT"`` listens on a socket.
    ``cache_dir`` (default: the ``REPRO_CACHE_DIR`` environment
    variable) makes the verdict cache persistent and enables job
    checkpoint/resume; ``drain_timeout_s`` bounds the graceful SIGTERM/
    SIGINT drain.  See ``docs/SERVICE.md`` for the protocol and
    lifecycle.
    """
    from repro.service.server import ServiceServer

    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    server = ServiceServer(
        workers=workers,
        recycle_after=recycle_after,
        max_queue=max_queue,
        cache_size=cache_size,
        default_time_limit_s=time_limit_s,
        cache_dir=cache_dir,
        drain_timeout_s=drain_timeout_s,
    )
    return server.run(stdio=stdio, tcp=tcp)


def connect(
    address: Optional[str] = None,
    timeout: float = 10.0,
    request_timeout_s: Optional[float] = None,
    retry=None,
    hedge_after_s: Optional[float] = None,
):
    """Open a synchronous client to a running service.

    ``address`` defaults to the ``REPRO_SERVER`` environment variable.
    ``timeout`` bounds the connection attempt, ``request_timeout_s``
    each response read; ``retry`` (a
    :class:`~repro.service.client.RetryPolicy`) tunes idempotent-op
    retries and ``hedge_after_s`` enables tail-latency hedging of
    ``verify``.  Returns a
    :class:`~repro.service.client.ServiceClient` (usable as a context
    manager).
    """
    from repro.service.client import ServiceClient

    if address is None:
        address = os.environ.get("REPRO_SERVER") or None
    if address is None:
        raise ValueError(
            "no service address: pass connect(address=...) or set "
            "the REPRO_SERVER environment variable"
        )
    return ServiceClient.connect(
        address,
        timeout=timeout,
        request_timeout_s=request_timeout_s,
        retry=retry,
        hedge_after_s=hedge_after_s,
    )
