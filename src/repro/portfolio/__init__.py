"""Parallel portfolio verification.

The paper's evaluation is a portfolio experiment: Zord, its ablations and
five baseline engines run on the same tasks under a shared budget, and per
task the engines diverge by orders of magnitude.  This package exploits
that divergence on multicore hardware:

* :func:`verify_portfolio` -- run several :class:`VerifierConfig`\\ s on
  one program in worker processes; the first conclusive (SAFE/UNSAFE)
  verdict wins and the losing engines are cancelled with SIGTERM.
* :func:`verify_batch` -- run a (tasks × configs) grid in a process pool
  for the benchmark harness; drop-in parallel variant of
  :func:`repro.bench.harness.run_suite`.

Both fall back to deterministic serial execution with ``jobs=1``.
"""

from repro.portfolio.runner import EngineRun, PortfolioResult, verify_portfolio
from repro.portfolio.batch import verify_batch

__all__ = ["EngineRun", "PortfolioResult", "verify_portfolio", "verify_batch"]
