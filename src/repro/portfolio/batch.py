"""Grid-parallel batch verification for the benchmark harness.

:func:`verify_batch` runs a (tasks × configs) grid across a process pool
and returns the same ``{config_name: [TaskResult ...]}`` shape as
:func:`repro.bench.harness.run_suite`, with rows aligned to the task
order.  Cell order within the pool is unordered; the grid assembly is
deterministic.  Per-cell budgets are the engines' own cooperative
``time_limit_s`` (exactly as in serial runs), so verdicts are identical to
``run_suite`` modulo wall-clock noise.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.bench.task import Task
from repro.verify import VerifierConfig
from repro.verify.config import PRESETS

__all__ = ["verify_batch"]

ConfigLike = Union[str, VerifierConfig, Callable[..., VerifierConfig]]


def _config_for(spec: ConfigLike, task: Task, time_limit_s: Optional[float]) -> VerifierConfig:
    """Instantiate one grid cell's config, mirroring ``run_task``."""
    if isinstance(spec, str):
        spec = PRESETS[spec]
    if isinstance(spec, VerifierConfig):
        return spec.with_(
            unwind=task.unwind,
            time_limit_s=spec.time_limit_s
            if spec.time_limit_s is not None
            else time_limit_s,
        )
    return spec(unwind=task.unwind, time_limit_s=time_limit_s)


def _named_specs(
    configs: Union[Mapping[str, ConfigLike], Sequence[ConfigLike]],
) -> List:
    """Normalize ``configs`` to an ordered (name, spec) list."""
    if isinstance(configs, Mapping):
        return list(configs.items())
    named = []
    for spec in configs:
        if isinstance(spec, str):
            named.append((spec, spec))
        elif isinstance(spec, VerifierConfig):
            named.append((spec.name, spec))
        else:
            named.append((spec().name, spec))
    return named


def _batch_cell(payload):
    """Pool entry point: run one (task, config) cell."""
    name, index, task, config, measure_memory = payload
    from repro.bench.harness import execute_task

    return name, index, execute_task(task, config, measure_memory)


def verify_batch(
    tasks: Sequence[Task],
    configs: Union[Mapping[str, ConfigLike], Sequence[ConfigLike]],
    jobs: Optional[int] = None,
    time_limit_s: Optional[float] = 10.0,
    measure_memory: bool = False,
) -> Dict[str, List]:
    """Run every configuration over every task, in parallel.

    Args:
        tasks: benchmark tasks (each carries its own unwind bound).
        configs: ``{name: factory-or-config-or-preset}`` as accepted by
            :func:`repro.bench.harness.run_suite`, or a plain sequence of
            configs / preset names (named by ``config.name``).
        jobs: pool size (default: cpu count); ``1`` runs serially.
        time_limit_s: per-cell budget for configs without their own.
        measure_memory: trace peak allocation per cell.

    Returns:
        ``{config_name: [TaskResult per task, aligned with tasks]}`` --
        the exact shape :func:`run_suite` produces.
    """
    named = _named_specs(configs)
    cells = []
    for name, spec in named:
        for index, task in enumerate(tasks):
            cells.append(
                (name, index, task, _config_for(spec, task, time_limit_s),
                 measure_memory)
            )
    results: Dict[str, List] = {name: [None] * len(tasks) for name, _ in named}
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, max(1, len(cells)))
    if jobs <= 1:
        for payload in cells:
            name, index, task_result = _batch_cell(payload)
            results[name][index] = task_result
        return results
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    with ctx.Pool(processes=jobs) as pool:
        for name, index, task_result in pool.imap_unordered(_batch_cell, cells):
            results[name][index] = task_result
    return results
