"""Encoding-compatibility grouping for portfolio clause sharing.

Learned clauses are consequences of the CNF they were derived from (plus
theory lemmas, which are theory-valid), so sharing them between portfolio
members is sound exactly when the members solve the *identical* CNF: same
deterministic encoding, hence same variable numbering.  Two configs do so
iff they agree on every knob that shapes the encoding -- the theory, the
FR-encoding ablation, the pruning level, the unrolling bound and schedule,
the bit-width and the memory model.  Knobs that only steer the *search*
(cycle detector, unit-edge propagation, conflict-clause caps, budgets) do
not change the formula, which is what makes sharing between Zord and its
search-side ablations (Zord', Zord-tarjan) both sound and useful.

:func:`encoding_signature` captures exactly the formula-shaping knobs;
:func:`share_groups` partitions a portfolio by it.  The signature is also
stamped onto every :class:`~repro.sat.sharing.ShareChannel` so the
verifier can refuse a channel when a fallback preset re-encodes the
program differently mid-process.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.verify.config import VerifierConfig

__all__ = ["SIGNATURE_VERSION", "encoding_signature", "share_groups"]

#: Version of the signature *shape* produced by :func:`encoding_signature`.
#: Bump whenever the tuple layout changes (a field added, removed, or
#: reordered): persisted verdict-cache entries record it, and entries
#: written under an older shape are refused on recovery instead of being
#: mis-matched against new keys (see :mod:`repro.service.persist`).
SIGNATURE_VERSION = 1

Signature = Tuple[Union[str, int, bool, Tuple[int, ...]], ...]


def encoding_signature(config: VerifierConfig) -> Optional[Signature]:
    """The key under which two configs produce the identical CNF.

    Returns ``None`` for engines without a clause-learning SAT core
    (everything but ``"smt"``): those members can never share.
    """
    if getattr(config, "engine", None) != "smt":
        return None
    return (
        "smt",
        config.theory,
        bool(config.fr_encoding),
        config.prune_level,
        config.unwind,
        config.width,
        config.memory_model,
        tuple(config.unwind_schedule or ()),
    )


def share_groups(
    configs: Sequence[VerifierConfig],
) -> Dict[Signature, List[int]]:
    """Partition portfolio indices into sharing-compatible groups.

    Only groups with at least two members are returned -- a solver with no
    sibling has nobody to exchange with.
    """
    groups: Dict[Signature, List[int]] = {}
    for i, cfg in enumerate(configs):
        sig = encoding_signature(cfg)
        if sig is not None:
            groups.setdefault(sig, []).append(i)
    return {sig: idxs for sig, idxs in groups.items() if len(idxs) >= 2}
