"""The multiprocess portfolio runner: first conclusive verdict wins.

Each configuration runs :func:`repro.verify.verify` in its own worker
process (engines are CPU-bound pure Python, so processes -- not threads --
are the only way to use more than one core).  As soon as one worker
reports SAFE or UNSAFE, the remaining workers are cancelled with SIGTERM;
ties between workers that finished in the same poll interval are broken
deterministically in favour of the earliest configuration in the
portfolio.  With ``jobs=1`` the portfolio degrades gracefully to serial
execution in portfolio order, stopping at the first conclusive verdict --
same winner rule, no processes.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.lang import ast
from repro.verify import Verdict, VerificationResult, VerifierConfig, verify
from repro.verify.config import PRESETS

__all__ = ["EngineRun", "PortfolioResult", "verify_portfolio"]

_CONCLUSIVE = (Verdict.SAFE, Verdict.UNSAFE)

#: Seconds a terminated worker gets to exit before SIGKILL.
_TERM_GRACE_S = 5.0


@dataclass
class EngineRun:
    """Outcome of one portfolio member.

    ``status`` is one of:

    * ``"conclusive"`` -- returned SAFE or UNSAFE;
    * ``"unknown"`` -- ran to completion but exhausted its budget;
    * ``"cancelled"`` -- lost the race and was terminated (or never
      started because a winner emerged first);
    * ``"error"`` -- the engine raised or the worker died.
    """

    config_name: str
    status: str
    verdict: Optional[str] = None
    wall_time_s: float = 0.0
    result: Optional[VerificationResult] = None
    error: Optional[str] = None


@dataclass
class PortfolioResult:
    """Aggregate outcome of :func:`verify_portfolio`.

    ``verdict`` is the winner's verdict, or UNKNOWN when no member was
    conclusive.  ``runs`` is aligned with the input configuration list.
    """

    verdict: str
    winner: Optional[str]
    result: Optional[VerificationResult]
    runs: List[EngineRun] = field(default_factory=list)
    wall_time_s: float = 0.0

    @property
    def is_safe(self) -> bool:
        return self.verdict == Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict == Verdict.UNSAFE

    def __str__(self) -> str:
        head = f"[portfolio] {self.verdict.upper()} in {self.wall_time_s:.3f}s"
        if self.winner is not None:
            head += f" (winner: {self.winner})"
        lines = [head]
        for run in self.runs:
            verdict = run.verdict or "-"
            lines.append(
                f"  {run.config_name:<14} {run.status:<11} {verdict:<8}"
                f" {run.wall_time_s:.3f}s"
            )
        return "\n".join(lines)


def _coerce_config(item: Union[str, VerifierConfig]) -> VerifierConfig:
    if isinstance(item, VerifierConfig):
        return item
    if isinstance(item, str):
        try:
            return PRESETS[item]()
        except KeyError:
            raise ValueError(
                f"unknown preset {item!r}; available presets: "
                f"{', '.join(sorted(PRESETS))}"
            ) from None
    raise TypeError(
        f"portfolio entries must be VerifierConfig or preset names, "
        f"got {type(item).__name__}"
    )


def _source_of(program: Union[str, ast.Program]) -> str:
    """Normalize to source text (cheap to pickle, workers re-parse)."""
    if isinstance(program, str):
        return program
    from repro.lang.unparse import unparse

    return unparse(program)


def _worker(source: str, config: VerifierConfig, index: int, out_queue) -> None:
    """Process entry point: verify and report (index, kind, payload)."""
    try:
        result = verify(source, config)
        out_queue.put((index, "ok", result))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        out_queue.put((index, "error", f"{type(exc).__name__}: {exc}"))


def verify_portfolio(
    program: Union[str, ast.Program],
    configs: Sequence[Union[str, VerifierConfig]],
    jobs: Optional[int] = None,
    time_limit_s: Optional[float] = None,
    wall_budget_s: Optional[float] = None,
) -> PortfolioResult:
    """Race a portfolio of engine configurations on one program.

    Args:
        program: source text or a parsed AST.
        configs: :class:`VerifierConfig` instances or preset names
            (``"zord"``, ``"cbmc"``, ...); earlier entries win ties.
        jobs: worker processes (default: ``min(len(configs), cpu_count)``);
            ``1`` falls back to serial execution in portfolio order.
        time_limit_s: per-engine budget applied to every config that does
            not already carry its own ``time_limit_s``.
        wall_budget_s: optional overall wall-clock budget for the parallel
            race; on expiry all workers are cancelled and the verdict is
            UNKNOWN.

    Returns:
        A :class:`PortfolioResult`; ``result`` is the winning engine's full
        :class:`VerificationResult` (witness included) when conclusive.
    """
    cfgs = [_coerce_config(c) for c in configs]
    if not cfgs:
        raise ValueError("verify_portfolio needs at least one configuration")
    if time_limit_s is not None:
        cfgs = [
            c if c.time_limit_s is not None else c.with_(time_limit_s=time_limit_s)
            for c in cfgs
        ]
    if jobs is None:
        jobs = min(len(cfgs), os.cpu_count() or 1)
    start = time.monotonic()
    if jobs <= 1 or len(cfgs) == 1:
        return _run_serial(program, cfgs, start)
    return _run_parallel(program, cfgs, jobs, start, wall_budget_s)


# ----------------------------------------------------------------------
# Serial fallback (jobs=1)
# ----------------------------------------------------------------------

def _run_serial(program, cfgs: List[VerifierConfig], start: float) -> PortfolioResult:
    runs = [EngineRun(c.name, "cancelled") for c in cfgs]
    winner_idx: Optional[int] = None
    for i, cfg in enumerate(cfgs):
        t0 = time.monotonic()
        try:
            result = verify(program, cfg)
        except Exception as exc:
            runs[i] = EngineRun(
                cfg.name, "error",
                wall_time_s=time.monotonic() - t0,
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        status = "conclusive" if result.verdict in _CONCLUSIVE else "unknown"
        runs[i] = EngineRun(
            cfg.name, status, result.verdict, result.wall_time_s, result
        )
        if status == "conclusive":
            winner_idx = i
            break
    return _finish(runs, winner_idx, start)


# ----------------------------------------------------------------------
# Parallel race
# ----------------------------------------------------------------------

def _run_parallel(
    program,
    cfgs: List[VerifierConfig],
    jobs: int,
    start: float,
    wall_budget_s: Optional[float],
) -> PortfolioResult:
    source = _source_of(program)
    # Fail fast in the parent on malformed input instead of collecting
    # one identical parse error per worker.
    from repro.lang import parse

    parse(source)

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    out_q = ctx.Queue()
    runs = [EngineRun(c.name, "cancelled") for c in cfgs]
    procs: Dict[int, multiprocessing.process.BaseProcess] = {}
    launched_at: Dict[int, float] = {}
    pending = list(range(len(cfgs)))
    conclusive: List[int] = []
    winner_idx: Optional[int] = None

    def record(i: int, kind: str, payload) -> None:
        elapsed = time.monotonic() - launched_at[i]
        if kind == "error":
            runs[i] = EngineRun(
                cfgs[i].name, "error", wall_time_s=elapsed, error=payload
            )
        else:
            status = (
                "conclusive" if payload.verdict in _CONCLUSIVE else "unknown"
            )
            runs[i] = EngineRun(
                cfgs[i].name, status, payload.verdict,
                payload.wall_time_s, payload,
            )

    def reap(i: int, timeout: Optional[float] = _TERM_GRACE_S) -> None:
        proc = procs.pop(i, None)
        if proc is not None:
            proc.join(timeout=timeout)

    try:
        while True:
            while pending and len(procs) < jobs:
                i = pending.pop(0)
                proc = ctx.Process(
                    target=_worker, args=(source, cfgs[i], i, out_q), daemon=True
                )
                launched_at[i] = time.monotonic()
                proc.start()
                procs[i] = proc
                runs[i] = EngineRun(cfgs[i].name, "running")
            if not procs:
                break
            try:
                i, kind, payload = out_q.get(timeout=0.05)
            except queue_mod.Empty:
                # Reap workers that died without reporting (OOM-kill, ...).
                for i in [k for k, p in procs.items() if not p.is_alive()]:
                    reap(i, timeout=None)
                    if runs[i].status == "running":
                        runs[i] = EngineRun(
                            cfgs[i].name, "error",
                            wall_time_s=time.monotonic() - launched_at[i],
                            error="worker exited without reporting",
                        )
                if (
                    wall_budget_s is not None
                    and time.monotonic() - start > wall_budget_s
                ):
                    break
                continue
            record(i, kind, payload)
            reap(i)
            if runs[i].status == "conclusive":
                conclusive.append(i)
                # Deterministic tie-break: drain everything that finished
                # in the same interval, then prefer the earliest config.
                while True:
                    try:
                        j, kind2, payload2 = out_q.get_nowait()
                    except queue_mod.Empty:
                        break
                    record(j, kind2, payload2)
                    reap(j)
                    if runs[j].status == "conclusive":
                        conclusive.append(j)
                winner_idx = min(conclusive)
                break
    finally:
        # Cancel the losers: SIGTERM, then SIGKILL stragglers.
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + _TERM_GRACE_S
        for i, proc in list(procs.items()):
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
            if runs[i].status == "running":
                runs[i] = EngineRun(
                    cfgs[i].name, "cancelled",
                    wall_time_s=time.monotonic() - launched_at[i],
                )
        out_q.close()
    return _finish(runs, winner_idx, start)


def _finish(
    runs: List[EngineRun], winner_idx: Optional[int], start: float
) -> PortfolioResult:
    elapsed = time.monotonic() - start
    if winner_idx is None:
        return PortfolioResult(Verdict.UNKNOWN, None, None, runs, elapsed)
    win = runs[winner_idx]
    return PortfolioResult(win.verdict, win.config_name, win.result, runs, elapsed)
