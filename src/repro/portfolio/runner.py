"""The multiprocess portfolio runner: first conclusive verdict wins.

Each configuration runs :func:`repro.verify.verify` in its own worker
process (engines are CPU-bound pure Python, so processes -- not threads --
are the only way to use more than one core).  As soon as one worker
reports SAFE or UNSAFE, the remaining workers are cancelled with SIGTERM;
ties between workers that finished in the same poll interval are broken
deterministically in favour of the earliest configuration in the
portfolio.  With ``jobs=1`` the portfolio degrades gracefully to serial
execution in portfolio order, stopping at the first conclusive verdict --
same winner rule, no processes.

The parallel race is hardened against misbehaving workers:

* every worker posts **heartbeats**; a worker that stays alive but stops
  heartbeating for ``hang_timeout_s`` is declared hung and killed
  (``status="error"``) instead of stalling the race;
* a worker that **dies without reporting** (OOM-killed, segfaulted
  extension, :data:`os.kill`) is reaped as ``status="error"``;
* cancellation escalates: SIGTERM, then SIGKILL after ``term_grace_s``
  for workers that ignore the termination request.

With ``share_clauses=True`` the members whose configs produce the
identical CNF encoding (grouped by
:func:`repro.portfolio.sharing.encoding_signature`) exchange short learned
clauses while they race: workers publish them as ``"cl"`` messages on the
result queue and the parent relays each batch to the import queues of the
publisher's group siblings, who pull them in at their next restart
boundary.  Sharing never changes a verdict -- only which engine reaches it
first -- because shared clauses are consequences of the common formula.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.lang import ast
from repro.portfolio.sharing import share_groups
from repro.robustness.faults import fault_point
from repro.sat import sharing as sat_sharing
from repro.verify import Verdict, VerificationResult, VerifierConfig, verify
from repro.verify.config import PRESETS

__all__ = ["EngineRun", "PortfolioResult", "verify_portfolio"]

_CONCLUSIVE = (Verdict.SAFE, Verdict.UNSAFE)

#: Seconds a terminated worker gets to exit before SIGKILL.
_TERM_GRACE_S = 5.0

#: Interval between worker heartbeats.
_HEARTBEAT_S = 0.2


@dataclass
class EngineRun:
    """Outcome of one portfolio member.

    ``status`` is one of:

    * ``"conclusive"`` -- returned SAFE or UNSAFE;
    * ``"unknown"`` -- ran to completion but exhausted its budget;
    * ``"cancelled"`` -- lost the race and was terminated (or never
      started because a winner emerged first);
    * ``"error"`` -- the engine raised or the worker died.
    """

    config_name: str
    status: str
    verdict: Optional[str] = None
    wall_time_s: float = 0.0
    result: Optional[VerificationResult] = None
    error: Optional[str] = None


@dataclass
class PortfolioResult:
    """Aggregate outcome of :func:`verify_portfolio`.

    ``verdict`` is the winner's verdict, or UNKNOWN when no member was
    conclusive.  ``runs`` is aligned with the input configuration list.
    """

    verdict: str
    winner: Optional[str]
    result: Optional[VerificationResult]
    runs: List[EngineRun] = field(default_factory=list)
    wall_time_s: float = 0.0
    #: Learned clauses that crossed the sharing medium (0 unless the
    #: portfolio ran with ``share_clauses=True``).
    shared_clauses: int = 0

    @property
    def is_safe(self) -> bool:
        return self.verdict == Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict == Verdict.UNSAFE

    def __str__(self) -> str:
        head = f"[portfolio] {self.verdict.upper()} in {self.wall_time_s:.3f}s"
        if self.winner is not None:
            head += f" (winner: {self.winner})"
        if self.shared_clauses:
            head += f" [{self.shared_clauses} clauses shared]"
        lines = [head]
        for run in self.runs:
            verdict = run.verdict or "-"
            lines.append(
                f"  {run.config_name:<14} {run.status:<11} {verdict:<8}"
                f" {run.wall_time_s:.3f}s"
            )
        return "\n".join(lines)


def _coerce_config(item: Union[str, VerifierConfig]) -> VerifierConfig:
    if isinstance(item, VerifierConfig):
        return item
    if isinstance(item, str):
        try:
            return PRESETS[item]()
        except KeyError:
            raise ValueError(
                f"unknown preset {item!r}; available presets: "
                f"{', '.join(sorted(PRESETS))}"
            ) from None
    raise TypeError(
        f"portfolio entries must be VerifierConfig or preset names, "
        f"got {type(item).__name__}"
    )


def _source_of(program: Union[str, ast.Program]) -> str:
    """Normalize to source text (cheap to pickle, workers re-parse)."""
    if isinstance(program, str):
        return program
    from repro.lang.unparse import unparse

    return unparse(program)


def _worker(
    source: str,
    config: VerifierConfig,
    index: int,
    out_queue,
    heartbeat_s: float = _HEARTBEAT_S,
    share_queue=None,
    share_signature=None,
) -> None:
    """Process entry point: verify and report (index, kind, payload).

    ``kind`` is ``"ok"`` (payload: the result), ``"error"`` (payload: a
    message), ``"hb"`` (heartbeat, payload: None) or ``"cl"`` (payload: a
    list of learned-clause tuples for the parent to relay).  Heartbeats
    come from a daemon thread so the parent can distinguish a slow worker
    from a hung one.  When ``share_queue`` is given, a
    :class:`~repro.sat.sharing.ShareChannel` is attached process-wide:
    exports travel out as ``"cl"`` messages, imports arrive on
    ``share_queue`` (one list of clause tuples per item).
    """
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            try:
                out_queue.put((index, "hb", None))
            except Exception:  # queue torn down: parent is gone
                return

    beater = threading.Thread(target=_beat, daemon=True)
    beater.start()
    if share_queue is not None:
        def _send(clauses) -> None:
            try:
                out_queue.put((index, "cl", clauses))
            except Exception:  # queue torn down: race already decided
                pass

        def _recv():
            items = []
            while True:
                try:
                    items.extend(share_queue.get_nowait())
                except (queue_mod.Empty, OSError):
                    break
            return items

        sat_sharing.attach(
            sat_sharing.ShareChannel(_send, _recv, signature=share_signature)
        )
    try:
        fault_point("portfolio_worker")
        result = verify(source, config)
        stop.set()
        out_queue.put((index, "ok", result))
    except BaseException as exc:  # noqa: BLE001 - report, don't crash silently
        stop.set()
        out_queue.put((index, "error", f"{type(exc).__name__}: {exc}"))


def verify_portfolio(
    program: Union[str, ast.Program],
    configs: Sequence[Union[str, VerifierConfig]],
    jobs: Optional[int] = None,
    time_limit_s: Optional[float] = None,
    wall_budget_s: Optional[float] = None,
    hang_timeout_s: Optional[float] = 30.0,
    term_grace_s: float = _TERM_GRACE_S,
    heartbeat_s: float = _HEARTBEAT_S,
    share_clauses: bool = False,
) -> PortfolioResult:
    """Race a portfolio of engine configurations on one program.

    Args:
        program: source text or a parsed AST.
        configs: :class:`VerifierConfig` instances or preset names
            (``"zord"``, ``"cbmc"``, ...); earlier entries win ties.
        jobs: worker processes (default: ``min(len(configs), cpu_count)``);
            ``1`` falls back to serial execution in portfolio order.
        time_limit_s: per-engine budget applied to every config that does
            not already carry its own ``time_limit_s``.
        wall_budget_s: optional overall wall-clock budget for the parallel
            race; on expiry all workers are cancelled and the verdict is
            UNKNOWN.
        hang_timeout_s: a live worker that posts no heartbeat for this
            long is declared hung and killed (``None`` disables).
        term_grace_s: seconds a SIGTERM'd worker gets before SIGKILL.
        heartbeat_s: worker heartbeat interval.
        share_clauses: exchange short learned clauses between members whose
            configs produce the identical CNF encoding (see
            :mod:`repro.portfolio.sharing`).  Verdict-preserving; serial
            runs share forward from earlier to later members.

    Returns:
        A :class:`PortfolioResult`; ``result`` is the winning engine's full
        :class:`VerificationResult` (witness included) when conclusive.
    """
    cfgs = [_coerce_config(c) for c in configs]
    if not cfgs:
        raise ValueError("verify_portfolio needs at least one configuration")
    if time_limit_s is not None:
        cfgs = [
            c if c.time_limit_s is not None else c.with_(time_limit_s=time_limit_s)
            for c in cfgs
        ]
    if jobs is None:
        jobs = min(len(cfgs), os.cpu_count() or 1)
    start = time.monotonic()
    if jobs <= 1 or len(cfgs) == 1:
        return _run_serial(program, cfgs, start, share_clauses)
    return _run_parallel(
        program, cfgs, jobs, start, wall_budget_s,
        hang_timeout_s, term_grace_s, heartbeat_s, share_clauses,
    )


# ----------------------------------------------------------------------
# Serial fallback (jobs=1)
# ----------------------------------------------------------------------

def _run_serial(
    program,
    cfgs: List[VerifierConfig],
    start: float,
    share_clauses: bool = False,
) -> PortfolioResult:
    # Serial sharing is one-directional: members run in portfolio order, so
    # clauses learned by earlier members seed the later ones of the same
    # encoding group (via a SerialBroker mailbox per group).
    channels: Dict[int, sat_sharing.ShareChannel] = {}
    if share_clauses:
        for sig, idxs in share_groups(cfgs).items():
            broker = sat_sharing.SerialBroker(signature=sig)
            for i in idxs:
                channels[i] = broker.join()
    runs = [EngineRun(c.name, "cancelled") for c in cfgs]
    winner_idx: Optional[int] = None
    for i, cfg in enumerate(cfgs):
        t0 = time.monotonic()
        sat_sharing.attach(channels.get(i))
        try:
            result = verify(program, cfg)
        except Exception as exc:
            runs[i] = EngineRun(
                cfg.name, "error",
                wall_time_s=time.monotonic() - t0,
                error=f"{type(exc).__name__}: {exc}",
            )
            continue
        finally:
            sat_sharing.detach()
        runs[i] = _run_from_result(cfg.name, result)
        if runs[i].status == "conclusive":
            winner_idx = i
            break
    shared = sum(ch.exported for ch in channels.values())
    return _finish(runs, winner_idx, start, shared)


def _run_from_result(name: str, result: VerificationResult) -> EngineRun:
    """Classify a completed verification into an :class:`EngineRun`.

    A contained engine crash (``verdict == "error"``) counts as a worker
    error, not an unknown: the diagnostic is surfaced in ``error``.
    """
    if result.verdict in _CONCLUSIVE:
        status = "conclusive"
    elif result.verdict == Verdict.ERROR:
        status = "error"
    else:
        status = "unknown"
    return EngineRun(
        name, status, result.verdict, result.wall_time_s, result,
        error=result.diagnostic if status == "error" else None,
    )


# ----------------------------------------------------------------------
# Parallel race
# ----------------------------------------------------------------------

def _run_parallel(
    program,
    cfgs: List[VerifierConfig],
    jobs: int,
    start: float,
    wall_budget_s: Optional[float],
    hang_timeout_s: Optional[float],
    term_grace_s: float,
    heartbeat_s: float,
    share_clauses: bool = False,
) -> PortfolioResult:
    source = _source_of(program)
    # Fail fast in the parent on malformed input instead of collecting
    # one identical parse error per worker.
    from repro.lang import parse

    parse(source)

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    out_q = ctx.Queue()
    # Clause sharing: per-member import queues, and for each member the
    # encoding-group siblings its exports are relayed to.
    share_sig: Dict[int, tuple] = {}
    share_peers: Dict[int, List[int]] = {}
    share_in: Dict[int, multiprocessing.queues.Queue] = {}
    shared_count = 0
    if share_clauses:
        for sig, idxs in share_groups(cfgs).items():
            for i in idxs:
                share_sig[i] = sig
                share_peers[i] = [j for j in idxs if j != i]
                share_in[i] = ctx.Queue()
    runs = [EngineRun(c.name, "cancelled") for c in cfgs]
    procs: Dict[int, multiprocessing.process.BaseProcess] = {}
    launched_at: Dict[int, float] = {}
    last_beat: Dict[int, float] = {}
    pending = list(range(len(cfgs)))
    conclusive: List[int] = []
    winner_idx: Optional[int] = None

    def record(i: int, kind: str, payload) -> None:
        if runs[i].status != "running":
            return  # late message from a worker already reaped/killed
        elapsed = time.monotonic() - launched_at[i]
        if kind == "error":
            runs[i] = EngineRun(
                cfgs[i].name, "error", wall_time_s=elapsed, error=payload
            )
        else:
            runs[i] = _run_from_result(cfgs[i].name, payload)

    def reap(i: int, timeout: Optional[float] = None) -> None:
        proc = procs.pop(i, None)
        if proc is not None:
            proc.join(timeout=term_grace_s if timeout is None else timeout)

    def kill_escalating(i: int, error: str) -> None:
        """SIGTERM ``i``, SIGKILL it after the grace period, record
        ``error``."""
        proc = procs.pop(i)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=term_grace_s)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)
        if runs[i].status == "running":
            runs[i] = EngineRun(
                cfgs[i].name, "error",
                wall_time_s=time.monotonic() - launched_at[i],
                error=error,
            )

    try:
        while True:
            now = time.monotonic()
            while pending and len(procs) < jobs:
                i = pending.pop(0)
                proc = ctx.Process(
                    target=_worker,
                    args=(
                        source, cfgs[i], i, out_q, heartbeat_s,
                        share_in.get(i), share_sig.get(i),
                    ),
                    daemon=True,
                )
                launched_at[i] = last_beat[i] = time.monotonic()
                proc.start()
                procs[i] = proc
                runs[i] = EngineRun(cfgs[i].name, "running")
            if not procs:
                break
            try:
                i, kind, payload = out_q.get(timeout=0.05)
            except queue_mod.Empty:
                now = time.monotonic()
                # Reap workers that died without reporting (OOM-kill, ...).
                for i in [k for k, p in procs.items() if not p.is_alive()]:
                    reap(i)
                    if runs[i].status == "running":
                        runs[i] = EngineRun(
                            cfgs[i].name, "error",
                            wall_time_s=now - launched_at[i],
                            error="worker exited without reporting a result",
                        )
                # Kill workers that are alive but silent: a worker that
                # stops heartbeating is hung (deadlock, SIGSTOP, runaway
                # C loop) and must not stall the race forever.
                if hang_timeout_s is not None:
                    hung = [
                        k for k in procs
                        if now - last_beat[k] > hang_timeout_s
                    ]
                    for i in hung:
                        kill_escalating(
                            i,
                            "worker hung: no heartbeat for "
                            f"{now - last_beat[i]:.1f}s",
                        )
                if wall_budget_s is not None and now - start > wall_budget_s:
                    break
                continue
            if kind == "hb":
                last_beat[i] = time.monotonic()
                continue
            if kind == "cl":
                # Relay the batch to the publisher's encoding-group
                # siblings; they import at their next restart boundary.
                shared_count += len(payload)
                for j in share_peers.get(i, ()):
                    q = share_in.get(j)
                    if q is not None:
                        try:
                            q.put(payload)
                        except Exception:
                            pass
                continue
            record(i, kind, payload)
            reap(i)
            if runs[i].status == "conclusive":
                conclusive.append(i)
                # Deterministic tie-break: drain everything that finished
                # in the same interval, then prefer the earliest config.
                while True:
                    try:
                        j, kind2, payload2 = out_q.get_nowait()
                    except queue_mod.Empty:
                        break
                    if kind2 in ("hb", "cl"):
                        continue  # race decided: no relaying needed
                    record(j, kind2, payload2)
                    reap(j)
                    if runs[j].status == "conclusive":
                        conclusive.append(j)
                winner_idx = min(conclusive)
                break
    finally:
        # Cancel the losers: SIGTERM, then SIGKILL stragglers.
        for proc in procs.values():
            if proc.is_alive():
                proc.terminate()
        deadline = time.monotonic() + term_grace_s
        for i, proc in list(procs.items()):
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
            if runs[i].status == "running":
                runs[i] = EngineRun(
                    cfgs[i].name, "cancelled",
                    wall_time_s=time.monotonic() - launched_at[i],
                )
        out_q.close()
        for q in share_in.values():
            # Don't block interpreter exit on relayed batches a cancelled
            # worker never drained.
            q.close()
            q.cancel_join_thread()
    return _finish(runs, winner_idx, start, shared_count)


def _finish(
    runs: List[EngineRun],
    winner_idx: Optional[int],
    start: float,
    shared: int = 0,
) -> PortfolioResult:
    elapsed = time.monotonic() - start
    if winner_idx is None:
        return PortfolioResult(Verdict.UNKNOWN, None, None, runs, elapsed, shared)
    win = runs[winner_idx]
    return PortfolioResult(
        win.verdict, win.config_name, win.result, runs, elapsed, shared
    )
