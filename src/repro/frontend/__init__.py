"""BMC front end: loop unrolling, SSA transformation, event extraction.

Turns a parsed :class:`repro.lang.ast.Program` into a
:class:`repro.frontend.program.SymbolicProgram`: straight-line, guarded SSA
constraints plus the shared-memory access events and program-order edges the
ordering-consistency encoding needs (Section 3 of the paper).
"""

from repro.frontend.program import Event, EventKind, SymbolicProgram, ThreadEvents
from repro.frontend.ssa import SsaError, build_symbolic_program

__all__ = [
    "Event",
    "EventKind",
    "SymbolicProgram",
    "ThreadEvents",
    "build_symbolic_program",
    "SsaError",
]
