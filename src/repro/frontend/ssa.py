"""Loop unrolling + SSA transformation (Section 3.1 of the paper).

Each thread is lowered to straight-line guarded SSA form:

* every *shared* access becomes a fresh SSA copy of the variable plus an
  access :class:`~repro.frontend.program.Event` (the paper's ``L x_i M``);
* locals are pure dataflow, merged with ``ite`` at control-flow joins;
* loops are unrolled ``unwind`` times with an *unwinding assumption*
  (executions needing more iterations are excluded);
* ``lock``/``unlock`` desugar to an atomic test-and-set / a plain store;
* ``atomic`` blocks contribute read-modify-write adjacency groups.

Logical operators are *strict* (both operands always evaluated); this keeps
the SMT encoding and the interpreter in :mod:`repro.smc` in exact agreement
about which events an execution performs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.encoding import formula as F
from repro.encoding.formula import Term
from repro.lang import ast
from repro.lang.sema import check_program
from repro.robustness import checkpoint as _robustness_checkpoint
from repro.frontend.program import (
    Event,
    EventKind,
    RmwGroup,
    SymbolicProgram,
    ThreadEvents,
)

__all__ = ["build_symbolic_program", "SsaError"]


class SsaError(ValueError):
    """Raised on constructs the front end cannot lower."""


def build_symbolic_program(
    program: ast.Program,
    unwind: int = 8,
    width: int = 8,
    unwind_assumptions: bool = False,
) -> SymbolicProgram:
    """Lower ``program`` to a :class:`SymbolicProgram`.

    Args:
        program: parsed and (re)checked AST.
        unwind: maximum number of loop iterations considered (per loop
            occurrence; nested loops multiply).
        width: bit-width of all integer values.
        unwind_assumptions: when True, loop frontiers are *not* cut off
            with hard constraints; instead every loop-condition evaluation
            is recorded in :attr:`SymbolicProgram.unwind_conds` so the
            encoder can assert per-bound unwinding assumptions under
            activation literals (iterative-deepening BMC).  The caller
            **must** then assert the bound-``unwind`` assumption, or the
            deepest frontier is truncated without exclusion (unsound).
    """
    check_program(program)
    lowerer = _Lowerer(program, unwind, width, unwind_assumptions)
    return lowerer.run()


class _Lowerer:
    def __init__(
        self,
        program: ast.Program,
        unwind: int,
        width: int,
        unwind_assumptions: bool = False,
    ) -> None:
        self.program = program
        self.unwind = unwind
        self.width = width
        self.unwind_assumptions = unwind_assumptions
        self.out = SymbolicProgram(width=width)
        self._ssa_counters: Dict[str, int] = {}
        self._locks = {g.name for g in program.globals if g.is_lock}
        self._shared = {g.name: g.init for g in program.globals}
        self.out.shared_inits = dict(self._shared)
        self.out.lock_addrs = sorted(self._locks)
        # Per-thread lowering state (set in _lower_thread).
        self._env: Dict[str, Term] = {}
        self._guard: Term = F.TRUE
        self._events: List[Event] = []
        self._thread: str = ""
        self._atomic_events: Optional[List[Event]] = None
        self._stmt: Optional[ast.Stmt] = None

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def run(self) -> SymbolicProgram:
        main = self.program.main
        if main is None:
            # Implicit main: start every thread, join every thread.
            body: List[ast.Stmt] = [ast.Start(t.name) for t in self.program.threads]
            body += [ast.Join(t.name) for t in self.program.threads]
            main = ast.ThreadDef("main", body)
        # Lower main first; start/join produce anchors recorded here.
        self._anchor_of_start: Dict[str, int] = {}
        self._anchor_of_join: Dict[str, int] = {}
        main_events = self._lower_thread(main, is_main=True)
        self.out.threads.append(ThreadEvents("main", main_events))
        # Lower each *started* thread; wire anchor edges.
        for name, start_eid in self._anchor_of_start.items():
            tdef = self.program.thread_named(name)
            events = self._lower_thread(tdef, is_main=False)
            self.out.threads.append(ThreadEvents(name, events))
            if events:
                self.out.po_edges.append((start_eid, events[0].eid))
                join_eid = self._anchor_of_join.get(name)
                if join_eid is not None:
                    self.out.po_edges.append((events[-1].eid, join_eid))
        return self.out

    def _lower_thread(self, tdef: ast.ThreadDef, is_main: bool) -> List[Event]:
        self._env = {}
        self._guard = F.TRUE
        self._events = []
        self._thread = tdef.name
        self._atomic_events = None
        self._stmt = None
        if is_main:
            # Initialization writes: one unconditional write per shared var.
            for name, init in sorted(self._shared.items()):
                ev, var = self._emit_access(EventKind.WRITE, name)
                self.out.constraints.append(F.eq(var, F.bv_const(init, self.width)))
        for stmt in tdef.body:
            self._lower_stmt(stmt)
        # Chain program-order edges.
        for a, b in zip(self._events, self._events[1:]):
            self.out.po_edges.append((a.eid, b.eid))
        return self._events

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _fresh(self, base: str) -> str:
        k = self._ssa_counters.get(base, 0)
        self._ssa_counters[base] = k + 1
        return f"{base}#{k}"

    def _emit_access(self, kind: str, addr: str) -> Tuple[Event, Term]:
        """Create an event + SSA variable for an access to ``addr``."""
        # Each shared access is one event-graph node; unrolling multiplies
        # them, so this is where the ``max_events`` budget is charged.
        _robustness_checkpoint("frontend", events=1)
        ssa_name = self._fresh(addr)
        var = F.bv_var(ssa_name, self.width)
        eid = len(self.out.events)
        ev = Event(
            eid=eid,
            kind=kind,
            addr=addr,
            ssa_name=ssa_name,
            thread=self._thread,
            guard=self._guard,
            label=f"{self._thread}:{kind} {ssa_name}",
            pos=getattr(self._stmt, "pos", None),
            stmt=self._stmt,
        )
        self.out.events.append(ev)
        self._events.append(ev)
        if self._atomic_events is not None:
            self._atomic_events.append(ev)
        return ev, var

    def _emit_anchor(self, label: str) -> int:
        eid = len(self.out.events)
        ev = Event(
            eid=eid,
            kind=EventKind.ANCHOR,
            addr=None,
            ssa_name=None,
            thread=self._thread,
            guard=F.TRUE,
            label=f"{self._thread}:{label}",
        )
        self.out.events.append(ev)
        self._events.append(ev)
        return eid

    def _free_var(self, base: str) -> Term:
        name = self._fresh(base)
        self.out.free_vars.append(name)
        return F.bv_var(name, self.width)

    def _to_bool(self, t: Term) -> Term:
        """Truthiness of a BV term, with a peephole for encoded booleans."""
        if (
            t.op == "bvite"
            and t.args[1].op == "bvconst" and t.args[1].value == 1
            and t.args[2].op == "bvconst" and t.args[2].value == 0
        ):
            return t.args[0]
        return F.ne(t, F.bv_const(0, self.width))

    def _from_bool(self, b: Term) -> Term:
        return F.bv_ite(b, F.bv_const(1, self.width), F.bv_const(0, self.width))

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _lower_expr(self, expr: ast.Expr) -> Term:
        if isinstance(expr, ast.IntLit):
            return F.bv_const(expr.value, self.width)
        if isinstance(expr, ast.Nondet):
            var = self._free_var("nondet")
            self.out.nondet_sites.append((self._thread, var.name, self._guard))
            return var
        if isinstance(expr, ast.VarRef):
            if expr.name in self._shared:
                _, var = self._emit_access(EventKind.READ, expr.name)
                return var
            value = self._env.get(expr.name)
            if value is None:
                # Uninitialized local: unconstrained.
                value = self._free_var(f"{self._thread}.{expr.name}")
                self._env[expr.name] = value
            return value
        if isinstance(expr, ast.Unary):
            v = self._lower_expr(expr.operand)
            if expr.op == "-":
                return F.bv_neg(v)
            if expr.op == "~":
                return F.bv_not(v)
            if expr.op == "!":
                return self._from_bool(F.mk_not(self._to_bool(v)))
            raise SsaError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            lhs = self._lower_expr(expr.left)
            rhs = self._lower_expr(expr.right)
            op = expr.op
            if op == "+":
                return F.bv_add(lhs, rhs)
            if op == "-":
                return F.bv_sub(lhs, rhs)
            if op == "*":
                return F.bv_mul(lhs, rhs)
            if op == "&":
                return F.bv_and(lhs, rhs)
            if op == "|":
                return F.bv_or(lhs, rhs)
            if op == "^":
                return F.bv_xor(lhs, rhs)
            if op == "&&":
                return self._from_bool(F.mk_and(self._to_bool(lhs), self._to_bool(rhs)))
            if op == "||":
                return self._from_bool(F.mk_or(self._to_bool(lhs), self._to_bool(rhs)))
            if op == "==":
                return self._from_bool(F.eq(lhs, rhs))
            if op == "!=":
                return self._from_bool(F.ne(lhs, rhs))
            if op == "<":
                return self._from_bool(F.slt(lhs, rhs))
            if op == "<=":
                return self._from_bool(F.sle(lhs, rhs))
            if op == ">":
                return self._from_bool(F.slt(rhs, lhs))
            if op == ">=":
                return self._from_bool(F.sle(rhs, lhs))
            raise SsaError(f"unknown binary operator {op!r}")
        raise SsaError(f"cannot lower expression {expr!r}")

    def _lower_cond(self, expr: ast.Expr) -> Term:
        return self._to_bool(self._lower_expr(expr))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        self._stmt = stmt
        if isinstance(stmt, ast.LocalDecl):
            if stmt.init is not None:
                self._env[stmt.name] = self._lower_expr(stmt.init)
            else:
                self._env[stmt.name] = self._free_var(
                    f"{self._thread}.{stmt.name}"
                )
            return
        if isinstance(stmt, ast.Assign):
            value = self._lower_expr(stmt.value)
            if stmt.name in self._shared:
                _, var = self._emit_access(EventKind.WRITE, stmt.name)
                self.out.constraints.append(F.implies(self._guard, F.eq(var, value)))
            else:
                self._env[stmt.name] = value
            return
        if isinstance(stmt, ast.If):
            self._lower_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self._lower_while(stmt, self.unwind)
            return
        if isinstance(stmt, ast.Assert):
            cond = self._lower_cond(stmt.cond)
            self.out.error_disjuncts.append(F.mk_and(self._guard, F.mk_not(cond)))
            return
        if isinstance(stmt, ast.Assume):
            cond = self._lower_cond(stmt.cond)
            self.out.constraints.append(F.implies(self._guard, cond))
            return
        if isinstance(stmt, ast.Lock):
            # atomic { assume(l == 0); l = 1; }
            read_ev, read_var = self._emit_access(EventKind.READ, stmt.name)
            self.out.constraints.append(
                F.implies(self._guard, F.eq(read_var, F.bv_const(0, self.width)))
            )
            write_ev, write_var = self._emit_access(EventKind.WRITE, stmt.name)
            self.out.constraints.append(
                F.implies(self._guard, F.eq(write_var, F.bv_const(1, self.width)))
            )
            self.out.rmw_groups.append(
                RmwGroup(stmt.name, read_ev.eid, write_ev.eid)
            )
            return
        if isinstance(stmt, ast.Unlock):
            _, var = self._emit_access(EventKind.WRITE, stmt.name)
            self.out.constraints.append(
                F.implies(self._guard, F.eq(var, F.bv_const(0, self.width)))
            )
            return
        if isinstance(stmt, ast.Atomic):
            self._lower_atomic(stmt)
            return
        if isinstance(stmt, ast.Start):
            eid = self._emit_anchor(f"start {stmt.thread}")
            self._anchor_of_start[stmt.thread] = eid
            return
        if isinstance(stmt, ast.Join):
            eid = self._emit_anchor(f"join {stmt.thread}")
            self._anchor_of_join[stmt.thread] = eid
            return
        if isinstance(stmt, ast.Skip):
            return
        if isinstance(stmt, ast.Fence):
            # Fences are pure ordering anchors: no memory access, but they
            # preserve program order around them under weak memory models.
            self._emit_anchor("fence")
            return
        raise SsaError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_if(self, stmt: ast.If) -> None:
        cond = self._lower_cond(stmt.cond)
        outer_guard = self._guard
        saved_env = dict(self._env)
        self._guard = F.mk_and(outer_guard, cond)
        for s in stmt.then_body:
            self._lower_stmt(s)
        then_env = self._env
        self._env = dict(saved_env)
        self._guard = F.mk_and(outer_guard, F.mk_not(cond))
        for s in stmt.else_body:
            self._lower_stmt(s)
        else_env = self._env
        self._guard = outer_guard
        self._env = self._merge_envs(cond, then_env, else_env)

    def _lower_while(self, stmt: ast.While, depth: int) -> None:
        self._stmt = stmt  # condition re-reads belong to the loop header
        cond = self._lower_cond(stmt.cond)
        if self.unwind_assumptions:
            # Record the frontier condition at every header evaluation:
            # asserting the negation of all entries with the same
            # iteration count is exactly the unwinding assumption for
            # that bound (the encoder guards each set with an activation
            # literal; see encoding.encoder.add_unwind_bound).
            self.out.unwind_conds.append(
                (self.unwind - depth, F.mk_and(self._guard, cond))
            )
        if depth == 0:
            if not self.unwind_assumptions:
                # Unwinding assumption: executions that would iterate
                # further are excluded from the bounded analysis.
                self.out.constraints.append(
                    F.implies(F.mk_and(self._guard, cond), F.FALSE)
                )
            return
        outer_guard = self._guard
        saved_env = dict(self._env)
        self._guard = F.mk_and(outer_guard, cond)
        for s in stmt.body:
            self._lower_stmt(s)
        self._lower_while(stmt, depth - 1)
        inner_env = self._env
        self._guard = outer_guard
        self._env = self._merge_envs(cond, inner_env, saved_env)

    def _merge_envs(
        self, cond: Term, then_env: Dict[str, Term], else_env: Dict[str, Term]
    ) -> Dict[str, Term]:
        merged: Dict[str, Term] = {}
        for name in set(then_env) | set(else_env):
            tval = then_env.get(name)
            eval_ = else_env.get(name)
            if tval is None:
                merged[name] = eval_  # declared only in else branch
            elif eval_ is None:
                merged[name] = tval
            elif tval is eval_:
                merged[name] = tval
            else:
                merged[name] = F.bv_ite(cond, tval, eval_)
        return merged

    def _lower_atomic(self, stmt: ast.Atomic) -> None:
        self._atomic_events = []
        try:
            for s in stmt.body:
                self._lower_stmt(s)
            events = self._atomic_events
        finally:
            self._atomic_events = None
        if events:
            self.out.atomic_regions.append([e.eid for e in events])
        # Per address: pair the first read with the last write (sema
        # guarantees at most one shared variable is touched).
        by_addr: Dict[str, List[Event]] = {}
        for ev in events:
            by_addr.setdefault(ev.addr, []).append(ev)
        for addr, evs in by_addr.items():
            reads = [e for e in evs if e.is_read]
            writes = [e for e in evs if e.is_write]
            if reads and writes:
                self.out.rmw_groups.append(
                    RmwGroup(addr, reads[0].eid, writes[-1].eid)
                )
