"""The symbolic program: output of the BMC front end.

A :class:`SymbolicProgram` contains

* per-thread lists of shared-memory access :class:`Event` objects in program
  order (the skeleton of the event graph, Section 4.2),
* pure SSA value constraints (``rho_va`` plus ``assume`` conditions),
* the error condition (``rho_err``),
* program-order edges including thread create/join anchor edges,
* read-modify-write atomicity groups from ``atomic`` blocks and locks.

Events carry their guard as a Bool term; the encoder lowers guards to CNF
literals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.encoding.formula import Term


class EventKind:
    """Event types: read, write, or a pure program-order anchor."""

    READ = "R"
    WRITE = "W"
    ANCHOR = "A"


@dataclass
class Event:
    """A shared-memory access event (or a PO anchor).

    Attributes:
        eid: unique id, dense from 0 (doubles as the event-graph node id).
        kind: :class:`EventKind` constant.
        addr: shared variable name (None for anchors).
        ssa_name: name of the SSA bit-vector variable holding the accessed
            value (None for anchors).
        thread: owning thread name ("main" for main-thread events).
        guard: Bool term; the event is enabled iff the guard holds.
        label: human-readable description used in witness traces.
        pos: source position ``(line, col)`` of the originating statement
            (None for synthesized events such as the init writes).
        stmt: originating AST statement, for source-located diagnostics
            (:mod:`repro.analysis` race warnings).
    """

    eid: int
    kind: str
    addr: Optional[str]
    ssa_name: Optional[str]
    thread: str
    guard: Term
    label: str = ""
    pos: Optional[Tuple[int, int]] = None
    stmt: Optional[object] = None

    @property
    def is_read(self) -> bool:
        return self.kind == EventKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind == EventKind.WRITE

    def __repr__(self) -> str:
        return f"<{self.eid}:{self.kind} {self.label or self.addr}>"


@dataclass
class ThreadEvents:
    """Events of one thread, in program order."""

    name: str
    events: List[Event] = field(default_factory=list)


@dataclass
class RmwGroup:
    """Atomicity requirement: no foreign write to ``addr`` may intervene
    between the write ``read_ev`` reads from and the write ``write_ev``."""

    addr: str
    read_eid: int
    write_eid: int


@dataclass
class SymbolicProgram:
    """Guarded SSA form + events of a bounded multi-threaded program."""

    width: int
    shared_inits: Dict[str, int] = field(default_factory=dict)
    threads: List[ThreadEvents] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    #: Program-order edges (eid pairs): intra-thread chains plus
    #: create/join anchor edges.  The transitive closure is implicit.
    po_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: Bool terms that must all hold (rho_va, assumes, init values).
    constraints: List[Term] = field(default_factory=list)
    #: Bool terms whose disjunction is the error condition (rho_err).
    error_disjuncts: List[Term] = field(default_factory=list)
    rmw_groups: List[RmwGroup] = field(default_factory=list)
    #: SSA variables introduced for ``nondet()`` and uninitialized locals.
    free_vars: List[str] = field(default_factory=list)
    #: Addresses declared as locks: their accesses are fence-like under
    #: weak memory models (lock/unlock carry full barriers).
    lock_addrs: List[str] = field(default_factory=list)
    #: Event ids of each ``atomic { ... }`` block, in program order (one
    #: list per block occurrence; lock desugarings are *not* included --
    #: they are tracked through ``rmw_groups`` + ``lock_addrs``).
    atomic_regions: List[List[int]] = field(default_factory=list)
    #: ``nondet()`` occurrences: ``(thread, ssa_name, guard)`` in static
    #: program order, for witness replay through the SMC interpreter.
    nondet_sites: List[Tuple[str, str, Term]] = field(default_factory=list)
    #: Loop-unwinding frontier conditions ``(iterations_done, cond)``: the
    #: loop condition term evaluated after ``iterations_done`` iterations
    #: of some loop (conjoined with its path guard).  Only populated when
    #: the front end runs with ``unwind_assumptions=True``; asserting
    #: ``not cond`` for every entry at a given depth yields exactly the
    #: bound-``depth`` unwinding assumption (iterative-deepening BMC).
    unwind_conds: List[Tuple[int, Term]] = field(default_factory=list)

    def event(self, eid: int) -> Event:
        return self.events[eid]

    def reads_of(self, addr: str) -> List[Event]:
        return [e for e in self.events if e.is_read and e.addr == addr]

    def writes_of(self, addr: str) -> List[Event]:
        return [e for e in self.events if e.is_write and e.addr == addr]

    @property
    def addresses(self) -> List[str]:
        return sorted(self.shared_inits)

    def memory_events(self) -> List[Event]:
        return [e for e in self.events if e.kind != EventKind.ANCHOR]

    def stats(self) -> Dict[str, int]:
        mem = self.memory_events()
        return {
            "events": len(mem),
            "reads": sum(1 for e in mem if e.is_read),
            "writes": sum(1 for e in mem if e.is_write),
            "threads": len(self.threads),
            "po_edges": len(self.po_edges),
        }
