"""Counterexample witness extraction.

After a SAT answer, the enabled events are linearized consistently with the
active edges of the event graph (any topological order of the accepted
partial order is a valid SC execution, by Axiom 3) and annotated with the
model values of their SSA variables.

Each step also records its event id and the trace carries the model's
``nondet()`` values (per thread, in static program order), so a witness is
replayable through the SMC interpreter
(:mod:`repro.smc.witness_replay`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.encoding import formula as F
from repro.ordering import EdgeKind

__all__ = ["TraceStep", "Trace", "extract_trace"]


@dataclass
class TraceStep:
    thread: str
    kind: str  # R / W
    addr: str
    value: int
    label: str = ""
    #: Event id in the symbolic program (-1 for steps built by hand).
    eid: int = -1

    def __str__(self) -> str:
        op = "read" if self.kind == "R" else "write"
        return f"{self.thread}: {op} {self.addr} = {self.value}"

    def to_dict(self) -> Dict:
        return {
            "thread": self.thread,
            "kind": self.kind,
            "addr": self.addr,
            "value": self.value,
            "label": self.label,
            "eid": self.eid,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TraceStep":
        return cls(
            thread=data["thread"],
            kind=data["kind"],
            addr=data["addr"],
            value=data["value"],
            label=data.get("label", ""),
            eid=data.get("eid", -1),
        )


@dataclass
class Trace:
    """A linearized counterexample execution."""

    steps: List[TraceStep] = field(default_factory=list)
    #: Model values of enabled ``nondet()`` occurrences as
    #: ``(thread, ssa_name, value)``, in static program order per thread.
    nondet_values: List[Tuple[str, str, int]] = field(default_factory=list)

    def __str__(self) -> str:
        lines = ["counterexample trace:"]
        lines += [f"  {i + 1:3d}. {s}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)

    def values_of(self, addr: str) -> List[int]:
        return [s.value for s in self.steps if s.addr == addr]

    def to_dict(self) -> Dict:
        """JSON-ready form (the service wire format); exact inverse of
        :meth:`from_dict` -- replayability of the witness survives the
        round-trip because step event ids and nondet values are kept."""
        return {
            "steps": [s.to_dict() for s in self.steps],
            "nondet_values": [list(t) for t in self.nondet_values],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Trace":
        return cls(
            steps=[TraceStep.from_dict(s) for s in data.get("steps", ())],
            nondet_values=[
                (t[0], t[1], t[2]) for t in data.get("nondet_values", ())
            ],
        )


class _ModelEnv(dict):
    """Formula-evaluation environment backed by the SAT model; variables
    the blaster never saw (unconstrained) default to 0."""

    def __init__(self, blaster) -> None:
        super().__init__()
        self._blaster = blaster

    def __missing__(self, name):
        try:
            value = self._blaster.bv_value(name)
        except Exception:
            try:
                value = self._blaster.bool_value(name)
            except Exception:
                value = 0
        self[name] = value
        return value


def extract_trace(encoded) -> Trace:
    """Build a witness from a satisfied :class:`EncodedProgram`."""
    sym = encoded.symbolic
    solver = encoded.solver
    graph = encoded.theory.graph

    enabled = []
    for ev in sym.memory_events():
        if solver.model_lit(encoded.guard_lits[ev.eid]):
            enabled.append(ev)
    # Guard-disabled events never reach the trace, but they can carry
    # spurious-yet-consistent RF/WS/FR edges (e.g. the IDL baseline's
    # upfront FR encoding leaves disabled-event atoms unconstrained).
    # Those must not constrain the order of the real steps: a disabled
    # group member forced adjacent, or a spurious chain through disabled
    # intermediates wrapped around a contracted region, can manufacture
    # a cycle that the (acyclic) full graph never had.  PO edges stay --
    # program order is static and holds regardless of enablement, and
    # dropping a disabled node's PO edges would sever real same-thread
    # and start/join ordering that routes through it.
    enabled_eids = {ev.eid for ev in enabled}
    disabled_eids = {
        ev.eid for ev in sym.memory_events() if ev.eid not in enabled_eids
    }
    order = _linearize(graph, _atomic_groups(sym), disabled=disabled_eids)
    enabled.sort(key=lambda ev: order[ev.eid])

    width = sym.width
    steps = []
    for ev in enabled:
        raw = encoded.blaster.bv_value(ev.ssa_name)
        if raw & (1 << (width - 1)):
            raw -= 1 << width  # display as signed
        steps.append(
            TraceStep(ev.thread, ev.kind, ev.addr, raw, ev.label, eid=ev.eid)
        )

    env = _ModelEnv(encoded.blaster)
    nondet_values: List[Tuple[str, str, int]] = []
    for thread, ssa_name, guard in getattr(sym, "nondet_sites", ()):
        try:
            if not F.evaluate(guard, env):
                continue  # the site was not reached in this execution
        except Exception:
            pass  # keep the value: a superfluous entry is harmless
        try:
            value = encoded.blaster.bv_value(ssa_name)
        except Exception:
            value = 0  # unconstrained nondet never blasted
        nondet_values.append((thread, ssa_name, value))
    return Trace(steps, nondet_values=nondet_values)


def _atomic_groups(sym) -> List[List[int]]:
    """Event-id groups that must stay adjacent in the linearization:
    lock-acquire RMW pairs and ``atomic`` regions (merged when they
    overlap)."""
    root: Dict[int, int] = {}

    def find(x: int) -> int:
        while root.get(x, x) != x:
            root[x] = root.get(root[x], root[x])
            x = root[x]
        return x

    seen: set = set()

    def union(members) -> None:
        members = list(members)
        seen.update(members)
        base = find(members[0])
        for m in members[1:]:
            root[find(m)] = base

    for group in getattr(sym, "rmw_groups", ()):
        union([group.read_eid, group.write_eid])
    for region in getattr(sym, "atomic_regions", ()):
        if len(region) > 1:
            union(list(region))
    buckets: Dict[int, List[int]] = {}
    for eid in seen:
        buckets.setdefault(find(eid), []).append(eid)
    return [sorted(b) for b in buckets.values() if len(b) > 1]


def _linearize(graph, groups=(), disabled=()) -> Dict[int, int]:
    """Topological order of the active event graph (Kahn).

    ``groups`` lists event ids that must come out *adjacent* (atomic
    regions and lock RMW pairs).  A plain topological sort may legally
    interleave an unordered outside read between a region's read and its
    write -- the partial order allows it, but the trace consumers (witness
    replay, and any reader of the printed trace) treat a region as one
    indivisible step.  Each group is contracted to a super-node before
    sorting; the RMW write-exclusion constraints guarantee no event is
    *ordered* strictly inside a group, so contraction can never create a
    cycle on an accepted event graph.

    ``disabled`` lists event ids whose *non-PO* edges must be ignored
    and which never join a contraction group.  Witness extraction passes
    the guard-disabled memory events here: their RF/WS/FR atoms can be
    set arbitrarily by the model (spurious but consistent, e.g. under
    IDL's upfront FR encoding), and such a chain wrapped around a
    contracted region would manufacture a cycle.  PO edges are kept even
    at disabled events -- program order is static and real, and severing
    it would lose same-thread and start/join ordering that routes
    through disabled nodes.
    """
    n = graph.n
    disabled = set(disabled)
    comp = list(range(n))
    members: Dict[int, List[int]] = {}
    for g in groups:
        g = [e for e in g if 0 <= e < n and e not in disabled]
        if len(g) < 2:
            continue
        base = min(g)
        for e in g:
            comp[e] = base
        members[base] = sorted(g)
    indeg: Dict[int, int] = {}
    out: Dict[int, List[int]] = {}
    for i in range(n):
        indeg.setdefault(comp[i], 0)
    for edges in graph.out:
        for e in edges:
            if e.kind != EdgeKind.PO and (e.src in disabled or e.dst in disabled):
                continue  # spurious atom on a never-executed event
            a, b = comp[e.src], comp[e.dst]
            if a != b:
                out.setdefault(a, []).append(b)
                indeg[b] += 1
    queue = [c for c, d in indeg.items() if d == 0]
    pos: Dict[int, int] = {}
    k = 0
    while queue:
        x = queue.pop()
        for eid in members.get(x, [x]):
            pos[eid] = k
            k += 1
        for b in out.get(x, ()):
            indeg[b] -= 1
            if indeg[b] == 0:
                queue.append(b)
    assert len(pos) == n, "accepted event graph must be acyclic"
    return pos
