"""Counterexample witness extraction.

After a SAT answer, the enabled events are linearized consistently with the
active edges of the event graph (any topological order of the accepted
partial order is a valid SC execution, by Axiom 3) and annotated with the
model values of their SSA variables.

Each step also records its event id and the trace carries the model's
``nondet()`` values (per thread, in static program order), so a witness is
replayable through the SMC interpreter
(:mod:`repro.smc.witness_replay`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.encoding import formula as F

__all__ = ["TraceStep", "Trace", "extract_trace"]


@dataclass
class TraceStep:
    thread: str
    kind: str  # R / W
    addr: str
    value: int
    label: str = ""
    #: Event id in the symbolic program (-1 for steps built by hand).
    eid: int = -1

    def __str__(self) -> str:
        op = "read" if self.kind == "R" else "write"
        return f"{self.thread}: {op} {self.addr} = {self.value}"


@dataclass
class Trace:
    """A linearized counterexample execution."""

    steps: List[TraceStep] = field(default_factory=list)
    #: Model values of enabled ``nondet()`` occurrences as
    #: ``(thread, ssa_name, value)``, in static program order per thread.
    nondet_values: List[Tuple[str, str, int]] = field(default_factory=list)

    def __str__(self) -> str:
        lines = ["counterexample trace:"]
        lines += [f"  {i + 1:3d}. {s}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)

    def values_of(self, addr: str) -> List[int]:
        return [s.value for s in self.steps if s.addr == addr]


class _ModelEnv(dict):
    """Formula-evaluation environment backed by the SAT model; variables
    the blaster never saw (unconstrained) default to 0."""

    def __init__(self, blaster) -> None:
        super().__init__()
        self._blaster = blaster

    def __missing__(self, name):
        try:
            value = self._blaster.bv_value(name)
        except Exception:
            try:
                value = self._blaster.bool_value(name)
            except Exception:
                value = 0
        self[name] = value
        return value


def extract_trace(encoded) -> Trace:
    """Build a witness from a satisfied :class:`EncodedProgram`."""
    sym = encoded.symbolic
    solver = encoded.solver
    graph = encoded.theory.graph

    order = _linearize(graph)
    enabled = []
    for ev in sym.memory_events():
        if solver.model_lit(encoded.guard_lits[ev.eid]):
            enabled.append(ev)
    enabled.sort(key=lambda ev: order[ev.eid])

    width = sym.width
    steps = []
    for ev in enabled:
        raw = encoded.blaster.bv_value(ev.ssa_name)
        if raw & (1 << (width - 1)):
            raw -= 1 << width  # display as signed
        steps.append(
            TraceStep(ev.thread, ev.kind, ev.addr, raw, ev.label, eid=ev.eid)
        )

    env = _ModelEnv(encoded.blaster)
    nondet_values: List[Tuple[str, str, int]] = []
    for thread, ssa_name, guard in getattr(sym, "nondet_sites", ()):
        try:
            if not F.evaluate(guard, env):
                continue  # the site was not reached in this execution
        except Exception:
            pass  # keep the value: a superfluous entry is harmless
        try:
            value = encoded.blaster.bv_value(ssa_name)
        except Exception:
            value = 0  # unconstrained nondet never blasted
        nondet_values.append((thread, ssa_name, value))
    return Trace(steps, nondet_values=nondet_values)


def _linearize(graph) -> Dict[int, int]:
    """Topological order of the active event graph (Kahn)."""
    n = graph.n
    indeg = [0] * n
    for edges in graph.out:
        for e in edges:
            indeg[e.dst] += 1
    queue = [i for i in range(n) if indeg[i] == 0]
    pos: Dict[int, int] = {}
    k = 0
    while queue:
        x = queue.pop()
        pos[x] = k
        k += 1
        for e in graph.out[x]:
            indeg[e.dst] -= 1
            if indeg[e.dst] == 0:
                queue.append(e.dst)
    assert len(pos) == n, "accepted event graph must be acyclic"
    return pos
