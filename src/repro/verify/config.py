"""Verifier configuration and the named tool presets used in the paper's
evaluation (Section 6)."""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, Tuple

__all__ = ["VerifierConfig", "PRESETS"]


def _schedule_from_env(unwind: int) -> Tuple[int, ...]:
    """Resolve ``REPRO_UNWIND_SCHEDULE``: ``1``/``true`` -> doubling
    schedule up to ``unwind``; a comma list -> explicit bounds; anything
    else -> one-shot."""
    raw = os.environ.get("REPRO_UNWIND_SCHEDULE", "").strip().lower()
    if not raw or raw in ("0", "false"):
        return ()
    if raw in ("1", "true"):
        bounds = []
        b = 1
        while b < unwind:
            bounds.append(b)
            b *= 2
        bounds.append(unwind)
        return tuple(bounds)
    try:
        return tuple(int(p) for p in raw.split(",") if p.strip())
    except ValueError:
        return ()


def _normalize_schedule(
    schedule: Optional[Tuple[int, ...]], unwind: int, engine: str
) -> Tuple[int, ...]:
    """Sorted unique bounds in ``1..unwind``, always ending at ``unwind``
    (so the deepest solve is exactly the one-shot problem).  Empty means
    one-shot; non-SMT engines are always one-shot."""
    if schedule is None:
        schedule = _schedule_from_env(unwind)
    if not schedule or engine != "smt":
        return ()
    bounds = sorted({int(b) for b in schedule})
    if bounds[0] < 1:
        raise ValueError(
            f"unwind_schedule bounds must be >= 1, got {bounds[0]}"
        )
    return tuple(b for b in bounds if b < unwind) + (unwind,)


@dataclass(frozen=True)
class VerifierConfig:
    """Configuration of the verification engine.

    Attributes:
        name: display name (filled by the presets).
        engine: ``"smt"`` (partial-order BMC via DPLL(T)), ``"closure"``
            (pure-SAT transitive-closure encoding, the Dartagnan-style
            baseline), ``"explicit"`` (explicit-state search, the
            CPA-Seq-style baseline), ``"lazyseq"`` (bounded round-robin
            sequentialization, the Lazy-CSeq-style baseline), or one of the
            stateless model checkers ``"smc-rfsc"`` / ``"smc-genmc"``.
        theory: for the SMT engine: ``"ord"`` (the paper's T_ord solver) or
            ``"idl"`` (clock-difference encoding, the CBMC-style baseline).
        detector: cycle detection inside T_ord: ``"icd"`` or ``"tarjan"``.
        unit_edge: unit-edge theory propagation (False = Zord′).
        fr_encoding: encode rho_fr in the formula and disable from-read
            propagation (True = Zord⁻; always True for theory="idl").
        unwind: loop unrolling bound.
        width: bit-width of program integers.
        memory_model: ``"sc"`` (the paper's setting), ``"tso"`` or
            ``"pso"`` (the weak-memory extension; SMT engines only).
        rounds: round-robin rounds for the lazyseq engine.
        max_conflict_clauses: cap per theory conflict.
        time_limit_s: wall-clock budget; exceeded -> UNKNOWN.  Honored by
            every engine (the deadline covers frontend, encoding, theory
            and solve phases, not just the SAT core).
        max_conflicts: conflict budget for the SAT core (reused as the
            exploration budget by the explicit/sequentialized/stateless
            engines); exceeded -> UNKNOWN.
        memory_limit_mb: cap on resident-set growth during the run;
            exceeded -> UNKNOWN (see :mod:`repro.robustness.budget`).
        max_events: cap on the event-graph size the frontend may produce;
            exceeded -> UNKNOWN before the encoder commits to a
            quadratic/cubic encoding.
        prune_level: static-analysis encoding pruning for the ``ord``
            theory (see :mod:`repro.analysis.prune`): 0 = off, 1 = the
            program-order and guard-shadow rules, 2 = + the lock-value
            rule.  ``None`` (the default) resolves to the ``REPRO_PRUNE``
            environment variable, falling back to 2.  Pruning only skips
            ordering variables that are false in every model, so verdicts
            are identical at every level.
        unwind_schedule: iterative-deepening BMC bound schedule (SMT
            engines only).  ``None`` (the default) resolves to the
            ``REPRO_UNWIND_SCHEDULE`` environment variable: unset/empty/
            ``"0"`` means one-shot solving at ``unwind``; ``"1"``/
            ``"true"`` means a doubling schedule ``1, 2, 4, ..., unwind``;
            a comma-separated list gives explicit bounds.  ``()`` forces
            one-shot regardless of the environment.  A non-empty schedule
            is normalized to sorted unique bounds in ``1..unwind`` and
            always ends at ``unwind``, so the verdict is identical to the
            one-shot run by construction (see ``docs/INCREMENTAL.md``).
        fallbacks: preset names retried, in order, when an attempt crashes
            or exhausts its budget (see :mod:`repro.robustness.fallback`).
            All attempts share one wall-clock deadline.
        trace_jsonl: when set, stream a JSONL telemetry event trace to this
            path while the engine runs (see :mod:`repro.verify.telemetry`).
        audit: debug-mode invariant auditing of the SAT core and the
            T_ord theory solver (see :mod:`repro.oracle.audit`): per-step
            checks of ICD label consistency, theory trail/index sync,
            conflict-clause falsification and unsat-core validity.  An
            invariant violation raises
            :class:`~repro.oracle.audit.AuditError` (contained by the
            crash guard as an ``ERROR`` verdict).  ``None`` (the default)
            resolves to the ``REPRO_AUDIT`` environment variable, falling
            back to off.  Verdicts are unaffected; expect a significant
            slowdown when enabled.

    The engine/theory/detector/memory-model combination is validated at
    construction against :mod:`repro.verify.registry`; unknown or
    unsupported combinations raise :class:`ValueError` immediately with
    the registered alternatives.
    """

    name: str = "zord"
    engine: str = "smt"
    theory: str = "ord"
    detector: str = "icd"
    unit_edge: bool = True
    fr_encoding: bool = False
    unwind: int = 8
    width: int = 8
    memory_model: str = "sc"
    #: Round-robin rounds for the lazyseq engine.  4 covers the bug depths
    #: of the benchmark suites; like the original tool, SAFE means "no
    #: violation within the round bound".
    rounds: int = 4
    max_conflict_clauses: int = 8
    time_limit_s: Optional[float] = None
    max_conflicts: Optional[int] = None
    memory_limit_mb: Optional[float] = None
    max_events: Optional[int] = None
    prune_level: Optional[int] = None
    unwind_schedule: Optional[Tuple[int, ...]] = None
    fallbacks: Tuple[str, ...] = ()
    trace_jsonl: Optional[str] = None
    audit: Optional[bool] = None

    def __post_init__(self) -> None:
        from repro.verify import registry

        if not isinstance(self.fallbacks, tuple):
            object.__setattr__(self, "fallbacks", tuple(self.fallbacks))
        if self.audit is None:
            from repro.oracle.audit import audit_enabled

            object.__setattr__(self, "audit", audit_enabled())
        else:
            object.__setattr__(self, "audit", bool(self.audit))
        if self.prune_level is None:
            try:
                level = int(os.environ.get("REPRO_PRUNE", "2"))
            except ValueError:
                level = 2
            object.__setattr__(self, "prune_level", level)
        if not 0 <= self.prune_level <= 2:
            raise ValueError(
                f"prune_level must be 0..2, got {self.prune_level!r}"
            )
        object.__setattr__(
            self,
            "unwind_schedule",
            _normalize_schedule(self.unwind_schedule, self.unwind, self.engine),
        )
        registry.validate_config(self)

    # ------------------------------------------------------------------
    # Presets (the tools compared in Section 6)
    # ------------------------------------------------------------------

    @staticmethod
    def presets() -> Dict[str, Callable[..., "VerifierConfig"]]:
        """The preset table: display name -> factory.  The CLI derives its
        ``--engine``/``--portfolio`` choices from this single source."""
        return dict(PRESETS)

    @staticmethod
    def zord(**kw) -> "VerifierConfig":
        """The paper's tool: T_ord with ICD, unit-edge and FR propagation."""
        return VerifierConfig(name="zord", **kw)

    @staticmethod
    def zord_minus(**kw) -> "VerifierConfig":
        """Zord⁻: all FR constraints encoded upfront (Fig. 8 ablation)."""
        return VerifierConfig(name="zord-", fr_encoding=True, **kw)

    @staticmethod
    def zord_prime(**kw) -> "VerifierConfig":
        """Zord′: unit-edge propagation disabled (Fig. 9 ablation)."""
        return VerifierConfig(name="zord'", unit_edge=False, **kw)

    @staticmethod
    def zord_tarjan(**kw) -> "VerifierConfig":
        """Zord with fresh non-incremental cycle detection (Fig. 10)."""
        return VerifierConfig(name="zord-tarjan", detector="tarjan", **kw)

    @staticmethod
    def cbmc(**kw) -> "VerifierConfig":
        """CBMC-style baseline: clock-difference (IDL) ordering theory with
        all FR constraints encoded and non-incremental consistency checks."""
        return VerifierConfig(name="cbmc", theory="idl", fr_encoding=True, **kw)

    @staticmethod
    def dartagnan(**kw) -> "VerifierConfig":
        """Dartagnan-style baseline: pure-SAT relational encoding with an
        explicit transitive-closure axiomatization (no theory solver)."""
        return VerifierConfig(name="dartagnan", engine="closure", **kw)

    @staticmethod
    def cpa_seq(**kw) -> "VerifierConfig":
        """CPA-Seq-style baseline: explicit-state reachability."""
        return VerifierConfig(name="cpa-seq", engine="explicit", **kw)

    @staticmethod
    def lazy_cseq(**kw) -> "VerifierConfig":
        """Lazy-CSeq-style baseline: bounded round-robin sequentialization."""
        return VerifierConfig(name="lazy-cseq", engine="lazyseq", **kw)

    @staticmethod
    def nidhugg_rfsc(**kw) -> "VerifierConfig":
        """Nidhugg/rfsc-style stateless model checking (rf equivalence)."""
        return VerifierConfig(name="nidhugg-rfsc", engine="smc-rfsc", **kw)

    @staticmethod
    def genmc(**kw) -> "VerifierConfig":
        """GenMC-style stateless model checking (execution graphs)."""
        return VerifierConfig(name="genmc", engine="smc-genmc", **kw)

    def with_(self, **kw) -> "VerifierConfig":
        return replace(self, **kw)


#: The named tool presets of the Section 6 evaluation, keyed by display
#: name.  Single source of truth for the CLI and the portfolio runner.
PRESETS: Dict[str, Callable[..., VerifierConfig]] = {
    "zord": VerifierConfig.zord,
    "zord-": VerifierConfig.zord_minus,
    "zord'": VerifierConfig.zord_prime,
    "zord-tarjan": VerifierConfig.zord_tarjan,
    "cbmc": VerifierConfig.cbmc,
    "dartagnan": VerifierConfig.dartagnan,
    "cpa-seq": VerifierConfig.cpa_seq,
    "lazy-cseq": VerifierConfig.lazy_cseq,
    "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
    "genmc": VerifierConfig.genmc,
}
