"""Verifier configuration and the named tool presets used in the paper's
evaluation (Section 6)."""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

__all__ = ["VerifierConfig", "PRESETS", "ENV_VARS", "env_overrides"]


def _schedule_from_env(unwind: int) -> Tuple[int, ...]:
    """Resolve ``REPRO_UNWIND_SCHEDULE``: ``1``/``true`` -> doubling
    schedule up to ``unwind``; a comma list -> explicit bounds; anything
    else -> one-shot."""
    raw = os.environ.get("REPRO_UNWIND_SCHEDULE", "").strip().lower()
    if not raw or raw in ("0", "false"):
        return ()
    if raw in ("1", "true"):
        bounds = []
        b = 1
        while b < unwind:
            bounds.append(b)
            b *= 2
        bounds.append(unwind)
        return tuple(bounds)
    try:
        return tuple(int(p) for p in raw.split(",") if p.strip())
    except ValueError:
        return ()


def _normalize_schedule(
    schedule: Optional[Tuple[int, ...]], unwind: int, engine: str
) -> Tuple[int, ...]:
    """Sorted unique bounds in ``1..unwind``, always ending at ``unwind``
    (so the deepest solve is exactly the one-shot problem).  Empty means
    one-shot; non-SMT engines are always one-shot."""
    if schedule is None:
        schedule = _schedule_from_env(unwind)
    if not schedule or engine != "smt":
        return ()
    bounds = sorted({int(b) for b in schedule})
    if bounds[0] < 1:
        raise ValueError(
            f"unwind_schedule bounds must be >= 1, got {bounds[0]}"
        )
    return tuple(b for b in bounds if b < unwind) + (unwind,)


@dataclass(frozen=True)
class VerifierConfig:
    """Configuration of the verification engine.

    Attributes:
        name: display name (filled by the presets).
        engine: ``"smt"`` (partial-order BMC via DPLL(T)), ``"closure"``
            (pure-SAT transitive-closure encoding, the Dartagnan-style
            baseline), ``"explicit"`` (explicit-state search, the
            CPA-Seq-style baseline), ``"lazyseq"`` (bounded round-robin
            sequentialization, the Lazy-CSeq-style baseline), or one of the
            stateless model checkers ``"smc-rfsc"`` / ``"smc-genmc"``.
        theory: for the SMT engine: ``"ord"`` (the paper's T_ord solver) or
            ``"idl"`` (clock-difference encoding, the CBMC-style baseline).
        detector: cycle detection inside T_ord: ``"icd"`` or ``"tarjan"``.
        unit_edge: unit-edge theory propagation (False = Zord′).
        fr_encoding: encode rho_fr in the formula and disable from-read
            propagation (True = Zord⁻; always True for theory="idl").
        unwind: loop unrolling bound.
        width: bit-width of program integers.
        memory_model: ``"sc"`` (the paper's setting), ``"tso"`` or
            ``"pso"`` (the weak-memory extension; SMT engines only).
        rounds: round-robin rounds for the lazyseq engine.
        max_conflict_clauses: cap per theory conflict.
        time_limit_s: wall-clock budget; exceeded -> UNKNOWN.  Honored by
            every engine (the deadline covers frontend, encoding, theory
            and solve phases, not just the SAT core).
        max_conflicts: conflict budget for the SAT core (reused as the
            exploration budget by the explicit/sequentialized/stateless
            engines); exceeded -> UNKNOWN.
        memory_limit_mb: cap on resident-set growth during the run;
            exceeded -> UNKNOWN (see :mod:`repro.robustness.budget`).
        max_events: cap on the event-graph size the frontend may produce;
            exceeded -> UNKNOWN before the encoder commits to a
            quadratic/cubic encoding.
        prune_level: static-analysis encoding pruning for the ``ord``
            theory (see :mod:`repro.analysis.prune`): 0 = off, 1 = the
            program-order and guard-shadow rules, 2 = + the lock-value
            rule.  ``None`` (the default) resolves to the ``REPRO_PRUNE``
            environment variable, falling back to 2.  Pruning only skips
            ordering variables that are false in every model, so verdicts
            are identical at every level.
        unwind_schedule: iterative-deepening BMC bound schedule (SMT
            engines only).  ``None`` (the default) resolves to the
            ``REPRO_UNWIND_SCHEDULE`` environment variable: unset/empty/
            ``"0"`` means one-shot solving at ``unwind``; ``"1"``/
            ``"true"`` means a doubling schedule ``1, 2, 4, ..., unwind``;
            a comma-separated list gives explicit bounds.  ``()`` forces
            one-shot regardless of the environment.  A non-empty schedule
            is normalized to sorted unique bounds in ``1..unwind`` and
            always ends at ``unwind``, so the verdict is identical to the
            one-shot run by construction (see ``docs/INCREMENTAL.md``).
        fallbacks: preset names retried, in order, when an attempt crashes
            or exhausts its budget (see :mod:`repro.robustness.fallback`).
            All attempts share one wall-clock deadline.
        trace_jsonl: when set, stream a JSONL telemetry event trace to this
            path while the engine runs (see :mod:`repro.verify.telemetry`).
        audit: debug-mode invariant auditing of the SAT core and the
            T_ord theory solver (see :mod:`repro.oracle.audit`): per-step
            checks of ICD label consistency, theory trail/index sync,
            conflict-clause falsification and unsat-core validity.  An
            invariant violation raises
            :class:`~repro.oracle.audit.AuditError` (contained by the
            crash guard as an ``ERROR`` verdict).  ``None`` (the default)
            resolves to the ``REPRO_AUDIT`` environment variable, falling
            back to off.  Verdicts are unaffected; expect a significant
            slowdown when enabled.

    The engine/theory/detector/memory-model combination is validated at
    construction against :mod:`repro.verify.registry`; unknown or
    unsupported combinations raise :class:`ValueError` immediately with
    the registered alternatives.
    """

    name: str = "zord"
    engine: str = "smt"
    theory: str = "ord"
    detector: str = "icd"
    unit_edge: bool = True
    fr_encoding: bool = False
    unwind: int = 8
    width: int = 8
    memory_model: str = "sc"
    #: Round-robin rounds for the lazyseq engine.  4 covers the bug depths
    #: of the benchmark suites; like the original tool, SAFE means "no
    #: violation within the round bound".
    rounds: int = 4
    max_conflict_clauses: int = 8
    time_limit_s: Optional[float] = None
    max_conflicts: Optional[int] = None
    memory_limit_mb: Optional[float] = None
    max_events: Optional[int] = None
    prune_level: Optional[int] = None
    unwind_schedule: Optional[Tuple[int, ...]] = None
    fallbacks: Tuple[str, ...] = ()
    trace_jsonl: Optional[str] = None
    audit: Optional[bool] = None

    def __post_init__(self) -> None:
        from repro.verify import registry

        if not isinstance(self.fallbacks, tuple):
            object.__setattr__(self, "fallbacks", tuple(self.fallbacks))
        if self.audit is None:
            from repro.oracle.audit import audit_enabled

            object.__setattr__(self, "audit", audit_enabled())
        else:
            object.__setattr__(self, "audit", bool(self.audit))
        if self.prune_level is None:
            try:
                level = int(os.environ.get("REPRO_PRUNE", "2"))
            except ValueError:
                level = 2
            object.__setattr__(self, "prune_level", level)
        if not 0 <= self.prune_level <= 2:
            raise ValueError(
                f"prune_level must be 0..2, got {self.prune_level!r}"
            )
        object.__setattr__(
            self,
            "unwind_schedule",
            _normalize_schedule(self.unwind_schedule, self.unwind, self.engine),
        )
        registry.validate_config(self)

    # ------------------------------------------------------------------
    # Presets (the tools compared in Section 6)
    # ------------------------------------------------------------------

    @staticmethod
    def presets() -> Dict[str, Callable[..., "VerifierConfig"]]:
        """The preset table: display name -> factory.  The CLI derives its
        ``--engine``/``--portfolio`` choices from this single source."""
        return dict(PRESETS)

    @staticmethod
    def zord(**kw) -> "VerifierConfig":
        """The paper's tool: T_ord with ICD, unit-edge and FR propagation."""
        return VerifierConfig(name="zord", **kw)

    @staticmethod
    def zord_minus(**kw) -> "VerifierConfig":
        """Zord⁻: all FR constraints encoded upfront (Fig. 8 ablation)."""
        return VerifierConfig(name="zord-", fr_encoding=True, **kw)

    @staticmethod
    def zord_prime(**kw) -> "VerifierConfig":
        """Zord′: unit-edge propagation disabled (Fig. 9 ablation)."""
        return VerifierConfig(name="zord'", unit_edge=False, **kw)

    @staticmethod
    def zord_tarjan(**kw) -> "VerifierConfig":
        """Zord with fresh non-incremental cycle detection (Fig. 10)."""
        return VerifierConfig(name="zord-tarjan", detector="tarjan", **kw)

    @staticmethod
    def cbmc(**kw) -> "VerifierConfig":
        """CBMC-style baseline: clock-difference (IDL) ordering theory with
        all FR constraints encoded and non-incremental consistency checks."""
        return VerifierConfig(name="cbmc", theory="idl", fr_encoding=True, **kw)

    @staticmethod
    def dartagnan(**kw) -> "VerifierConfig":
        """Dartagnan-style baseline: pure-SAT relational encoding with an
        explicit transitive-closure axiomatization (no theory solver)."""
        return VerifierConfig(name="dartagnan", engine="closure", **kw)

    @staticmethod
    def cpa_seq(**kw) -> "VerifierConfig":
        """CPA-Seq-style baseline: explicit-state reachability."""
        return VerifierConfig(name="cpa-seq", engine="explicit", **kw)

    @staticmethod
    def lazy_cseq(**kw) -> "VerifierConfig":
        """Lazy-CSeq-style baseline: bounded round-robin sequentialization."""
        return VerifierConfig(name="lazy-cseq", engine="lazyseq", **kw)

    @staticmethod
    def nidhugg_rfsc(**kw) -> "VerifierConfig":
        """Nidhugg/rfsc-style stateless model checking (rf equivalence)."""
        return VerifierConfig(name="nidhugg-rfsc", engine="smc-rfsc", **kw)

    @staticmethod
    def genmc(**kw) -> "VerifierConfig":
        """GenMC-style stateless model checking (execution graphs)."""
        return VerifierConfig(name="genmc", engine="smc-genmc", **kw)

    def with_(self, **kw) -> "VerifierConfig":
        return replace(self, **kw)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready field dict; the exact inverse of :meth:`from_dict`.

        Env-resolved knobs (``prune_level``, ``audit``, ``unwind_schedule``)
        are emitted in their *resolved* form, so a config shipped to a
        verification server behaves identically there regardless of the
        server's environment.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerifierConfig":
        """Rebuild a config from :meth:`to_dict` output (JSON lists are
        coerced back to tuples).

        A ``"preset"`` key selects a factory from :data:`PRESETS` with the
        remaining keys as overrides -- the wire form clients use to say
        "zord, but with this unwind".  Unknown keys raise ``ValueError``
        (a typoed knob silently ignored would verify the wrong thing).
        """
        kw = dict(data)
        preset = kw.pop("preset", None)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(kw) - known)
        if unknown:
            raise ValueError(
                f"unknown VerifierConfig field(s) {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        for key in ("fallbacks", "unwind_schedule"):
            if kw.get(key) is not None:
                kw[key] = tuple(kw[key])
        if preset is not None:
            if preset not in PRESETS:
                raise ValueError(
                    f"unknown preset {preset!r}; available: "
                    f"{', '.join(sorted(PRESETS))}"
                )
            kw.pop("name", None)  # the factory owns the display name
            try:
                return PRESETS[preset](**kw)
            except TypeError as exc:
                # e.g. overriding a knob the preset factory pins itself
                raise ValueError(f"preset {preset!r}: {exc}") from None
        return cls(**kw)


# ----------------------------------------------------------------------
# Environment knob inventory
# ----------------------------------------------------------------------

#: Every ``REPRO_*`` environment variable the code base reads, with a
#: one-line contract.  :func:`env_overrides` is the single documented
#: reader; ``tests/service/test_env_overrides.py`` greps the source tree
#: and fails when a knob ships without an inventory row here.
ENV_VARS: Dict[str, str] = {
    "REPRO_PRUNE": (
        "static-analysis encoding pruning level 0..2 "
        "(VerifierConfig.prune_level default; invalid -> 2)"
    ),
    "REPRO_UNWIND_SCHEDULE": (
        "iterative-deepening BMC schedule: 1/true = doubling to the "
        "unwind bound, comma list = explicit bounds, unset/0 = one-shot "
        "(VerifierConfig.unwind_schedule default)"
    ),
    "REPRO_AUDIT": (
        "1/true/yes/on arms the SAT-core/theory invariant auditor "
        "(VerifierConfig.audit default; see repro.oracle.audit)"
    ),
    "REPRO_FAULTS": (
        "deterministic fault injection, comma list of ACTION@CHECKPOINT"
        "[:ARG] specs (see repro.robustness.faults; propagates to forked "
        "workers)"
    ),
    "REPRO_BENCH_JOBS": (
        "worker processes for the benchmark engine grids "
        "(benchmarks/conftest.py; 1 = serial, the default)"
    ),
    "REPRO_SERVER": (
        "address of a running verification service (HOST:PORT); when set, "
        "repro.api.verify routes jobs through it instead of solving "
        "in-process (see docs/SERVICE.md)"
    ),
    "REPRO_CACHE_DIR": (
        "directory for the service's persistent verdict cache and job "
        "checkpoints (repro serve --cache-dir default; unset = in-memory "
        "cache only, see docs/SERVICE.md)"
    ),
}

_TRUTHY = ("1", "true", "yes", "on")


def env_overrides(
    environ: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Read every documented ``REPRO_*`` knob from ``environ`` (default:
    ``os.environ``) into one dict, parsed the way its consumer parses it.

    Returns a dict with exactly the keys of :data:`ENV_VARS`; unset knobs
    map to ``None``.  Parsed values:

    * ``REPRO_PRUNE`` -> ``int`` (invalid text falls back to 2, matching
      :class:`VerifierConfig`);
    * ``REPRO_UNWIND_SCHEDULE`` -> ``"doubling"``, a bound tuple, or
      ``None`` for off/unset;
    * ``REPRO_AUDIT`` -> ``bool``;
    * ``REPRO_FAULTS`` -> tuple of fault-spec strings;
    * ``REPRO_BENCH_JOBS`` -> ``int``;
    * ``REPRO_SERVER`` -> the address string, stripped;
    * ``REPRO_CACHE_DIR`` -> the directory path, stripped.
    """
    env = os.environ if environ is None else environ

    def raw(name: str) -> Optional[str]:
        value = env.get(name)
        if value is None or not value.strip():
            return None
        return value.strip()

    out: Dict[str, Any] = dict.fromkeys(ENV_VARS)
    prune = raw("REPRO_PRUNE")
    if prune is not None:
        try:
            out["REPRO_PRUNE"] = int(prune)
        except ValueError:
            out["REPRO_PRUNE"] = 2
    schedule = raw("REPRO_UNWIND_SCHEDULE")
    if schedule is not None:
        lowered = schedule.lower()
        if lowered in ("0", "false"):
            out["REPRO_UNWIND_SCHEDULE"] = None
        elif lowered in ("1", "true"):
            out["REPRO_UNWIND_SCHEDULE"] = "doubling"
        else:
            try:
                out["REPRO_UNWIND_SCHEDULE"] = tuple(
                    int(p) for p in schedule.split(",") if p.strip()
                )
            except ValueError:
                out["REPRO_UNWIND_SCHEDULE"] = None
    audit = raw("REPRO_AUDIT")
    if audit is not None:
        out["REPRO_AUDIT"] = audit.lower() in _TRUTHY
    faults = raw("REPRO_FAULTS")
    if faults is not None:
        out["REPRO_FAULTS"] = tuple(
            p.strip() for p in faults.split(",") if p.strip()
        )
    jobs = raw("REPRO_BENCH_JOBS")
    if jobs is not None:
        try:
            out["REPRO_BENCH_JOBS"] = int(jobs)
        except ValueError:
            out["REPRO_BENCH_JOBS"] = 1
    out["REPRO_SERVER"] = raw("REPRO_SERVER")
    out["REPRO_CACHE_DIR"] = raw("REPRO_CACHE_DIR")
    return out


#: The named tool presets of the Section 6 evaluation, keyed by display
#: name.  Single source of truth for the CLI and the portfolio runner.
PRESETS: Dict[str, Callable[..., VerifierConfig]] = {
    "zord": VerifierConfig.zord,
    "zord-": VerifierConfig.zord_minus,
    "zord'": VerifierConfig.zord_prime,
    "zord-tarjan": VerifierConfig.zord_tarjan,
    "cbmc": VerifierConfig.cbmc,
    "dartagnan": VerifierConfig.dartagnan,
    "cpa-seq": VerifierConfig.cpa_seq,
    "lazy-cseq": VerifierConfig.lazy_cseq,
    "nidhugg-rfsc": VerifierConfig.nidhugg_rfsc,
    "genmc": VerifierConfig.genmc,
}
