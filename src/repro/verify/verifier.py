"""The top-level verifier: parse → unroll/SSA → registry-resolved engine →
verdict.

Engine selection goes through :mod:`repro.verify.registry`: ``config.engine``
names a registered engine whose runner is resolved lazily; the SMT engine
resolves its ordering theory (``"ord"`` / ``"idl"``) through the theory
registry the same way.  There is no string-dispatch chain here -- new
engines plug in via :func:`repro.verify.registry.register_engine`.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Optional, Union

from repro.frontend import build_symbolic_program
from repro.lang import ast, parse
from repro.sat import SolveResult
from repro.verify import registry
from repro.verify.config import VerifierConfig
from repro.verify.result import Verdict, VerificationResult
from repro.verify.telemetry import TraceWriter, attach_telemetry, normalize_stats
from repro.verify.witness import extract_trace

__all__ = ["verify", "run_smt_engine"]


def verify(
    program: Union[str, ast.Program],
    config: Optional[VerifierConfig] = None,
    measure_memory: bool = False,
) -> VerificationResult:
    """Verify ``program`` within the bounds under the configured engine.

    Args:
        program: source text or a parsed AST.
        config: engine/ablation selection (see :class:`VerifierConfig`);
            defaults to the Zord preset.
        measure_memory: trace peak allocation (slower; used by the
            benchmark harness for the paper's memory columns).

    Returns:
        A :class:`VerificationResult`; ``verdict`` is ``SAFE`` if no
        assertion can be violated within the unrolling bound, ``UNSAFE``
        (with a witness trace where the engine produces one) otherwise,
        ``UNKNOWN`` on budget exhaustion.  ``stats`` is normalized: the
        canonical counters of :data:`repro.verify.telemetry.STAT_KEYS`
        are always present.
    """
    if config is None:
        config = VerifierConfig()
    if isinstance(program, str):
        program = parse(program)
    runner = registry.resolve_engine(config.engine)
    writer = TraceWriter(config.trace_jsonl) if config.trace_jsonl else None
    start = time.monotonic()
    if writer is not None:
        writer.emit("verify_start", engine=config.engine, config=config.name)
    if measure_memory:
        tracemalloc.start()
    result: Optional[VerificationResult] = None
    try:
        result = runner(program, config, telemetry=writer)
    finally:
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
        if writer is not None and result is None:  # engine raised
            writer.close()
    result.peak_memory_bytes = peak
    result.wall_time_s = time.monotonic() - start
    result.stats = normalize_stats(result.stats)
    result.trace_path = config.trace_jsonl
    if writer is not None:
        writer.emit(
            "verify_end",
            verdict=result.verdict,
            wall_time_s=round(result.wall_time_s, 6),
        )
        writer.close()
    return result


def run_smt_engine(
    program: ast.Program,
    config: VerifierConfig,
    telemetry: Optional[TraceWriter] = None,
) -> VerificationResult:
    """The DPLL(T) BMC engine: SSA, theory-registry encode, CDCL solve,
    witness extraction.  Registered under engine name ``"smt"``."""
    t0 = time.monotonic()
    sym = build_symbolic_program(program, unwind=config.unwind, width=config.width)
    t_frontend = time.monotonic() - t0

    encode = registry.resolve_theory(config.theory)
    t1 = time.monotonic()
    encoded = encode(sym, config)
    t_encode = time.monotonic() - t1
    if telemetry is not None:
        telemetry.emit("phase", name="frontend", wall_s=round(t_frontend, 6))
        telemetry.emit("phase", name="encode", wall_s=round(t_encode, 6))
        attach_telemetry(encoded, telemetry)

    if encoded.trivially_safe:
        return VerificationResult(Verdict.SAFE, config.name)

    t2 = time.monotonic()
    answer = encoded.solver.solve(
        max_conflicts=config.max_conflicts, time_limit_s=config.time_limit_s
    )
    t_solve = time.monotonic() - t2
    stats = dict(encoded.solver.stats.as_dict())
    theory_stats = getattr(encoded.theory, "stats", None)
    if theory_stats is not None:
        stats.update({f"theory_{k}": v for k, v in theory_stats.as_dict().items()})
    stats["rf_vars"] = encoded.stats.rf_vars
    stats["ws_vars"] = encoded.stats.ws_vars
    stats["fr_vars"] = encoded.stats.fr_vars
    stats["sat_vars"] = encoded.stats.sat_vars
    stats["time_frontend_s"] = round(t_frontend, 6)
    stats["time_encode_s"] = round(t_encode, 6)
    stats["time_solve_s"] = round(t_solve, 6)

    if answer == SolveResult.UNKNOWN:
        return VerificationResult(Verdict.UNKNOWN, config.name, stats=stats)
    if answer == SolveResult.UNSAT:
        return VerificationResult(Verdict.SAFE, config.name, stats=stats)
    t3 = time.monotonic()
    witness = extract_trace(encoded)
    if telemetry is not None:
        telemetry.emit("phase", name="witness", wall_s=round(time.monotonic() - t3, 6))
    return VerificationResult(
        Verdict.UNSAFE, config.name, witness=witness, stats=stats
    )
