"""The top-level verifier: parse → unroll/SSA → registry-resolved engine →
verdict, under resource governance.

Engine selection goes through :mod:`repro.verify.registry`: ``config.engine``
names a registered engine whose runner is resolved lazily; the SMT engine
resolves its ordering theory (``"ord"`` / ``"idl"``) through the theory
registry the same way.

Every run is resource-governed (:mod:`repro.robustness`): a
:class:`~repro.robustness.budget.Budget` is created once per
:func:`verify` call and cooperatively checked in every pipeline layer;
engine execution is wrapped in the crash guard, so budget exhaustion
comes back as a structured ``UNKNOWN`` (phase + limit + partial stats)
and an engine crash as an ``ERROR`` result with a captured diagnostic --
never an uncaught exception.  ``config.fallbacks`` chains additional
presets that are retried, within the same deadline, when an attempt is
not conclusive.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Optional, Union

from repro.frontend import build_symbolic_program
from repro.lang import ast, parse
from repro.robustness import active_budget, checkpoint, effective_time_limit
from repro.robustness.budget import Budget
from repro.robustness.fallback import Attempt, resolve_chain
from repro.robustness.guard import run_guarded
from repro.sat import SolveResult
from repro.sat import sharing as _sharing
from repro.verify import registry
from repro.verify.config import VerifierConfig
from repro.verify.result import Verdict, VerificationResult
from repro.verify.telemetry import TraceWriter, attach_telemetry, normalize_stats
from repro.verify.witness import extract_trace

__all__ = ["verify_one", "run_smt_engine"]

_CONCLUSIVE = (Verdict.SAFE, Verdict.UNSAFE)


def verify_one(
    program: Union[str, ast.Program],
    config: Optional[VerifierConfig] = None,
    measure_memory: bool = False,
) -> VerificationResult:
    """Verify ``program`` within the bounds under the configured engine.

    Args:
        program: source text or a parsed AST.  Parse/semantic errors raise
            (they are input errors, not engine failures).
        config: engine/ablation selection (see :class:`VerifierConfig`);
            defaults to the Zord preset.
        measure_memory: trace peak allocation (slower; used by the
            benchmark harness for the paper's memory columns).

    Returns:
        A :class:`VerificationResult`; ``verdict`` is ``SAFE`` if no
        assertion can be violated within the unrolling bound, ``UNSAFE``
        (with a witness trace where the engine produces one) otherwise,
        ``UNKNOWN`` on budget exhaustion (``stats`` then carries
        ``budget_limit`` / ``budget_phase``), or ``ERROR`` when the
        engine crashed (``diagnostic`` carries the captured summary).
        ``stats`` is normalized: the canonical counters of
        :data:`repro.verify.telemetry.STAT_KEYS` are always present.
        When ``config.fallbacks`` is set, ``attempts`` records every
        attempt of the chain.
    """
    if config is None:
        config = VerifierConfig()
    if isinstance(program, str):
        program = parse(program)
    # Semantic errors are input errors, not engine failures: check before
    # entering the crash-contained attempt chain so they raise.
    from repro.lang.sema import check_program

    check_program(program)
    budget = Budget.from_config(config)
    chain = resolve_chain(config)
    attempts = []
    result: Optional[VerificationResult] = None
    with active_budget(budget):
        for i, (cfg, skipped) in enumerate(chain):
            if cfg is None:
                attempts.append(skipped)
                continue
            if i > 0 and config.trace_jsonl:
                cfg = cfg.with_(
                    trace_jsonl=f"{config.trace_jsonl}.fallback{i}-{cfg.name}"
                )
            result = _verify_attempt(program, cfg, measure_memory, budget)
            if result.verdict in _CONCLUSIVE:
                status = "conclusive"
            elif result.verdict == Verdict.ERROR:
                status = "error"
            else:
                status = "unknown"
            attempts.append(
                Attempt(
                    cfg.name, cfg.engine, status, result.verdict,
                    result.wall_time_s, reason=result.diagnostic,
                )
            )
            if status == "conclusive":
                break
    assert result is not None  # the primary config is always runnable
    if len(chain) > 1:
        result.attempts = [a.as_dict() for a in attempts]
        result.stats["fallback_attempts"] = len(attempts)
    return result


def __getattr__(name: str):
    # Legacy import path: ``from repro.verify.verifier import verify``.
    # The supported spellings are ``repro.api.verify`` (the public facade,
    # with portfolio dispatch and service routing) and ``repro.verify
    # .verify`` (the in-process engine entry point, aliased to
    # :func:`verify_one`).
    if name == "verify":
        import warnings

        warnings.warn(
            "importing verify from repro.verify.verifier is deprecated; "
            "use repro.api.verify (public facade) or repro.verify.verify "
            "(in-process engine)",
            DeprecationWarning,
            stacklevel=2,
        )
        return verify_one
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _verify_attempt(
    program: ast.Program,
    config: VerifierConfig,
    measure_memory: bool,
    budget: Budget,
) -> VerificationResult:
    """One guarded engine execution (a single link of the fallback chain)."""
    runner = registry.resolve_engine(config.engine)
    writer = TraceWriter(config.trace_jsonl) if config.trace_jsonl else None
    start = time.monotonic()
    if writer is not None:
        writer.emit("verify_start", engine=config.engine, config=config.name)
    if measure_memory:
        tracemalloc.start()
    try:
        result = run_guarded(
            runner, program, config, telemetry=writer, budget=budget
        )
    finally:
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    result.peak_memory_bytes = peak
    result.wall_time_s = time.monotonic() - start
    result.stats = normalize_stats(result.stats)
    result.trace_path = config.trace_jsonl
    if writer is not None:
        writer.emit(
            "verify_end",
            verdict=result.verdict,
            wall_time_s=round(result.wall_time_s, 6),
        )
        writer.close()
    return result


def run_smt_engine(
    program: ast.Program,
    config: VerifierConfig,
    telemetry: Optional[TraceWriter] = None,
) -> VerificationResult:
    """The DPLL(T) BMC engine: SSA, theory-registry encode, CDCL solve,
    witness extraction.  Registered under engine name ``"smt"``.

    With ``config.unwind_schedule`` set, one encoding is built at the
    maximum bound and solved once per scheduled bound under that bound's
    unwinding-assumption literal (iterative deepening): a bug reachable at
    a shallow bound is found without paying the deep search, and every
    deeper re-solve keeps the learned clauses, activities, phases and
    theory state of the shallower ones.
    """
    schedule = config.unwind_schedule
    t0 = time.monotonic()
    checkpoint("frontend")
    sym = build_symbolic_program(
        program,
        unwind=config.unwind,
        width=config.width,
        unwind_assumptions=bool(schedule),
    )
    checkpoint("frontend")
    t_frontend = time.monotonic() - t0

    encode = registry.resolve_theory(config.theory)
    t1 = time.monotonic()
    checkpoint("encode")
    encoded = encode(sym, config)
    t_encode = time.monotonic() - t1
    if telemetry is not None:
        telemetry.emit("phase", name="frontend", wall_s=round(t_frontend, 6))
        if encoded.stats.analysis_time_s:
            telemetry.emit(
                "phase",
                name="analysis",
                wall_s=round(encoded.stats.analysis_time_s, 6),
            )
        telemetry.emit("phase", name="encode", wall_s=round(t_encode, 6))
        attach_telemetry(encoded, telemetry)
    if config.audit:
        from repro.oracle.audit import enable_audit

        enable_audit(encoded)

    if encoded.trivially_safe:
        return VerificationResult(Verdict.SAFE, config.name)

    # Portfolio clause sharing: a worker attaches its channel process-wide
    # before verify() runs (configs stay picklable); pick it up here.  A
    # signed channel is only honored when this config produces the same
    # encoding the channel's clauses came from -- a fallback preset running
    # in the same process may encode the program differently.
    share = _sharing.active_channel()
    if share is not None and share.signature is not None:
        from repro.portfolio.sharing import encoding_signature

        if share.signature != encoding_signature(config):
            share = None
    if share is not None:
        encoded.solver.share = share

    t2 = time.monotonic()
    if schedule:
        answer, bound_stats = _solve_schedule(encoded, config, telemetry)
    else:
        bound_stats = None
        answer = encoded.solver.solve(
            max_conflicts=config.max_conflicts,
            time_limit_s=effective_time_limit(config.time_limit_s),
        )
    t_solve = time.monotonic() - t2
    stats = dict(encoded.solver.stats.as_dict())
    if bound_stats is not None:
        stats["unwind_schedule"] = list(schedule)
        stats["bounds"] = bound_stats
    theory_stats = getattr(encoded.theory, "stats", None)
    if theory_stats is not None:
        stats.update({f"theory_{k}": v for k, v in theory_stats.as_dict().items()})
    stats["rf_vars"] = encoded.stats.rf_vars
    stats["ws_vars"] = encoded.stats.ws_vars
    stats["fr_vars"] = encoded.stats.fr_vars
    stats["sat_vars"] = encoded.stats.sat_vars
    stats["analysis_pairs_total"] = encoded.stats.analysis_pairs_total
    stats["analysis_pairs_pruned"] = encoded.stats.analysis_pairs_pruned
    stats["analysis_time_s"] = round(encoded.stats.analysis_time_s, 6)
    stats["time_frontend_s"] = round(t_frontend, 6)
    stats["time_encode_s"] = round(t_encode, 6)
    stats["time_solve_s"] = round(t_solve, 6)

    if answer == SolveResult.UNKNOWN:
        return VerificationResult(Verdict.UNKNOWN, config.name, stats=stats)
    if answer == SolveResult.UNSAT:
        return VerificationResult(Verdict.SAFE, config.name, stats=stats)
    t3 = time.monotonic()
    witness = extract_trace(encoded)
    if telemetry is not None:
        telemetry.emit("phase", name="witness", wall_s=round(time.monotonic() - t3, 6))
    return VerificationResult(
        Verdict.UNSAFE, config.name, witness=witness, stats=stats
    )


def _solve_schedule(encoded, config, telemetry):
    """Iterative-deepening solve loop over ``config.unwind_schedule``.

    Each bound's unwinding assumption is an *assumption literal*, never a
    unit clause, so the single live solver serves every bound: SAT at a
    shallow bound is a real counterexample (the assumption excludes all
    truncated executions), and the final bound's query is exactly the
    one-shot problem, so an UNSAT sweep means SAFE.  There is no early
    SAFE exit below the maximum bound -- a shallow UNSAT only says no bug
    exists *within* that bound.  One shortcut is sound: an UNSAT whose
    core is empty was derived at decision level 0, i.e. without the
    assumptions, so the formula itself (a subset of the deepest problem)
    is UNSAT and the program is SAFE.

    After every completed (UNSAT, non-final) bound a
    :class:`~repro.verify.checkpoint.Checkpoint` is emitted to the
    process's installed checkpoint sink, if any -- the durable-progress
    hook the verification service uses for job resume (see
    :mod:`repro.verify.checkpoint`).

    Returns ``(final SolveResult, per-bound stats list)``.
    """
    from repro.encoding.encoder import add_unwind_bound
    from repro.verify.checkpoint import Checkpoint, emit_checkpoint

    solver = encoded.solver
    schedule = config.unwind_schedule
    start = time.monotonic()
    conflicts_base = solver.stats.conflicts
    per_bound = []
    completed = []
    answer = SolveResult.UNSAT
    for bound in schedule:
        u = add_unwind_bound(encoded, bound)
        if u is None and bound != schedule[-1]:
            # No loop frontier at this bound (loop-free program): the
            # bound imposes no restriction, so only the deepest solve
            # matters.
            continue
        remaining_conflicts = None
        if config.max_conflicts is not None:
            spent = solver.stats.conflicts - conflicts_base
            remaining_conflicts = config.max_conflicts - spent
            if remaining_conflicts <= 0:
                answer = SolveResult.UNKNOWN
                break
        remaining_time = config.time_limit_s
        if remaining_time is not None:
            remaining_time = max(0.0, remaining_time - (time.monotonic() - start))
        t_bound = time.monotonic()
        answer = solver.solve(
            max_conflicts=remaining_conflicts,
            time_limit_s=effective_time_limit(remaining_time),
            assumptions=[u] if u is not None else [],
        )
        entry = {
            "bound": bound,
            "answer": answer,
            "wall_s": round(time.monotonic() - t_bound, 6),
            "conflicts": solver.stats.conflicts - conflicts_base,
            "clauses_retained": solver.stats.clauses_retained,
        }
        per_bound.append(entry)
        if telemetry is not None:
            telemetry.emit("bound", **entry)
        if answer != SolveResult.UNSAT:
            break
        completed.append(bound)
        if bound != schedule[-1]:
            emit_checkpoint(
                Checkpoint(
                    schedule=tuple(schedule),
                    completed=tuple(completed),
                    conflicts=solver.stats.conflicts - conflicts_base,
                    clauses_retained=solver.stats.clauses_retained,
                    elapsed_s=round(time.monotonic() - start, 6),
                )
            )
        if u is not None and not solver.unsat_core:
            # Root-level UNSAT: holds independent of the bound assumption.
            break
    return answer, per_bound
