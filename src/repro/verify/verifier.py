"""The top-level verifier: parse → unroll/SSA → engine → verdict."""

from __future__ import annotations

import time
import tracemalloc
from typing import Union

from repro.frontend import build_symbolic_program
from repro.lang import ast, parse
from repro.sat import SolveResult
from repro.verify.config import VerifierConfig
from repro.verify.result import Verdict, VerificationResult
from repro.verify.witness import extract_trace

__all__ = ["verify"]


def verify(
    program: Union[str, ast.Program],
    config: VerifierConfig = VerifierConfig(),
    measure_memory: bool = False,
) -> VerificationResult:
    """Verify ``program`` under sequential consistency within the bounds.

    Args:
        program: source text or a parsed AST.
        config: engine/ablation selection (see :class:`VerifierConfig`).
        measure_memory: trace peak allocation (slower; used by the
            benchmark harness for the paper's memory columns).

    Returns:
        A :class:`VerificationResult`; ``verdict`` is ``SAFE`` if no
        assertion can be violated within the unrolling bound, ``UNSAFE``
        (with a witness trace where the engine produces one) otherwise,
        ``UNKNOWN`` on budget exhaustion.
    """
    if isinstance(program, str):
        program = parse(program)
    start = time.monotonic()
    if measure_memory:
        tracemalloc.start()
    try:
        result = _dispatch(program, config)
    finally:
        if measure_memory:
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        else:
            peak = 0
    result.peak_memory_bytes = peak
    result.wall_time_s = time.monotonic() - start
    return result


def _dispatch(program: ast.Program, config: VerifierConfig) -> VerificationResult:
    engine = config.engine
    if config.memory_model != "sc" and engine != "smt":
        raise ValueError(
            f"memory model {config.memory_model!r} is only supported by the "
            "SMT engines (the explicit/stateless engines interpret under SC)"
        )
    if engine == "smt":
        return _run_smt(program, config)
    if engine == "closure":
        from repro.baselines.closure import verify_closure

        return verify_closure(program, config)
    if engine == "explicit":
        from repro.baselines.explicit import verify_explicit

        return verify_explicit(program, config)
    if engine == "lazyseq":
        from repro.baselines.lazyseq import verify_lazyseq

        return verify_lazyseq(program, config)
    if engine == "smc-rfsc":
        from repro.smc.rfsc import verify_rfsc

        return verify_rfsc(program, config)
    if engine == "smc-genmc":
        from repro.smc.genmc import verify_genmc

        return verify_genmc(program, config)
    raise ValueError(f"unknown engine {engine!r}")


def _run_smt(program: ast.Program, config: VerifierConfig) -> VerificationResult:
    sym = build_symbolic_program(program, unwind=config.unwind, width=config.width)
    if config.theory == "ord":
        from repro.encoding.encoder import encode_program

        encoded = encode_program(
            sym,
            detector=config.detector,
            unit_edge=config.unit_edge,
            fr_encoding=config.fr_encoding,
            max_conflict_clauses=config.max_conflict_clauses,
            memory_model=config.memory_model,
        )
    elif config.theory == "idl":
        from repro.baselines.idl import encode_program_idl

        encoded = encode_program_idl(sym, memory_model=config.memory_model)
    else:
        raise ValueError(f"unknown theory {config.theory!r}")

    if encoded.trivially_safe:
        return VerificationResult(Verdict.SAFE, config.name)

    answer = encoded.solver.solve(
        max_conflicts=config.max_conflicts, time_limit_s=config.time_limit_s
    )
    stats = dict(encoded.solver.stats.as_dict())
    theory_stats = getattr(encoded.theory, "stats", None)
    if theory_stats is not None:
        stats.update({f"theory_{k}": v for k, v in theory_stats.as_dict().items()})
    stats["rf_vars"] = encoded.stats.rf_vars
    stats["ws_vars"] = encoded.stats.ws_vars
    stats["fr_vars"] = encoded.stats.fr_vars
    stats["sat_vars"] = encoded.stats.sat_vars

    if answer == SolveResult.UNKNOWN:
        return VerificationResult(Verdict.UNKNOWN, config.name, stats=stats)
    if answer == SolveResult.UNSAT:
        return VerificationResult(Verdict.SAFE, config.name, stats=stats)
    witness = extract_trace(encoded)
    return VerificationResult(
        Verdict.UNSAFE, config.name, witness=witness, stats=stats
    )
