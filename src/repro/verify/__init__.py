"""Top-level verification API.

:func:`verify` runs the full pipeline -- parse, unroll/SSA, encode,
DPLL(T) solve, witness extraction -- with a :class:`VerifierConfig`
selecting the engine and ablation flags (Zord, Zord⁻, Zord′, the Tarjan
detector, or one of the baseline engines).

Engines are resolved through :mod:`repro.verify.registry`; third parties
extend the verifier by registering an engine factory there.  Structured
telemetry (normalized stats plus optional JSONL event traces) lives in
:mod:`repro.verify.telemetry`.
"""

from repro.verify.config import ENV_VARS, PRESETS, VerifierConfig, env_overrides
from repro.verify.result import SCHEMA_VERSION, VerificationResult, Verdict
from repro.verify.telemetry import STAT_KEYS, TraceWriter, normalize_stats
from repro.verify.verifier import verify_one
from repro.verify.witness import Trace, TraceStep
from repro.verify import registry

#: Stable in-process engine entry point.  ``repro.api.verify`` is the
#: public front door (portfolio dispatch + service routing); this alias
#: is what the engine layers themselves call.
verify = verify_one

__all__ = [
    "verify",
    "verify_one",
    "VerifierConfig",
    "VerificationResult",
    "Verdict",
    "Trace",
    "TraceStep",
    "PRESETS",
    "ENV_VARS",
    "env_overrides",
    "SCHEMA_VERSION",
    "registry",
    "STAT_KEYS",
    "TraceWriter",
    "normalize_stats",
]
