"""Top-level verification API.

:func:`verify` runs the full pipeline -- parse, unroll/SSA, encode,
DPLL(T) solve, witness extraction -- with a :class:`VerifierConfig`
selecting the engine and ablation flags (Zord, Zord⁻, Zord′, the Tarjan
detector, or one of the baseline engines).

Engines are resolved through :mod:`repro.verify.registry`; third parties
extend the verifier by registering an engine factory there.  Structured
telemetry (normalized stats plus optional JSONL event traces) lives in
:mod:`repro.verify.telemetry`.
"""

from repro.verify.config import PRESETS, VerifierConfig
from repro.verify.result import VerificationResult, Verdict
from repro.verify.telemetry import STAT_KEYS, TraceWriter, normalize_stats
from repro.verify.verifier import verify
from repro.verify.witness import Trace, TraceStep
from repro.verify import registry

__all__ = [
    "verify",
    "VerifierConfig",
    "VerificationResult",
    "Verdict",
    "Trace",
    "TraceStep",
    "PRESETS",
    "registry",
    "STAT_KEYS",
    "TraceWriter",
    "normalize_stats",
]
