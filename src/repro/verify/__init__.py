"""Top-level verification API.

:func:`verify` runs the full pipeline -- parse, unroll/SSA, encode,
DPLL(T) solve, witness extraction -- with a :class:`VerifierConfig`
selecting the engine and ablation flags (Zord, Zord⁻, Zord′, the Tarjan
detector, or one of the baseline engines).
"""

from repro.verify.config import VerifierConfig
from repro.verify.result import VerificationResult, Verdict
from repro.verify.verifier import verify
from repro.verify.witness import Trace, TraceStep

__all__ = [
    "verify",
    "VerifierConfig",
    "VerificationResult",
    "Verdict",
    "Trace",
    "TraceStep",
]
