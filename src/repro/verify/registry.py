"""Engine and theory registries -- the extension point behind
:func:`repro.verify.verify`.

Every verification engine (the paper's tool, its ablations, and the five
baseline engines of the Section 6 evaluation) is resolved through a single
registry instead of a hard-coded dispatch chain.  An engine registers

* a **loader**: a zero-argument callable returning the runner
  ``runner(program, config, telemetry=None) -> VerificationResult`` --
  the indirection keeps engine modules unimported until first use;
* **capability metadata**: which SMT theories, cycle detectors and memory
  models the engine accepts.  :func:`validate_config` checks a
  :class:`~repro.verify.config.VerifierConfig` against this metadata at
  construction time, so an invalid engine/theory/detector/memory-model
  combination fails immediately with the list of registered names rather
  than deep inside the solve.

The SMT engine additionally resolves its ordering theory (``"ord"`` /
``"idl"``) through a parallel theory registry; a theory registers an
encoder ``encode(sym, config) -> EncodedProgram``.

Third-party engines plug in with::

    from repro.verify import registry

    def _loader():
        def run(program, config, telemetry=None):
            ...
            return VerificationResult(...)
        return run

    registry.register_engine("my-engine", _loader, description="...")

after which ``VerifierConfig(engine="my-engine")`` and the portfolio
runner accept the new name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

__all__ = [
    "EngineSpec",
    "TheorySpec",
    "register_engine",
    "register_theory",
    "unregister_engine",
    "unregister_theory",
    "engine_names",
    "theory_names",
    "get_engine",
    "get_theory",
    "resolve_engine",
    "resolve_theory",
    "validate_config",
]


@dataclass(frozen=True)
class EngineSpec:
    """Registration record for a verification engine.

    Attributes:
        name: registry key (``config.engine`` values).
        loader: zero-argument callable returning the runner
            ``runner(program, config, telemetry=None)``.
        theories: SMT theory names the engine consults (empty when the
            engine ignores ``config.theory``).
        detectors: cycle detector names the engine consults (empty when
            the engine ignores ``config.detector``).
        memory_models: accepted ``config.memory_model`` values.
        description: one-line human-readable summary.
    """

    name: str
    loader: Callable[[], Callable]
    theories: Tuple[str, ...] = ()
    detectors: Tuple[str, ...] = ()
    memory_models: Tuple[str, ...] = ("sc",)
    description: str = ""


@dataclass(frozen=True)
class TheorySpec:
    """Registration record for an SMT ordering theory.

    ``loader`` returns the encoder ``encode(sym, config) -> EncodedProgram``.
    """

    name: str
    loader: Callable[[], Callable]
    description: str = ""


_engines: Dict[str, EngineSpec] = {}
_theories: Dict[str, TheorySpec] = {}
_runner_cache: Dict[str, Callable] = {}
_encoder_cache: Dict[str, Callable] = {}
_builtins_loaded = False


def _ensure_builtins() -> None:
    """Import the built-in registrations exactly once (idempotent)."""
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.verify.engines  # noqa: F401  (side effect: registers)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------

def register_engine(
    name: str,
    loader: Callable[[], Callable],
    *,
    theories: Tuple[str, ...] = (),
    detectors: Tuple[str, ...] = (),
    memory_models: Tuple[str, ...] = ("sc",),
    description: str = "",
    replace: bool = False,
) -> EngineSpec:
    """Register a verification engine.  Raises on duplicate names unless
    ``replace=True``.  Returns the stored spec."""
    _ensure_builtins()
    if name in _engines and not replace:
        raise ValueError(
            f"engine {name!r} is already registered "
            "(pass replace=True to override)"
        )
    spec = EngineSpec(
        name, loader, tuple(theories), tuple(detectors),
        tuple(memory_models), description,
    )
    _engines[name] = spec
    _runner_cache.pop(name, None)
    return spec


def register_theory(
    name: str,
    loader: Callable[[], Callable],
    *,
    description: str = "",
    replace: bool = False,
) -> TheorySpec:
    """Register an SMT ordering theory.  Raises on duplicates unless
    ``replace=True``."""
    _ensure_builtins()
    if name in _theories and not replace:
        raise ValueError(
            f"theory {name!r} is already registered "
            "(pass replace=True to override)"
        )
    spec = TheorySpec(name, loader, description)
    _theories[name] = spec
    _encoder_cache.pop(name, None)
    return spec


def unregister_engine(name: str) -> None:
    """Remove an engine registration (primarily for tests/plugins)."""
    _ensure_builtins()
    _engines.pop(name, None)
    _runner_cache.pop(name, None)


def unregister_theory(name: str) -> None:
    """Remove a theory registration (primarily for tests/plugins)."""
    _ensure_builtins()
    _theories.pop(name, None)
    _encoder_cache.pop(name, None)


# ----------------------------------------------------------------------
# Lookup
# ----------------------------------------------------------------------

def engine_names() -> List[str]:
    """Sorted names of all registered engines."""
    _ensure_builtins()
    return sorted(_engines)


def theory_names() -> List[str]:
    """Sorted names of all registered theories."""
    _ensure_builtins()
    return sorted(_theories)


def get_engine(name: str) -> EngineSpec:
    """Spec for ``name``; unknown names raise with the registered list."""
    _ensure_builtins()
    try:
        return _engines[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: "
            f"{', '.join(sorted(_engines))}"
        ) from None


def get_theory(name: str) -> TheorySpec:
    """Spec for theory ``name``; unknown names raise with the registered
    list."""
    _ensure_builtins()
    try:
        return _theories[name]
    except KeyError:
        raise ValueError(
            f"unknown theory {name!r}; registered theories: "
            f"{', '.join(sorted(_theories))}"
        ) from None


def resolve_engine(name: str) -> Callable:
    """The runner for engine ``name`` (loader result, cached)."""
    runner = _runner_cache.get(name)
    if runner is None:
        runner = get_engine(name).loader()
        _runner_cache[name] = runner
    return runner


def resolve_theory(name: str) -> Callable:
    """The encoder for theory ``name`` (loader result, cached)."""
    encoder = _encoder_cache.get(name)
    if encoder is None:
        encoder = get_theory(name).loader()
        _encoder_cache[name] = encoder
    return encoder


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------

def validate_config(config) -> None:
    """Check a :class:`VerifierConfig` against the registry's capability
    metadata.  Called from ``VerifierConfig.__post_init__`` so invalid
    combinations fail at construction, not mid-solve."""
    spec = get_engine(config.engine)
    if spec.theories:
        if config.theory not in spec.theories:
            raise ValueError(
                f"engine {config.engine!r} does not support theory "
                f"{config.theory!r}; supported: {', '.join(spec.theories)}"
            )
        get_theory(config.theory)  # must resolve to a registered theory
    if spec.detectors and config.detector not in spec.detectors:
        raise ValueError(
            f"engine {config.engine!r} does not support detector "
            f"{config.detector!r}; supported: {', '.join(spec.detectors)}"
        )
    if config.memory_model not in spec.memory_models:
        raise ValueError(
            f"memory model {config.memory_model!r} is not supported by "
            f"engine {config.engine!r} (supported: "
            f"{', '.join(spec.memory_models)}; the explicit/stateless "
            "engines interpret under SC)"
        )
    fallbacks = getattr(config, "fallbacks", ()) or ()
    if fallbacks:
        from repro.verify.config import PRESETS

        unknown = [name for name in fallbacks if name not in PRESETS]
        if unknown:
            raise ValueError(
                f"unknown fallback preset(s) {', '.join(map(repr, unknown))}; "
                f"available presets: {', '.join(sorted(PRESETS))}"
            )
