"""Built-in engine and theory registrations.

Imported (exactly once) by :mod:`repro.verify.registry` the first time any
registry lookup happens.  Each loader defers the engine's module import to
first use, so constructing a :class:`VerifierConfig` stays cheap and the
baseline engines never load unless selected.

The non-SMT engines historically expose ``verify_xxx(program, config)``;
:func:`_adapt` wraps them into the registry's runner signature
``runner(program, config, telemetry=None)``.
"""

from __future__ import annotations

from repro.verify.registry import register_engine, register_theory


def _adapt(fn):
    def runner(program, config, telemetry=None):
        return fn(program, config)

    return runner


def _smt_loader():
    from repro.verify.verifier import run_smt_engine

    return run_smt_engine


def _closure_loader():
    from repro.baselines.closure import verify_closure

    return _adapt(verify_closure)


def _explicit_loader():
    from repro.baselines.explicit import verify_explicit

    return _adapt(verify_explicit)


def _lazyseq_loader():
    from repro.baselines.lazyseq import verify_lazyseq

    return _adapt(verify_lazyseq)


def _rfsc_loader():
    from repro.smc.rfsc import verify_rfsc

    return _adapt(verify_rfsc)


def _genmc_loader():
    from repro.smc.genmc import verify_genmc

    return _adapt(verify_genmc)


def _ord_theory_loader():
    def encode(sym, config):
        from repro.encoding.encoder import encode_program

        plan = None
        level = getattr(config, "prune_level", 0) or 0
        if level > 0:
            from repro.analysis.prune import build_prune_plan

            plan = build_prune_plan(sym, level)
        return encode_program(
            sym,
            detector=config.detector,
            unit_edge=config.unit_edge,
            fr_encoding=config.fr_encoding,
            max_conflict_clauses=config.max_conflict_clauses,
            memory_model=config.memory_model,
            prune_plan=plan,
        )

    return encode


def _idl_theory_loader():
    def encode(sym, config):
        from repro.baselines.idl import encode_program_idl

        return encode_program_idl(sym, memory_model=config.memory_model)

    return encode


register_engine(
    "smt",
    _smt_loader,
    theories=("ord", "idl"),
    detectors=("icd", "tarjan"),
    memory_models=("sc", "tso", "pso"),
    description="partial-order BMC via DPLL(T) (Zord and the CBMC-style "
    "IDL baseline)",
)
register_engine(
    "closure",
    _closure_loader,
    description="pure-SAT transitive-closure encoding (Dartagnan-style)",
)
register_engine(
    "explicit",
    _explicit_loader,
    description="explicit-state reachability (CPA-Seq-style)",
)
register_engine(
    "lazyseq",
    _lazyseq_loader,
    description="bounded round-robin sequentialization (Lazy-CSeq-style)",
)
register_engine(
    "smc-rfsc",
    _rfsc_loader,
    description="stateless model checking, reads-from equivalence "
    "(Nidhugg/rfsc-style)",
)
register_engine(
    "smc-genmc",
    _genmc_loader,
    description="stateless model checking, execution graphs (GenMC-style)",
)

register_theory(
    "ord",
    _ord_theory_loader,
    description="the paper's T_ord ordering-consistency theory",
)
register_theory(
    "idl",
    _idl_theory_loader,
    description="clock-difference (IDL) encoding with full FR constraints",
)
