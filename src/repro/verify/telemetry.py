"""Structured solver telemetry: normalized result stats and an optional
JSONL event trace.

Every :class:`~repro.verify.result.VerificationResult` carries a ``stats``
dict normalized by :func:`normalize_stats`: the canonical counters in
:data:`STAT_KEYS` are always present (zero when an engine does not track
them), and engine-specific extras are preserved.  Portfolio runs can
therefore be compared column-by-column without per-engine special cases.

Setting ``VerifierConfig(trace_jsonl=PATH)`` additionally streams a
line-per-event JSONL trace while the engine runs.  Schema: every line is a
JSON object

``{"t": <seconds since trace start>, "event": <name>, ...fields}``

with these events:

============== ================================================= =========
event          emitted by                                        fields
============== ================================================= =========
verify_start   :func:`repro.verify.verify`                       engine, config
phase          the SMT engine, once per pipeline phase           name, wall_s
solve_start    the SAT core, entering CDCL search                nvars, clauses
restart        the SAT core, per Luby restart                    index, conflicts
theory_conflict the DPLL(T) loop, per theory conflict            level, clauses
theory_propagation the DPLL(T) loop, per propagation batch       count
icd_reorder    the incremental cycle detector, per reordering    back, fwd
bound          the SMT engine, per unwind-schedule bound         bound, answer, wall_s, conflicts
solve_end      the SAT core, leaving CDCL search                 result + counters
verify_end     :func:`repro.verify.verify`                       verdict, wall_time_s
============== ================================================= =========

Third-party engines receive the active :class:`TraceWriter` as the
``telemetry`` argument of their runner and may emit their own events; the
schema above is a guaranteed core, not a closed set.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = [
    "STAT_KEYS",
    "normalize_stats",
    "TraceWriter",
    "attach_telemetry",
    "read_trace",
]

#: Canonical counters present in every normalized ``stats`` dict.  SAT-core
#: counters, encoding sizes, and the stateless engines' exploration
#: counters; engines that do not track a counter report 0.
STAT_KEYS = (
    # CDCL core
    "decisions",
    "propagations",
    "conflicts",
    "restarts",
    "learned",
    "theory_conflicts",
    "theory_propagations",
    "max_trail",
    # exact hot-loop counters (tracked natively by the flat kernel:
    # watcher-pair visits during propagation, indexed-heap operations)
    "watcher_visits",
    "heap_ops",
    # incremental solving (assumption-based re-solves, clause sharing)
    "incremental_calls",
    "clauses_retained",
    "shared_exported",
    "shared_imported",
    # encoding sizes
    "rf_vars",
    "ws_vars",
    "fr_vars",
    "sat_vars",
    # stateless exploration
    "traces",
    "transitions",
    # static analysis / encoding pruning (repro.analysis)
    "analysis_pairs_total",
    "analysis_pairs_pruned",
    "analysis_time_s",
    # verification service (repro.service); zero for in-process runs
    "cache_hit",
    "queue_wait_s",
    "worker_recycles",
)


def _coerce_number(value):
    """Coerce ``value`` to an int/float, or return None if impossible.

    Rejects NaN (it breaks column-wise comparison) and anything that is
    not a number or a numeric string; bools become 0/1."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value if value == value else None  # NaN != NaN
    if isinstance(value, str):
        try:
            return int(value, 0)
        except ValueError:
            pass
        try:
            f = float(value)
        except ValueError:
            return None
        return f if f == f else None
    return None


def normalize_stats(raw: Optional[Mapping]) -> Dict[str, float]:
    """Return ``raw`` with every :data:`STAT_KEYS` counter present
    (defaulting to 0) and all engine-specific extras preserved.

    The canonical counters are guaranteed *numeric*: engines cannot
    poison batch comparisons by reporting ``None`` or free-form strings
    under a canonical key.  Numeric strings are coerced; non-coercible
    values are dropped back to 0 and flagged in ``stats_dropped`` so the
    loss is visible instead of silent."""
    out: Dict[str, float] = {key: 0 for key in STAT_KEYS}
    if not raw:
        return out
    dropped: List[str] = []
    for key, value in raw.items():
        if key in out:
            num = _coerce_number(value)
            if num is None:
                dropped.append(key)
            else:
                out[key] = num
        else:
            out[key] = value
    if dropped:
        out["stats_dropped"] = sorted(dropped)
    return out


class TraceWriter:
    """Appends JSONL telemetry events to a file.

    Cheap enough for per-conflict granularity; the hot propagation loops
    only report aggregates.  Usable as a context manager."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "w")
        self._t0 = time.monotonic()

    def emit(self, event: str, **fields) -> None:
        record = {"t": round(time.monotonic() - self._t0, 6), "event": event}
        record.update(fields)
        self._file.write(json.dumps(record) + "\n")
        # Flush per line: portfolio workers are SIGTERM'd (or SIGKILL'd
        # when hung) the moment a sibling wins, and an unflushed buffer
        # would silently drop the loser's entire trace.
        self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str) -> Iterator[Dict]:
    """Yield the JSONL records of a telemetry trace.

    Tolerates a truncated final line: a worker killed mid-``emit`` (e.g.
    SIGKILL after a hang) leaves at most one partial record at the end of
    the file, which is skipped.  A malformed record anywhere *else* still
    raises -- that indicates corruption, not truncation."""
    with open(path) as f:
        lines = f.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for i, line in enumerate(lines):
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                return  # truncated final line (killed writer)
            raise


def attach_telemetry(encoded, writer: Optional[TraceWriter]) -> None:
    """Wire a :class:`TraceWriter` into an encoded program's SAT core and
    theory solver (both expose an optional ``telemetry`` attribute)."""
    if writer is None:
        return
    solver = getattr(encoded, "solver", None)
    if solver is not None:
        solver.telemetry = writer
    theory = getattr(encoded, "theory", None)
    if theory is not None and hasattr(theory, "telemetry"):
        theory.telemetry = writer
