"""Verification results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.verify.witness import Trace

__all__ = ["Verdict", "VerificationResult", "SCHEMA_VERSION"]

#: Version of the :meth:`VerificationResult.to_dict` wire schema.  Bump on
#: any field addition/rename; :meth:`VerificationResult.from_dict` rejects
#: versions it does not know rather than guessing.
SCHEMA_VERSION = 1


class Verdict:
    """Outcome constants: the property holds (within bounds), is violated,
    the budget was exhausted, or the engine crashed (contained)."""

    SAFE = "safe"
    UNSAFE = "unsafe"
    UNKNOWN = "unknown"
    #: The engine raised; the crash guard captured a diagnostic instead of
    #: surfacing a traceback (see :mod:`repro.robustness.guard`).
    ERROR = "error"


@dataclass
class VerificationResult:
    verdict: str
    config_name: str
    wall_time_s: float = 0.0
    peak_memory_bytes: int = 0
    witness: Optional[Trace] = None
    #: SMC engines report the violating schedule instead of a value trace.
    schedule: Optional[list] = None
    #: Normalized counters (see :mod:`repro.verify.telemetry`): the
    #: canonical STAT_KEYS are always present after :func:`verify`,
    #: engine-specific extras (including per-phase wall times) ride along.
    stats: Dict[str, float] = field(default_factory=dict)
    #: Path of the JSONL telemetry trace, when one was requested.
    trace_path: Optional[str] = None
    #: Compact captured diagnostic for ERROR verdicts and budget-exhausted
    #: UNKNOWNs (never a raw traceback).
    diagnostic: Optional[str] = None
    #: Per-attempt records when a fallback chain ran (list of dicts, see
    #: :class:`repro.robustness.fallback.Attempt`); empty for single runs.
    attempts: list = field(default_factory=list)

    @property
    def is_safe(self) -> bool:
        return self.verdict == Verdict.SAFE

    @property
    def is_unsafe(self) -> bool:
        return self.verdict == Verdict.UNSAFE

    @property
    def is_error(self) -> bool:
        return self.verdict == Verdict.ERROR

    def to_dict(self) -> Dict:
        """JSON-ready representation (the service wire format).

        The schema is versioned (``schema_version``); ``from_dict`` is the
        exact inverse for every JSON-representable payload: verdict,
        timing, stats, diagnostic, fallback attempts, the witness trace
        (replayable, see :meth:`Trace.to_dict`) and SMC schedules all
        survive a ``to_dict -> json -> from_dict`` round-trip.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "verdict": self.verdict,
            "config_name": self.config_name,
            "wall_time_s": self.wall_time_s,
            "peak_memory_bytes": self.peak_memory_bytes,
            "witness": None if self.witness is None else self.witness.to_dict(),
            "schedule": self.schedule,
            "stats": dict(self.stats),
            "trace_path": self.trace_path,
            "diagnostic": self.diagnostic,
            "attempts": list(self.attempts),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "VerificationResult":
        version = data.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported VerificationResult schema version {version!r} "
                f"(this library speaks version {SCHEMA_VERSION})"
            )
        witness = data.get("witness")
        return cls(
            verdict=data["verdict"],
            config_name=data["config_name"],
            wall_time_s=data.get("wall_time_s", 0.0),
            peak_memory_bytes=data.get("peak_memory_bytes", 0),
            witness=None if witness is None else Trace.from_dict(witness),
            schedule=data.get("schedule"),
            stats=dict(data.get("stats", {})),
            trace_path=data.get("trace_path"),
            diagnostic=data.get("diagnostic"),
            attempts=list(data.get("attempts", ())),
        )

    def __str__(self) -> str:
        out = f"[{self.config_name}] {self.verdict.upper()} in {self.wall_time_s:.3f}s"
        if self.diagnostic is not None:
            out += f"\n  {self.diagnostic}"
        if self.witness is not None:
            out += f"\n{self.witness}"
        if self.schedule:
            out += "\nviolating schedule:"
            for i, step in enumerate(self.schedule):
                out += f"\n  {i:3d}: {step}"
        return out
