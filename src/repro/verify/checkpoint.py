"""Per-bound progress checkpoints for the iterative-deepening BMC loop.

The deepening schedule (``VerifierConfig.unwind_schedule``) gives long
verification jobs a natural unit of durable progress: every completed
bound is an UNSAT proof that no violation exists *within* that bound,
established once and valid forever for the same (program, encoding
signature).  :class:`Checkpoint` records exactly that -- which bounds of
which schedule are done, plus the solver effort spent -- so a job that is
retried after a worker death, a budget UNKNOWN, or a daemon restart can
resume its schedule from the last completed bound instead of bound 1.

Resuming is sound by construction: skipping a bound only skips re-proving
an UNSAT that was already proven, and the final bound -- whose query is
exactly the one-shot problem -- is always solved.  The resumed run loses
the learned clauses of the skipped bounds (they died with the old
process), so resumption is a *latency* optimization with an identical
verdict, which ``tests/service/test_checkpoint.py`` enforces on every
example program.

The engine does not know where checkpoints go.  A host (the service
worker) installs a sink around the run with :func:`checkpoint_sink`; the
deepening loop calls :func:`emit_checkpoint` after each completed bound.
Sink failures are contained -- durability must never fail a
verification.  With no sink installed, emission is a no-op, so the
in-process API pays nothing.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "checkpoint_sink",
    "emit_checkpoint",
]

#: Version of the checkpoint wire shape; stale files are refused by the
#: store, never half-understood.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Checkpoint:
    """Durable progress of one iterative-deepening run.

    Attributes:
        schedule: the full normalized bound schedule of the run.
        completed: the prefix of ``schedule`` proven UNSAT so far.
        verdict_so_far: always ``"no-violation-within-bound"`` -- a
            checkpoint only exists while every solved bound came back
            UNSAT (any other answer concludes the job).
        conflicts: CDCL conflicts spent through the last completed bound.
        clauses_retained: learned clauses alive when the checkpoint was
            cut (diagnostic only; they do not survive a resume).
        elapsed_s: wall-clock spent through the last completed bound.
    """

    schedule: Tuple[int, ...]
    completed: Tuple[int, ...]
    verdict_so_far: str = "no-violation-within-bound"
    conflicts: int = 0
    clauses_retained: int = 0
    elapsed_s: float = 0.0
    schema_version: int = field(default=CHECKPOINT_SCHEMA_VERSION)

    def remaining(self) -> Tuple[int, ...]:
        """The schedule bounds still to solve (empty iff nothing to
        resume -- then the checkpoint is useless and a fresh run is
        correct anyway)."""
        if not self.completed:
            return self.schedule
        last = self.completed[-1]
        return tuple(b for b in self.schedule if b > last)

    def to_dict(self) -> Dict:
        return {
            "schema_version": self.schema_version,
            "schedule": list(self.schedule),
            "completed": list(self.completed),
            "verdict_so_far": self.verdict_so_far,
            "conflicts": self.conflicts,
            "clauses_retained": self.clauses_retained,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Checkpoint":
        version = data.get("schema_version")
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported checkpoint schema version {version!r} "
                f"(this library speaks {CHECKPOINT_SCHEMA_VERSION})"
            )
        return cls(
            schedule=tuple(int(b) for b in data["schedule"]),
            completed=tuple(int(b) for b in data["completed"]),
            verdict_so_far=data.get(
                "verdict_so_far", "no-violation-within-bound"
            ),
            conflicts=int(data.get("conflicts", 0)),
            clauses_retained=int(data.get("clauses_retained", 0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


# One slot per process: service workers run one job at a time, and the
# in-process API never installs a sink.
_sink: Optional[Callable[[Checkpoint], None]] = None


@contextlib.contextmanager
def checkpoint_sink(sink: Optional[Callable[[Checkpoint], None]]):
    """Install ``sink`` as this process's checkpoint receiver for the
    duration of the block (``None`` is allowed and is a no-op sink)."""
    global _sink
    previous = _sink
    _sink = sink
    try:
        yield
    finally:
        _sink = previous


def emit_checkpoint(checkpoint: Checkpoint) -> None:
    """Deliver one checkpoint to the installed sink, if any.

    Sink exceptions are swallowed: persistence trouble (disk full, a
    vanished cache dir) degrades to checkpoint-less operation, it never
    turns a solvable job into an ERROR.
    """
    sink = _sink
    if sink is None:
        return
    try:
        sink(checkpoint)
    except Exception:  # noqa: BLE001 - durability is best-effort
        pass
