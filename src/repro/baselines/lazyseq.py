"""Lazy-CSeq-style baseline: bounded round-robin sequentialization.

Lazy sequentialization verifies a sequential program that simulates K
round-robin rounds of the threads, with nondeterministic context-switch
points.  The analogue explores exactly that schedule space directly: in
each of ``config.rounds`` rounds the threads take turns in a fixed order,
each executing a nondeterministically chosen number of visible steps.

Like the original, this is an *under-approximation*: a SAFE verdict means
no violation within the round bound.  Executions that do not finish within
the bound are discarded.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.lang import ast
from repro.robustness import checkpoint, effective_time_limit
from repro.smc.compile import compile_program
from repro.smc.interpreter import ExecState, Interpreter
from repro.verify.result import Verdict, VerificationResult

__all__ = ["verify_lazyseq"]

_NONDET_DOMAIN = (0, 1, 2, 3)


class _Node:
    __slots__ = ("state", "pos", "pending", "idx")

    def __init__(self, state: ExecState, pos: int) -> None:
        self.state = state
        self.pos = pos
        self.pending: Optional[List[Tuple[str, int]]] = None
        self.idx = 0


def verify_lazyseq(program: ast.Program, config) -> VerificationResult:
    checkpoint("engine")
    compiled = compile_program(program, width=config.width, unwind=config.unwind)
    interp = Interpreter(compiled)
    order = ["main"] + sorted(compiled.threads)
    max_pos = config.rounds * len(order)
    time_limit_s = effective_time_limit(config.time_limit_s)
    start = time.monotonic()

    stack = [_Node(interp.initial_state(), 0)]
    traces = 0
    discarded = 0
    transitions = 0
    exhausted = True
    limit_hit = None

    while stack:
        if time_limit_s is not None and (
            time.monotonic() - start > time_limit_s
        ):
            exhausted = False
            limit_hit = "time"
            break
        if config.max_conflicts is not None and transitions >= config.max_conflicts:
            # The transition cap is the sequentialized engine's analogue of
            # the SMT engine's conflict cap.
            exhausted = False
            limit_hit = "transitions"
            break
        transitions += 1
        if transitions & 0xFF == 0:
            checkpoint("engine", conflicts=256)
        node = stack[-1]
        if node.pending is None:
            state = node.state
            if state.infeasible:
                # A thread failed an assume / exceeded the unwind bound:
                # no completion of this path is a valid execution.
                discarded += 1
                stack.pop()
                continue
            if interp.is_complete(state):
                traces += 1
                if state.violated:
                    return VerificationResult(
                        Verdict.UNSAFE,
                        config.name,
                        stats={"traces": traces, "discarded": discarded},
                    )
                stack.pop()
                continue
            if node.pos >= max_pos:
                discarded += 1  # ran out of rounds
                stack.pop()
                continue
            tid = order[node.pos % len(order)]
            op = interp.front(state, tid)
            pending: List[Tuple[str, int]] = []
            if op is not None and interp._is_enabled(state, op):
                if op.kind == "nondet":
                    pending.extend(("step", v) for v in _NONDET_DOMAIN)
                else:
                    pending.append(("step", 0))
            pending.append(("pass", 0))
            node.pending = pending
        if node.idx >= len(node.pending):
            stack.pop()
            continue
        action, value = node.pending[node.idx]
        node.idx += 1
        if action == "pass":
            stack.append(_Node(node.state, node.pos + 1))
        else:
            tid = order[node.pos % len(order)]
            child = node.state.clone()
            interp.step(child, tid, value)
            stack.append(_Node(child, node.pos))

    if not exhausted:
        verdict = Verdict.UNKNOWN
    elif compiled.uses_nondet and len(_NONDET_DOMAIN) < (1 << compiled.width):
        # Bounded nondet enumeration cannot prove safety.
        verdict = Verdict.UNKNOWN
    else:
        verdict = Verdict.SAFE
    stats = {"traces": traces, "discarded": discarded, "transitions": transitions}
    if limit_hit is not None:
        stats["limit_hit"] = limit_hit
    return VerificationResult(verdict, config.name, stats=stats)
