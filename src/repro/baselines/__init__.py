"""Baseline verification engines (the comparators of Section 6.2).

Each module is an in-repo analogue of a tool the paper compares against,
implementing the same algorithmic idea on our substrate:

* :mod:`repro.baselines.idl` -- CBMC-style: integer-difference-logic
  ordering (per-event clocks), all from-read constraints encoded, fresh
  (non-incremental) consistency checks, non-minimal conflicts;
* :mod:`repro.baselines.closure` -- Dartagnan-style: pure-SAT relational
  encoding with an explicit transitive-closure axiomatization;
* :mod:`repro.baselines.explicit` -- CPA-Seq-style: explicit-state
  reachability with state hashing;
* :mod:`repro.baselines.lazyseq` -- Lazy-CSeq-style: bounded round-robin
  (context-bounded) exploration.
"""
