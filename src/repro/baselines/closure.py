"""Dartagnan-style baseline: pure-SAT relational encoding.

Relational bounded model checkers without a dedicated ordering theory
encode the happens-before relation explicitly: one Boolean ``hb(i, j)`` per
event pair, with antisymmetry and a full transitive-closure axiomatization
(cubically many clauses), and derive acyclicity from those axioms alone.
RF / WS / FR constraints then imply ``hb`` literals directly.

This reproduces the *algorithmic* content of such encodings; their cost --
formula size cubic in the number of events -- is exactly the behaviour the
paper's Table 1/Figure 7 comparison exposes.  Programs whose closure
encoding would exceed ``MAX_TRANSITIVITY_CLAUSES`` return UNKNOWN, standing
in for the timeouts/memouts the paper reports for Dartagnan on larger
tasks.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from repro.encoding import formula as F
from repro.encoding.bitblast import BitBlaster
from repro.encoding.cnf import CnfBuilder
from repro.frontend import build_symbolic_program
from repro.lang import ast
from repro.ordering.solver import OrderingTheory
from repro.robustness import checkpoint, effective_time_limit
from repro.sat import SolveResult, Solver
from repro.verify.result import Verdict, VerificationResult
from repro.verify.witness import Trace, TraceStep

__all__ = ["verify_closure", "MAX_TRANSITIVITY_CLAUSES"]

#: Guard against cubic blow-up: above this many transitivity clauses the
#: engine gives up (UNKNOWN), mirroring the baseline's scaling wall
#: (building the closure axioms alone would exceed any realistic budget).
MAX_TRANSITIVITY_CLAUSES = 400_000


def verify_closure(program: ast.Program, config) -> VerificationResult:
    checkpoint("engine")
    sym = build_symbolic_program(program, unwind=config.unwind, width=config.width)
    if not sym.error_disjuncts:
        return VerificationResult(Verdict.SAFE, config.name)

    mem = sym.memory_events()
    n_total = len(sym.events)
    if len(mem) ** 3 > MAX_TRANSITIVITY_CLAUSES:
        return VerificationResult(
            Verdict.UNKNOWN,
            config.name,
            stats={"reason_too_large": len(mem)},
        )

    po_reach = OrderingTheory._compute_po_reachability(n_total, sym.po_edges)
    solver = Solver()
    builder = CnfBuilder(solver)
    blaster = BitBlaster(builder)

    for constraint in sym.constraints:
        blaster.assert_term(constraint)
    solver.add_clause([blaster.blast_bool(d) for d in sym.error_disjuncts])

    guard_lits = {ev.eid: blaster.blast_bool(ev.guard) for ev in mem}
    width = sym.width

    # --- happens-before variables -------------------------------------
    hb_cache: Dict[Tuple[int, int], int] = {}

    def hb(i: int, j: int) -> int:
        if (po_reach[i] >> j) & 1:
            return builder.true_lit
        if (po_reach[j] >> i) & 1:
            return builder.false_lit
        lit = hb_cache.get((i, j))
        if lit is None:
            lit = solver.new_var()
            hb_cache[(i, j)] = lit
        return lit

    eids = [ev.eid for ev in mem]

    # Antisymmetry (irreflexivity is implicit: hb(i, i) is never created).
    for i, j in itertools.combinations(eids, 2):
        a, b = hb(i, j), hb(j, i)
        if not builder.is_const(a) and not builder.is_const(b):
            builder.add_clause([-a, -b])

    # Transitivity closure axioms.
    n_trans = 0
    for i in eids:
        for j in eids:
            if i == j:
                continue
            hij = hb(i, j)
            if hij == builder.false_lit:
                continue
            for k in eids:
                if k == i or k == j:
                    continue
                hjk = hb(j, k)
                hik = hb(i, k)
                if hjk == builder.false_lit or hik == builder.true_lit:
                    continue
                builder.add_clause([-hij, -hjk, hik])
                n_trans += 1
                if n_trans & 0xFFF == 0:
                    # The cubic closure axioms are the dominant cost; keep
                    # the construction under the deadline/memory budget.
                    checkpoint("engine")

    # --- RF / WS / FR over hb ------------------------------------------
    def value_var(ev):
        return F.bv_var(ev.ssa_name, width)

    rf_by_read: Dict[int, Dict[int, int]] = {}
    ws_var: Dict[Tuple[int, int], int] = {}
    rf_count = ws_count = 0

    for addr in sym.addresses:
        reads = sym.reads_of(addr)
        writes = sym.writes_of(addr)
        for r in reads:
            g_r = guard_lits[r.eid]
            rf_lits: List[int] = []
            rf_by_read[r.eid] = {}
            for w in writes:
                if (po_reach[r.eid] >> w.eid) & 1:
                    continue
                var = solver.new_var()
                rf_by_read[r.eid][w.eid] = var
                builder.imply(var, g_r)
                builder.imply(var, guard_lits[w.eid])
                builder.imply(var, blaster.blast_bool(F.eq(value_var(r), value_var(w))))
                builder.imply(var, hb(w.eid, r.eid))
                rf_lits.append(var)
                rf_count += 1
            builder.imply_or(g_r, rf_lits)
        for i, w1 in enumerate(writes):
            for w2 in writes[i + 1:]:
                v12 = solver.new_var()
                v21 = solver.new_var()
                ws_var[(w1.eid, w2.eid)] = v12
                ws_var[(w2.eid, w1.eid)] = v21
                g1, g2 = guard_lits[w1.eid], guard_lits[w2.eid]
                for v, (a, b) in ((v12, (w1, w2)), (v21, (w2, w1))):
                    builder.imply(v, g1)
                    builder.imply(v, g2)
                    builder.imply(v, hb(a.eid, b.eid))
                builder.add_clause([-g1, -g2, v12, v21])
                ws_count += 2
        # From-read, directly over hb.
        for r in reads:
            for w0 in writes:
                rf = rf_by_read[r.eid].get(w0.eid)
                if rf is None:
                    continue
                for wk in writes:
                    if wk.eid == w0.eid or wk.eid == r.eid:
                        continue
                    ws = ws_var.get((w0.eid, wk.eid))
                    if ws is None:
                        continue
                    target = hb(r.eid, wk.eid)
                    builder.add_clause([-rf, -ws, target])
        # RMW atomicity.
        for group in sym.rmw_groups:
            if group.addr != addr:
                continue
            for w0 in writes:
                rf = rf_by_read.get(group.read_eid, {}).get(w0.eid)
                if rf is None or w0.eid == group.write_eid:
                    continue
                for wx in writes:
                    if wx.eid in (w0.eid, group.write_eid):
                        continue
                    ws_a = ws_var.get((w0.eid, wx.eid))
                    ws_b = ws_var.get((wx.eid, group.write_eid))
                    if ws_a is not None and ws_b is not None:
                        builder.add_clause([-rf, -ws_a, -ws_b])

    answer = solver.solve(
        max_conflicts=config.max_conflicts,
        time_limit_s=effective_time_limit(config.time_limit_s),
    )
    stats = dict(solver.stats.as_dict())
    stats.update(
        {
            "hb_vars": len(hb_cache),
            "transitivity_clauses": n_trans,
            "rf_vars": rf_count,
            "ws_vars": ws_count,
        }
    )
    if answer == SolveResult.UNKNOWN:
        return VerificationResult(Verdict.UNKNOWN, config.name, stats=stats)
    if answer == SolveResult.UNSAT:
        return VerificationResult(Verdict.SAFE, config.name, stats=stats)

    witness = _extract_witness(sym, solver, blaster, guard_lits, hb, mem, po_reach)
    return VerificationResult(Verdict.UNSAFE, config.name, witness=witness, stats=stats)


def _extract_witness(sym, solver, blaster, guard_lits, hb, mem, po_reach):
    enabled = [ev for ev in mem if solver.model_lit(guard_lits[ev.eid])]

    def hb_true(i, j):
        return solver.model_lit(hb(i, j))

    # Kahn over the model's hb edges restricted to enabled events.
    ids = [ev.eid for ev in enabled]
    indeg = {i: 0 for i in ids}
    succ = {i: [] for i in ids}
    for i in ids:
        for j in ids:
            if i != j and hb_true(i, j):
                succ[i].append(j)
                indeg[j] += 1
    queue = [i for i in ids if indeg[i] == 0]
    pos = {}
    k = 0
    while queue:
        x = queue.pop()
        pos[x] = k
        k += 1
        for y in succ[x]:
            indeg[y] -= 1
            if indeg[y] == 0:
                queue.append(y)
    enabled.sort(key=lambda ev: pos.get(ev.eid, 0))
    width = sym.width
    steps = []
    for ev in enabled:
        raw = blaster.bv_value(ev.ssa_name)
        if raw & (1 << (width - 1)):
            raw -= 1 << width
        steps.append(TraceStep(ev.thread, ev.kind, ev.addr, raw, ev.label))
    return Trace(steps)
