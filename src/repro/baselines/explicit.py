"""CPA-Seq-style baseline: explicit-state reachability with state hashing.

Configurable-program-analysis tools ultimately enumerate abstract states;
on these benchmark programs the dominant configuration is close to
explicit-value analysis.  The analogue performs a BFS over interpreter
states, deduplicating semantically equal states (memory, program counters,
locals, loop counters) -- sound and complete within the unwind bound, but
subject to the state-explosion the paper's Table 1/Figure 7 comparison
exhibits.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Optional, Set, Tuple

from repro.lang import ast
from repro.robustness import checkpoint, effective_time_limit
from repro.smc.compile import compile_program
from repro.smc.interpreter import Interpreter
from repro.verify.result import Verdict, VerificationResult

__all__ = ["verify_explicit"]

#: Default nondet enumeration domain (explicit engines must enumerate).
_NONDET_DOMAIN = (0, 1, 2, 3)


def verify_explicit(program: ast.Program, config) -> VerificationResult:
    checkpoint("engine")
    compiled = compile_program(program, width=config.width, unwind=config.unwind)
    interp = Interpreter(compiled)
    time_limit_s = effective_time_limit(config.time_limit_s)
    start = time.monotonic()

    init = interp.initial_state()
    visited: Set[Tuple] = {init.key()}
    queue = deque([init])
    explored = 0
    exhausted = True
    limit_hit = None

    while queue:
        if time_limit_s is not None and (
            time.monotonic() - start > time_limit_s
        ):
            exhausted = False
            limit_hit = "time"
            break
        if config.max_conflicts is not None and explored >= config.max_conflicts:
            # The state-count cap is the explicit engine's analogue of the
            # SMT engine's conflict cap.
            exhausted = False
            limit_hit = "states"
            break
        state = queue.popleft()
        explored += 1
        if explored & 0xFF == 0:
            checkpoint("engine", conflicts=256)
        if state.infeasible:
            continue  # failed assume / unwind bound: not a real execution
        ops = interp.enabled_ops(state)
        if not ops:
            if interp.is_complete(state) and state.violated:
                return VerificationResult(
                    Verdict.UNSAFE,
                    config.name,
                    stats={"states": len(visited), "explored": explored},
                )
            continue
        for op in ops:
            values = _NONDET_DOMAIN if op.kind == "nondet" else (0,)
            for v in values:
                child = state.clone()
                interp.step(child, op.tid, v)
                key = child.key()
                if key not in visited:
                    visited.add(key)
                    queue.append(child)

    if not exhausted:
        verdict = Verdict.UNKNOWN
    elif compiled.uses_nondet and len(_NONDET_DOMAIN) < (1 << compiled.width):
        # Bounded nondet enumeration cannot prove safety.
        verdict = Verdict.UNKNOWN
    else:
        verdict = Verdict.SAFE
    stats = {"states": len(visited), "explored": explored}
    if limit_hit is not None:
        stats["limit_hit"] = limit_hit
    return VerificationResult(verdict, config.name, stats=stats)
