"""CBMC-style baseline: clock-difference (IDL) ordering (Section 3.2).

The approaches the paper improves on (Alglave et al., CBMC) associate an
integer-valued clock with each event and express orders as differences
between clock variables, solved by an integer-difference-logic procedure.
For the pure ``<`` constraints arising here, IDL consistency is exactly
acyclicity of the difference-constraint graph, so the baseline theory
shares the event-graph substrate but deliberately keeps the *old*
algorithmics the paper criticizes:

* **fresh cycle detection** on every assignment (no incrementality; the
  paper cites [9]'s fresh-detection approach as the inefficient default);
* a **single, non-minimal conflict clause** per inconsistency -- just the
  literals of whichever cycle the search stumbled on, rather than all
  shortest-width critical cycles;
* **no theory propagation** -- neither unit edges nor from-read derivation;
  all FR constraints must be encoded in the formula upfront (the front end
  is run with ``fr_encoding=True``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.frontend.program import SymbolicProgram
from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.solver import OrderingTheory, TheoryStats
from repro.ordering.tarjan import TarjanCycleDetector
from repro.sat.theory import Theory, TheoryResult

__all__ = ["IdlTheory", "encode_program_idl"]


class IdlTheory(Theory):
    """Clock-difference ordering theory with non-incremental checking."""

    def __init__(self, n_events: int, po_edges: List[Tuple[int, int]]) -> None:
        self.graph = EventGraph(n_events)
        self.detector = TarjanCycleDetector(self.graph)
        self.stats = TheoryStats()
        self._edge_of_var: Dict[int, Edge] = {}
        self._trail: List[Tuple[Edge, int]] = []
        for a, b in po_edges:
            result = self.detector.add_edge(Edge(a, b, EdgeKind.PO))
            if result.cycle:
                raise ValueError("program order itself is cyclic")
        self.po_reach = OrderingTheory._compute_po_reachability(n_events, po_edges)

    # -- registration (same interface as OrderingTheory) ---------------

    def add_rf_var(self, var: int, write_eid: int, read_eid: int) -> None:
        self._edge_of_var[var] = Edge(
            write_eid, read_eid, EdgeKind.RF, (var,), var
        )

    def add_ws_var(self, var: int, w1_eid: int, w2_eid: int) -> None:
        self._edge_of_var[var] = Edge(w1_eid, w2_eid, EdgeKind.WS, (var,), var)

    def add_fr_var(self, var: int, read_eid: int, write_eid: int) -> None:
        self._edge_of_var[var] = Edge(read_eid, write_eid, EdgeKind.FR, (var,), var)

    def initial_unit_clauses(self) -> List[List[int]]:
        # The old-style encoding performs no upfront theory propagation;
        # PO-contradicted variables are discovered through conflicts.
        return []

    # -- theory interface ----------------------------------------------

    def relevant(self, var: int) -> bool:
        return var in self._edge_of_var

    def assign(self, lit: int, level: int) -> TheoryResult:
        result = TheoryResult()
        if lit < 0:
            return result
        edge = self._edge_of_var.get(lit)
        if edge is None or edge.active:
            return result
        self.stats.consistency_checks += 1
        added = self.detector.add_edge(edge)
        if added.cycle:
            self.stats.cycles += 1
            # Non-minimal conflict: the literals along whatever path
            # dst ⇝ src the fresh search found, plus the new edge.
            lits = set(edge.reason)
            lits.update(added.back_path_reason(edge.dst))
            result.add_conflict([-l for l in sorted(lits)])
            self.stats.conflict_clauses += 1
            return result
        self.stats.edges_activated += 1
        self._trail.append((edge, level))
        return result

    def backjump(self, level: int) -> None:
        trail = self._trail
        while trail and trail[-1][1] > level:
            edge, _lvl = trail.pop()
            self.detector.remove_edge(edge)


def encode_program_idl(sym: SymbolicProgram, memory_model: str = "sc"):
    """Encode with the IDL baseline theory: full FR encoding, no theory
    propagation, fresh cycle detection."""
    from repro.encoding.encoder import encode_program
    from repro.encoding.ppo import preserved_program_order

    ppo = preserved_program_order(sym, memory_model)
    theory = IdlTheory(len(sym.events), ppo)
    return encode_program(sym, fr_encoding=True, theory=theory)
