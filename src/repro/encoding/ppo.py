"""Preserved program order for weak memory models (the paper's future work).

The paper verifies under sequential consistency and names weak-memory
support as future work; this module provides it for the store-buffer
models, following the Alglave-style recipe the encoding is built on:
instead of the full program order, the event-graph skeleton receives only
the *preserved* program order (ppo) of the chosen model, and the rest of
the machinery (RF/WS variables, from-read derivation, acyclicity) is
unchanged.

Supported models (same-address pairs are always preserved, so coherence
per location stays enforced by the single acyclicity check):

* ``"sc"``  -- everything preserved (the paper's setting);
* ``"tso"`` -- write-to-read order to *different* addresses is relaxed
  (store buffering; no store forwarding, a standard simplification that
  makes the model slightly stronger than x86-TSO);
* ``"pso"`` -- additionally relaxes write-to-write order to different
  addresses.

Anchors (thread create/join, `fence;` statements) and the events of atomic
read-modify-write blocks and locks order everything across them, like
x86's fenced/locked instructions.

The returned edge set is the transitive reduction of the preserved pairs,
computed per thread, plus the original create/join anchor edges.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.frontend.program import Event, EventKind, SymbolicProgram

__all__ = ["MEMORY_MODELS", "preserved_program_order"]

MEMORY_MODELS = ("sc", "tso", "pso")


def preserved_program_order(
    sym: SymbolicProgram, model: str
) -> List[Tuple[int, int]]:
    """Compute the event-graph skeleton edges for ``model``."""
    if model not in MEMORY_MODELS:
        raise ValueError(f"unknown memory model {model!r}")
    if model == "sc":
        return list(sym.po_edges)

    fence_like = _fence_like_events(sym)
    intra: Set[Tuple[int, int]] = set()
    inter: List[Tuple[int, int]] = []
    # Partition the original edges: intra-thread chain edges vs the
    # create/join edges between threads (always kept).
    thread_of = {ev.eid: ev.thread for ev in sym.events}
    for a, b in sym.po_edges:
        if thread_of[a] == thread_of[b]:
            intra.add((a, b))
        else:
            inter.append((a, b))

    edges: List[Tuple[int, int]] = list(inter)
    for thread in sym.threads:
        events = thread.events
        n = len(events)
        preserved = [[False] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                preserved[i][j] = _preserved(
                    events[i], events[j], model, fence_like
                )
        # Transitive reduction: drop (i, j) if some k between mediates it.
        for i in range(n):
            for j in range(i + 1, n):
                if not preserved[i][j]:
                    continue
                redundant = any(
                    preserved[i][k] and preserved[k][j]
                    for k in range(i + 1, j)
                )
                if not redundant:
                    edges.append((events[i].eid, events[j].eid))
    return edges


def _fence_like_events(sym: SymbolicProgram) -> Set[int]:
    """Events that order everything: RMW (atomic block / lock-acquire)
    events and every access to a lock variable (unlock stores carry a
    release barrier in any real lock implementation)."""
    out: Set[int] = set()
    for group in sym.rmw_groups:
        out.add(group.read_eid)
        out.add(group.write_eid)
    locks = set(sym.lock_addrs)
    if locks:
        for ev in sym.memory_events():
            if ev.addr in locks:
                out.add(ev.eid)
    return out


def _preserved(e1: Event, e2: Event, model: str, fence_like: Set[int]) -> bool:
    if e1.kind == EventKind.ANCHOR or e2.kind == EventKind.ANCHOR:
        return True  # create/join/fence anchors are full barriers
    if e1.eid in fence_like or e2.eid in fence_like:
        return True  # locked/atomic accesses are fenced
    if e1.addr == e2.addr:
        return True  # same-address order (coherence) always preserved
    if e1.is_write and e2.is_read:
        return False  # the store-buffer relaxation (TSO and PSO)
    if model == "pso" and e1.is_write and e2.is_write:
        return False  # per-address store buffers (PSO)
    return True
