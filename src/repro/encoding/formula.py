"""Hash-consed term IR for the SMT encoding.

Two sorts are supported:

* **Bool** -- guard conditions, ordering variables, comparisons;
* **BV(w)** -- fixed-width two's-complement bit-vectors for program values.

Terms are immutable and hash-consed: structurally equal terms are the same
object, so dictionaries keyed by term identity are safe and the bit-blaster
cache is effective.  Constructors perform light constant folding; they raise
:class:`SortError` on sort/width mismatches.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "SortError", "Term", "TRUE", "FALSE",
    "bool_var", "bool_const", "mk_not", "mk_and", "mk_or", "mk_xor",
    "implies", "iff", "ite",
    "bv_var", "bv_const", "bv_add", "bv_sub", "bv_mul", "bv_neg",
    "bv_and", "bv_or", "bv_xor", "bv_not", "bv_ite", "shl", "lshr",
    "eq", "ne", "ult", "ule", "slt", "sle",
    "evaluate",
]


class SortError(TypeError):
    """Raised when term constructors are applied to ill-sorted arguments."""


class Term:
    """An immutable, hash-consed term.

    Attributes:
        op: operator tag (e.g. ``"and"``, ``"bvadd"``, ``"eq"``).
        args: child terms.
        width: bit-width for BV-sorted terms, ``None`` for Bool.
        name: variable name for ``boolvar`` / ``bvvar``.
        value: Python value for ``boolconst`` / ``bvconst``.
    """

    __slots__ = ("op", "args", "width", "name", "value", "_hash")

    _table: Dict[tuple, "Term"] = {}

    def __new__(
        cls,
        op: str,
        args: Tuple["Term", ...] = (),
        width: Optional[int] = None,
        name: Optional[str] = None,
        value=None,
    ) -> "Term":
        key = (op, tuple(id(a) for a in args), width, name, value)
        cached = cls._table.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        self.op = op
        self.args = tuple(args)
        self.width = width
        self.name = name
        self.value = value
        self._hash = hash(key)
        cls._table[key] = self
        return self

    @property
    def is_bool(self) -> bool:
        return self.width is None

    @property
    def is_bv(self) -> bool:
        return self.width is not None

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.op in ("boolvar", "bvvar"):
            return f"{self.name}"
        if self.op == "boolconst":
            return "true" if self.value else "false"
        if self.op == "bvconst":
            return f"{self.value}#{self.width}"
        return f"({self.op} {' '.join(map(repr, self.args))})"


TRUE = Term("boolconst", value=True)
FALSE = Term("boolconst", value=False)


def _require_bool(*terms: Term) -> None:
    for t in terms:
        if not t.is_bool:
            raise SortError(f"expected Bool term, got {t!r}")


def _require_bv_same(*terms: Term) -> int:
    widths = {t.width for t in terms}
    if None in widths or len(widths) != 1:
        raise SortError(f"expected BV terms of equal width, got {terms!r}")
    return terms[0].width  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Boolean constructors
# ----------------------------------------------------------------------

def bool_var(name: str) -> Term:
    return Term("boolvar", name=name)


def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


def mk_not(a: Term) -> Term:
    _require_bool(a)
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.op == "not":
        return a.args[0]
    return Term("not", (a,))


def mk_and(*args: Term) -> Term:
    flat = []
    for a in args:
        _require_bool(a)
        if a is FALSE:
            return FALSE
        if a is TRUE:
            continue
        if a.op == "and":
            flat.extend(a.args)
        else:
            flat.append(a)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Term("and", tuple(flat))


def mk_or(*args: Term) -> Term:
    flat = []
    for a in args:
        _require_bool(a)
        if a is TRUE:
            return TRUE
        if a is FALSE:
            continue
        if a.op == "or":
            flat.extend(a.args)
        else:
            flat.append(a)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Term("or", tuple(flat))


def mk_xor(a: Term, b: Term) -> Term:
    _require_bool(a, b)
    if a is FALSE:
        return b
    if b is FALSE:
        return a
    if a is TRUE:
        return mk_not(b)
    if b is TRUE:
        return mk_not(a)
    if a is b:
        return FALSE
    return Term("xor", (a, b))


def implies(a: Term, b: Term) -> Term:
    return mk_or(mk_not(a), b)


def iff(a: Term, b: Term) -> Term:
    return mk_not(mk_xor(a, b))


def ite(c: Term, t: Term, e: Term) -> Term:
    """If-then-else over Bool branches (see :func:`bv_ite` for BV)."""
    _require_bool(c, t, e)
    if c is TRUE:
        return t
    if c is FALSE:
        return e
    if t is e:
        return t
    return Term("ite", (c, t, e))


# ----------------------------------------------------------------------
# Bit-vector constructors
# ----------------------------------------------------------------------

def _mask(width: int) -> int:
    return (1 << width) - 1


def bv_var(name: str, width: int) -> Term:
    if width <= 0:
        raise SortError("bit-vector width must be positive")
    return Term("bvvar", width=width, name=name)


def bv_const(value: int, width: int) -> Term:
    if width <= 0:
        raise SortError("bit-vector width must be positive")
    return Term("bvconst", width=width, value=value & _mask(width))


def _both_const(a: Term, b: Term) -> bool:
    return a.op == "bvconst" and b.op == "bvconst"


def bv_add(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if _both_const(a, b):
        return bv_const(a.value + b.value, w)
    if a.op == "bvconst" and a.value == 0:
        return b
    if b.op == "bvconst" and b.value == 0:
        return a
    return Term("bvadd", (a, b), width=w)


def bv_sub(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if _both_const(a, b):
        return bv_const(a.value - b.value, w)
    if b.op == "bvconst" and b.value == 0:
        return a
    if a is b:
        return bv_const(0, w)
    return Term("bvsub", (a, b), width=w)


def bv_mul(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if _both_const(a, b):
        return bv_const(a.value * b.value, w)
    for x, y in ((a, b), (b, a)):
        if x.op == "bvconst":
            if x.value == 0:
                return bv_const(0, w)
            if x.value == 1:
                return y
    return Term("bvmul", (a, b), width=w)


def bv_neg(a: Term) -> Term:
    if not a.is_bv:
        raise SortError(f"expected BV term, got {a!r}")
    if a.op == "bvconst":
        return bv_const(-a.value, a.width)
    return Term("bvneg", (a,), width=a.width)


def bv_and(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if _both_const(a, b):
        return bv_const(a.value & b.value, w)
    return Term("bvand", (a, b), width=w)


def bv_or(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if _both_const(a, b):
        return bv_const(a.value | b.value, w)
    return Term("bvor", (a, b), width=w)


def bv_xor(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if _both_const(a, b):
        return bv_const(a.value ^ b.value, w)
    return Term("bvxor", (a, b), width=w)


def bv_not(a: Term) -> Term:
    if not a.is_bv:
        raise SortError(f"expected BV term, got {a!r}")
    if a.op == "bvconst":
        return bv_const(~a.value, a.width)
    return Term("bvnot", (a,), width=a.width)


def bv_ite(c: Term, t: Term, e: Term) -> Term:
    _require_bool(c)
    w = _require_bv_same(t, e)
    if c is TRUE:
        return t
    if c is FALSE:
        return e
    if t is e:
        return t
    return Term("bvite", (c, t, e), width=w)


def shl(a: Term, amount: int) -> Term:
    """Left shift by a constant amount."""
    if not a.is_bv:
        raise SortError(f"expected BV term, got {a!r}")
    if amount == 0:
        return a
    if a.op == "bvconst":
        return bv_const(a.value << amount, a.width)
    return Term("shl", (a,), width=a.width, value=amount)


def lshr(a: Term, amount: int) -> Term:
    """Logical right shift by a constant amount."""
    if not a.is_bv:
        raise SortError(f"expected BV term, got {a!r}")
    if amount == 0:
        return a
    if a.op == "bvconst":
        return bv_const(a.value >> amount, a.width)
    return Term("lshr", (a,), width=a.width, value=amount)


# ----------------------------------------------------------------------
# BV-valued predicates (Bool sort)
# ----------------------------------------------------------------------

def eq(a: Term, b: Term) -> Term:
    if a.is_bool and b.is_bool:
        return iff(a, b)
    w = _require_bv_same(a, b)
    del w
    if a is b:
        return TRUE
    if _both_const(a, b):
        return bool_const(a.value == b.value)
    return Term("eq", (a, b))


def ne(a: Term, b: Term) -> Term:
    return mk_not(eq(a, b))


def ult(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    del w
    if a is b:
        return FALSE
    if _both_const(a, b):
        return bool_const(a.value < b.value)
    return Term("ult", (a, b))


def ule(a: Term, b: Term) -> Term:
    return mk_not(ult(b, a))


def _to_signed(value: int, width: int) -> int:
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def slt(a: Term, b: Term) -> Term:
    w = _require_bv_same(a, b)
    if a is b:
        return FALSE
    if _both_const(a, b):
        return bool_const(_to_signed(a.value, w) < _to_signed(b.value, w))
    return Term("slt", (a, b))


def sle(a: Term, b: Term) -> Term:
    return mk_not(slt(b, a))


# ----------------------------------------------------------------------
# Reference evaluator (testing oracle)
# ----------------------------------------------------------------------

def evaluate(term: Term, env: Dict[str, object]):
    """Evaluate ``term`` under ``env`` mapping variable names to values.

    Bool variables map to ``bool``; BV variables map to non-negative ``int``
    (interpreted modulo 2^width).  This is the testing oracle the
    bit-blaster is validated against.
    """
    op = term.op
    if op == "boolconst":
        return term.value
    if op == "bvconst":
        return term.value
    if op == "boolvar":
        return bool(env[term.name])
    if op == "bvvar":
        return int(env[term.name]) & _mask(term.width)  # type: ignore[arg-type]
    args = [evaluate(a, env) for a in term.args]
    if op == "not":
        return not args[0]
    if op == "and":
        return all(args)
    if op == "or":
        return any(args)
    if op == "xor":
        return args[0] != args[1]
    if op == "ite":
        return args[1] if args[0] else args[2]
    w = term.width
    if op == "bvadd":
        return (args[0] + args[1]) & _mask(w)
    if op == "bvsub":
        return (args[0] - args[1]) & _mask(w)
    if op == "bvmul":
        return (args[0] * args[1]) & _mask(w)
    if op == "bvneg":
        return (-args[0]) & _mask(w)
    if op == "bvand":
        return args[0] & args[1]
    if op == "bvor":
        return args[0] | args[1]
    if op == "bvxor":
        return args[0] ^ args[1]
    if op == "bvnot":
        return (~args[0]) & _mask(w)
    if op == "bvite":
        return args[1] if args[0] else args[2]
    if op == "shl":
        return (args[0] << term.value) & _mask(w)
    if op == "lshr":
        return args[0] >> term.value
    aw = term.args[0].width
    if op == "eq":
        return args[0] == args[1]
    if op == "ult":
        return args[0] < args[1]
    if op == "slt":
        return _to_signed(args[0], aw) < _to_signed(args[1], aw)
    raise ValueError(f"unknown operator {op!r}")
