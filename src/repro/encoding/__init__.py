"""Symbolic encoding substrate: term IR, Tseitin CNF conversion, bit-blasting.

The BMC front end produces first-order constraints over fixed-width
bit-vector program variables and Boolean guard/ordering variables.  This
package lowers those constraints to CNF for the CDCL core:

* :mod:`repro.encoding.formula` -- hash-consed term IR with constant folding,
* :mod:`repro.encoding.cnf` -- Tseitin gate library over a SAT solver,
* :mod:`repro.encoding.bitblast` -- bit-vector operations to CNF.
"""

from repro.encoding.formula import (
    FALSE,
    TRUE,
    Term,
    bool_var,
    bv_add,
    bv_and,
    bv_const,
    bv_ite,
    bv_mul,
    bv_neg,
    bv_not,
    bv_or,
    bv_sub,
    bv_var,
    bv_xor,
    eq,
    evaluate,
    iff,
    implies,
    ite,
    mk_and,
    mk_not,
    mk_or,
    ne,
    shl,
    lshr,
    sle,
    slt,
    ule,
    ult,
)
from repro.encoding.cnf import CnfBuilder
from repro.encoding.bitblast import BitBlaster

__all__ = [
    "Term", "TRUE", "FALSE",
    "bool_var", "mk_not", "mk_and", "mk_or", "implies", "iff", "ite",
    "bv_var", "bv_const", "bv_add", "bv_sub", "bv_mul", "bv_neg",
    "bv_and", "bv_or", "bv_xor", "bv_not", "bv_ite", "shl", "lshr",
    "eq", "ne", "ult", "ule", "slt", "sle",
    "evaluate", "CnfBuilder", "BitBlaster",
]
