"""Tseitin gate library over the CDCL solver.

:class:`CnfBuilder` wraps a :class:`repro.sat.Solver` with named gate
constructors (AND, OR, XOR, ITE, half/full adders).  Each gate allocates a
fresh output literal and emits the defining clauses; inputs and outputs are
DIMACS literals.  Constant inputs are short-circuited where cheap.

The builder also maintains the conventional *true literal* ``t`` (a variable
fixed to true by a unit clause) so constants can flow through gate inputs
uniformly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.sat import Solver


class CnfBuilder:
    """Gate-level CNF construction helper bound to a solver instance."""

    def __init__(self, solver: Solver) -> None:
        self.solver = solver
        self._true = solver.new_var()
        solver.add_clause([self._true])
        self._and_cache = {}
        self._or_cache = {}
        self._xor_cache = {}

    # ------------------------------------------------------------------
    # Constants and variables
    # ------------------------------------------------------------------

    @property
    def true_lit(self) -> int:
        return self._true

    @property
    def false_lit(self) -> int:
        return -self._true

    def new_lit(self) -> int:
        return self.solver.new_var()

    def add_clause(self, lits: Sequence[int]) -> None:
        self.solver.add_clause(list(lits))

    def fix(self, lit: int) -> None:
        """Assert ``lit`` at the top level."""
        self.solver.add_clause([lit])

    def is_const(self, lit: int) -> bool:
        return abs(lit) == abs(self._true)

    def _const_value(self, lit: int) -> bool:
        return lit == self._true

    # ------------------------------------------------------------------
    # Gates
    # ------------------------------------------------------------------

    def and_gate(self, lits: Iterable[int]) -> int:
        """Output literal equivalent to the conjunction of ``lits``."""
        ins: List[int] = []
        for lit in lits:
            if self.is_const(lit):
                if not self._const_value(lit):
                    return self.false_lit
                continue
            ins.append(lit)
        if not ins:
            return self.true_lit
        ins = sorted(set(ins), key=abs)
        for lit in ins:
            if -lit in ins:
                return self.false_lit
        if len(ins) == 1:
            return ins[0]
        key = tuple(ins)
        cached = self._and_cache.get(key)
        if cached is not None:
            return cached
        out = self.new_lit()
        for lit in ins:
            self.add_clause([-out, lit])
        self.add_clause([out] + [-lit for lit in ins])
        self._and_cache[key] = out
        return out

    def or_gate(self, lits: Iterable[int]) -> int:
        """Output literal equivalent to the disjunction of ``lits``."""
        return -self.and_gate([-lit for lit in lits])

    def xor_gate(self, a: int, b: int) -> int:
        if self.is_const(a):
            return b if self._const_value(a) is False else -b
        if self.is_const(b):
            return a if self._const_value(b) is False else -a
        if a == b:
            return self.false_lit
        if a == -b:
            return self.true_lit
        key = (min(a, b), max(a, b))
        cached = self._xor_cache.get(key)
        if cached is not None:
            return cached
        out = self.new_lit()
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])
        self._xor_cache[key] = out
        return out

    def iff_gate(self, a: int, b: int) -> int:
        return -self.xor_gate(a, b)

    def ite_gate(self, c: int, t: int, e: int) -> int:
        """Output literal equivalent to ``c ? t : e``."""
        if self.is_const(c):
            return t if self._const_value(c) else e
        if t == e:
            return t
        out = self.new_lit()
        self.add_clause([-out, -c, t])
        self.add_clause([-out, c, e])
        self.add_clause([out, -c, -t])
        self.add_clause([out, c, -e])
        # Redundant but propagation-strengthening clauses.
        if t == -e:
            pass
        else:
            self.add_clause([-t, -e, out])
            self.add_clause([t, e, -out])
        return out

    def full_adder(self, a: int, b: int, cin: int):
        """Return (sum, carry-out) literals of a full adder."""
        s1 = self.xor_gate(a, b)
        total = self.xor_gate(s1, cin)
        c1 = self.and_gate([a, b])
        c2 = self.and_gate([s1, cin])
        carry = self.or_gate([c1, c2])
        return total, carry

    # ------------------------------------------------------------------
    # Implication helpers used by the encoder
    # ------------------------------------------------------------------

    def imply(self, premise: int, conclusion: int) -> None:
        """Assert ``premise -> conclusion``."""
        self.add_clause([-premise, conclusion])

    def imply_all(self, premise: int, conclusions: Iterable[int]) -> None:
        for c in conclusions:
            self.imply(premise, c)

    def imply_or(self, premise: int, disjuncts: Sequence[int]) -> None:
        """Assert ``premise -> (d1 | d2 | ...)``."""
        self.add_clause([-premise] + list(disjuncts))
