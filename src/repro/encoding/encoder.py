"""The whole-program SMT encoding (Section 3).

Builds ``Ψ = Φ_ssa ∧ Φ_ord`` over the CDCL core:

* ``Φ_ssa`` (bit-blasted): value assignments ``rho_va``, the error condition
  ``rho_err``, RF-Val / RF-Some, WS-Cond / WS-Some, and the
  read-modify-write atomicity constraints for ``atomic`` blocks and locks;
* ``Φ_ord`` (theory): program order lives in the event-graph skeleton;
  RF-Ord / WS-Ord are realized by registering each ordering variable with
  the :class:`repro.ordering.OrderingTheory` as a pre-created edge.

With ``fr_encoding=True`` (the Zord⁻ ablation) the from-read rule is
additionally encoded as explicit clauses ``rf ∧ ws → fr`` over fresh FR
ordering variables, and the theory solver's own from-read propagation is
expected to be disabled by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.encoding.bitblast import BitBlaster
from repro.encoding.cnf import CnfBuilder
from repro.encoding import formula as F
from repro.frontend.program import Event, SymbolicProgram
from repro.ordering import OrderingTheory
from repro.robustness import checkpoint as _robustness_checkpoint
from repro.sat import Solver

__all__ = [
    "EncodedProgram",
    "encode_program",
    "add_unwind_bound",
    "EncodingStats",
]


@dataclass
class EncodingStats:
    """Formula-size statistics (Fig. 8 discusses encoding size)."""

    rf_vars: int = 0
    ws_vars: int = 0
    fr_vars: int = 0
    sat_vars: int = 0
    clauses_hint: int = 0
    #: RF/WS candidates considered (post baseline skips) and how many the
    #: :mod:`repro.analysis` prune plan vetoed, plus its build time.
    analysis_pairs_total: int = 0
    analysis_pairs_pruned: int = 0
    analysis_time_s: float = 0.0


@dataclass
class EncodedProgram:
    """A program encoded into a solver + ordering theory, ready to solve."""

    solver: Solver
    theory: OrderingTheory
    blaster: BitBlaster
    symbolic: SymbolicProgram
    #: rf variable -> (write event, read event)
    rf_vars: Dict[int, Tuple[Event, Event]] = field(default_factory=dict)
    #: ws variable -> (write event, write event)
    ws_vars: Dict[int, Tuple[Event, Event]] = field(default_factory=dict)
    #: guard literal per event id
    guard_lits: Dict[int, int] = field(default_factory=dict)
    trivially_safe: bool = False
    stats: EncodingStats = field(default_factory=EncodingStats)
    #: bound -> activation literal of that bound's unwinding assumption
    #: (None for bounds needing no assumption); see :func:`add_unwind_bound`.
    unwind_assumptions: Dict[int, Optional[int]] = field(default_factory=dict)


def encode_program(
    sym: SymbolicProgram,
    detector: str = "icd",
    unit_edge: bool = True,
    fr_encoding: bool = False,
    max_conflict_clauses: int = 8,
    theory=None,
    memory_model: str = "sc",
    prune_plan=None,
) -> EncodedProgram:
    """Encode ``sym`` into CNF + an ordering theory; return the bundle.

    Args:
        sym: the front end's guarded SSA program.
        detector: cycle detection strategy (``"icd"`` / ``"tarjan"``).
        unit_edge: enable unit-edge theory propagation (Zord′ disables).
        fr_encoding: encode ``rho_fr`` explicitly and disable theory-side
            from-read propagation (Zord⁻).
        theory: override the theory solver (the IDL baseline passes its
            clock-difference theory here; it shares the registration
            interface of :class:`OrderingTheory`).
        memory_model: ``"sc"``, ``"tso"`` or ``"pso"``; under the weak
            models the event-graph skeleton carries only the preserved
            program order (see :mod:`repro.encoding.ppo`).
        prune_plan: optional :class:`repro.analysis.prune.PrunePlan`;
            RF/WS variables it proves false-in-every-model are skipped
            (model-equivalent encoding, see ``docs/ANALYSIS.md``).
    """
    _robustness_checkpoint("encode")
    if theory is None:
        from repro.encoding.ppo import preserved_program_order

        theory = OrderingTheory(
            len(sym.events),
            preserved_program_order(sym, memory_model),
            detector=detector,
            unit_edge=unit_edge,
            fr_propagation=not fr_encoding,
            max_conflict_clauses=max_conflict_clauses,
        )
    solver = Solver(theory)
    builder = CnfBuilder(solver)
    blaster = BitBlaster(builder)
    enc = EncodedProgram(solver, theory, blaster, sym)
    if prune_plan is not None:
        enc.stats.analysis_time_s = prune_plan.build_time_s

    # --- rho_va and assume constraints -------------------------------
    for constraint in sym.constraints:
        blaster.assert_term(constraint)

    # --- rho_err ------------------------------------------------------
    if not sym.error_disjuncts:
        enc.trivially_safe = True
        return enc
    err_lits = [blaster.blast_bool(d) for d in sym.error_disjuncts]
    solver.add_clause(err_lits)

    # --- guard literals ----------------------------------------------
    for ev in sym.memory_events():
        enc.guard_lits[ev.eid] = blaster.blast_bool(ev.guard)

    width = sym.width
    po_reach = theory.po_reach  # static PO reachability for pruning

    def value_var(ev: Event) -> F.Term:
        return F.bv_var(ev.ssa_name, width)

    rf_by_read: Dict[int, Dict[int, int]] = {}  # read eid -> {write eid: var}

    from repro.encoding.formula import TRUE as _TRUE_TERM

    def _definitely_shadowed(w, r, writes) -> bool:
        """True when an *unconditional* write sits (in preserved program
        order) between ``w`` and ``r``: the read can never observe ``w``,
        so no RF candidate is needed (static from-read pruning)."""
        wr = po_reach[w.eid]
        for w2 in writes:
            if (
                w2.eid != w.eid
                and w2.guard is _TRUE_TERM
                and (wr >> w2.eid) & 1
                and (po_reach[w2.eid] >> r.eid) & 1
            ):
                return True
        return False

    for addr in sym.addresses:
        # The RF candidate set is reads x writes and WS is quadratic in
        # writes, so encoding itself can exhaust a budget on wide programs.
        _robustness_checkpoint("encode")
        reads = sym.reads_of(addr)
        writes = sym.writes_of(addr)

        # Read-from variables and RF-Val / RF-Some constraints.
        for r in reads:
            g_r = enc.guard_lits[r.eid]
            rf_lits: List[int] = []
            rf_by_read[r.eid] = {}
            for w in writes:
                if (po_reach[r.eid] >> w.eid) & 1:
                    continue  # w is PO-after r: can never be read
                if _definitely_shadowed(w, r, writes):
                    continue
                enc.stats.analysis_pairs_total += 1
                if prune_plan is not None and prune_plan.rf_dead(
                    w, r, writes
                ):
                    # False in every model (shadowed under guards, or a
                    # lock acquire reading another acquire's stored 1).
                    enc.stats.analysis_pairs_pruned += 1
                    continue
                var = solver.new_var(relevant=True)
                theory.add_rf_var(var, w.eid, r.eid)
                enc.rf_vars[var] = (w, r)
                rf_by_read[r.eid][w.eid] = var
                g_w = enc.guard_lits[w.eid]
                builder.imply(var, g_r)
                builder.imply(var, g_w)
                eq_lit = blaster.blast_bool(F.eq(value_var(r), value_var(w)))
                builder.imply(var, eq_lit)
                rf_lits.append(var)
                enc.stats.rf_vars += 1
                if enc.stats.rf_vars & 0x3FF == 0:
                    _robustness_checkpoint("encode")
            # RF-Some: an enabled read takes its value from somewhere.
            builder.imply_or(g_r, rf_lits)

        # Write-serialization variables and WS-Cond / WS-Some constraints.
        ws_var: Dict[Tuple[int, int], int] = {}
        for i, w1 in enumerate(writes):
            for w2 in writes[i + 1:]:
                enc.stats.analysis_pairs_total += 2
                if prune_plan is not None:
                    fwd = None
                    if prune_plan.po_ordered(w1.eid, w2.eid):
                        fwd = (w1, w2)
                    elif prune_plan.po_ordered(w2.eid, w1.eid):
                        fwd = (w2, w1)
                    if fwd is not None:
                        # The reverse ws var is forced false by the
                        # theory's initial unit clauses; create only the
                        # forward one and shrink WS-Some accordingly.
                        wa, wb = fwd
                        v = solver.new_var(relevant=True)
                        theory.add_ws_var(v, wa.eid, wb.eid)
                        enc.ws_vars[v] = (wa, wb)
                        ws_var[(wa.eid, wb.eid)] = v
                        g1 = enc.guard_lits[w1.eid]
                        g2 = enc.guard_lits[w2.eid]
                        builder.imply(v, g1)
                        builder.imply(v, g2)
                        builder.add_clause([-g1, -g2, v])
                        enc.stats.ws_vars += 1
                        enc.stats.analysis_pairs_pruned += 1
                        if enc.stats.ws_vars & 0x3FF == 0:
                            _robustness_checkpoint("encode")
                        continue
                v12 = solver.new_var(relevant=True)
                theory.add_ws_var(v12, w1.eid, w2.eid)
                enc.ws_vars[v12] = (w1, w2)
                v21 = solver.new_var(relevant=True)
                theory.add_ws_var(v21, w2.eid, w1.eid)
                enc.ws_vars[v21] = (w2, w1)
                ws_var[(w1.eid, w2.eid)] = v12
                ws_var[(w2.eid, w1.eid)] = v21
                g1 = enc.guard_lits[w1.eid]
                g2 = enc.guard_lits[w2.eid]
                for v in (v12, v21):
                    builder.imply(v, g1)
                    builder.imply(v, g2)
                # WS-Some: both enabled -> one order or the other.
                builder.add_clause([-g1, -g2, v12, v21])
                enc.stats.ws_vars += 2
                if enc.stats.ws_vars & 0x3FF == 0:
                    _robustness_checkpoint("encode")

        # Static from-read lemmas: if a write w' lies in preserved program
        # order before the read, then rf(w, r) and ws(w, w') together
        # derive fr(r, w'), closing a cycle with the w' ⇝ r path.  The
        # theory would learn each of these through a conflict; emitting
        # them upfront is level-0 theory propagation in the spirit of
        # the initial unit clauses (guarded shadowing only -- the
        # unconditional case was pruned from the RF candidates above).
        for r in reads:
            for w0 in writes:
                rf = rf_by_read[r.eid].get(w0.eid)
                if rf is None:
                    continue
                for wx in writes:
                    if wx.eid == w0.eid:
                        continue
                    if not (po_reach[wx.eid] >> r.eid) & 1:
                        continue
                    ws = ws_var.get((w0.eid, wx.eid))
                    if ws is not None:
                        builder.add_clause([-rf, -ws])

        # Explicit from-read encoding (Zord⁻ only).
        if fr_encoding:
            fr_var: Dict[Tuple[int, int], int] = {}
            for r in reads:
                for w0 in writes:
                    rf = rf_by_read[r.eid].get(w0.eid)
                    if rf is None:
                        continue
                    for wk in writes:
                        if wk.eid == w0.eid:
                            continue
                        ws = ws_var.get((w0.eid, wk.eid))
                        if ws is None:
                            continue
                        key = (r.eid, wk.eid)
                        fv = fr_var.get(key)
                        if fv is None:
                            fv = solver.new_var(relevant=True)
                            theory.add_fr_var(fv, r.eid, wk.eid)
                            fr_var[key] = fv
                            enc.stats.fr_vars += 1
                        builder.add_clause([-rf, -ws, fv])

        # Read-modify-write atomicity for this address.
        for group in sym.rmw_groups:
            if group.addr != addr:
                continue
            r_eid, w_eid = group.read_eid, group.write_eid
            for w0 in writes:
                rf = rf_by_read.get(r_eid, {}).get(w0.eid)
                if rf is None or w0.eid == w_eid:
                    continue
                for wx in writes:
                    if wx.eid in (w0.eid, w_eid):
                        continue
                    ws_a = ws_var.get((w0.eid, wx.eid))
                    ws_b = ws_var.get((wx.eid, w_eid))
                    if ws_a is None or ws_b is None:
                        continue
                    # No write wx strictly between the RMW's source write
                    # and its own write.
                    builder.add_clause([-rf, -ws_a, -ws_b])

    # Level-0 unit-edge propagation against the PO skeleton.
    for clause in theory.initial_unit_clauses():
        solver.add_clause(clause)

    enc.stats.sat_vars = solver.nvars
    return enc


def add_unwind_bound(enc: EncodedProgram, bound: int) -> Optional[int]:
    """Materialize the unwinding assumption for ``bound``; return its
    activation literal (or None when the program needs no assumption at
    this bound, e.g. it is loop-free).

    Requires an encoding built from a front end run with
    ``unwind_assumptions=True``: the symbolic program then carries the
    frontier condition of every loop-header evaluation, tagged with the
    number of iterations completed before it.  The returned fresh variable
    ``u`` gets the clauses ``u -> not cond`` for every frontier condition
    at exactly ``bound`` iterations -- passing ``u`` as a solve()
    assumption restricts the search to executions where no loop runs more
    than ``bound`` times, without committing the solver to it permanently.
    Results are cached per bound, so deepening re-solves reuse the
    literals (and all clauses learned under them).
    """
    if bound in enc.unwind_assumptions:
        return enc.unwind_assumptions[bound]
    conds = [c for done, c in enc.symbolic.unwind_conds if done == bound]
    if not conds:
        enc.unwind_assumptions[bound] = None
        return None
    u = enc.solver.new_var()
    for cond in conds:
        lit = enc.blaster.blast_bool(cond)
        enc.solver.add_clause([-u, -lit])
    enc.unwind_assumptions[bound] = u
    return u
