"""Eager bit-blasting of the term IR to CNF.

Bit-vectors are lowered LSB-first to lists of literals; Boolean terms lower
to single literals.  Results are cached per term (terms are hash-consed, so
identity caching is sound), which keeps shared subterms shared in the CNF.

This mirrors the flattening CBMC performs before handing the formula to the
SAT core; the ordering variables of the encoding stay opaque Boolean
variables handled by the theory solver.
"""

from __future__ import annotations

from typing import Dict, List

from repro.encoding.cnf import CnfBuilder
from repro.encoding.formula import Term

__all__ = ["BitBlaster"]


class BitBlaster:
    """Lower terms to CNF through a :class:`CnfBuilder`.

    Variables are allocated on first sight and remembered by name, so the
    encoder can recover model values with :meth:`bv_value` / :meth:`bool_value`
    after a SAT answer.
    """

    def __init__(self, builder: CnfBuilder) -> None:
        self.builder = builder
        self._bool_cache: Dict[Term, int] = {}
        self._bv_cache: Dict[Term, List[int]] = {}
        self._bool_vars: Dict[str, int] = {}
        self._bv_vars: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    def blast_bool(self, term: Term) -> int:
        """Return a literal equivalent to the Bool-sorted ``term``."""
        if not term.is_bool:
            raise TypeError(f"expected Bool term, got {term!r}")
        cached = self._bool_cache.get(term)
        if cached is not None:
            return cached
        lit = self._blast_bool(term)
        self._bool_cache[term] = lit
        return lit

    def blast_bv(self, term: Term) -> List[int]:
        """Return LSB-first literals equivalent to the BV-sorted ``term``."""
        if not term.is_bv:
            raise TypeError(f"expected BV term, got {term!r}")
        cached = self._bv_cache.get(term)
        if cached is not None:
            return cached
        bits = self._blast_bv(term)
        self._bv_cache[term] = bits
        return bits

    def assert_term(self, term: Term) -> None:
        """Assert a Bool term at the top level."""
        self.builder.fix(self.blast_bool(term))

    def bool_value(self, name: str) -> bool:
        """Model value of a Boolean variable (after SAT)."""
        return self.builder.solver.model_lit(self._bool_vars[name])

    def bv_value(self, name: str) -> int:
        """Model value of a bit-vector variable (after SAT), as unsigned."""
        bits = self._bv_vars[name]
        value = 0
        for i, lit in enumerate(bits):
            if self.builder.solver.model_lit(lit):
                value |= 1 << i
        return value

    def has_var(self, name: str) -> bool:
        return name in self._bool_vars or name in self._bv_vars

    # ------------------------------------------------------------------
    # Boolean lowering
    # ------------------------------------------------------------------

    def _blast_bool(self, term: Term) -> int:
        b = self.builder
        op = term.op
        if op == "boolconst":
            return b.true_lit if term.value else b.false_lit
        if op == "boolvar":
            lit = self._bool_vars.get(term.name)
            if lit is None:
                lit = b.new_lit()
                self._bool_vars[term.name] = lit
            return lit
        if op == "not":
            return -self.blast_bool(term.args[0])
        if op == "and":
            return b.and_gate([self.blast_bool(a) for a in term.args])
        if op == "or":
            return b.or_gate([self.blast_bool(a) for a in term.args])
        if op == "xor":
            return b.xor_gate(
                self.blast_bool(term.args[0]), self.blast_bool(term.args[1])
            )
        if op == "ite":
            return b.ite_gate(
                self.blast_bool(term.args[0]),
                self.blast_bool(term.args[1]),
                self.blast_bool(term.args[2]),
            )
        if op == "eq":
            xs = self.blast_bv(term.args[0])
            ys = self.blast_bv(term.args[1])
            return b.and_gate([b.iff_gate(x, y) for x, y in zip(xs, ys)])
        if op == "ult":
            return self._ult(term.args[0], term.args[1])
        if op == "slt":
            return self._slt(term.args[0], term.args[1])
        raise ValueError(f"cannot blast Bool operator {op!r}")

    def _ult(self, a: Term, bterm: Term) -> int:
        """Unsigned a < b via a borrow chain (MSB-down comparator)."""
        b = self.builder
        xs = self.blast_bv(a)
        ys = self.blast_bv(bterm)
        # lt_i over bits [0..i]: lt = (~x_i & y_i) | ((x_i <-> y_i) & lt_{i-1})
        lt = b.false_lit
        for x, y in zip(xs, ys):  # LSB to MSB
            bit_lt = b.and_gate([-x, y])
            same = b.iff_gate(x, y)
            lt = b.or_gate([bit_lt, b.and_gate([same, lt])])
        return lt

    def _slt(self, a: Term, bterm: Term) -> int:
        """Signed a < b: flip sign bits, then unsigned compare."""
        b = self.builder
        xs = list(self.blast_bv(a))
        ys = list(self.blast_bv(bterm))
        xs[-1] = -xs[-1]
        ys[-1] = -ys[-1]
        lt = b.false_lit
        for x, y in zip(xs, ys):
            bit_lt = b.and_gate([-x, y])
            same = b.iff_gate(x, y)
            lt = b.or_gate([bit_lt, b.and_gate([same, lt])])
        return lt

    # ------------------------------------------------------------------
    # Bit-vector lowering
    # ------------------------------------------------------------------

    def _blast_bv(self, term: Term) -> List[int]:
        b = self.builder
        op = term.op
        w = term.width
        if op == "bvconst":
            return [
                b.true_lit if (term.value >> i) & 1 else b.false_lit
                for i in range(w)
            ]
        if op == "bvvar":
            bits = self._bv_vars.get(term.name)
            if bits is None:
                bits = [b.new_lit() for _ in range(w)]
                self._bv_vars[term.name] = bits
            if len(bits) != w:
                raise ValueError(
                    f"variable {term.name!r} redeclared with width {w}, "
                    f"was {len(bits)}"
                )
            return bits
        if op == "bvadd":
            return self._add(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == "bvsub":
            ys = [-y for y in self.blast_bv(term.args[1])]
            return self._add(self.blast_bv(term.args[0]), ys, carry_in=b.true_lit)
        if op == "bvneg":
            xs = [-x for x in self.blast_bv(term.args[0])]
            zero = [b.false_lit] * w
            return self._add(zero, xs, carry_in=b.true_lit)
        if op == "bvmul":
            return self._mul(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
        if op == "bvand":
            return [
                b.and_gate([x, y])
                for x, y in zip(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
            ]
        if op == "bvor":
            return [
                b.or_gate([x, y])
                for x, y in zip(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
            ]
        if op == "bvxor":
            return [
                b.xor_gate(x, y)
                for x, y in zip(self.blast_bv(term.args[0]), self.blast_bv(term.args[1]))
            ]
        if op == "bvnot":
            return [-x for x in self.blast_bv(term.args[0])]
        if op == "bvite":
            c = self.blast_bool(term.args[0])
            ts = self.blast_bv(term.args[1])
            es = self.blast_bv(term.args[2])
            return [b.ite_gate(c, t, e) for t, e in zip(ts, es)]
        if op == "shl":
            xs = self.blast_bv(term.args[0])
            k = term.value
            return [b.false_lit] * min(k, w) + xs[: max(0, w - k)]
        if op == "lshr":
            xs = self.blast_bv(term.args[0])
            k = term.value
            return xs[k:] + [b.false_lit] * min(k, w)
        raise ValueError(f"cannot blast BV operator {op!r}")

    def _add(self, xs: List[int], ys: List[int], carry_in: int = None) -> List[int]:
        b = self.builder
        carry = carry_in if carry_in is not None else b.false_lit
        out = []
        for x, y in zip(xs, ys):
            s, carry = b.full_adder(x, y, carry)
            out.append(s)
        return out

    def _mul(self, xs: List[int], ys: List[int]) -> List[int]:
        """Shift-add multiplier, truncated to the operand width."""
        b = self.builder
        w = len(xs)
        acc = [b.false_lit] * w
        for i, y in enumerate(ys):
            # Partial product: (xs << i) gated by y.
            partial = [b.false_lit] * i + [b.and_gate([x, y]) for x in xs[: w - i]]
            acc = self._add(acc, partial)
        return acc
