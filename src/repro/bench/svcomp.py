"""Synthetic SV-COMP-ConcurrencySafety-like benchmark suite.

The paper evaluates on the 1061 tasks of SV-COMP 2019's ConcurrencySafety
category, dominated by the ``wmm`` sub-category (898 small litmus-style
programs) plus ten smaller sub-categories of more realistic pthread
programs.  This module generates a suite with the same *shape* --
many small ``wmm`` litmus variants and fewer, larger tasks in
pthread/atomic/ldv-races/lit/... sub-categories -- with known ground-truth
verdicts (every generated program is independently checked by the test
suite against multiple engines).

All programs are generated structurally (threads, variables, and assertion
patterns vary), not copy-pasted.
"""

from __future__ import annotations

from typing import List

from repro.bench import patterns
from repro.bench.task import Task

__all__ = ["svcomp_suite"]


# ----------------------------------------------------------------------
# wmm litmus generators (safe under SC; the _weak outcome is asserted
# absent).  Each takes k = number of independent instances.
# ----------------------------------------------------------------------

def _sb(k: int, safe: bool) -> str:
    """Store buffering: forbidden outcome (all reads 0) under SC."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int x{i} = 0, y{i} = 0, a{i} = 0, b{i} = 0;")
        threads.append(f"thread w{i} {{ x{i} = 1; a{i} = y{i}; }}")
        threads.append(f"thread v{i} {{ y{i} = 1; b{i} = x{i}; }}")
        if safe:
            asserts.append(f"assert(!(a{i} == 0 && b{i} == 0));")
        else:
            asserts.append(f"assert(!(a{i} == 1 && b{i} == 1));")
    return _program(decls, threads, asserts)


def _mp(k: int, safe: bool) -> str:
    """Message passing: flag set implies data visible under SC."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int d{i} = 0, f{i} = 0, r{i} = 0, s{i} = 0;")
        threads.append(f"thread p{i} {{ d{i} = 42; f{i} = 1; }}")
        threads.append(f"thread c{i} {{ r{i} = f{i}; s{i} = d{i}; }}")
        if safe:
            asserts.append(f"assert(!(r{i} == 1 && s{i} == 0));")
        else:
            asserts.append(f"assert(!(r{i} == 1 && s{i} == 42));")
    return _program(decls, threads, asserts)


def _lb(k: int, safe: bool) -> str:
    """Load buffering: both loads seeing the other's store is non-SC."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int x{i} = 0, y{i} = 0, a{i} = 0, b{i} = 0;")
        threads.append(f"thread p{i} {{ a{i} = y{i}; x{i} = 1; }}")
        threads.append(f"thread q{i} {{ b{i} = x{i}; y{i} = 1; }}")
        if safe:
            asserts.append(f"assert(!(a{i} == 1 && b{i} == 1));")
        else:
            asserts.append(f"assert(!(a{i} == 1 && b{i} == 0));")
    return _program(decls, threads, asserts)


def _two_plus_two_w(k: int, safe: bool) -> str:
    """2+2W: both variables ending at the first thread's values is non-SC."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int x{i} = 0, y{i} = 0;")
        threads.append(f"thread p{i} {{ x{i} = 1; y{i} = 2; }}")
        threads.append(f"thread q{i} {{ y{i} = 1; x{i} = 2; }}")
        if safe:
            asserts.append(f"assert(!(x{i} == 1 && y{i} == 1));")
        else:
            asserts.append(f"assert(!(x{i} == 1 && y{i} == 2));")
    return _program(decls, threads, asserts)


def _corr(k: int, safe: bool) -> str:
    """Coherence: a later read cannot see an older same-thread write."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int x{i} = 0, a{i} = 0, b{i} = 0;")
        threads.append(f"thread p{i} {{ x{i} = 1; x{i} = 2; }}")
        threads.append(f"thread q{i} {{ a{i} = x{i}; b{i} = x{i}; }}")
        if safe:
            asserts.append(f"assert(!(a{i} == 2 && b{i} == 1));")
        else:
            asserts.append(f"assert(!(a{i} == 1 && b{i} == 2));")
    return _program(decls, threads, asserts)


def _iriw(k: int, safe: bool) -> str:
    """IRIW: the two readers disagreeing on write order is non-SC."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int x{i} = 0, y{i} = 0;")
        decls.append(f"int r1{i} = 0, r2{i} = 0, r3{i} = 0, r4{i} = 0;")
        threads.append(f"thread wa{i} {{ x{i} = 1; }}")
        threads.append(f"thread wb{i} {{ y{i} = 1; }}")
        threads.append(f"thread ra{i} {{ r1{i} = x{i}; r2{i} = y{i}; }}")
        threads.append(f"thread rb{i} {{ r3{i} = y{i}; r4{i} = x{i}; }}")
        if safe:
            asserts.append(
                f"assert(!(r1{i} == 1 && r2{i} == 0 && r3{i} == 1 && r4{i} == 0));"
            )
        else:
            asserts.append(f"assert(!(r1{i} == 1 && r2{i} == 1));")
    return _program(decls, threads, asserts)


def _r_pattern(k: int, safe: bool) -> str:
    """The R litmus pattern: write-write plus a read."""
    decls, threads, asserts = [], [], []
    for i in range(k):
        decls.append(f"int x{i} = 0, y{i} = 0, a{i} = 0;")
        threads.append(f"thread p{i} {{ x{i} = 1; y{i} = 1; }}")
        threads.append(f"thread q{i} {{ y{i} = 2; a{i} = x{i}; }}")
        if safe:
            # y == 2 at the end means q's write came last, so if q's read
            # also missed p's x write, p ran entirely after ... (non-SC
            # outcome ruled out): y==2 && a==0 implies p's y=1 before y=2,
            # hence x=1 before a=x, so a==1.  Outcome (y==2 && a==0) is
            # reachable only when p hasn't run yet -- but joins force
            # completion, so it is unreachable under SC.
            asserts.append(f"assert(!(y{i} == 2 && a{i} == 0));")
        else:
            asserts.append(f"assert(!(y{i} == 1));")
    return _program(decls, threads, asserts)


# ----------------------------------------------------------------------
# Non-wmm sub-categories
# ----------------------------------------------------------------------

def _mutex_counter(n_threads: int, increments: int, locked: bool) -> str:
    decls = ["int c = 0;"]
    if locked:
        decls.append("lock m;")
    threads = []
    for i in range(n_threads):
        body = []
        for k in range(increments):
            tmp = f"t{i}_{k}"
            if locked:
                body.append(
                    f"lock(m); int {tmp}; {tmp} = c; c = {tmp} + 1; unlock(m);"
                )
            else:
                body.append(f"int {tmp}; {tmp} = c; c = {tmp} + 1;")
        threads.append(f"thread t{i} {{ {' '.join(body)} }}")
    total = n_threads * increments
    asserts = [f"assert(c == {total});"]
    return _program(decls, threads, asserts)


def _atomic_counter(n_threads: int, increments: int) -> str:
    decls = ["int c = 0;"]
    threads = []
    for i in range(n_threads):
        body = " ".join("atomic { c = c + 1; }" for _ in range(increments))
        threads.append(f"thread t{i} {{ {body} }}")
    total = n_threads * increments
    return _program(decls, threads, [f"assert(c == {total});"])


def _tas_spinlock(n_threads: int, safe: bool) -> str:
    decls = ["int l = 0, c = 0;"]
    threads = []
    for i in range(n_threads):
        if safe:
            body = (
                "atomic { assume(l == 0); l = 1; } "
                f"int t{i}; t{i} = c; c = t{i} + 1; l = 0;"
            )
        else:
            body = f"int t{i}; t{i} = c; c = t{i} + 1;"
        threads.append(f"thread t{i} {{ {body} }}")
    return _program(decls, threads, [f"assert(c == {n_threads});"])


def _peterson(broken: bool) -> str:
    turn_set_0 = "skip;" if broken else "turn = 1;"
    turn_set_1 = "skip;" if broken else "turn = 0;"
    return f"""
    int flag0 = 0, flag1 = 0, turn = 0, inside = 0, bad = 0;
    thread p0 {{
        flag0 = 1; {turn_set_0}
        int f; int t; f = flag1; t = turn;
        while (f == 1 && t == 1) {{ f = flag1; t = turn; }}
        inside = inside + 1;
        if (inside != 1) {{ bad = 1; }}
        inside = inside - 1;
        flag0 = 0;
    }}
    thread p1 {{
        flag1 = 1; {turn_set_1}
        int f; int t; f = flag0; t = turn;
        while (f == 1 && t == 0) {{ f = flag0; t = turn; }}
        inside = inside + 1;
        if (inside != 1) {{ bad = 1; }}
        inside = inside - 1;
        flag1 = 0;
    }}
    main {{
        start p0; start p1; join p0; join p1;
        assert(bad == 0);
    }}
    """


def _dekker() -> str:
    return """
    int flag0 = 0, flag1 = 0, turn = 0, inside = 0, bad = 0;
    thread p0 {
        flag0 = 1;
        int f; f = flag1;
        while (f == 1) {
            int t; t = turn;
            if (t != 0) { flag0 = 0; assume(turn == 0); flag0 = 1; }
            f = flag1;
        }
        inside = inside + 1;
        if (inside != 1) { bad = 1; }
        inside = inside - 1;
        turn = 1; flag0 = 0;
    }
    thread p1 {
        flag1 = 1;
        int f; f = flag0;
        while (f == 1) {
            int t; t = turn;
            if (t != 1) { flag1 = 0; assume(turn == 1); flag1 = 1; }
            f = flag0;
        }
        inside = inside + 1;
        if (inside != 1) { bad = 1; }
        inside = inside - 1;
        turn = 0; flag1 = 0;
    }
    main {
        start p0; start p1; join p0; join p1;
        assert(bad == 0);
    }
    """


def _handshake(rounds: int, safe: bool) -> str:
    expect = rounds if safe else rounds + 1
    return f"""
    int req = 0, ack = 0, count = 0;
    thread client {{
        int i; i = 0;
        while (i < {rounds}) {{
            req = i + 1;
            int a; a = ack;
            while (a != i + 1) {{ a = ack; }}
            i = i + 1;
        }}
    }}
    thread server {{
        int j; j = 0;
        while (j < {rounds}) {{
            int r; r = req;
            while (r != j + 1) {{ r = req; }}
            count = count + 1;
            ack = j + 1;
            j = j + 1;
        }}
    }}
    main {{
        start client; start server; join client; join server;
        assert(count == {expect});
    }}
    """


def _ldv_register_race(locked: bool, n_writers: int) -> str:
    decls = ["int reg = 0, shadow = 0;"]
    if locked:
        decls.append("lock m;")
    threads = []
    for i in range(n_writers):
        val = i + 1
        if locked:
            body = f"lock(m); reg = {val}; shadow = {val}; unlock(m);"
        else:
            body = f"reg = {val}; shadow = {val};"
        threads.append(f"thread w{i} {{ {body} }}")
    # With the lock, reg and shadow are always updated together.
    return _program(decls, threads, ["assert(reg == shadow);"])


def _nondet_guess(safe: bool) -> str:
    if safe:
        return """
        int x = 0, y = 0;
        thread t { x = nondet(); assume(x < 10); assume(x >= 0); y = x * 2; }
        main { start t; join t; assert(y < 20); }
        """
    return """
    int x = 0, y = 0;
    thread t { x = nondet(); y = x + 1; }
    main { start t; join t; assert(y != 5); }
    """


def _fib_like(rounds: int, safe: bool) -> str:
    # Two threads race on a Fibonacci-ish recurrence; the safe bound is the
    # maximum achievable value with all interleavings, the unsafe variant
    # asserts a smaller bound that some interleaving exceeds.
    bound = _fib_bound(rounds)
    target = bound + 1 if safe else bound
    return f"""
    int a = 1, b = 1;
    thread ta {{
        int i; i = 0;
        while (i < {rounds}) {{ int t; t = b; a = a + t; i = i + 1; }}
    }}
    thread tb {{
        int j; j = 0;
        while (j < {rounds}) {{ int t; t = a; b = b + t; j = j + 1; }}
    }}
    main {{
        start ta; start tb; join ta; join tb;
        assert(a < {target} && b < {target});
    }}
    """


def _fib_bound(rounds: int) -> int:
    # Max of a/b after `rounds` alternating additions = fib(2*rounds + 1).
    fib = [1, 1]
    while len(fib) < 2 * rounds + 2:
        fib.append(fib[-1] + fib[-2])
    return fib[2 * rounds + 1]


def _big_parallel(n_threads: int, k: int) -> str:
    """Many threads, many events, all on disjoint variables.

    Trivial for the ordering theory (tiny per-address constraint sets) but
    hostile to baselines whose cost is global in the event count: the
    closure encoding's transitivity axioms are cubic in *all* events, and
    explicit-state/sequentialization engines face the full interleaving
    space."""
    decls, threads, asserts = [], [], []
    for i in range(n_threads):
        decls.append(f"int g{i} = 0;")
        body = " ".join(f"g{i} = {j + 1};" for j in range(k))
        threads.append(f"thread t{i} {{ {body} }}")
        asserts.append(f"assert(g{i} == {k});")
    return _program(decls, threads, asserts)


def _pipeline(stages: int) -> str:
    decls = [f"int s{i} = 0;" for i in range(stages + 1)]
    decls.insert(0, "lock m;")
    threads = []
    for i in range(stages):
        threads.append(
            f"thread st{i} {{ int v; v = 0; while (v == 0) {{ v = s{i}; }} "
            f"lock(m); s{i + 1} = v + 1; unlock(m); }}"
        )
    # Stage i reads v = s_i and writes s_{i+1} = v + 1, so the chain ends
    # at s_stages == stages + 1 (s0 is seeded with 1).
    asserts = [f"assert(s{stages} == {stages + 1});"]
    main_extra = "s0 = 1;"
    return _program(decls, threads, asserts, main_prologue=main_extra)


# ----------------------------------------------------------------------
# Assembly helpers
# ----------------------------------------------------------------------

def _program(
    decls: List[str],
    threads: List[str],
    asserts: List[str],
    main_prologue: str = "",
) -> str:
    names = [t.split()[1] for t in threads]
    starts = " ".join(f"start {n};" for n in names)
    joins = " ".join(f"join {n};" for n in names)
    return "\n".join(
        decls
        + threads
        + [f"main {{ {main_prologue} {starts} {joins} {' '.join(asserts)} }}"]
    )


# ----------------------------------------------------------------------
# Suite construction
# ----------------------------------------------------------------------

def svcomp_suite(scale: int = 1) -> List[Task]:
    """Build the suite.  ``scale`` widens the parameter sweeps."""
    tasks: List[Task] = []

    def add(name, category, source, safe, unwind=4):
        tasks.append(Task(f"{category}/{name}", category, source, safe, unwind))

    # wmm: many small litmus variants (the dominant sub-category).
    litmus = [
        ("sb", _sb), ("mp", _mp), ("lb", _lb),
        ("2+2w", _two_plus_two_w), ("corr", _corr), ("iriw", _iriw),
        ("r", _r_pattern),
    ]
    for fam_name, fam in litmus:
        for k in range(1, 2 + 2 * scale):
            add(f"{fam_name}-{k}-safe", "wmm", fam(k, True), True)
            add(f"{fam_name}-{k}-unsafe", "wmm", fam(k, False), False)

    # pthread: lock-based counters and handshakes.
    for n in range(2, 2 + scale + 1):
        add(f"mutex-counter-{n}-safe", "pthread", _mutex_counter(n, 1, True), True)
        add(f"mutex-counter-{n}-unsafe", "pthread", _mutex_counter(n, 1, False), False)
    add("handshake-2-safe", "pthread", _handshake(2, True), True, unwind=4)
    add("handshake-2-unsafe", "pthread", _handshake(2, False), False, unwind=4)

    # atomic.
    for n in range(2, 2 + scale + 1):
        add(f"atomic-counter-{n}", "atomic", _atomic_counter(n, 1), True)
        add(f"tas-lock-{n}-safe", "atomic", _tas_spinlock(n, True), True)
        add(f"tas-lock-{n}-unsafe", "atomic", _tas_spinlock(n, False), False)

    # ldv-races / driver-races.
    for n in (2, 3):
        add(f"register-{n}-locked", "ldv-races", _ldv_register_race(True, n), True)
        add(f"register-{n}-racy", "ldv-races", _ldv_register_race(False, n), False)
        add(f"dev-update-{n}-locked", "driver-races", _ldv_register_race(True, n + 1), True)
        add(f"dev-update-{n}-racy", "driver-races", _ldv_register_race(False, n + 1), False)

    # lit: textbook mutual exclusion protocols.
    add("peterson", "lit", _peterson(False), True, unwind=3)
    add("peterson-broken", "lit", _peterson(True), False, unwind=3)
    add("dekker", "lit", _dekker(), True, unwind=3)

    # nondet.
    add("guess-safe", "nondet", _nondet_guess(True), True)
    add("guess-unsafe", "nondet", _nondet_guess(False), False)

    # complex: racing recurrences.
    for r in range(1, 1 + scale + 1):
        add(f"fib-{r}-safe", "complex", _fib_like(r, True), True, unwind=r + 1)
        add(f"fib-{r}-unsafe", "complex", _fib_like(r, False), False, unwind=r + 1)

    # ext / C-DAC / divine: pipelines and mixed lock/flag protocols.
    for s in (2, 3):
        add(f"pipeline-{s}", "ext", _pipeline(s), True, unwind=4)
    add("cdac-counter", "C-DAC", _mutex_counter(2, 2, True), True)
    add("cdac-counter-racy", "C-DAC", _mutex_counter(2, 2, False), False)
    add("divine-handshake", "divine", _handshake(1, True), True)
    add("divine-handshake-bad", "divine", _handshake(1, False), False)

    # Larger tasks (the non-wmm categories of the original suite contain
    # programs far bigger than litmus tests; these reproduce the scaling
    # differences of Table 1/Figure 7).
    add("big-parallel-6x8", "divine", _big_parallel(6, 8), True, unwind=2)
    add("big-parallel-8x8", "divine", _big_parallel(8, 8), True, unwind=2)
    add("big-parallel-10x10", "ext", _big_parallel(10, 10), True, unwind=2)
    add("big-parallel-12x12", "ext", _big_parallel(12, 12), True, unwind=2)
    add("mutex-counter-3x2", "pthread", _mutex_counter(3, 2, True), True)
    add("handshake-3-safe", "pthread", _handshake(3, True), True, unwind=5)
    add("fib-4-safe", "complex", _fib_like(4, True), True, unwind=5)
    add("pipeline-4", "ext", _pipeline(4), True, unwind=4)

    # Classic synchronization idioms (repro.bench.patterns).
    add("ticket-lock-2", "pthread", patterns.ticket_lock(2), True, unwind=4)
    add("ticket-lock-3", "pthread", patterns.ticket_lock(3), True, unwind=5)
    add("barrier-2", "divine", patterns.barrier_sum(2), True, unwind=4)
    add("barrier-3", "divine", patterns.barrier_sum(3), True, unwind=5)
    add("rw-locked-2", "ldv-races", patterns.readers_writer(2, True), True)
    add("rw-racy-2", "ldv-races", patterns.readers_writer(2, False), False)
    add("transfer-locked", "C-DAC", patterns.bank_transfer(True), True)
    add("transfer-racy", "C-DAC", patterns.bank_transfer(False), False)
    add("handoff-3", "ext", patterns.flag_handoff(3), True, unwind=5)
    add("work-split-2x2", "C-DAC", patterns.work_split(2, 2), True, unwind=4)
    add("work-split-3x2", "C-DAC", patterns.work_split(3, 2), True, unwind=4)
    add("dcl-correct", "complex", patterns.double_checked_init(False), True)
    add("dcl-broken", "complex", patterns.double_checked_init(True), False)
    add("seqlock-correct", "complex", patterns.seqlock(False), True, unwind=4)
    add("seqlock-broken", "complex", patterns.seqlock(True), False, unwind=4)

    return tasks
