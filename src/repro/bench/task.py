"""Benchmark task descriptor."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Task:
    """One verification task of a benchmark suite.

    Attributes:
        name: unique task name, e.g. ``"wmm/sb-2"``.
        category: sub-category (``wmm``, ``pthread``, ...).
        source: program text in the mini language.
        expected_safe: ground-truth verdict.
        unwind: loop bound the task should be verified with.
    """

    name: str
    category: str
    source: str
    expected_safe: bool
    unwind: int = 4

    def __str__(self) -> str:
        return self.name
