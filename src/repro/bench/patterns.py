"""Classic synchronization idioms as benchmark generators.

These enrich the SV-COMP-like suite with the patterns the original
category's larger programs exercise: ticket locks, barriers,
reader/writer protocols, ordered-lock transfers, flag handoffs.  Every
generator returns mini-language source with a known verdict; all are
cross-validated against multiple engines by the test suite.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "ticket_lock",
    "barrier_sum",
    "readers_writer",
    "bank_transfer",
    "flag_handoff",
    "work_split",
    "double_checked_init",
    "seqlock",
]


def _main(threads: List[str], asserts: List[str], prologue: str = "") -> str:
    names = [t.split()[1] for t in threads]
    starts = " ".join(f"start {n};" for n in names)
    joins = " ".join(f"join {n};" for n in names)
    return f"main {{ {prologue} {starts} {joins} {' '.join(asserts)} }}"


def ticket_lock(n_threads: int) -> str:
    """Mutual exclusion via ticket lock (fetch-and-add on `next_ticket`,
    spin on `serving`).  The counter increments are then race-free."""
    decls = ["int next_ticket = 0, serving = 0, c = 0;"]
    threads = []
    for i in range(n_threads):
        threads.append(f"""
        thread t{i} {{
            int my;
            atomic {{ my = next_ticket; next_ticket = my + 1; }}
            int s; s = serving;
            while (s != my) {{ s = serving; }}
            int v; v = c; c = v + 1;
            serving = my + 1;
        }}
        """)
    asserts = [f"assert(c == {n_threads});"]
    return "\n".join(decls + threads + [_main(threads, asserts)])


def barrier_sum(n_threads: int) -> str:
    """Two-phase barrier: every thread writes its slot, passes the
    barrier, then reads its neighbour's slot."""
    decls = ["int arrived = 0;"]
    decls += [f"int slot{i} = 0, got{i} = 0;" for i in range(n_threads)]
    threads = []
    for i in range(n_threads):
        neighbour = (i + 1) % n_threads
        threads.append(f"""
        thread t{i} {{
            slot{i} = {i + 1};
            atomic {{ arrived = arrived + 1; }}
            int a; a = arrived;
            while (a < {n_threads}) {{ a = arrived; }}
            got{i} = slot{neighbour};
        }}
        """)
    asserts = [f"assert(got{i} == {((i + 1) % n_threads) + 1});" for i in range(n_threads)]
    return "\n".join(decls + threads + [_main(threads, asserts)])


def readers_writer(n_readers: int, locked: bool) -> str:
    """One writer updating a two-word record; readers must never observe a
    torn record.  Without the lock, tearing is observable."""
    decls = ["int lo = 0, hi = 0;"]
    if locked:
        decls.append("lock m;")
    threads = []
    if locked:
        threads.append("thread w { lock(m); lo = 7; hi = 7; unlock(m); }")
    else:
        threads.append("thread w { lo = 7; hi = 7; }")
    for i in range(n_readers):
        if locked:
            threads.append(
                f"thread r{i} {{ int a; int b; lock(m); a = lo; b = hi; "
                f"unlock(m); assert(a == b); }}"
            )
        else:
            threads.append(
                f"thread r{i} {{ int a; int b; a = lo; b = hi; "
                f"assert(a == b); }}"
            )
    return "\n".join(decls + threads + [_main(threads, [])])


def bank_transfer(locked: bool) -> str:
    """Two transfers between two accounts; the total is invariant only if
    the updates are locked."""
    decls = ["int acc1 = 50, acc2 = 50;"]
    if locked:
        decls.append("lock m;")
    guard_in = "lock(m);" if locked else "skip;"
    guard_out = "unlock(m);" if locked else "skip;"
    threads = [
        f"""
        thread t1 {{
            {guard_in}
            int a; a = acc1; acc1 = a - 10;
            int b; b = acc2; acc2 = b + 10;
            {guard_out}
        }}
        """,
        f"""
        thread t2 {{
            {guard_in}
            int a; a = acc2; acc2 = a - 20;
            int b; b = acc1; acc1 = b + 20;
            {guard_out}
        }}
        """,
    ]
    asserts = ["assert(acc1 + acc2 == 100);"]
    return "\n".join(decls + threads + [_main(threads, asserts)])


def flag_handoff(stages: int) -> str:
    """A value handed through a chain of threads, each waiting on the
    previous stage's flag (message passing chain)."""
    decls = [f"int d{i} = 0, f{i} = 0;" for i in range(stages + 1)]
    threads = []
    for i in range(stages):
        threads.append(f"""
        thread s{i} {{
            int g; g = f{i};
            while (g == 0) {{ g = f{i}; }}
            int v; v = d{i};
            d{i + 1} = v + 1;
            f{i + 1} = 1;
        }}
        """)
    asserts = [f"assert(d{stages} == {stages + 1});"]
    prologue = "d0 = 1; f0 = 1;"
    return "\n".join(decls + threads + [_main(threads, asserts, prologue)])


def work_split(n_threads: int, per_thread: int) -> str:
    """Each thread accumulates its own partial sum; main adds them up --
    race-free by construction."""
    decls = [f"int part{i} = 0;" for i in range(n_threads)]
    decls.insert(0, "int total = 0;")
    threads = []
    for i in range(n_threads):
        base = i * per_thread
        expected = sum(base + j + 1 for j in range(per_thread))
        threads.append(f"""
        thread t{i} {{
            int acc; acc = 0;
            int j; j = 0;
            while (j < {per_thread}) {{ acc = acc + {base} + j + 1; j = j + 1; }}
            part{i} = acc;
        }}
        """)
    total = sum(range(1, n_threads * per_thread + 1))
    sum_expr = " + ".join(f"part{i}" for i in range(n_threads))
    asserts = [f"assert({sum_expr} == {total});"]
    return "\n".join(decls + threads + [_main(threads, asserts)])


def double_checked_init(broken: bool) -> str:
    """Double-checked initialization.  Under SC the idiom is correct; the
    'broken' variant publishes the flag before the data, which is wrong
    even under SC."""
    publish = (
        "ready = 1; data = 42;" if broken else "data = 42; ready = 1;"
    )
    return f"""
    int data = 0, ready = 0;
    lock m;
    thread init {{
        int r; r = ready;
        if (r == 0) {{
            lock(m);
            int r2; r2 = ready;
            if (r2 == 0) {{ {publish} }}
            unlock(m);
        }}
    }}
    thread user {{
        int r; r = ready;
        if (r == 1) {{
            int d; d = data;
            assert(d == 42);
        }}
    }}
    main {{ start init; start user; join init; join user; }}
    """


def seqlock(broken: bool) -> str:
    """A seqlock-protected pair: the writer bumps the version around the
    update; the reader retries until it sees a stable even version.  The
    broken variant skips the version re-check."""
    recheck = "skip;" if broken else "v2 = ver;"
    return f"""
    int ver = 0, lo = 0, hi = 0, ok = 1;
    thread w {{
        ver = 1;
        lo = 5; hi = 5;
        ver = 2;
    }}
    thread r {{
        int v1; int v2; int a; int b;
        int done; done = 0;
        while (done == 0) {{
            v1 = ver;
            a = lo; b = hi;
            v2 = v1;
            {recheck}
            if (v1 == v2 && (v1 == 0 || v1 == 2)) {{ done = 1; }}
        }}
        if (a != b) {{ ok = 0; }}
    }}
    main {{ start w; start r; join w; join r; assert(ok == 1); }}
    """
