"""The nine parameterized programs of the Table 3 comparison.

Mini-language ports of the Nidhugg benchmark programs the paper selects
(gcc-compilable, assertion-carrying, parameterizable, Nidhugg-verifiable).
Substitutions from the C originals are documented per program; array-based
state (cir_buf, lamport's flag array) becomes fixed scalar slots selected
by if-chains, and floating point (float_r) becomes fixed-point arithmetic
-- both preserve the events/interleaving structure that the comparison
measures.

Parameter choices are scaled down from the paper's (a pure-Python stack
replaces native tools), preserving the growth *shape* of each family.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.bench.task import Task

__all__ = ["nidhugg_suite", "FAMILIES"]


def co_2_2w(n: int) -> Task:
    """N writer threads on disjoint variables; checked after joining.

    Trace-sparse (writes commute), formula size grows with N: the stateless
    checkers stay fast while BMC cost grows -- the paper's shape for this
    family.
    """
    decls = [f"int x{i} = 0;" for i in range(n)]
    threads = [f"thread w{i} {{ x{i} = {i + 1}; }}" for i in range(n)]
    asserts = " ".join(f"assert(x{i} == {i + 1});" for i in range(n))
    starts = " ".join(f"start w{i};" for i in range(n))
    joins = " ".join(f"join w{i};" for i in range(n))
    src = "\n".join(decls + threads + [f"main {{ {starts} {joins} {asserts} }}"])
    return Task(f"CO-2+2W({n})", "nidhugg", src, True, unwind=2)


def float_r(n: int) -> Task:
    """N threads computing a fixed-point product into private slots.

    Substitution: the C original accumulates float rounding results; we use
    fixed-point multiplication (the visible-event structure -- one write
    per thread, reads only after joins -- is identical).
    """
    decls = [f"int r{i} = 0;" for i in range(n)]
    threads = [f"thread f{i} {{ r{i} = {(i % 5) + 1} * 3; }}" for i in range(n)]
    asserts = " ".join(
        f"assert(r{i} == {((i % 5) + 1) * 3});" for i in range(n)
    )
    starts = " ".join(f"start f{i};" for i in range(n))
    joins = " ".join(f"join f{i};" for i in range(n))
    src = "\n".join(decls + threads + [f"main {{ {starts} {joins} {asserts} }}"])
    return Task(f"float_r({n})", "nidhugg", src, True, unwind=2)


def airline(n: int) -> Task:
    """N racy ticket sellers; seats can be oversold but never negative."""
    decls = [f"int seats = {n};"]
    threads = []
    for i in range(n):
        threads.append(
            f"thread s{i} {{ int t; t = seats; if (t > 0) {{ seats = t - 1; }} }}"
        )
    starts = " ".join(f"start s{i};" for i in range(n))
    joins = " ".join(f"join s{i};" for i in range(n))
    src = "\n".join(
        decls + threads + [f"main {{ {starts} {joins} assert(seats >= 0); }}"]
    )
    return Task(f"airline({n})", "nidhugg", src, True, unwind=2)


def fib_bench(n: int) -> Task:
    """Two threads racing on a Fibonacci recurrence; bound holds."""
    bound = _fib(2 * n + 1)
    src = f"""
    int a = 1, b = 1;
    thread ta {{
        int i; i = 0;
        while (i < {n}) {{ int t; t = b; a = a + t; i = i + 1; }}
    }}
    thread tb {{
        int j; j = 0;
        while (j < {n}) {{ int t; t = a; b = b + t; j = j + 1; }}
    }}
    main {{
        start ta; start tb; join ta; join tb;
        assert(a <= {bound} && b <= {bound});
    }}
    """
    return Task(f"fib_bench({n})", "nidhugg", src, True, unwind=n + 1)


def szymanski(n: int) -> Task:
    """Szymanski's mutual exclusion protocol, two processes.

    ``n`` bounds the busy-wait unrolling (the paper's parameter controls
    unrolling as well).
    """
    def proc(me: int, other: int) -> str:
        return f"""
        thread p{me} {{
            f{me} = 1;
            int g; g = f{other};
            while (g >= 3) {{ g = f{other}; }}
            f{me} = 3;
            g = f{other};
            if (g == 1) {{
                f{me} = 2;
                g = f{other};
                while (g != 4) {{ g = f{other}; }}
            }}
            f{me} = 4;
            {"g = f0; while (g >= 2) { g = f0; }" if me == 1 else "skip;"}
            inside = inside + 1;
            if (inside != 1) {{ bad = 1; }}
            inside = inside - 1;
            {"g = f1; while (g == 2 || g == 3) { g = f1; }" if me == 0 else "skip;"}
            f{me} = 0;
        }}
        """
    src = f"""
    int f0 = 0, f1 = 0, inside = 0, bad = 0;
    {proc(0, 1)}
    {proc(1, 0)}
    main {{
        start p0; start p1; join p0; join p1;
        assert(bad == 0);
    }}
    """
    return Task(f"szymanski({n})", "nidhugg", src, True, unwind=n + 1)


def lamport(n: int) -> Task:
    """Lamport's fast mutex (two threads); ``n`` bounds the retry loops.

    Substitution: the per-process boolean array ``b[]`` becomes the scalars
    ``b1``/``b2``.
    """
    def proc(me: int, other: int) -> str:
        return f"""
        thread q{me} {{
            int done; done = 0;
            while (done == 0) {{
                b{me} = 1;
                x = {me};
                int yy; yy = y;
                if (yy != 0) {{
                    b{me} = 0;
                    yy = y;
                    while (yy != 0) {{ yy = y; }}
                }} else {{
                    y = {me};
                    int xx; xx = x;
                    if (xx != {me}) {{
                        b{me} = 0;
                        int bo; bo = b{other};
                        while (bo != 0) {{ bo = b{other}; }}
                        yy = y;
                        if (yy == {me}) {{ done = 1; }} else {{
                            yy = y;
                            while (yy != 0) {{ yy = y; }}
                        }}
                    }} else {{ done = 1; }}
                }}
            }}
            inside = inside + 1;
            if (inside != 1) {{ bad = 1; }}
            inside = inside - 1;
            y = 0;
            b{me} = 0;
        }}
        """
    src = f"""
    int b1 = 0, b2 = 0, x = 0, y = 0, inside = 0, bad = 0;
    {proc(1, 2)}
    {proc(2, 1)}
    main {{
        start q1; start q2; join q1; join q2;
        assert(bad == 0);
    }}
    """
    return Task(f"lamport({n})", "nidhugg", src, True, unwind=n + 1)


def cir_buf(n: int) -> Task:
    """Single-producer single-consumer circular buffer of 2 slots.

    Substitution: the C array buffer becomes two scalar slots selected by
    if-chains on the (thread-local) head/tail indices.
    """
    expected = n * (n + 1) // 2
    src = f"""
    int slot0 = 0, slot1 = 0, count = 0, sum = 0;
    thread prod {{
        int i; i = 0;
        int w; w = 0;
        while (i < {n}) {{
            int c; c = count;
            while (c == 2) {{ c = count; }}
            if (w == 0) {{ slot0 = i + 1; w = 1; }} else {{ slot1 = i + 1; w = 0; }}
            atomic {{ count = count + 1; }}
            i = i + 1;
        }}
    }}
    thread cons {{
        int j; j = 0;
        int r; r = 0;
        int acc; acc = 0;
        while (j < {n}) {{
            int c; c = count;
            while (c == 0) {{ c = count; }}
            int v;
            if (r == 0) {{ v = slot0; r = 1; }} else {{ v = slot1; r = 0; }}
            acc = acc + v;
            atomic {{ count = count - 1; }}
            j = j + 1;
        }}
        sum = acc;
    }}
    main {{
        start prod; start cons; join prod; join cons;
        assert(sum == {expected});
    }}
    """
    return Task(f"cir_buf({n})", "nidhugg", src, True, unwind=n + 2)


def parker(n: int) -> Task:
    """Park/unpark handshake: a parker spinning on a permit while the
    unparker pulses it ``n`` times; the permit stays 0/1 throughout."""
    src = f"""
    int permit = 0, parked = 0;
    thread parker {{
        int spins; spins = 0;
        int p; p = permit;
        while (p == 0 && spins < {n}) {{ spins = spins + 1; p = permit; }}
        if (p == 1) {{ atomic {{ permit = 0; }} parked = 1; }}
        assert(permit == 0 || permit == 1);
    }}
    thread unparker {{
        int k; k = 0;
        while (k < {n}) {{ permit = 1; k = k + 1; }}
    }}
    main {{
        start parker; start unparker; join parker; join unparker;
        assert(permit == 0 || permit == 1);
    }}
    """
    return Task(f"parker({n})", "nidhugg", src, True, unwind=n + 1)


def account(n: int) -> Task:
    """Racy bank account (the buggy benchmark): unlocked deposits lose
    updates, so the final balance check fails on some interleaving."""
    decls = ["int balance = 10;"]
    threads = []
    for i in range(n):
        threads.append(
            f"thread d{i} {{ int t; t = balance; balance = t + 1; }}"
        )
    starts = " ".join(f"start d{i};" for i in range(n))
    joins = " ".join(f"join d{i};" for i in range(n))
    src = "\n".join(
        decls
        + threads
        + [f"main {{ {starts} {joins} assert(balance == {10 + n}); }}"]
    )
    return Task(f"account({n})", "nidhugg", src, False, unwind=2)


def _fib(k: int) -> int:
    fib = [1, 1]
    while len(fib) <= k:
        fib.append(fib[-1] + fib[-2])
    return fib[k]


#: family name -> (generator, paper's parameters, our scaled parameters)
FAMILIES: Dict[str, Tuple[Callable[[int], Task], List[int], List[int]]] = {
    "CO-2+2W": (co_2_2w, [5, 15, 25], [5, 15, 25]),
    "float_r": (float_r, [10, 50, 100], [10, 30, 50]),
    "airline": (airline, [3, 7, 9], [2, 3, 4]),
    "fib_bench": (fib_bench, [4, 5, 6], [2, 3, 4]),
    "szymanski": (szymanski, [2, 4, 6], [1, 2, 3]),
    "lamport": (lamport, [2, 6, 10], [1, 2, 3]),
    "cir_buf": (cir_buf, [5, 9, 13], [2, 3, 4]),
    "parker": (parker, [12, 20, 28], [2, 3, 4]),
    "account": (account, [5, 15, 25], [2, 3, 4]),
}


def nidhugg_suite(scaled: bool = True) -> List[Task]:
    """All nine families at the (scaled) parameters."""
    tasks: List[Task] = []
    for _name, (gen, paper_params, our_params) in FAMILIES.items():
        for p in (our_params if scaled else paper_params):
            tasks.append(gen(p))
    return tasks
