"""Benchmark workloads and the experiment harness.

* :mod:`repro.bench.svcomp` -- a synthetic suite shaped like SV-COMP's
  ConcurrencySafety category (many small ``wmm`` litmus tasks plus fewer,
  larger tasks across pthread/atomic/lit/... sub-categories), with known
  verdicts;
* :mod:`repro.bench.nidhugg` -- the nine parameterized programs of the
  Table 3 comparison (CO-2+2W, float_r, airline, fib_bench, szymanski,
  lamport, cir_buf, parker, account);
* :mod:`repro.bench.harness` -- runs engine configurations over task
  lists with time budgets and renders the paper's tables/figure series.
"""

from repro.bench.task import Task
from repro.bench.svcomp import svcomp_suite
from repro.bench.nidhugg import nidhugg_suite
from repro.bench.harness import (
    TaskResult,
    run_suite,
    render_summary_table,
    render_scatter,
    render_table3,
)

__all__ = [
    "Task",
    "svcomp_suite",
    "nidhugg_suite",
    "run_suite",
    "TaskResult",
    "render_summary_table",
    "render_scatter",
    "render_table3",
]
