"""Experiment harness: run engine configurations over task suites and
render the paper's tables and figure series.

The harness reports, per (task, engine): verdict, correctness against the
task's ground truth, wall time, and (optionally) peak traced memory --
the columns of Tables 1-3.  Scatter figures (Figs. 5-10) are rendered as
aligned per-task time pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.task import Task
from repro.verify import Verdict, VerifierConfig

__all__ = [
    "TaskResult",
    "execute_task",
    "run_task",
    "run_suite",
    "render_summary_table",
    "render_scatter",
    "render_table3",
    "results_to_csv",
]


@dataclass
class TaskResult:
    task: str
    category: str
    config: str
    verdict: str
    correct: Optional[bool]  # None when verdict is UNKNOWN
    time_s: float
    memory_bytes: int = 0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        return self.correct is True


def run_task(
    task: Task,
    config_factory: Callable[..., VerifierConfig],
    time_limit_s: Optional[float] = None,
    measure_memory: bool = False,
) -> TaskResult:
    """Run one engine on one task with a wall-clock budget."""
    config = config_factory(unwind=task.unwind, time_limit_s=time_limit_s)
    return execute_task(task, config, measure_memory)


def execute_task(
    task: Task,
    config: VerifierConfig,
    measure_memory: bool = False,
) -> TaskResult:
    """Run one fully-instantiated configuration on one task (the picklable
    grid cell shared with :func:`repro.portfolio.verify_batch`).

    Goes through :func:`repro.api.verify`, so exporting ``REPRO_SERVER``
    points the whole benchmark harness at a running verification service
    -- the suites then double as throughput/cache-hit traffic generators.
    """
    from repro.api import verify

    start = time.monotonic()
    try:
        result = verify(task.source, config, measure_memory=measure_memory)
        verdict = result.verdict
        memory = result.peak_memory_bytes
        stats = result.stats
    except RecursionError:  # pragma: no cover - defensive
        verdict, memory, stats = Verdict.UNKNOWN, 0, {}
    elapsed = time.monotonic() - start
    if verdict in (Verdict.UNKNOWN, Verdict.ERROR):
        # Neither exhaustion nor a contained crash is a wrong answer.
        correct: Optional[bool] = None
    else:
        expected = Verdict.SAFE if task.expected_safe else Verdict.UNSAFE
        correct = verdict == expected
    return TaskResult(
        task.name, task.category, config.name, verdict, correct,
        elapsed, memory, stats,
    )


def run_suite(
    tasks: Sequence[Task],
    config_factories: Dict[str, Callable[..., VerifierConfig]],
    time_limit_s: Optional[float] = 10.0,
    measure_memory: bool = False,
    jobs: int = 1,
) -> Dict[str, List[TaskResult]]:
    """Run every configuration over every task.

    With ``jobs > 1`` the (tasks × configs) grid is distributed over a
    process pool via :func:`repro.portfolio.verify_batch`; verdicts are
    identical to the serial run, per-cell wall times remain comparable
    because every cell still runs single-threaded.

    Returns ``{config_name: [TaskResult per task, aligned with tasks]}``.
    """
    if jobs > 1:
        from repro.portfolio.batch import verify_batch

        return verify_batch(
            tasks, config_factories, jobs=jobs,
            time_limit_s=time_limit_s, measure_memory=measure_memory,
        )
    results: Dict[str, List[TaskResult]] = {}
    for name, factory in config_factories.items():
        results[name] = [
            run_task(t, factory, time_limit_s, measure_memory) for t in tasks
        ]
    return results


def results_to_csv(results: Dict[str, List[TaskResult]]) -> str:
    """Flatten a result grid to CSV (one row per task x engine)."""
    lines = ["config,task,category,verdict,correct,time_s,memory_bytes"]
    for name, rows in results.items():
        for r in rows:
            correct = "" if r.correct is None else str(r.correct).lower()
            lines.append(
                f"{name},{r.task},{r.category},{r.verdict},{correct},"
                f"{r.time_s:.6f},{r.memory_bytes}"
            )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

def render_summary_table(
    results: Dict[str, List[TaskResult]],
    reference: str = "zord",
    title: str = "Summary",
) -> str:
    """Render the Table 1/2 layout: #solved, and CPU time / memory on the
    cases both the tool and the reference solved."""
    ref = results[reference]
    lines = [title]
    header = (
        f"{'Tool':<14} {'#Solved':>8} {'Wrong':>6} {'Both':>6} "
        f"{'CPU_time(s) (-/ref)':>22} {'Memory(MB) (-/ref)':>22}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    ref_solved = sum(1 for r in ref if r.solved)
    ref_wrong = sum(1 for r in ref if r.correct is False)
    lines.append(
        f"{reference:<14} {ref_solved:>8} {ref_wrong:>6} {'-':>6} "
        f"{'-':>22} {'-':>22}"
    )
    for name, rows in results.items():
        if name == reference:
            continue
        solved = sum(1 for r in rows if r.solved)
        wrong = sum(1 for r in rows if r.correct is False)
        both = [
            (a, b) for a, b in zip(rows, ref) if a.solved and b.solved
        ]
        t_tool = sum(a.time_s for a, _ in both)
        t_ref = sum(b.time_s for _, b in both)
        m_tool = sum(a.memory_bytes for a, _ in both) / 1e6
        m_ref = sum(b.memory_bytes for _, b in both) / 1e6
        lines.append(
            f"{name:<14} {solved:>8} {wrong:>6} {len(both):>6} "
            f"{t_tool:>10.2f}/{t_ref:<10.2f} "
            f"{m_tool:>10.1f}/{m_ref:<10.1f}"
        )
    return "\n".join(lines)


def render_scatter(
    results: Dict[str, List[TaskResult]],
    x_config: str,
    y_config: str,
    title: str,
    limit: Optional[int] = None,
) -> str:
    """Render a Fig. 5-10-style scatter as per-task time pairs."""
    xs = results[x_config]
    ys = results[y_config]
    lines = [title, f"{'task':<36} {x_config + '/s':>12} {y_config + '/s':>12}"]
    n_below = n_above = 0
    for x, y in zip(xs, ys):
        if limit is not None and len(lines) - 2 >= limit:
            break
        lines.append(f"{x.task:<36} {x.time_s:>12.4f} {y.time_s:>12.4f}")
        if y.time_s <= x.time_s:
            n_below += 1
        else:
            n_above += 1
    total_x = sum(x.time_s for x in xs)
    total_y = sum(y.time_s for y in ys)
    lines.append(
        f"-- {y_config} faster on {n_below}/{n_below + n_above} tasks; "
        f"totals {x_config}={total_x:.2f}s {y_config}={total_y:.2f}s"
    )
    return "\n".join(lines)


def render_table3(
    tasks: Sequence[Task],
    results: Dict[str, List[TaskResult]],
    tool_order: Sequence[str] = ("nidhugg-rfsc", "genmc", "cbmc", "zord"),
    traces_from: str = "genmc",
) -> str:
    """Render the Table 3 layout: per task, verdict, trace count, and the
    per-tool times (TO marks budget exhaustion)."""
    lines = [
        f"{'Files':<16} {'Rst':>4} {'Traces':>8} "
        + " ".join(f"{t:>14}" for t in tool_order)
    ]
    for i, task in enumerate(tasks):
        row = [f"{task.name:<16}"]
        row.append(f"{'T' if task.expected_safe else 'F':>4}")
        traces = results[traces_from][i].stats.get("traces", 0)
        row.append(f"{traces:>8}")
        for tool in tool_order:
            r = results[tool][i]
            cell = "TO" if r.verdict == Verdict.UNKNOWN else f"{r.time_s:.2f}"
            if r.correct is False:
                cell += "(!)"
            row.append(f"{cell:>14}")
        lines.append(" ".join(row))
    return "\n".join(lines)
