"""The Python-subset contract: one exception type, precise locations.

Every construct the translator cannot map onto the mini language is
rejected with a :class:`SubsetError` carrying the offending source
position -- the message always reads ``FILE:LINE:COL: ...`` so editors,
the CLI, and the service can surface it verbatim.  Python syntax errors
in the input file are wrapped into the same type: from the caller's
point of view "not a verifiable Python program" is one failure mode.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SubsetError"]


class SubsetError(ValueError):
    """The input is outside the supported Python subset (or not valid
    Python at all).  ``path``/``line``/``col`` locate the offending
    construct; the rendered message embeds them."""

    def __init__(
        self,
        message: str,
        path: str = "<python>",
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        self.path = path
        self.line = line
        self.col = col
        where = path
        if line is not None:
            where += f":{line}"
            if col is not None:
                where += f":{col}"
        super().__init__(f"{where}: {message}")

    @classmethod
    def at(cls, node, message: str, path: str = "<python>") -> "SubsetError":
        """Build a SubsetError located at a Python ``ast`` node."""
        line = getattr(node, "lineno", None)
        col = getattr(node, "col_offset", None)
        if col is not None:
            col += 1  # ast columns are 0-based; diagnostics are 1-based
        return cls(message, path=path, line=line, col=col)
