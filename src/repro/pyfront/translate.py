"""The ``ast``-based Python -> mini-language translator.

The accepted subset (see ``docs/PYFRONT.md`` for the full contract):

* **module level**: ``import threading`` / ``import random`` (aliases
  allowed); shared globals ``name = <int literal>`` (``True``/``False``
  count as 1/0); mutexes ``name = threading.Lock()`` or ``RLock()``;
  zero-argument ``def`` functions; and one trailing
  ``if __name__ == "__main__":`` block -- the program's main thread;
* **main block**: ``t = threading.Thread(target=fn)`` bindings,
  ``t.start()`` / ``t.join()``, plus any thread-body statement;
* **thread/function bodies**: assignments and augmented assignments over
  ``int`` locals and shared globals (``global`` declarations honored with
  Python's scoping rules: a name assigned anywhere in a function without
  ``global`` is local *everywhere* in it), ``assert``, ``if``/``elif``/
  ``else``, ``while``, ``for .. in range(..)``, ``with lock:``,
  ``lock.acquire()``/``release()``, ``pass``, ``print(...)`` (modeled as
  a no-op), calls to zero-argument helper functions (inlined, recursion
  rejected), and ``random.randint(lo, hi)`` as a nondeterministic int
  bounded by an ``assume``;
* **expressions**: int/bool literals, names, ``+ - * & | ^``, unary
  ``-``/``~``/``not``, comparisons (chaining allowed), ``and``/``or``.

Everything else raises :class:`~repro.pyfront.subset.SubsetError` with a
``file:line:col`` diagnostic.  Translated mini-AST nodes carry the
*Python* source positions, so semantic errors, static race warnings
(:mod:`repro.analysis`) and witness annotation all point back at the
original file.
"""

from __future__ import annotations

import ast as pyast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast as mast
from repro.lang.lexer import KEYWORDS as _MINI_KEYWORDS
from repro.pyfront.subset import SubsetError

__all__ = ["Translation", "ThreadBinding", "translate_source", "translate_file"]

#: Python AST binary ops -> mini-language operator text.
_BINOPS = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.BitAnd: "&",
    pyast.BitOr: "|",
    pyast.BitXor: "^",
}

_CMPOPS = {
    pyast.Eq: "==",
    pyast.NotEq: "!=",
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
}

#: Inline depth cap for helper-function calls (recursion is rejected
#: outright; this bounds pathological but acyclic call chains).
_MAX_INLINE_DEPTH = 16

_SEMA_POS = re.compile(r"^(\d+):(\d+): (.*)$", re.S)


@dataclass(frozen=True)
class ThreadBinding:
    """One ``t = threading.Thread(target=fn)`` binding in the main block."""

    name: str  # the mini thread name (Python variable, keyword-mangled)
    target: str  # the target function's name
    line: int  # creation site, for dynexec thread-identity matching


@dataclass
class Translation:
    """The result of translating one Python program.

    Attributes:
        program: the mini-language AST; node positions are Python
            ``(line, col)`` pairs into ``source``.
        path: the Python file name used in diagnostics.
        source: the original Python source text.
        shared_lines: Python line numbers whose statements touch shared
            state (shared-global reads/writes, lock operations,
            ``start``/``join``) -- the preemption points of the dynamic
            executor (:mod:`repro.pyfront.dynexec`).
        thread_order: :class:`ThreadBinding` records in creation order.
        shared_globals: names of the shared int globals.
        locks: names of the mutex globals (``rlocks`` is the reentrant
            subset).
    """

    program: mast.Program
    path: str
    source: str
    shared_lines: frozenset = frozenset()
    thread_order: Tuple[ThreadBinding, ...] = ()
    shared_globals: Tuple[str, ...] = ()
    locks: Tuple[str, ...] = ()
    rlocks: Tuple[str, ...] = ()

    def python_line(self, lineno: int) -> str:
        """The raw source line at 1-based ``lineno`` (empty if absent)."""
        lines = self.source.splitlines()
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


def translate_source(source: str, filename: str = "<python>") -> Translation:
    """Translate Python ``source``; raise :class:`SubsetError` outside
    the subset (including plain syntax errors)."""
    try:
        module = pyast.parse(source, filename=filename)
    except SyntaxError as exc:
        raise SubsetError(
            f"not valid Python: {exc.msg}",
            path=filename,
            line=exc.lineno,
            col=exc.offset,
        ) from None
    return _Translator(module, source, filename).run()


def translate_file(path: str) -> Translation:
    """Translate the Python program at ``path``."""
    with open(path, "r", encoding="utf-8") as f:
        source = f.read()
    return translate_source(source, filename=path)


# ----------------------------------------------------------------------
# Scope analysis
# ----------------------------------------------------------------------


def _scan_scope(body: List[pyast.stmt]) -> Tuple[Set[str], Set[str]]:
    """Python function scoping: ``(assigned names, global-declared
    names)`` over a whole body.  A name assigned anywhere without a
    ``global`` declaration is local throughout the function."""
    assigned: Set[str] = set()
    declared_global: Set[str] = set()

    def walk(stmts: List[pyast.stmt]) -> None:
        for s in stmts:
            if isinstance(s, pyast.Global):
                declared_global.update(s.names)
            elif isinstance(s, pyast.Assign):
                for t in s.targets:
                    if isinstance(t, pyast.Name):
                        assigned.add(t.id)
            elif isinstance(s, pyast.AugAssign):
                if isinstance(s.target, pyast.Name):
                    assigned.add(s.target.id)
            elif isinstance(s, pyast.For):
                if isinstance(s.target, pyast.Name):
                    assigned.add(s.target.id)
                walk(s.body)
                walk(s.orelse)
            elif isinstance(s, (pyast.If, pyast.While)):
                walk(s.body)
                walk(s.orelse)
            elif isinstance(s, pyast.With):
                walk(s.body)

    walk(body)
    return assigned - declared_global, declared_global


class _Scope:
    """One translation scope (a thread body, the main block, or an
    inlined helper): maps Python local names to unique mini names."""

    def __init__(self, translator: "_Translator", prefix: str = "") -> None:
        self.tr = translator
        self.prefix = prefix
        self.locals: Dict[str, str] = {}
        self.global_decls: Set[str] = set()
        #: Names bound to Thread objects (main scope only).
        self.threads: Dict[str, ThreadBinding] = {}
        #: Locks statically held via enclosing ``with`` blocks.
        self.held: Tuple[str, ...] = ()
        #: Mini names already claimed in the enclosing thread (shared
        #: across inlined helpers so hoisted decls never collide).
        self.taken: Set[str]
        self.decls: List[mast.Stmt] = []


# ----------------------------------------------------------------------
# The translator
# ----------------------------------------------------------------------


class _Translator:
    def __init__(self, module: pyast.Module, source: str, path: str) -> None:
        self.module = module
        self.source = source
        self.path = path
        self.shared: Dict[str, int] = {}  # global name -> init value
        self.lock_names: List[str] = []
        self.rlock_names: Set[str] = set()
        self.functions: Dict[str, pyast.FunctionDef] = {}
        self.threading_aliases: Set[str] = set()
        self.random_aliases: Set[str] = set()
        self.main_body: Optional[List[pyast.stmt]] = None
        self.main_line: int = 0
        self.shared_lines: Set[int] = set()
        self.thread_order: List[ThreadBinding] = []
        self._tmp_counter = 0
        self._global_pos: Dict[str, Tuple[int, int]] = {}
        self._mini_idents: Dict[str, str] = {}

    # -- small helpers --------------------------------------------------

    def _m(self, name: str) -> str:
        """The mini-language identifier for a Python name.

        Python happily names a mutex ``lock`` or a thread ``main`` --
        both mini-language keywords -- and the translated program must
        unparse to re-parseable canonical source (that form is the
        service's verdict-cache key).  Colliding names get underscores
        appended until they are plain identifiers, uniquely per Python
        name.
        """
        mini = self._mini_idents.get(name)
        if mini is None:
            mini = name
            taken = set(self._mini_idents.values())
            while mini in _MINI_KEYWORDS or mini in taken:
                mini += "_"
            self._mini_idents[name] = mini
        return mini

    def err(self, node, message: str) -> SubsetError:
        return SubsetError.at(node, message, path=self.path)

    def pos(self, node) -> Tuple[int, int]:
        return (node.lineno, node.col_offset + 1)

    def is_global_name(self, name: str) -> bool:
        return (
            name in self.shared
            or name in self.lock_names
            or name in self.functions
            or name in self.threading_aliases
            or name in self.random_aliases
        )

    # -- module level ---------------------------------------------------

    def run(self) -> Translation:
        for node in self.module.body:
            self._module_stmt(node)
        if self.main_body is None:
            raise SubsetError(
                "missing 'if __name__ == \"__main__\":' block (the program "
                "needs a main thread to verify)",
                path=self.path,
                line=len(self.source.splitlines()) or 1,
            )
        globals_ = [
            mast.GlobalDecl(self._m(name), init, pos=self._global_pos.get(name))
            for name, init in self.shared.items()
        ]
        globals_ += [
            mast.GlobalDecl(
                self._m(name), 0, is_lock=True, pos=self._global_pos.get(name)
            )
            for name in self.lock_names
        ]

        taken: Set[str] = {
            self._m(n) for n in (*self.shared, *self.lock_names)
        }
        main_scope = self._new_scope(taken=set(taken))
        main_stmts = self._translate_body(
            self.main_body, main_scope, is_main=True
        )
        threads: List[mast.ThreadDef] = []
        for binding in self.thread_order:
            fn = self.functions[binding.target]
            scope = self._new_scope(taken=set(taken))
            body = self._translate_body(fn.body, scope, is_main=False)
            threads.append(
                mast.ThreadDef(binding.name, scope.decls + body, pos=self.pos(fn))
            )
        main = mast.ThreadDef(
            "main", main_scope.decls + main_stmts, pos=(self.main_line, 1)
        )
        program = mast.Program(globals_, threads, main)
        self._check(program)
        return Translation(
            program=program,
            path=self.path,
            source=self.source,
            shared_lines=frozenset(self.shared_lines),
            thread_order=tuple(self.thread_order),
            shared_globals=tuple(self.shared),
            locks=tuple(self.lock_names),
            rlocks=tuple(sorted(self.rlock_names)),
        )

    def _check(self, program: mast.Program) -> None:
        """Run the mini-language semantic checker; its positions are
        Python positions here, so re-raise as a located SubsetError."""
        from repro.lang.sema import SemanticError, check_program

        try:
            check_program(program)
        except SemanticError as exc:
            m = _SEMA_POS.match(str(exc))
            if m:
                raise SubsetError(
                    m.group(3), path=self.path,
                    line=int(m.group(1)), col=int(m.group(2)),
                ) from None
            raise SubsetError(str(exc), path=self.path) from None

    def _module_stmt(self, node: pyast.stmt) -> None:
        if isinstance(node, pyast.Import):
            for alias in node.names:
                if alias.name == "threading":
                    self.threading_aliases.add(alias.asname or alias.name)
                elif alias.name == "random":
                    self.random_aliases.add(alias.asname or alias.name)
                else:
                    raise self.err(
                        node,
                        f"unsupported import {alias.name!r} (only "
                        "'threading' and 'random' are in the subset)",
                    )
            return
        if isinstance(node, pyast.ImportFrom):
            raise self.err(
                node, "unsupported 'from ... import'; use plain "
                "'import threading' / 'import random'"
            )
        if isinstance(node, pyast.Assign):
            self._module_assign(node)
            return
        if isinstance(node, pyast.FunctionDef):
            if node.decorator_list:
                raise self.err(node, "decorators are outside the subset")
            args = node.args
            if (
                args.args or args.posonlyargs or args.kwonlyargs
                or args.vararg or args.kwarg
            ):
                raise self.err(
                    node,
                    f"function {node.name!r} takes arguments; only "
                    "zero-argument functions are in the subset",
                )
            if node.name in self.functions or self.is_global_name(node.name):
                raise self.err(node, f"duplicate definition of {node.name!r}")
            self.functions[node.name] = node
            return
        if isinstance(node, pyast.If) and self._is_main_guard(node.test):
            if self.main_body is not None:
                raise self.err(node, "duplicate __main__ block")
            if node.orelse:
                raise self.err(node, "__main__ block cannot have an else")
            self.main_body = node.body
            self.main_line = node.lineno
            return
        if isinstance(node, pyast.Expr) and isinstance(
            node.value, pyast.Constant
        ) and isinstance(node.value.value, str):
            return  # module docstring
        raise self.err(
            node,
            f"unsupported module-level statement {type(node).__name__}; "
            "program logic belongs under if __name__ == \"__main__\":",
        )

    def _is_main_guard(self, test: pyast.expr) -> bool:
        return (
            isinstance(test, pyast.Compare)
            and isinstance(test.left, pyast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], pyast.Eq)
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], pyast.Constant)
            and test.comparators[0].value == "__main__"
        )

    def _module_assign(self, node: pyast.Assign) -> None:
        if len(node.targets) != 1 or not isinstance(node.targets[0], pyast.Name):
            raise self.err(
                node, "module-level assignment must bind one plain name"
            )
        name = node.targets[0].id
        if self.is_global_name(name):
            raise self.err(node, f"duplicate global {name!r}")
        lock_kind = self._lock_ctor(node.value)
        if lock_kind is not None:
            self.lock_names.append(name)
            if lock_kind == "RLock":
                self.rlock_names.add(name)
            self._global_pos[name] = self.pos(node)
            return
        value = self._const_int(node.value)
        if value is None:
            raise self.err(
                node.value,
                "shared globals must be initialized with an int/bool "
                "literal (or threading.Lock()/RLock())",
            )
        self.shared[name] = value
        self._global_pos[name] = self.pos(node)

    def _lock_ctor(self, value: pyast.expr) -> Optional[str]:
        """``threading.Lock()``/``RLock()`` -> the ctor name, else None."""
        if not (isinstance(value, pyast.Call) and not value.args
                and not value.keywords):
            return None
        fn = value.func
        if (
            isinstance(fn, pyast.Attribute)
            and isinstance(fn.value, pyast.Name)
            and fn.value.id in self.threading_aliases
            and fn.attr in ("Lock", "RLock")
        ):
            return fn.attr
        return None

    def _const_int(self, node: pyast.expr) -> Optional[int]:
        if isinstance(node, pyast.Constant):
            if isinstance(node.value, bool):
                return int(node.value)
            if isinstance(node.value, int):
                return node.value
            return None
        if (
            isinstance(node, pyast.UnaryOp)
            and isinstance(node.op, pyast.USub)
        ):
            inner = self._const_int(node.operand)
            return None if inner is None else -inner
        return None

    # -- scopes and bodies ----------------------------------------------

    def _new_scope(self, taken: Set[str], prefix: str = "") -> _Scope:
        scope = _Scope(self, prefix=prefix)
        scope.taken = taken
        return scope

    def _claim_mini_name(self, scope: _Scope, name: str) -> str:
        """A unique, non-shadowing mini name for a Python local."""
        candidate = scope.prefix + name
        k = 2
        while candidate in scope.taken or candidate in _MINI_KEYWORDS:
            candidate = f"{scope.prefix}{name}_{k}"
            k += 1
        scope.taken.add(candidate)
        return candidate

    def _translate_body(
        self,
        body: List[pyast.stmt],
        scope: _Scope,
        is_main: bool,
        inline_depth: int = 0,
    ) -> List[mast.Stmt]:
        assigned, global_decls = _scan_scope(body)
        if is_main and inline_depth == 0:
            # The __main__ block runs at module scope: an assignment to a
            # shared global there hits the global without any `global`
            # declaration.  Rebinding a lock or function name, however,
            # is outside the subset.
            for name in sorted(assigned):
                if name in self.lock_names or name in self.functions:
                    raise SubsetError(
                        f"rebinding module name {name!r} in the __main__ "
                        "block is outside the subset",
                        path=self.path,
                        line=self.main_line,
                    )
            shared_assigned = assigned & set(self.shared)
            global_decls |= shared_assigned
            assigned -= shared_assigned
        scope.global_decls |= global_decls
        for g in sorted(global_decls):
            if g not in self.shared:
                # locate the offending `global` statement if possible
                for s in body:
                    if isinstance(s, pyast.Global) and g in s.names:
                        raise self.err(
                            s, f"'global {g}' does not name a shared int "
                            "global",
                        )
                raise SubsetError(
                    f"'global {g}' does not name a shared int global",
                    path=self.path,
                )
        # Hoist every local with an int-zero declaration: Python locals
        # have no declaration point, the mini language requires one.  A
        # Python read-before-assign would be an UnboundLocalError at
        # runtime; the model reads 0 instead (documented limitation).
        pending_locals = sorted(assigned)
        out: List[mast.Stmt] = []
        # Thread bindings are discovered while translating; pre-scan for
        # them so their names are not hoisted as int locals.
        thread_bound = self._prescan_thread_names(body) if is_main else set()
        for name in pending_locals:
            if name in thread_bound:
                continue
            mini = self._claim_mini_name(scope, name)
            scope.locals[name] = mini
            scope.decls.append(
                mast.LocalDecl(
                    mini, mast.IntLit(0), pos=(body[0].lineno, 1) if body else None
                )
            )
        for i, s in enumerate(body):
            out.extend(
                self._stmt(
                    s, scope, is_main,
                    is_last=(i == len(body) - 1),
                    inline_depth=inline_depth,
                )
            )
        return out

    def _prescan_thread_names(self, body: List[pyast.stmt]) -> Set[str]:
        names: Set[str] = set()
        for s in body:
            if (
                isinstance(s, pyast.Assign)
                and len(s.targets) == 1
                and isinstance(s.targets[0], pyast.Name)
                and self._thread_ctor(s.value) is not None
            ):
                names.add(s.targets[0].id)
        return names

    def _thread_ctor(self, value: pyast.expr) -> Optional[str]:
        """``threading.Thread(target=fn)`` -> target function name."""
        if not isinstance(value, pyast.Call):
            return None
        fn = value.func
        if not (
            isinstance(fn, pyast.Attribute)
            and isinstance(fn.value, pyast.Name)
            and fn.value.id in self.threading_aliases
            and fn.attr == "Thread"
        ):
            return None
        if value.args:
            raise self.err(
                value, "threading.Thread: positional arguments are outside "
                "the subset; use Thread(target=fn)"
            )
        target: Optional[str] = None
        for kw in value.keywords:
            if kw.arg == "target" and isinstance(kw.value, pyast.Name):
                target = kw.value.id
            elif kw.arg == "args":
                if not (
                    isinstance(kw.value, pyast.Tuple) and not kw.value.elts
                ):
                    raise self.err(
                        kw.value,
                        "threading.Thread: only zero-argument targets are "
                        "in the subset (args must be empty)",
                    )
            else:
                raise self.err(
                    value,
                    f"threading.Thread: unsupported keyword {kw.arg!r}",
                )
        if target is None:
            raise self.err(
                value, "threading.Thread needs target=<function name>"
            )
        return target

    # -- statements -----------------------------------------------------

    def _stmt(
        self,
        node: pyast.stmt,
        scope: _Scope,
        is_main: bool,
        is_last: bool = False,
        inline_depth: int = 0,
    ) -> List[mast.Stmt]:
        pos = self.pos(node)
        prelude: List[mast.Stmt] = []

        if isinstance(node, pyast.Global):
            return []
        if isinstance(node, pyast.Pass):
            return [mast.Skip(pos=pos)]
        if isinstance(node, pyast.Expr):
            return self._expr_stmt(node, scope, is_main, inline_depth)
        if isinstance(node, pyast.Assign):
            return self._assign(node, scope, is_main)
        if isinstance(node, pyast.AugAssign):
            return self._aug_assign(node, scope)
        if isinstance(node, pyast.Assert):
            cond = self._bool(node.test, scope, prelude)
            return prelude + [mast.Assert(cond, pos=pos)]
        if isinstance(node, pyast.If):
            cond = self._bool(node.test, scope, prelude)
            then = self._block(node.body, scope, is_main, inline_depth)
            orelse = self._block(node.orelse, scope, is_main, inline_depth)
            return prelude + [mast.If(cond, then, orelse, pos=pos)]
        if isinstance(node, pyast.While):
            if node.orelse:
                raise self.err(node, "while/else is outside the subset")
            cond = self._bool(node.test, scope, prelude)
            if prelude:
                raise self.err(
                    node.test,
                    "random.randint in a while condition is outside the "
                    "subset (bind it to a variable first)",
                )
            body = self._block(node.body, scope, is_main, inline_depth)
            return [mast.While(cond, body, pos=pos)]
        if isinstance(node, pyast.For):
            return self._for_range(node, scope, is_main, inline_depth)
        if isinstance(node, pyast.With):
            return self._with(node, scope, is_main, inline_depth)
        if isinstance(node, pyast.Return):
            if node.value is not None:
                raise self.err(
                    node, "'return <value>' is outside the subset "
                    "(helper functions cannot return values)"
                )
            if not is_last:
                raise self.err(
                    node, "early 'return' is outside the subset (only a "
                    "bare return as the last statement is accepted)"
                )
            return []
        raise self.err(
            node, f"unsupported statement {type(node).__name__}"
        )

    def _block(
        self,
        body: List[pyast.stmt],
        scope: _Scope,
        is_main: bool,
        inline_depth: int,
    ) -> List[mast.Stmt]:
        out: List[mast.Stmt] = []
        for i, s in enumerate(body):
            out.extend(
                self._stmt(
                    s, scope, is_main,
                    is_last=False,
                    inline_depth=inline_depth,
                )
            )
        return out

    def _expr_stmt(
        self,
        node: pyast.Expr,
        scope: _Scope,
        is_main: bool,
        inline_depth: int,
    ) -> List[mast.Stmt]:
        value = node.value
        pos = self.pos(node)
        if isinstance(value, pyast.Constant):
            return []  # docstring / stray literal
        if not isinstance(value, pyast.Call):
            raise self.err(
                node, "expression statements must be calls "
                "(start/join/acquire/release/print/helper)"
            )
        fn = value.func
        # t.start() / t.join() / m.acquire() / m.release()
        if isinstance(fn, pyast.Attribute) and isinstance(fn.value, pyast.Name):
            owner, method = fn.value.id, fn.attr
            if owner in scope.threads:
                if value.args or value.keywords:
                    raise self.err(
                        value, f"{method}() on a Thread takes no arguments "
                        "in the subset"
                    )
                if method == "start":
                    self.shared_lines.add(node.lineno)
                    return [mast.Start(scope.threads[owner].name, pos=pos)]
                if method == "join":
                    self.shared_lines.add(node.lineno)
                    return [mast.Join(scope.threads[owner].name, pos=pos)]
                raise self.err(value, f"unsupported Thread method {method!r}")
            if owner in self.lock_names:
                if value.args or value.keywords:
                    raise self.err(
                        value,
                        f"{method}() with arguments (blocking=/timeout=) is "
                        "outside the subset",
                    )
                self.shared_lines.add(node.lineno)
                if method == "acquire":
                    return [mast.Lock(self._m(owner), pos=pos)]
                if method == "release":
                    return [mast.Unlock(self._m(owner), pos=pos)]
                raise self.err(value, f"unsupported lock method {method!r}")
            raise self.err(
                value, f"unsupported method call on {owner!r}"
            )
        if isinstance(fn, pyast.Name):
            if fn.id == "print":
                return [mast.Skip(pos=pos)]  # I/O is invisible to the model
            if fn.id in self.functions:
                if value.args or value.keywords:
                    raise self.err(
                        value, f"{fn.id}() takes no arguments in the subset"
                    )
                return self._inline_call(fn.id, value, scope, is_main, inline_depth)
            if self._thread_ctor(value) is not None:
                raise self.err(
                    value, "a threading.Thread(...) must be bound to a "
                    "variable (t = threading.Thread(target=fn))"
                )
            raise self.err(value, f"call to unknown function {fn.id!r}")
        raise self.err(node, "unsupported call expression")

    def _inline_call(
        self,
        name: str,
        node: pyast.Call,
        scope: _Scope,
        is_main: bool,
        inline_depth: int,
    ) -> List[mast.Stmt]:
        if inline_depth >= _MAX_INLINE_DEPTH:
            raise self.err(
                node,
                f"call chain through {name!r} exceeds the inline depth cap "
                f"({_MAX_INLINE_DEPTH}); recursive helpers are outside the "
                "subset",
            )
        fn = self.functions[name]
        self._tmp_counter += 1
        inner = self._new_scope(
            taken=scope.taken, prefix=f"{name}_{self._tmp_counter}__"
        )
        inner.threads = scope.threads  # helpers may not create threads,
        inner.held = scope.held  # but see held locks for reentry checks
        body = self._translate_body(
            fn.body, inner, is_main=False, inline_depth=inline_depth + 1
        )
        return inner.decls + body

    def _assign(
        self, node: pyast.Assign, scope: _Scope, is_main: bool
    ) -> List[mast.Stmt]:
        if len(node.targets) != 1 or not isinstance(node.targets[0], pyast.Name):
            raise self.err(
                node, "assignment must bind exactly one plain name "
                "(tuple/attribute/subscript targets are outside the subset)"
            )
        name = node.targets[0].id
        pos = self.pos(node)
        target_thread = self._thread_ctor(node.value)
        if target_thread is not None:
            if not is_main:
                raise self.err(
                    node, "threads can only be created in the __main__ block"
                )
            if target_thread not in self.functions:
                raise self.err(
                    node.value,
                    f"Thread target {target_thread!r} is not a module-level "
                    "function",
                )
            if name in scope.threads:
                raise self.err(
                    node, f"thread variable {name!r} rebound (each Thread "
                    "needs its own variable)"
                )
            if name in scope.locals or self.is_global_name(name):
                raise self.err(
                    node, f"thread variable {name!r} collides with another "
                    "name"
                )
            binding = ThreadBinding(self._m(name), target_thread, node.lineno)
            scope.threads[name] = binding
            self.thread_order.append(binding)
            return []
        prelude: List[mast.Stmt] = []
        value = self._expr(node.value, scope, prelude)
        mini = self._resolve_write(node.targets[0], name, scope)
        return prelude + [mast.Assign(mini, value, pos=pos)]

    def _aug_assign(self, node: pyast.AugAssign, scope: _Scope) -> List[mast.Stmt]:
        if not isinstance(node.target, pyast.Name):
            raise self.err(node, "augmented assignment target must be a name")
        op = _BINOPS.get(type(node.op))
        if op is None:
            raise self.err(
                node, f"unsupported augmented operator "
                f"{type(node.op).__name__} (use += -= *= &= |= ^=)"
            )
        name = node.target.id
        prelude: List[mast.Stmt] = []
        rhs = self._expr(node.value, scope, prelude)
        mini = self._resolve_write(node.target, name, scope)
        read = mast.VarRef(mini, pos=self.pos(node.target))
        return prelude + [
            mast.Assign(mini, mast.Binary(op, read, rhs), pos=self.pos(node))
        ]

    def _resolve_write(self, node, name: str, scope: _Scope) -> str:
        if name in scope.locals:
            return scope.locals[name]
        if name in scope.global_decls and name in self.shared:
            self.shared_lines.add(node.lineno)
            return self._m(name)
        if name in self.shared:
            raise self.err(
                node,
                f"assignment to shared global {name!r} without a 'global "
                f"{name}' declaration (in Python this would create a "
                "local)",
            )
        if name in self.lock_names:
            raise self.err(node, f"cannot assign to lock {name!r}")
        raise self.err(node, f"assignment to unknown name {name!r}")

    def _for_range(
        self,
        node: pyast.For,
        scope: _Scope,
        is_main: bool,
        inline_depth: int,
    ) -> List[mast.Stmt]:
        if node.orelse:
            raise self.err(node, "for/else is outside the subset")
        if not isinstance(node.target, pyast.Name):
            raise self.err(node, "for target must be a plain name")
        it = node.iter
        ok = (
            isinstance(it, pyast.Call)
            and isinstance(it.func, pyast.Name)
            and it.func.id == "range"
            and not it.keywords
            and 1 <= len(it.args) <= 2
        )
        if not ok:
            raise self.err(
                node, "only 'for NAME in range(stop)' / 'range(start, stop)' "
                "loops are in the subset"
            )
        prelude: List[mast.Stmt] = []
        if len(it.args) == 1:
            lo: mast.Expr = mast.IntLit(0, pos=self.pos(it))
            hi = self._expr(it.args[0], scope, prelude)
        else:
            lo = self._expr(it.args[0], scope, prelude)
            hi = self._expr(it.args[1], scope, prelude)
        if prelude:
            raise self.err(
                it, "random.randint in a range bound is outside the subset "
                "(bind it to a variable first)"
            )
        name = node.target.id
        mini = self._resolve_write(node.target, name, scope)
        pos = self.pos(node)
        var = mast.VarRef(mini, pos=pos)
        body = self._block(node.body, scope, is_main, inline_depth)
        body.append(
            mast.Assign(mini, mast.Binary("+", var, mast.IntLit(1)), pos=pos)
        )
        return [
            mast.Assign(mini, lo, pos=pos),
            mast.While(mast.Binary("<", var, hi), body, pos=pos),
        ]

    def _with(
        self,
        node: pyast.With,
        scope: _Scope,
        is_main: bool,
        inline_depth: int,
    ) -> List[mast.Stmt]:
        pos = self.pos(node)
        names: List[str] = []
        for item in node.items:
            if item.optional_vars is not None:
                raise self.err(node, "'with lock as x' is outside the subset")
            ctx = item.context_expr
            if not (isinstance(ctx, pyast.Name) and ctx.id in self.lock_names):
                raise self.err(
                    ctx if hasattr(ctx, "lineno") else node,
                    "with-statement context must be a module-level "
                    "threading.Lock()/RLock()",
                )
            names.append(ctx.id)
        self.shared_lines.add(node.lineno)
        out: List[mast.Stmt] = []
        closers: List[mast.Stmt] = []
        saved_held = scope.held
        for name in names:
            if name in scope.held:
                if name in self.rlock_names:
                    continue  # reentrant acquire: a no-op in the model
                raise self.err(
                    node,
                    f"re-acquiring non-reentrant Lock {name!r} already held "
                    "here would deadlock",
                )
            out.append(mast.Lock(self._m(name), pos=pos))
            closers.insert(0, mast.Unlock(self._m(name), pos=pos))
            scope.held = scope.held + (name,)
        out.extend(self._block(node.body, scope, is_main, inline_depth))
        scope.held = saved_held
        return out + closers

    # -- expressions ----------------------------------------------------

    def _fresh_tmp(self, scope: _Scope) -> str:
        while True:
            self._tmp_counter += 1
            name = f"_nd{self._tmp_counter}"
            if name not in scope.taken:
                scope.taken.add(name)
                return name

    def _expr(
        self, node: pyast.expr, scope: _Scope, prelude: List[mast.Stmt]
    ) -> mast.Expr:
        pos = self.pos(node)
        if isinstance(node, pyast.Constant):
            if isinstance(node.value, bool):
                return mast.IntLit(int(node.value), pos=pos)
            if isinstance(node.value, int):
                return mast.IntLit(node.value, pos=pos)
            raise self.err(
                node, f"unsupported literal {node.value!r} (ints and bools "
                "only)"
            )
        if isinstance(node, pyast.Name):
            name = node.id
            if name in scope.locals:
                return mast.VarRef(scope.locals[name], pos=pos)
            if name in self.shared:
                self.shared_lines.add(node.lineno)
                return mast.VarRef(self._m(name), pos=pos)
            if name in self.lock_names:
                raise self.err(node, f"lock {name!r} used as a value")
            if name in scope.threads:
                raise self.err(node, f"thread {name!r} used as a value")
            raise self.err(node, f"unknown name {name!r}")
        if isinstance(node, pyast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise self.err(
                    node, f"unsupported operator {type(node.op).__name__} "
                    "(use + - * & | ^)"
                )
            left = self._expr(node.left, scope, prelude)
            right = self._expr(node.right, scope, prelude)
            return mast.Binary(op, left, right, pos=pos)
        if isinstance(node, pyast.UnaryOp):
            if isinstance(node.op, pyast.USub):
                return mast.Unary(
                    "-", self._expr(node.operand, scope, prelude), pos=pos
                )
            if isinstance(node.op, pyast.Invert):
                return mast.Unary(
                    "~", self._expr(node.operand, scope, prelude), pos=pos
                )
            if isinstance(node.op, pyast.Not):
                return mast.Unary(
                    "!", self._bool(node.operand, scope, prelude), pos=pos
                )
            raise self.err(node, "unsupported unary operator")
        if isinstance(node, (pyast.Compare, pyast.BoolOp)):
            return self._bool(node, scope, prelude)
        if isinstance(node, pyast.Call):
            return self._call_expr(node, scope, prelude)
        raise self.err(
            node, f"unsupported expression {type(node).__name__}"
        )

    def _call_expr(
        self, node: pyast.Call, scope: _Scope, prelude: List[mast.Stmt]
    ) -> mast.Expr:
        fn = node.func
        if (
            isinstance(fn, pyast.Attribute)
            and isinstance(fn.value, pyast.Name)
            and fn.value.id in self.random_aliases
            and fn.attr == "randint"
        ):
            if len(node.args) != 2 or node.keywords:
                raise self.err(node, "random.randint takes exactly (lo, hi)")
            lo = self._const_int(node.args[0])
            hi = self._const_int(node.args[1])
            if lo is None or hi is None:
                raise self.err(
                    node, "random.randint bounds must be int literals"
                )
            if lo > hi:
                raise self.err(node, f"empty randint range [{lo}, {hi}]")
            pos = self.pos(node)
            tmp = self._fresh_tmp(scope)
            prelude.append(mast.LocalDecl(tmp, mast.Nondet(pos=pos), pos=pos))
            prelude.append(
                mast.Assume(
                    mast.Binary(
                        "&&",
                        mast.Binary(">=", mast.VarRef(tmp), mast.IntLit(lo)),
                        mast.Binary("<=", mast.VarRef(tmp), mast.IntLit(hi)),
                    ),
                    pos=pos,
                )
            )
            return mast.VarRef(tmp, pos=pos)
        raise self.err(
            node, "unsupported call in expression (only random.randint "
            "yields a value in the subset)"
        )

    def _bool(
        self, node: pyast.expr, scope: _Scope, prelude: List[mast.Stmt]
    ) -> mast.Expr:
        """Translate an expression in boolean position (truthiness is
        made explicit as ``!= 0`` for arithmetic operands)."""
        pos = self.pos(node)
        if isinstance(node, pyast.BoolOp):
            op = "&&" if isinstance(node.op, pyast.And) else "||"
            out = self._bool(node.values[0], scope, prelude)
            for v in node.values[1:]:
                out = mast.Binary(op, out, self._bool(v, scope, prelude), pos=pos)
            return out
        if isinstance(node, pyast.UnaryOp) and isinstance(node.op, pyast.Not):
            return mast.Unary(
                "!", self._bool(node.operand, scope, prelude), pos=pos
            )
        if isinstance(node, pyast.Compare):
            terms: List[mast.Expr] = []
            left = self._expr(node.left, scope, prelude)
            for op_node, comparator in zip(node.ops, node.comparators):
                op = _CMPOPS.get(type(op_node))
                if op is None:
                    raise self.err(
                        node, f"unsupported comparison "
                        f"{type(op_node).__name__} (is/in are outside the "
                        "subset)"
                    )
                right = self._expr(comparator, scope, prelude)
                terms.append(mast.Binary(op, left, right, pos=pos))
                left = right
            out = terms[0]
            for t in terms[1:]:
                out = mast.Binary("&&", out, t, pos=pos)
            return out
        # Arithmetic truthiness: `if flag:` means `flag != 0`.
        return mast.Binary(
            "!=", self._expr(node, scope, prelude), mast.IntLit(0), pos=pos
        )
