"""``repro.pyfront``: verify real Python ``threading`` programs.

The package maps a well-defined subset of Python -- ``threading.Thread``
with zero-argument function targets, ``threading.Lock``/``RLock``
(``acquire``/``release`` and ``with``), shared module-level ``int``/
``bool`` globals, ``assert``, ``if``/``while``/``for range`` with
bounded unrolling, and ``random.randint`` nondeterminism -- onto the
mini concurrent language (:mod:`repro.lang.ast`), so the whole existing
pipeline (engines, portfolio, budgets, pruning, the verification
service and its verdict cache) applies to runnable Python files
unchanged.

Entry points:

* :func:`translate_source` / :func:`translate_file` -- the ``ast``-based
  translator; anything outside the subset raises :class:`SubsetError`
  with a precise ``file:line:col`` diagnostic.
* :func:`emit_python` -- the inverse direction, used by the fuzz
  oracle's Python-emission mode (:mod:`repro.oracle.pycheck`).
* :mod:`repro.pyfront.dynexec` -- concrete execution of the *original*
  Python file under a cooperative randomized/guided scheduler, used to
  differentially confirm UNSAFE verdicts.
* :func:`annotate_witness` -- map a symbolic witness back to Python
  ``file:line`` source locations.

See ``docs/PYFRONT.md`` for the subset definition and translation
rules.
"""

from repro.pyfront.subset import SubsetError
from repro.pyfront.translate import (
    Translation,
    translate_file,
    translate_source,
)
from repro.pyfront.emit import emit_python
from repro.pyfront.witness import annotate_witness, witness_python_lines

__all__ = [
    "SubsetError",
    "Translation",
    "translate_file",
    "translate_source",
    "emit_python",
    "annotate_witness",
    "witness_python_lines",
]
