"""Emit a mini-language program as a runnable Python ``threading`` file.

The inverse direction of :mod:`repro.pyfront.translate`, used by the
fuzz oracle's Python-emission mode (:mod:`repro.oracle.pycheck`): a
generated mini program (under ``GenConfig(python_profile=True)``) is
emitted as Python, translated back, and verified -- the verdict must
match the direct verification of the original.

Only the *Python-expressible* fragment is supported; constructs with no
Python counterpart (``atomic`` blocks, ``fence``, a free-standing
``assume`` or bare ``nondet()``) raise :class:`EmitError`.  The one
idiom that *is* mapped: the translator's own ``random.randint`` shape

    int ND = nondet();
    assume(ND >= LO && ND <= HI);

is pattern-matched back to ``ND = random.randint(LO, HI)`` -- so the
emit/translate pair is a proper round trip on the profile.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang import ast as mast

__all__ = ["EmitError", "emit_python"]


class EmitError(ValueError):
    """The program uses constructs with no Python counterpart."""


_PY_BINOP = {
    "+": "+", "-": "-", "*": "*", "&": "&", "|": "|", "^": "^",
    "==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "&&": "and", "||": "or",
}


def _expr(e: mast.Expr) -> str:
    if isinstance(e, mast.IntLit):
        return str(e.value) if e.value >= 0 else f"({e.value})"
    if isinstance(e, mast.VarRef):
        return e.name
    if isinstance(e, mast.Binary):
        op = _PY_BINOP.get(e.op)
        if op is None:
            raise EmitError(f"binary operator {e.op!r} has no Python mapping")
        return f"({_expr(e.left)} {op} {_expr(e.right)})"
    if isinstance(e, mast.Unary):
        if e.op == "-":
            return f"(-{_expr(e.operand)})"
        if e.op == "~":
            return f"(~{_expr(e.operand)})"
        if e.op == "!":
            return f"(not {_expr(e.operand)})"
        raise EmitError(f"unary operator {e.op!r} has no Python mapping")
    if isinstance(e, mast.Nondet):
        raise EmitError(
            "bare nondet() outside the randint idiom has no Python "
            "counterpart"
        )
    raise EmitError(f"unsupported expression {type(e).__name__}")


def _match_randint(
    a: mast.Stmt, b: Optional[mast.Stmt]
) -> Optional[Tuple[str, int, int]]:
    """Match the translator's randint shape across two statements:
    ``int ND = nondet(); assume(ND >= LO && ND <= HI);`` -> (ND, LO, HI).
    """
    if not (isinstance(a, mast.LocalDecl) and isinstance(a.init, mast.Nondet)):
        return None
    if not isinstance(b, mast.Assume):
        return None
    c = b.cond
    if not (isinstance(c, mast.Binary) and c.op == "&&"):
        return None
    lo_t, hi_t = c.left, c.right
    if not (
        isinstance(lo_t, mast.Binary) and lo_t.op == ">="
        and isinstance(lo_t.left, mast.VarRef) and lo_t.left.name == a.name
        and isinstance(lo_t.right, mast.IntLit)
        and isinstance(hi_t, mast.Binary) and hi_t.op == "<="
        and isinstance(hi_t.left, mast.VarRef) and hi_t.left.name == a.name
        and isinstance(hi_t.right, mast.IntLit)
    ):
        return None
    return a.name, lo_t.right.value, hi_t.right.value


class _Emitter:
    def __init__(self, program: mast.Program) -> None:
        self.program = program
        self.shared = {g.name for g in program.globals if not g.is_lock}
        self.locks = {g.name for g in program.globals if g.is_lock}

    def run(self) -> str:
        p = self.program
        lines: List[str] = [
            "import threading",
            "import random",
            "",
        ]
        for g in p.globals:
            if g.is_lock:
                lines.append(f"{g.name} = threading.Lock()")
            else:
                lines.append(f"{g.name} = {g.init}")
        for t in p.threads:
            lines.append("")
            lines.append(f"def run_{t.name}():")
            written = sorted(self._written_shared(t.body))
            body: List[str] = []
            if written:
                body.append(f"global {', '.join(written)}")
            body.extend(self._body(t.body))
            if not body:
                body = ["pass"]
            lines.extend("    " + b for b in body)
        lines.append("")
        lines.append('if __name__ == "__main__":')
        main_body: List[str] = []
        main_stmts = p.main.body if p.main is not None else []
        for t in p.threads:
            main_body.append(f"{t.name} = threading.Thread(target=run_{t.name})")
        main_body.extend(self._body(main_stmts))
        if not main_body:
            main_body = ["pass"]
        lines.extend("    " + b for b in main_body)
        return "\n".join(lines) + "\n"

    def _written_shared(self, stmts: List[mast.Stmt]) -> set:
        out = set()
        for s in stmts:
            if isinstance(s, mast.Assign) and s.name in self.shared:
                out.add(s.name)
            elif isinstance(s, mast.If):
                out |= self._written_shared(s.then_body)
                out |= self._written_shared(s.else_body)
            elif isinstance(s, mast.While):
                out |= self._written_shared(s.body)
            elif isinstance(s, mast.Atomic):
                out |= self._written_shared(s.body)
        return out

    def _body(self, stmts: List[mast.Stmt]) -> List[str]:
        out: List[str] = []
        i = 0
        while i < len(stmts):
            s = stmts[i]
            nxt = stmts[i + 1] if i + 1 < len(stmts) else None
            m = _match_randint(s, nxt)
            if m is not None:
                name, lo, hi = m
                out.append(f"{name} = random.randint({lo}, {hi})")
                i += 2
                continue
            out.extend(self._stmt(s))
            i += 1
        return out

    def _stmt(self, s: mast.Stmt) -> List[str]:
        if isinstance(s, mast.LocalDecl):
            init = s.init if s.init is not None else mast.IntLit(0)
            return [f"{s.name} = {_expr(init)}"]
        if isinstance(s, mast.Assign):
            return [f"{s.name} = {_expr(s.value)}"]
        if isinstance(s, mast.Skip):
            return ["pass"]
        if isinstance(s, mast.Assert):
            return [f"assert {_expr(s.cond)}"]
        if isinstance(s, mast.Lock):
            return [f"{s.name}.acquire()"]
        if isinstance(s, mast.Unlock):
            return [f"{s.name}.release()"]
        if isinstance(s, mast.Start):
            return [f"{s.thread}.start()"]
        if isinstance(s, mast.Join):
            return [f"{s.thread}.join()"]
        if isinstance(s, mast.If):
            out = [f"if {_expr(s.cond)}:"]
            then = self._body(s.then_body) or ["pass"]
            out.extend("    " + b for b in then)
            if s.else_body:
                out.append("else:")
                out.extend("    " + b for b in self._body(s.else_body))
            return out
        if isinstance(s, mast.While):
            out = [f"while {_expr(s.cond)}:"]
            body = self._body(s.body) or ["pass"]
            out.extend("    " + b for b in body)
            return out
        if isinstance(s, mast.Assume):
            raise EmitError(
                "free-standing assume() has no Python counterpart (only "
                "the randint idiom is emitted)"
            )
        if isinstance(s, (mast.Atomic, mast.Fence)):
            raise EmitError(
                f"{type(s).__name__} has no Python counterpart"
            )
        raise EmitError(f"unsupported statement {type(s).__name__}")


def emit_python(program: mast.Program) -> str:
    """Render ``program`` as a runnable Python ``threading`` file.

    Raises :class:`EmitError` on constructs outside the Python-
    expressible fragment (generate with
    ``GenConfig(python_profile=True)`` to stay inside it).
    """
    return _Emitter(program).run()
