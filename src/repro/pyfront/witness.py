"""Map symbolic witnesses back to original Python source locations.

Witness steps carry only the event id (``eid``) of the symbolic program
they were extracted from, not a source position -- positions would bloat
the wire format and the verdict cache.  Event ids, however, are
*deterministic*: :func:`repro.frontend.ssa.build_symbolic_program`
numbers events densely in a fixed traversal order, and the translated
mini program round-trips through ``unparse``/``parse`` (the service
client ships source) onto the identical AST structure.  So rebuilding
the symbolic program locally -- same translation, same ``unwind`` and
``width`` -- reproduces the eid space, and each step's event carries the
``pos`` the translator planted: the *Python* ``(line, col)``.

This holds for locally-computed and service-routed results alike, which
is what lets ``repro verify-py --witness`` print Python source lines for
verdicts that came out of the verdict cache on a remote server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.frontend.ssa import build_symbolic_program
from repro.pyfront.translate import Translation
from repro.verify.witness import Trace, TraceStep

__all__ = ["AnnotatedStep", "annotate_witness", "witness_python_lines"]


@dataclass(frozen=True)
class AnnotatedStep:
    """One witness step located in the original Python file."""

    step: TraceStep
    line: Optional[int]  # 1-based Python line, None if unlocatable
    col: Optional[int]
    source: str  # the stripped Python source line ("" if unlocatable)

    def render(self, path: str) -> str:
        text = str(self.step)
        if self.line is None:
            return text
        where = f"{path}:{self.line}"
        if self.source:
            return f"{text:<40s}  [{where}] {self.source}"
        return f"{text:<40s}  [{where}]"


def _eid_positions(
    translation: Translation, unwind: int, width: int
) -> Dict[int, Tuple[int, int]]:
    """eid -> Python ``(line, col)`` for the translation's event space.

    ``unwind_assumptions`` is irrelevant here: it only changes the
    constraint set, never the events, so the default rebuild matches
    both the eager and the iterative-deepening encodings.
    """
    sym = build_symbolic_program(translation.program, unwind=unwind, width=width)
    out: Dict[int, Tuple[int, int]] = {}
    for ev in sym.events:
        if ev.pos is not None:
            out[ev.eid] = ev.pos
    return out


def annotate_witness(
    translation: Translation,
    trace: Trace,
    unwind: int = 8,
    width: int = 8,
) -> List[AnnotatedStep]:
    """Annotate every step of ``trace`` with its Python source location.

    Steps whose eid cannot be mapped (hand-built traces with ``eid=-1``,
    or synthesized init writes with no source position) get
    ``line=None`` and render as the bare mini-language step.
    """
    positions = _eid_positions(translation, unwind=unwind, width=width)
    out: List[AnnotatedStep] = []
    for step in trace.steps:
        pos = positions.get(step.eid)
        if pos is None:
            out.append(AnnotatedStep(step, None, None, ""))
        else:
            line, col = pos
            out.append(
                AnnotatedStep(step, line, col, translation.python_line(line))
            )
    return out


def witness_python_lines(
    translation: Translation,
    trace: Trace,
    unwind: int = 8,
    width: int = 8,
) -> List[str]:
    """The witness rendered as printable lines with Python locations."""
    annotated = annotate_witness(translation, trace, unwind=unwind, width=width)
    lines = ["counterexample trace:"]
    for i, a in enumerate(annotated):
        lines.append(f"  {i + 1:3d}. {a.render(translation.path)}")
    if trace.nondet_values:
        lines.append("  nondet choices (random.randint results):")
        for thread, _ssa, value in trace.nondet_values:
            lines.append(f"    {thread}: {value}")
    return lines
