"""Concrete execution of the original Python file under a controlled
cooperative scheduler -- differential confirmation of UNSAFE verdicts.

The translated model (:mod:`repro.pyfront.translate`) is what the
symbolic engines verify; this module closes the loop by running the
*real* program text under the *real* interpreter and searching for the
assertion failure concretely, in the stateless-model-checking tradition:

* the file is ``exec``-ed with shimmed ``threading``/``random`` modules
  (injected through ``__import__``; ``sys.modules`` is never touched);
* every user thread -- including the ``__main__`` block, which runs in
  its own worker so it schedules uniformly -- is a real OS thread, but a
  token-passing scheduler enforces that exactly one runs at a time;
* ``sys.settrace`` (per-thread) with **opcode-level** events inside the
  user file yields control at every bytecode of a shared-access line
  (the translator's ``shared_lines``), so even single-line races like
  ``counter += 1`` -- one ``LOAD``, one ``STORE`` -- are interleavable;
* at each yield point the scheduler either follows a symbolic witness
  (thread order + ``random.randint`` values from the model) or flips a
  seeded coin, and blocking operations (``join``, lock ``acquire``)
  hand the token over with deadlock detection.

Trials are deterministic in ``(seed, trial)``.  A trial "confirms" when
an ``AssertionError`` escapes user code; the failing schedule (thread
name per scheduling decision) is reported so the run can be replayed.
"""

from __future__ import annotations

import builtins as _builtins_mod
import random as _random_mod
import sys
import threading as _real_threading
import time
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.pyfront.translate import Translation
from repro.verify.witness import Trace

__all__ = ["TrialOutcome", "ConfirmResult", "run_trial", "confirm"]

#: Bytecode-yield budget per trial: generous for bounded corpus-sized
#: programs, a hard stop for livelocked spin loops.
_DEFAULT_MAX_STEPS = 50_000
_DEFAULT_SWITCH_PROB = 0.35


class _TrialAbort(BaseException):
    """Raised inside user threads to tear a trial down (BaseException so
    user-level ``except Exception`` cannot swallow it -- not that the
    subset admits ``try``)."""


@dataclass
class TrialOutcome:
    """One concrete execution attempt."""

    failed: bool = False  # an AssertionError escaped user code
    error: str = ""  # assertion message / engine-level trial problem
    line: Optional[int] = None  # Python line of the failing assert
    deadlocked: bool = False
    exhausted: bool = False  # step budget ran out (livelock guard)
    schedule: Tuple[str, ...] = ()  # thread chosen at each decision


@dataclass
class ConfirmResult:
    """Outcome of a :func:`confirm` search across trials."""

    confirmed: bool
    trials_run: int = 0
    failing_trial: Optional[int] = None  # -1 = the witness-guided trial
    outcome: Optional[TrialOutcome] = None
    problems: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.confirmed


# ----------------------------------------------------------------------
# The scheduler
# ----------------------------------------------------------------------


class _Scheduler:
    """Token-passing cooperative scheduler over real threads.

    Exactly one registered thread holds the token (``self.current``).
    Threads yield at trace-hook pause points and at blocking operations;
    the scheduler picks the successor -- witness-guided when a guide
    sequence is set, seeded-random otherwise.
    """

    def __init__(
        self,
        rng: _random_mod.Random,
        switch_prob: float,
        max_steps: int,
        deadline: float,
    ) -> None:
        self.cond = _real_threading.Condition()
        self.rng = rng
        self.switch_prob = switch_prob
        self.max_steps = max_steps
        self.deadline = deadline
        self.current: Optional[str] = None
        self.registered: List[str] = []
        self.started: set = set()
        self.finished: set = set()
        self.blocked: Dict[str, Callable[[], bool]] = {}
        self.abort = False
        self.outcome = TrialOutcome()
        self.steps = 0
        self.schedule: List[str] = []
        #: Witness guidance: remaining thread names, consumed greedily.
        self.guide: List[str] = []

    # Callers hold ``self.cond``.

    def _runnable(self, exclude: Optional[str] = None) -> List[str]:
        out = []
        for tid in self.registered:
            if tid == exclude or tid in self.finished or tid not in self.started:
                continue
            pred = self.blocked.get(tid)
            if pred is not None and not pred():
                continue
            out.append(tid)
        return out

    def _choose(self, tid: str, at_yield_point: bool) -> str:
        """The next token holder, given that ``tid`` is yielding."""
        runnable = self._runnable()
        if tid in self.blocked and not self.blocked[tid]():
            runnable = [t for t in runnable if t != tid]
            if not runnable:
                self.outcome.deadlocked = True
                self._do_abort()
                raise _TrialAbort()
        if not runnable:  # tid itself is the only choice
            return tid
        # Witness guidance: head for the next guided thread that can run.
        while self.guide:
            want = self.guide[0]
            if want in self.finished or want not in self.registered:
                self.guide.pop(0)
                continue
            if want in runnable:
                if want == tid and at_yield_point:
                    self.guide.pop(0)  # tid performs the guided access
                    return tid
                return want
            break  # wanted thread exists but cannot run yet
        if tid in runnable and (
            not at_yield_point or self.rng.random() >= self.switch_prob
        ):
            return tid
        return self.rng.choice(runnable)

    def _switch_to(self, nxt: str, tid: str) -> None:
        if nxt != self.current:
            self.current = nxt
            self.schedule.append(nxt)
            self.cond.notify_all()
        while self.current != tid and not self.abort:
            self.cond.wait(0.5)
            self._check_deadline()
        if self.abort:
            raise _TrialAbort()

    def _check_deadline(self) -> None:
        if time.monotonic() > self.deadline:
            self.outcome.exhausted = True
            self._do_abort()
            raise _TrialAbort()

    def _do_abort(self) -> None:
        self.abort = True
        self.cond.notify_all()

    # -- entry points (acquire the lock themselves) ---------------------

    def register(self, tid: str) -> None:
        with self.cond:
            self.registered.append(tid)

    def mark_started(self, tid: str) -> None:
        with self.cond:
            self.started.add(tid)

    def wait_for_token(self, tid: str) -> None:
        """A freshly-started thread parks until it is scheduled."""
        with self.cond:
            while self.current != tid and not self.abort:
                self.cond.wait(0.5)
                self._check_deadline()
            if self.abort:
                raise _TrialAbort()

    def pause(self, tid: str) -> None:
        """A preemption point: maybe hand the token to another thread."""
        with self.cond:
            if self.abort:
                raise _TrialAbort()
            self.steps += 1
            if self.steps > self.max_steps:
                self.outcome.exhausted = True
                self._do_abort()
                raise _TrialAbort()
            self._check_deadline()
            nxt = self._choose(tid, at_yield_point=True)
            self._switch_to(nxt, tid)

    def block_until(self, tid: str, pred: Callable[[], bool]) -> None:
        """Yield the token until ``pred`` holds (join / lock acquire)."""
        with self.cond:
            while not pred():
                if self.abort:
                    raise _TrialAbort()
                self.blocked[tid] = pred
                try:
                    nxt = self._choose(tid, at_yield_point=False)
                    self._switch_to(nxt, tid)
                finally:
                    self.blocked.pop(tid, None)

    def finish(self, tid: str) -> None:
        """Thread ``tid`` is done; pass the token on."""
        with self.cond:
            self.finished.add(tid)
            if self.abort:
                return
            runnable = self._runnable(exclude=tid)
            if runnable:
                nxt = self._choose_after_finish(runnable)
                self.current = nxt
                self.schedule.append(nxt)
            self.cond.notify_all()

    def _choose_after_finish(self, runnable: List[str]) -> str:
        while self.guide:
            want = self.guide[0]
            if want in self.finished or want not in self.registered:
                self.guide.pop(0)
                continue
            if want in runnable:
                return want
            break
        return self.rng.choice(runnable)

    def record_failure(self, message: str, line: Optional[int]) -> None:
        with self.cond:
            if not self.outcome.failed and not self.outcome.error:
                self.outcome.failed = True
                self.outcome.error = message
                self.outcome.line = line
            self._do_abort()

    def record_error(self, message: str) -> None:
        with self.cond:
            if not self.outcome.failed and not self.outcome.error:
                self.outcome.error = message
            self._do_abort()


# ----------------------------------------------------------------------
# Shim modules
# ----------------------------------------------------------------------


class _ShimLock:
    """A scheduler-aware threading.Lock/RLock stand-in."""

    def __init__(self, sched: _Scheduler, reentrant: bool) -> None:
        self._sched = sched
        self._reentrant = reentrant
        self._holder: Optional[str] = None
        self._count = 0

    def acquire(self) -> bool:
        tid = _current_tid()
        if self._reentrant and self._holder == tid:
            self._count += 1
            return True
        self._sched.block_until(tid, lambda: self._holder is None)
        self._holder = tid
        self._count = 1
        return True

    def release(self) -> None:
        tid = _current_tid()
        if self._holder != tid:
            raise RuntimeError("release of un-acquired lock")
        self._count -= 1
        if self._count == 0:
            self._holder = None

    def __enter__(self) -> "_ShimLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


_tls = _real_threading.local()


def _current_tid() -> str:
    return getattr(_tls, "tid", "main")


class _ShimThread:
    """threading.Thread stand-in running the target under the scheduler."""

    def __init__(self, runner: "_Runner", target: Callable[[], None]) -> None:
        self._runner = runner
        self.tid = runner.next_thread_name()
        self._target = target
        self._finished = False
        runner.sched.register(self.tid)
        self._real = _real_threading.Thread(
            target=self._run, name=f"dynexec:{self.tid}", daemon=True
        )
        runner.real_threads.append(self._real)

    def _run(self) -> None:
        _tls.tid = self.tid
        sched = self._runner.sched
        sys.settrace(self._runner.trace_fn)
        try:
            sched.wait_for_token(self.tid)
            self._target()
        except _TrialAbort:
            pass
        except AssertionError as exc:
            sched.record_failure(
                f"AssertionError: {exc}" if str(exc) else "AssertionError",
                _user_line(self._runner.path),
            )
        except BaseException as exc:  # translator bugs, shim misuse
            sched.record_error(f"{type(exc).__name__}: {exc}")
        finally:
            sys.settrace(None)
            self._finished = True
            sched.finish(self.tid)

    def start(self) -> None:
        sched = self._runner.sched
        sched.mark_started(self.tid)
        self._real.start()
        # Starting is itself a decision point: the child may run first.
        sched.pause(_current_tid())

    def join(self) -> None:
        sched = self._runner.sched
        sched.block_until(_current_tid(), lambda: self._finished)
        self._real.join(timeout=5.0)

    def is_alive(self) -> bool:
        return self._real.is_alive()


def _user_line(path: str) -> Optional[int]:
    """The innermost traceback line inside the user file."""
    tb = sys.exc_info()[2]
    line = None
    while tb is not None:
        if tb.tb_frame.f_code.co_filename == path:
            line = tb.tb_lineno
        tb = tb.tb_next
    return line


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


class _Runner:
    def __init__(
        self,
        translation: Translation,
        sched: _Scheduler,
        nondet_hints: Dict[str, List[int]],
    ) -> None:
        self.translation = translation
        self.path = translation.path
        self.sched = sched
        self.nondet_hints = nondet_hints
        self._thread_counter = 0
        self.shared_lines = translation.shared_lines
        #: Real OS threads spawned by shim Threads, for end-of-trial
        #: cleanup (stragglers are aborted, never leaked across trials).
        self.real_threads: List[_real_threading.Thread] = []

    def next_thread_name(self) -> str:
        order = self.translation.thread_order
        idx = self._thread_counter
        self._thread_counter += 1
        if idx < len(order):
            return order[idx].name
        return f"thread{idx}"

    # -- the per-thread trace function ---------------------------------

    def trace_fn(self, frame, event, arg):
        if frame.f_code.co_filename != self.path:
            return None  # never trace into shims or library code
        frame.f_trace_opcodes = True
        if event == "opcode" or event == "line":
            if frame.f_lineno in self.shared_lines:
                self.sched.pause(_current_tid())
        return self.trace_fn

    # -- shim module construction --------------------------------------

    def make_modules(self) -> Dict[str, types.ModuleType]:
        runner = self

        threading_mod = types.ModuleType("threading")

        def _Thread(target=None, args=(), kwargs=None, **extra):
            if target is None:
                raise TypeError("Thread requires target=")
            return _ShimThread(runner, target)

        threading_mod.Thread = _Thread
        threading_mod.Lock = lambda: _ShimLock(runner.sched, reentrant=False)
        threading_mod.RLock = lambda: _ShimLock(runner.sched, reentrant=True)

        random_mod = types.ModuleType("random")

        def _randint(lo: int, hi: int) -> int:
            hints = runner.nondet_hints.get(_current_tid())
            if hints:
                return max(lo, min(hi, hints.pop(0)))
            return runner.sched.rng.randint(lo, hi)

        random_mod.randint = _randint
        return {"threading": threading_mod, "random": random_mod}


def _guide_from_witness(trace: Trace) -> List[str]:
    """The witness's thread sequence, collapsed per shared access."""
    return [step.thread for step in trace.steps]


def _hints_from_witness(trace: Trace) -> Dict[str, List[int]]:
    """Per-thread randint values, in static program order (matching the
    translator's one-``randint``-per-``nondet`` discipline)."""
    hints: Dict[str, List[int]] = {}
    for thread, _ssa, value in trace.nondet_values:
        hints.setdefault(thread, []).append(value)
    return hints


def run_trial(
    translation: Translation,
    seed: int = 0,
    witness: Optional[Trace] = None,
    switch_prob: float = _DEFAULT_SWITCH_PROB,
    max_steps: int = _DEFAULT_MAX_STEPS,
    deadline_s: float = 10.0,
) -> TrialOutcome:
    """One concrete execution of the program under the scheduler.

    With ``witness``, scheduling follows the witness's thread order and
    ``random.randint`` returns the model's nondet values; otherwise both
    are seeded-random.  Deterministic in all arguments.
    """
    rng = _random_mod.Random(seed)
    sched = _Scheduler(
        rng, switch_prob, max_steps, time.monotonic() + deadline_s
    )
    hints = _hints_from_witness(witness) if witness is not None else {}
    runner = _Runner(translation, sched, hints)
    if witness is not None:
        sched.guide = _guide_from_witness(witness)

    modules = runner.make_modules()
    real_import = __import__

    def _import(name, globals=None, locals=None, fromlist=(), level=0):
        if name in modules:
            return modules[name]
        return real_import(name, globals, locals, fromlist, level)

    builtins_dict = dict(vars(_builtins_mod))
    builtins_dict["__import__"] = _import
    # The model treats print as a no-op; keep trials quiet to match.
    builtins_dict["print"] = lambda *a, **k: None
    glb = {
        "__name__": "__main__",
        "__file__": translation.path,
        "__builtins__": builtins_dict,
    }
    code = compile(translation.source, translation.path, "exec")

    sched.register("main")
    sched.mark_started("main")
    sched.current = "main"

    def _main() -> None:
        _tls.tid = "main"
        sys.settrace(runner.trace_fn)
        try:
            exec(code, glb)
        except _TrialAbort:
            pass
        except AssertionError as exc:
            sched.record_failure(
                f"AssertionError: {exc}" if str(exc) else "AssertionError",
                _user_line(translation.path),
            )
        except BaseException as exc:
            sched.record_error(f"{type(exc).__name__}: {exc}")
        finally:
            sys.settrace(None)
            sched.finish("main")

    main_thread = _real_threading.Thread(
        target=_main, name="dynexec:main", daemon=True
    )
    main_thread.start()
    main_thread.join(timeout=deadline_s + 5.0)
    if main_thread.is_alive():
        # Wedged beyond the in-band deadline: abort and report.
        with sched.cond:
            sched.outcome.exhausted = True
            sched._do_abort()
        main_thread.join(timeout=5.0)
        if not sched.outcome.error:
            sched.outcome.error = "trial wall deadline exceeded"
    # Release any stragglers (threads started but never joined, or
    # parked waiting for a token that will never come).
    with sched.cond:
        sched._do_abort()
    for t in runner.real_threads:
        t.join(timeout=2.0)
    sched.outcome.schedule = tuple(sched.schedule)
    return sched.outcome


def confirm(
    translation: Translation,
    witness: Optional[Trace] = None,
    trials: int = 50,
    seed: int = 0,
    switch_prob: float = _DEFAULT_SWITCH_PROB,
    max_steps: int = _DEFAULT_MAX_STEPS,
    deadline_s: float = 10.0,
) -> ConfirmResult:
    """Search for a concrete assertion failure.

    Trial -1 (when a witness is given) is guided by the witness; the
    remaining ``trials`` executions explore randomized schedules, each
    deterministic in ``(seed, trial index)``.  Stops at the first
    failing execution.
    """
    problems: List[str] = []
    run = 0
    if witness is not None:
        outcome = run_trial(
            translation, seed=seed, witness=witness,
            switch_prob=switch_prob, max_steps=max_steps,
            deadline_s=deadline_s,
        )
        run += 1
        if outcome.failed:
            return ConfirmResult(True, run, -1, outcome, problems)
        if outcome.error:
            problems.append(f"guided trial: {outcome.error}")
    for i in range(trials):
        outcome = run_trial(
            translation, seed=seed * 1_000_003 + i + 1,
            switch_prob=switch_prob, max_steps=max_steps,
            deadline_s=deadline_s,
        )
        run += 1
        if outcome.failed:
            return ConfirmResult(True, run, i, outcome, problems)
        if outcome.deadlocked and "deadlock" not in " ".join(problems):
            problems.append(f"trial {i}: deadlocked")
        elif outcome.error and len(problems) < 5:
            problems.append(f"trial {i}: {outcome.error}")
    return ConfirmResult(False, run, None, None, problems)
