"""The ordering consistency theory solver (the paper's core contribution).

This package implements the `T_ord` theory of Section 4 and its DPLL(T)
theory solver of Section 5:

* :mod:`repro.ordering.event_graph` -- the event graph: nodes are access
  events, edges are PO / RF / WS / FR orders, each carrying a *derivation
  reason* (the ordering literals it was derived from);
* :mod:`repro.ordering.icd` -- incremental cycle detection by two-way
  search over a pseudo-topological order (Section 5.2);
* :mod:`repro.ordering.tarjan` -- the non-incremental baseline detector
  used in the Figure 10 ablation;
* :mod:`repro.ordering.conflict` -- generation of all shortest-width
  conflict clauses from critical cycles (Section 5.3);
* :mod:`repro.ordering.solver` -- the :class:`OrderingTheory` tying it all
  together with unit-edge and from-read propagation (Section 5.4).
"""

from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.icd import IncrementalCycleDetector
from repro.ordering.tarjan import TarjanCycleDetector
from repro.ordering.solver import OrderingTheory, TheoryStats

__all__ = [
    "Edge",
    "EdgeKind",
    "EventGraph",
    "IncrementalCycleDetector",
    "TarjanCycleDetector",
    "OrderingTheory",
    "TheoryStats",
]
