"""The `T_ord` theory solver (Section 5).

:class:`OrderingTheory` plugs into the CDCL core via the
:class:`repro.sat.theory.Theory` interface and implements the full loop of
Figure 4:

* **consistency checking** -- every true assignment to an ordering variable
  activates its pre-created edge; the configured cycle detector (ICD or the
  Tarjan-style baseline) checks acyclicity incrementally;
* **conflict clause generation** -- on a cycle, all shortest-width critical
  cycle reasons through the new edge are returned as conflict clauses;
* **unit-edge propagation** -- after a successful insertion, inactive edges
  from the forward-search set to the backward-search set would close a
  cycle, so their ordering variables are propagated false with the path's
  derivation reason;
* **from-read propagation** -- activating ``w ≺rf r`` derives ``r ≺fr w'``
  for every active ``w ≺ws w'`` (and symmetrically for WS activations),
  inserting derived FR edges on the fly (Axiom 2); with
  ``fr_propagation=False`` (the Zord⁻ ablation) FR edges are instead
  ordinary variable-controlled edges encoded by the front end.

The theory keeps its own trail of edge activations, synchronized with the
SAT solver's decision levels through :meth:`backjump`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.robustness import checkpoint as _robustness_checkpoint
from repro.sat.theory import Theory, TheoryResult
from repro.ordering.conflict import generate_conflicts
from repro.ordering.event_graph import Edge, EdgeKind, EventGraph
from repro.ordering.icd import AddResult, IncrementalCycleDetector
from repro.ordering.tarjan import TarjanCycleDetector

__all__ = ["OrderingTheory", "TheoryStats"]


@dataclass
class TheoryStats:
    """Counters for the Section 6.3 ablation studies."""

    consistency_checks: int = 0
    cycles: int = 0
    conflict_clauses: int = 0
    unit_propagations: int = 0
    fr_derived: int = 0
    edges_activated: int = 0
    icd_reorders: int = 0
    #: Insertions accepted on the ICD ``ord[u] < ord[v]`` fast path.  The
    #: two-way search is skipped there, so unit-edge propagation sees only
    #: the trivial B/F sets ``{u}``/``{v}`` (see ``AddResult.fast_path``).
    icd_fast_path: int = 0

    def as_dict(self) -> Dict[str, int]:
        return self.__dict__.copy()


class OrderingTheory(Theory):
    """Theory solver for ordering consistency.

    Args:
        n_events: number of event-graph nodes (dense event ids).
        po_edges: static program-order edges (always active).
        detector: ``"icd"`` (incremental, default) or ``"tarjan"``
            (fresh full search per insertion -- the Fig. 10 baseline).
        unit_edge: enable unit-edge propagation (disabled = Zord′).
        fr_propagation: enable on-the-fly FR derivation (disabled = Zord⁻,
            which requires the front end to encode ``rho_fr`` itself).
        max_conflict_clauses: cap on clauses generated per cycle.
    """

    def __init__(
        self,
        n_events: int,
        po_edges: List[Tuple[int, int]],
        detector: str = "icd",
        unit_edge: bool = True,
        fr_propagation: bool = True,
        max_conflict_clauses: int = 8,
    ) -> None:
        self.graph = EventGraph(n_events)
        if detector == "icd":
            self.detector = IncrementalCycleDetector(self.graph)
        elif detector == "tarjan":
            self.detector = TarjanCycleDetector(self.graph)
        else:
            raise ValueError(f"unknown detector {detector!r}")
        self.unit_edge = unit_edge
        self.fr_propagation = fr_propagation
        self.max_conflict_clauses = max_conflict_clauses
        self.stats = TheoryStats()
        #: Optional telemetry sink (``repro.verify.telemetry.TraceWriter``).
        self.telemetry = None
        #: Debug-mode invariant auditing (``REPRO_AUDIT=1`` or
        #: ``VerifierConfig.audit``): after every assign/backjump, check
        #: that the ICD labels are consistent with all active edges and
        #: that the trail / event-graph active-set / RF-WS indices are
        #: synchronized (see :mod:`repro.oracle.audit`).
        from repro.oracle.audit import audit_enabled as _audit_enabled

        self.audit = _audit_enabled()
        if hasattr(self.detector, "on_reorder"):
            self.detector.on_reorder = self._note_reorder
        self._edge_of_var: Dict[int, Edge] = {}
        #: Memoized FR edges keyed by (read, write, reason): re-deriving
        #: the same from-read fact after a backtrack reuses the Edge
        #: object, so the graph's packed edge store (which interns every
        #: edge it ever sees) stays bounded by the number of *distinct*
        #: derivations instead of growing with every re-derivation.
        self._fr_cache: Dict[Tuple[int, int, Tuple[int, ...]], Edge] = {}
        #: Active outgoing RF / WS edges per node, for FR derivation.
        self._out_rf: List[List[Edge]] = [[] for _ in range(n_events)]
        self._out_ws: List[List[Edge]] = [[] for _ in range(n_events)]
        #: Activation trail: (edge, level) pairs, LIFO.
        self._trail: List[Tuple[Edge, int]] = []
        #: All PO edges seen so far (extended by :meth:`extend`).
        self._po_edges: List[Tuple[int, int]] = list(po_edges)
        for i, (a, b) in enumerate(po_edges):
            # The Tarjan baseline does a full-graph search per insertion,
            # so building a large PO skeleton can dominate the run; keep it
            # under the deadline/memory budget.
            if i & 0xFF == 0:
                _robustness_checkpoint("encode")
            edge = Edge(a, b, EdgeKind.PO)
            result = self.detector.add_edge(edge)
            if result.cycle:
                raise ValueError("program order itself is cyclic")
        #: Static PO reachability bitmasks (public: the encoder prunes
        #: read-from candidates with it).
        self.po_reach = self._compute_po_reachability(n_events, po_edges)
        self._po_reach = self.po_reach

    def _note_reorder(self, n_back: int, n_fwd: int) -> None:
        """Detector callback: one pseudo-topological reordering happened."""
        self.stats.icd_reorders += 1
        if self.telemetry is not None:
            self.telemetry.emit("icd_reorder", back=n_back, fwd=n_fwd)

    # ------------------------------------------------------------------
    # Incremental re-solve protocol
    # ------------------------------------------------------------------

    def extend(
        self, n_events: int, po_edges: Sequence[Tuple[int, int]] = ()
    ) -> None:
        """Grow the event graph for a delta encoding.

        New events and program-order edges are *appended*: the ICD
        pseudo-topological order, active level-0 edges, derived FR edges,
        and learned state all survive.  PO reachability is recomputed over
        the accumulated PO skeleton (it is static, not trail-dependent).
        Call only with the theory at level 0 (between solver queries).
        """
        if n_events < self.graph.n:
            raise ValueError(
                f"cannot shrink event graph ({self.graph.n} -> {n_events})"
            )
        self.graph.grow(n_events - self.graph.n)
        while len(self._out_rf) < n_events:
            self._out_rf.append([])
            self._out_ws.append([])
        for i, (a, b) in enumerate(po_edges):
            if i & 0xFF == 0:
                _robustness_checkpoint("encode")
            edge = Edge(a, b, EdgeKind.PO)
            result = self.detector.add_edge(edge)
            if result.cycle:
                raise ValueError("program order itself is cyclic")
        self._po_edges.extend(po_edges)
        self.po_reach = self._compute_po_reachability(n_events, self._po_edges)
        self._po_reach = self.po_reach

    # ------------------------------------------------------------------
    # Construction-time registration
    # ------------------------------------------------------------------

    def add_rf_var(self, var: int, write_eid: int, read_eid: int) -> None:
        """Register a read-from variable: true activates write ≺rf read."""
        self._register(var, Edge(write_eid, read_eid, EdgeKind.RF, (var,), var))

    def add_ws_var(self, var: int, w1_eid: int, w2_eid: int) -> None:
        """Register a write-serialization variable."""
        self._register(var, Edge(w1_eid, w2_eid, EdgeKind.WS, (var,), var))

    def add_fr_var(self, var: int, read_eid: int, write_eid: int) -> None:
        """Register an explicit FR variable (Zord⁻ ablation only)."""
        self._register(var, Edge(read_eid, write_eid, EdgeKind.FR, (var,), var))

    def _register(self, var: int, edge: Edge) -> None:
        if var in self._edge_of_var:
            raise ValueError(f"variable {var} already registered")
        self._edge_of_var[var] = edge
        self.graph.register_inactive(edge)

    def initial_unit_clauses(self) -> List[List[int]]:
        """Level-0 unit-edge propagation against the PO skeleton.

        Any pre-created edge (u, v) whose reverse direction is already
        enforced by program order can never be activated; its variable is
        fixed false (e.g. ``ws_{5,1}`` in the Section 5.5 walkthrough).
        """
        clauses: List[List[int]] = []
        for var, edge in self._edge_of_var.items():
            if (self._po_reach[edge.dst] >> edge.src) & 1:
                clauses.append([-var])
        return clauses

    # ------------------------------------------------------------------
    # Theory interface
    # ------------------------------------------------------------------

    def relevant(self, var: int) -> bool:
        return var in self._edge_of_var

    def assign(self, lit: int, level: int) -> TheoryResult:
        result = TheoryResult()
        if lit < 0:
            # False ordering literals remove no edges and add no orders.
            return result
        edge = self._edge_of_var.get(lit)
        if edge is None or edge.active:
            return result
        self._activate(edge, level, result)
        if self.audit:
            self._audit_check()
        return result

    def backjump(self, level: int) -> None:
        trail = self._trail
        while trail and trail[-1][1] > level:
            edge, _lvl = trail.pop()
            self.detector.remove_edge(edge)
            if edge.kind == EdgeKind.RF:
                popped = self._out_rf[edge.src].pop()
                assert popped is edge
            elif edge.kind == EdgeKind.WS:
                popped = self._out_ws[edge.src].pop()
                assert popped is edge
        if self.audit:
            self._audit_check()

    def _audit_check(self) -> None:
        """Invariant audit step (opt-in; see :mod:`repro.oracle.audit`)."""
        from repro.oracle.audit import check_icd_labels, check_theory_sync

        if isinstance(self.detector, IncrementalCycleDetector):
            check_icd_labels(self.graph)
        check_theory_sync(self)

    # ------------------------------------------------------------------
    # Core activation
    # ------------------------------------------------------------------

    def _activate(self, edge: Edge, level: int, result: TheoryResult) -> bool:
        """Insert ``edge``; on cycle, fill ``result.conflicts`` and return
        False (leaving the graph unchanged)."""
        self.stats.consistency_checks += 1
        if self.stats.consistency_checks & 0xFF == 0:
            _robustness_checkpoint("theory")
        added = self.detector.add_edge(edge)
        if added.cycle:
            self.stats.cycles += 1
            clauses = generate_conflicts(
                self.graph, self._po_reach, edge, self.max_conflict_clauses
            )
            self.stats.conflict_clauses += len(clauses)
            result.conflicts.extend(clauses)
            return False
        self.stats.edges_activated += 1
        if added.fast_path:
            self.stats.icd_fast_path += 1
        self._trail.append((edge, level))
        if edge.kind == EdgeKind.RF:
            self._out_rf[edge.src].append(edge)
        elif edge.kind == EdgeKind.WS:
            self._out_ws[edge.src].append(edge)
        if self.unit_edge:
            self._unit_edge_scan(edge, added, result)
        if self.fr_propagation:
            if not self._derive_from_read(edge, level, result):
                return False
        return True

    # ------------------------------------------------------------------
    # Theory propagation (Section 5.4)
    # ------------------------------------------------------------------

    def _unit_edge_scan(
        self, new_edge: Edge, added: AddResult, result: TheoryResult
    ) -> None:
        """Force to false the variables of inactive edges that would close a
        cycle through the newly inserted edge."""
        inactive_out = self.graph.inactive_out
        new_reason = list(new_edge.reason)
        if added.fast_path:
            # Trivial B/F = {src}/{dst}: the only candidate pair is
            # (dst, src) with empty search paths -- skip map building.
            edges = inactive_out[new_edge.dst].get(new_edge.src)
            if edges:
                path_set = sorted(set(new_reason))
                for unit in edges:
                    if unit.var is None or unit is new_edge:
                        continue
                    reason_clause = [-unit.var] + [-l for l in path_set]
                    result.add_propagation(-unit.var, reason_clause)
                    self.stats.unit_propagations += 1
            return
        back = added.back_map()  # membership: nodes reaching new_edge.src
        for f in added.fwd_nodes:
            buckets = inactive_out[f]
            if not buckets:
                continue
            for b_node, edges in buckets.items():
                if b_node not in back or not edges:
                    continue
                # Path: b_node ⇝ src --new--> dst ⇝ f, then (f, b_node)
                # would close the cycle.
                path_lits = (
                    added.back_path_reason(b_node)
                    + new_reason
                    + added.fwd_path_reason(f)
                )
                path_set = sorted(set(path_lits))
                for unit in edges:
                    if unit.var is None or unit is new_edge:
                        continue
                    reason_clause = [-unit.var] + [-l for l in path_set]
                    result.add_propagation(-unit.var, reason_clause)
                    self.stats.unit_propagations += 1

    def _derive_from_read(
        self, edge: Edge, level: int, result: TheoryResult
    ) -> bool:
        """Apply Axiom 2 around a newly activated RF or WS edge."""
        if edge.kind == EdgeKind.RF:
            # w ≺rf r combined with each active w ≺ws w' gives r ≺fr w'.
            partners = list(self._out_ws[edge.src])
            for ws_edge in partners:
                if not self._insert_fr(edge, ws_edge, level, result):
                    return False
        elif edge.kind == EdgeKind.WS:
            # w ≺ws w' combined with each active w ≺rf r gives r ≺fr w'.
            partners = list(self._out_rf[edge.src])
            for rf_edge in partners:
                if not self._insert_fr(rf_edge, edge, level, result):
                    return False
        return True

    def _insert_fr(
        self, rf_edge: Edge, ws_edge: Edge, level: int, result: TheoryResult
    ) -> bool:
        read_eid = rf_edge.dst
        write_eid = ws_edge.dst
        reason = tuple(sorted(set(rf_edge.reason) | set(ws_edge.reason)))
        if read_eid == write_eid:
            # Only possible if the same event is used as both a read and a
            # write target (ill-typed input); the derived order e ≺fr e is
            # immediately inconsistent.
            result.add_conflict([-lit for lit in reason])
            self.stats.cycles += 1
            self.stats.conflict_clauses += 1
            return False
        key = (read_eid, write_eid, reason)
        fr = self._fr_cache.get(key)
        if fr is None:
            fr = Edge(read_eid, write_eid, EdgeKind.FR, reason)
            self._fr_cache[key] = fr
        elif fr.active:
            # Already derived and active on the trail (the partner pair
            # re-triggered without an intervening backtrack): nothing new.
            return True
        self.stats.fr_derived += 1
        return self._activate(fr, level, result)

    # ------------------------------------------------------------------
    # Static PO reachability (for PO-chord tests and level-0 propagation)
    # ------------------------------------------------------------------

    @staticmethod
    def _compute_po_reachability(
        n: int, po_edges: List[Tuple[int, int]]
    ) -> List[int]:
        """Bitmask per node of all nodes PO-reachable from it (excl. self)."""
        out: List[List[int]] = [[] for _ in range(n)]
        indeg = [0] * n
        for a, b in po_edges:
            out[a].append(b)
            indeg[b] += 1
        queue = [i for i in range(n) if indeg[i] == 0]
        order: List[int] = []
        while queue:
            x = queue.pop()
            order.append(x)
            for y in out[x]:
                indeg[y] -= 1
                if indeg[y] == 0:
                    queue.append(y)
        assert len(order) == n, "PO skeleton must be acyclic"
        reach = [0] * n
        for x in reversed(order):
            mask = 0
            for y in out[x]:
                mask |= reach[y] | (1 << y)
            reach[x] = mask
        return reach
