"""Minimal conflict clause generation (Section 5.3).

When inserting ``e_i ≺ e_j`` closes a cycle, every cycle must pass through
the new edge (the graph was acyclic before), so finding the inconsistency
reasons reduces to finding all derivation reasons of paths ``e_j ⇝ e_i``
with the *shortest width* (fewest non-PO edges).

The routine follows the paper exactly:

* **Step 1 (subgraph construction)**: restrict to the nodes that occur on
  some path from ``e_j`` to ``e_i`` (descendants of ``e_j`` intersected
  with ancestors of ``e_i``), and delete non-PO edges that have a *PO
  chord* (a parallel program-order path): any path through such an edge is
  dominated by the cheaper PO path.
* **Step 2 (iterative solving)**: traverse the subgraph in topological
  order, propagating ``(width, reason-set)`` pairs; at each node keep only
  the reasons coming from *shortest predecessors*.

All shortest-width reasons reaching ``e_i`` are returned (capped at
``max_clauses`` to bound blow-up on pathological graphs), each turned into
a conflict clause by negating its literals together with the new edge's
own derivation reason.

The ``max_clauses`` cap is applied only at the final accumulation at
``e_i``: capping the per-node reason sets mid-propagation can return
fewer distinct minimal cycles than exist (and than the cap allows),
because reasons that merge into duplicates downstream would crowd out
distinct ones.  A much larger internal safety valve
(:data:`_REASON_SAFETY_CAP`) still bounds pathological blow-up.  The
traversal and the emitted clause list are fully deterministic, so
conflict clauses are reproducible run-to-run.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Set

#: Hard bound on the reason-set size tracked per node.  Orders of
#: magnitude above any ``max_clauses`` in use; only pathological graphs
#: (exponentially many shortest critical cycles) ever hit it.
_REASON_SAFETY_CAP = 4096

from repro.ordering.event_graph import Edge, EventGraph

__all__ = ["generate_conflicts"]

_INF = float("inf")


def generate_conflicts(
    graph: EventGraph,
    po_reach: List[int],
    new_edge: Edge,
    max_clauses: int = 8,
) -> List[List[int]]:
    """Return all shortest-width conflict clauses for the cycle closed by
    ``new_edge`` (which must NOT be active in ``graph``).

    Args:
        graph: the (acyclic) event graph of currently active edges.
        po_reach: per-node bitmask of PO-reachable nodes (static skeleton
            reachability), used for the PO-chord test.
        new_edge: the rejected edge ``e_i -> e_j``.
        max_clauses: cap on the number of generated clauses.
    """
    src, dst = new_edge.src, new_edge.dst  # e_i, e_j

    # Nodes on any path dst ⇝ src: descendants(dst) ∩ ancestors(src).
    desc = _reach(graph, dst, forward=True)
    anc = _reach(graph, src, forward=False)
    nodes = desc & anc
    if not nodes:
        # No path dst ⇝ src: caller should only invoke on real cycles.
        raise ValueError("generate_conflicts called without a cycle")

    # Subgraph edges with PO-chord filtering.
    in_edges: Dict[int, List[Edge]] = {n: [] for n in nodes}
    for n in nodes:
        for e in graph.out[n]:
            if e.dst not in nodes:
                continue
            if not e.is_po and (po_reach[e.src] >> e.dst) & 1:
                continue  # dominated by a parallel PO path
            in_edges[e.dst].append(e)

    order = _topological(nodes, in_edges)

    width: Dict[int, float] = {n: _INF for n in nodes}
    reasons: Dict[int, Set[FrozenSet[int]]] = {n: set() for n in nodes}
    width[dst] = 0
    reasons[dst] = {frozenset()}

    for n in order:
        if n == dst:
            continue
        best = _INF
        for e in in_edges[n]:
            w = width[e.src] + (0 if e.is_po else 1)
            if w < best:
                best = w
        if best == _INF:
            continue
        width[n] = best
        acc: Set[FrozenSet[int]] = set()
        for e in in_edges[n]:
            w = width[e.src] + (0 if e.is_po else 1)
            if w != best:
                continue
            extra = frozenset(e.reason)
            for r in reasons[e.src]:
                acc.add(r | extra)
                if len(acc) >= _REASON_SAFETY_CAP:
                    break
            if len(acc) >= _REASON_SAFETY_CAP:
                break
        reasons[n] = acc

    closing = frozenset(new_edge.reason)
    clauses: List[List[int]] = []
    seen: Set[FrozenSet[int]] = set()
    # Deterministic emission order: shortest reasons first, ties by the
    # sorted literal tuple.  The cap is applied here, and only here.
    for r in sorted(reasons[src], key=lambda s: (len(s), tuple(sorted(s)))):
        full = r | closing
        if full in seen:
            continue
        seen.add(full)
        clauses.append([-lit for lit in sorted(full)])
        if len(clauses) >= max_clauses:
            break
    if not clauses:  # pragma: no cover - defensive
        raise AssertionError("cycle detected but no conflict derived")
    return clauses


def _reach(graph: EventGraph, start: int, forward: bool) -> Set[int]:
    seen = {start}
    stack = [start]
    adj = graph.out if forward else graph.inc
    while stack:
        x = stack.pop()
        for e in adj[x]:
            y = e.dst if forward else e.src
            if y not in seen:
                seen.add(y)
                stack.append(y)
    return seen


def _topological(nodes: Set[int], in_edges: Dict[int, List[Edge]]) -> List[int]:
    """Kahn's algorithm over the (acyclic) subgraph.

    Ready nodes are popped smallest-id first (a heap, not an arbitrary
    ``list.pop``), so the visit order -- and with it the reason-set
    iteration feeding the emitted clauses -- is deterministic run-to-run.
    """
    indeg = {n: 0 for n in nodes}
    out: Dict[int, List[int]] = {n: [] for n in nodes}
    for n, edges in in_edges.items():
        for e in edges:
            indeg[n] += 1
            out[e.src].append(n)
    queue = [n for n in nodes if indeg[n] == 0]
    heapq.heapify(queue)
    order: List[int] = []
    while queue:
        x = heapq.heappop(queue)
        order.append(x)
        for y in out[x]:
            indeg[y] -= 1
            if indeg[y] == 0:
                heapq.heappush(queue, y)
    assert len(order) == len(nodes), "subgraph is not acyclic"
    return order
