"""Incremental cycle detection by two-way search (Section 5.2).

Each node carries a pseudo-topological order label ``ord`` consistent with
the active edges.  Inserting an edge ``(u, v)``:

* if ``ord[u] < ord[v]`` the labels remain consistent -- accept immediately;
* otherwise a **backward** search from ``u`` along incoming edges (bounded
  below by ``ord[v]``) collects the set ``B``; finding ``v`` means the new
  edge closes a cycle;
* then a **forward** search from ``v`` along outgoing edges (bounded above
  by ``ord[u]``) collects ``F``; hitting a node of ``B`` also means a cycle;
* if acyclic, the labels of ``B`` and ``F`` are permuted inside the window
  so that every ``B`` node precedes every ``F`` node (the Pearce-Kelly
  reordering; the paper follows Bender et al.'s two-way search with
  pseudo-topological orders -- operationally the same discipline).

The search sets ``B`` and ``F`` (with parent pointers for path
reconstruction) are returned to the caller: unit-edge propagation
(Section 5.4) enumerates ``F x B`` pairs against the inactive-edge index.

On a detected cycle the graph is left *unchanged* (the offending edge is
not activated), so the acyclicity invariant always holds between calls.

Since the packed-kernel rewrite (``docs/SATCORE.md``) the searches run in
:mod:`repro.ordering.kernel` over the graph's parallel int arrays:
epoch-stamped visited/parent scratch instead of per-insertion dicts, int
adjacency instead of ``Edge``-object chasing, and derivation reasons read
from a flat literal pool.  :class:`AddResult` is a thin view over those
search trees -- it captures parent *packed edge ids* as parallel lists
(plain ints, immune to later epoch reuse) and materializes the historical
``parent_b``/``parent_f`` ``Edge``-dict views only on demand.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ordering.event_graph import Edge, EventGraph
from repro.ordering.kernel import bounded_backward, bounded_forward, path_reason

__all__ = ["AddResult", "IncrementalCycleDetector"]


class AddResult:
    """Outcome of an edge insertion attempt.

    Attributes:
        cycle: True if the insertion would close a cycle (edge rejected).
        back_nodes: nodes reached by the backward search (includes ``src``).
        fwd_nodes: nodes reached by the forward search (includes ``dst``).
        parent_b: for each backward node ``x`` (except ``src``), the edge
            ``x -> y`` it was discovered through (``y`` closer to ``src``);
            following the chain reconstructs the path ``x ⇝ src``.  A view
            rebuilt from the packed parent ids on each access -- hot-path
            code uses :meth:`back_map` instead.
        parent_f: for each forward node ``x`` (except ``dst``), the edge
            ``y -> x`` it was discovered through; following the chain
            reconstructs the path ``dst ⇝ x``.  View; see :meth:`fwd_map`.
        fast_path: the insertion was accepted on the ``ord[u] < ord[v]``
            fast path, i.e. without running the two-way search.  The B/F
            sets are then the trivial ``{u}`` / ``{v}``, so unit-edge
            propagation only ever sees the single pair ``(v, u)`` --
            intentional per the two-way-search design (the search sets
            *are* the propagation frontier), but worth counting: see the
            ``icd_fast_path`` theory stat.
    """

    __slots__ = (
        "cycle",
        "back_nodes",
        "fwd_nodes",
        "fast_path",
        "_graph",
        "_back_par",
        "_fwd_par",
        "_bmap",
        "_fmap",
    )

    def __init__(
        self,
        cycle: bool,
        back_nodes: List[int],
        fwd_nodes: List[int],
        graph: EventGraph,
        back_par: List[int],
        fwd_par: List[int],
        fast_path: bool = False,
    ) -> None:
        self.cycle = cycle
        self.back_nodes = back_nodes
        self.fwd_nodes = fwd_nodes
        self.fast_path = fast_path
        self._graph = graph
        self._back_par = back_par
        self._fwd_par = fwd_par
        self._bmap: Optional[Dict[int, int]] = None
        self._fmap: Optional[Dict[int, int]] = None

    def back_map(self) -> Dict[int, int]:
        """Backward tree as ``node -> parent packed edge id`` (-1 at the
        root ``src``); built once, cached."""
        m = self._bmap
        if m is None:
            m = dict(zip(self.back_nodes, self._back_par))
            self._bmap = m
        return m

    def fwd_map(self) -> Dict[int, int]:
        """Forward tree as ``node -> parent packed edge id`` (-1 at the
        root ``dst``); built once, cached."""
        m = self._fmap
        if m is None:
            m = dict(zip(self.fwd_nodes, self._fwd_par))
            self._fmap = m
        return m

    @property
    def parent_b(self) -> Dict[int, Optional[Edge]]:
        edges = self._graph.edges
        return {
            n: (edges[p] if p >= 0 else None)
            for n, p in zip(self.back_nodes, self._back_par)
        }

    @property
    def parent_f(self) -> Dict[int, Optional[Edge]]:
        edges = self._graph.edges
        return {
            n: (edges[p] if p >= 0 else None)
            for n, p in zip(self.fwd_nodes, self._fwd_par)
        }

    def back_path_reason(self, node: int) -> List[int]:
        """Ordering literals along the path ``node ⇝ src``."""
        return path_reason(self._graph, node, self.back_map(), backward=True)

    def fwd_path_reason(self, node: int) -> List[int]:
        """Ordering literals along the path ``dst ⇝ node``."""
        return path_reason(self._graph, node, self.fwd_map(), backward=False)


class IncrementalCycleDetector:
    """Two-way-search incremental cycle detection over an event graph."""

    name = "icd"

    __slots__ = ("graph", "on_reorder", "audit")

    def __init__(self, graph: EventGraph) -> None:
        self.graph = graph
        #: Optional hook ``on_reorder(n_back, n_fwd)`` invoked after every
        #: pseudo-topological-order permutation (telemetry/stats).
        self.on_reorder = None
        #: Debug-mode invariant auditing (``REPRO_AUDIT=1`` or
        #: ``VerifierConfig.audit``): after every reordering, check the
        #: B-before-F label discipline before the edge is activated.
        from repro.oracle.audit import audit_enabled as _audit_enabled

        self.audit = _audit_enabled()

    def add_edge(self, edge: Edge) -> AddResult:
        """Try to activate ``edge``; detect cycles incrementally."""
        g = self.graph
        u, v = edge.src, edge.dst
        assert u != v, "order edges are irreflexive"
        ord_ = g.ord
        if ord_[u] < ord_[v]:
            g.activate(edge)
            return AddResult(False, [u], [v], g, [-1], [-1], fast_path=True)

        # Two-way bounded search over the packed adjacency (see
        # repro.ordering.kernel): backward from u within ord >= ord[v],
        # then forward from v within ord <= ord[u].
        epoch = g.new_epoch()
        back_nodes, back_par = bounded_backward(g, u, ord_[v], epoch)
        if g.vis_b[v] == epoch:
            return AddResult(True, back_nodes, [v], g, back_par, [-1])

        fwd_nodes, fwd_par, hit = bounded_forward(g, v, ord_[u], epoch)
        if hit:
            # Path v ⇝ y ⇝ u: cycle (defensive; the backward phase finds
            # any such cycle first).
            return AddResult(True, back_nodes, fwd_nodes, g, back_par, fwd_par)

        self._reorder(back_nodes, fwd_nodes)
        if self.audit:
            self._audit_window(edge, back_nodes, fwd_nodes)
        g.activate(edge)
        return AddResult(False, back_nodes, fwd_nodes, g, back_par, fwd_par)

    def remove_edge(self, edge: Edge) -> None:
        """Deactivate an edge; the pseudo-topological order stays valid."""
        self.graph.deactivate(edge)

    def _audit_window(self, edge, back_nodes, fwd_nodes) -> None:
        """Audit check: after the reorder, every B label precedes every F
        label (which makes the inserted edge consistent, since its source
        is in B and its target in F)."""
        from repro.oracle.audit import AuditError

        ord_ = self.graph.ord
        max_b = max(ord_[n] for n in back_nodes)
        min_f = min(ord_[n] for n in fwd_nodes)
        if max_b >= min_f:
            raise AuditError(
                f"ICD reorder left max B label {max_b} >= min F label "
                f"{min_f} while inserting {edge!r}"
            )

    def _reorder(self, back_nodes: List[int], fwd_nodes: List[int]) -> None:
        """Permute the order labels so every B node precedes every F node.

        Nodes keep their relative order within B and within F; the union of
        their old labels is redistributed in increasing order, B first.
        """
        ord_ = self.graph.ord
        b_sorted = sorted(back_nodes, key=lambda n: ord_[n])
        f_sorted = sorted(fwd_nodes, key=lambda n: ord_[n])
        slots = sorted(ord_[n] for n in b_sorted + f_sorted)
        for node, slot in zip(b_sorted + f_sorted, slots):
            ord_[node] = slot
        if self.on_reorder is not None:
            self.on_reorder(len(back_nodes), len(fwd_nodes))
