"""Incremental cycle detection by two-way search (Section 5.2).

Each node carries a pseudo-topological order label ``ord`` consistent with
the active edges.  Inserting an edge ``(u, v)``:

* if ``ord[u] < ord[v]`` the labels remain consistent -- accept immediately;
* otherwise a **backward** search from ``u`` along incoming edges (bounded
  below by ``ord[v]``) collects the set ``B``; finding ``v`` means the new
  edge closes a cycle;
* then a **forward** search from ``v`` along outgoing edges (bounded above
  by ``ord[u]``) collects ``F``; hitting a node of ``B`` also means a cycle;
* if acyclic, the labels of ``B`` and ``F`` are permuted inside the window
  so that every ``B`` node precedes every ``F`` node (the Pearce-Kelly
  reordering; the paper follows Bender et al.'s two-way search with
  pseudo-topological orders -- operationally the same discipline).

The search sets ``B`` and ``F`` (with parent pointers for path
reconstruction) are returned to the caller: unit-edge propagation
(Section 5.4) enumerates ``F x B`` pairs against the inactive-edge index.

On a detected cycle the graph is left *unchanged* (the offending edge is
not activated), so the acyclicity invariant always holds between calls.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ordering.event_graph import Edge, EventGraph

__all__ = ["AddResult", "IncrementalCycleDetector"]


class AddResult:
    """Outcome of an edge insertion attempt.

    Attributes:
        cycle: True if the insertion would close a cycle (edge rejected).
        back_nodes: nodes reached by the backward search (includes ``src``).
        fwd_nodes: nodes reached by the forward search (includes ``dst``).
        parent_b: for each backward node ``x`` (except ``src``), the edge
            ``x -> y`` it was discovered through (``y`` closer to ``src``);
            following the chain reconstructs the path ``x ⇝ src``.
        parent_f: for each forward node ``x`` (except ``dst``), the edge
            ``y -> x`` it was discovered through; following the chain
            reconstructs the path ``dst ⇝ x``.
        fast_path: the insertion was accepted on the ``ord[u] < ord[v]``
            fast path, i.e. without running the two-way search.  The B/F
            sets are then the trivial ``{u}`` / ``{v}``, so unit-edge
            propagation only ever sees the single pair ``(v, u)`` --
            intentional per the two-way-search design (the search sets
            *are* the propagation frontier), but worth counting: see the
            ``icd_fast_path`` theory stat.
    """

    __slots__ = (
        "cycle",
        "back_nodes",
        "fwd_nodes",
        "parent_b",
        "parent_f",
        "fast_path",
    )

    def __init__(
        self,
        cycle: bool,
        back_nodes: List[int],
        fwd_nodes: List[int],
        parent_b: Dict[int, Optional[Edge]],
        parent_f: Dict[int, Optional[Edge]],
        fast_path: bool = False,
    ) -> None:
        self.cycle = cycle
        self.back_nodes = back_nodes
        self.fwd_nodes = fwd_nodes
        self.parent_b = parent_b
        self.parent_f = parent_f
        self.fast_path = fast_path

    def back_path_reason(self, node: int) -> List[int]:
        """Ordering literals along the path ``node ⇝ src``."""
        lits: List[int] = []
        edge = self.parent_b.get(node)
        while edge is not None:
            lits.extend(edge.reason)
            edge = self.parent_b.get(edge.dst)
        return lits

    def fwd_path_reason(self, node: int) -> List[int]:
        """Ordering literals along the path ``dst ⇝ node``."""
        lits: List[int] = []
        edge = self.parent_f.get(node)
        while edge is not None:
            lits.extend(edge.reason)
            edge = self.parent_f.get(edge.src)
        return lits


class IncrementalCycleDetector:
    """Two-way-search incremental cycle detection over an event graph."""

    name = "icd"

    __slots__ = ("graph", "on_reorder", "audit")

    def __init__(self, graph: EventGraph) -> None:
        self.graph = graph
        #: Optional hook ``on_reorder(n_back, n_fwd)`` invoked after every
        #: pseudo-topological-order permutation (telemetry/stats).
        self.on_reorder = None
        #: Debug-mode invariant auditing (``REPRO_AUDIT=1`` or
        #: ``VerifierConfig.audit``): after every reordering, check the
        #: B-before-F label discipline before the edge is activated.
        from repro.oracle.audit import audit_enabled as _audit_enabled

        self.audit = _audit_enabled()

    def add_edge(self, edge: Edge) -> AddResult:
        """Try to activate ``edge``; detect cycles incrementally."""
        g = self.graph
        u, v = edge.src, edge.dst
        assert u != v, "order edges are irreflexive"
        ord_ = g.ord
        if ord_[u] < ord_[v]:
            g.activate(edge)
            return AddResult(False, [u], [v], {u: None}, {v: None}, fast_path=True)

        lb = ord_[v]
        ub = ord_[u]

        # Backward search from u (incoming edges, ord >= ord[v]).
        parent_b: Dict[int, Optional[Edge]] = {u: None}
        back_nodes: List[int] = []
        stack = [u]
        while stack:
            x = stack.pop()
            back_nodes.append(x)
            for e in g.inc[x]:
                y = e.src
                if y not in parent_b and ord_[y] >= lb:
                    parent_b[y] = e
                    stack.append(y)
        if v in parent_b:
            return AddResult(True, back_nodes, [v], parent_b, {v: None})

        # Forward search from v (outgoing edges, ord <= ord[u]).
        parent_f: Dict[int, Optional[Edge]] = {v: None}
        fwd_nodes: List[int] = []
        stack = [v]
        in_b = parent_b  # membership test
        while stack:
            x = stack.pop()
            fwd_nodes.append(x)
            for e in g.out[x]:
                y = e.dst
                if y in in_b:
                    # Path v ⇝ y ⇝ u: cycle (defensive; the backward phase
                    # finds any such cycle first).
                    parent_f[y] = e
                    fwd_nodes.append(y)
                    return AddResult(True, back_nodes, fwd_nodes, parent_b, parent_f)
                if y not in parent_f and ord_[y] <= ub:
                    parent_f[y] = e
                    stack.append(y)

        self._reorder(back_nodes, fwd_nodes)
        if self.audit:
            self._audit_window(edge, back_nodes, fwd_nodes)
        g.activate(edge)
        return AddResult(False, back_nodes, fwd_nodes, parent_b, parent_f)

    def remove_edge(self, edge: Edge) -> None:
        """Deactivate an edge; the pseudo-topological order stays valid."""
        self.graph.deactivate(edge)

    def _audit_window(self, edge, back_nodes, fwd_nodes) -> None:
        """Audit check: after the reorder, every B label precedes every F
        label (which makes the inserted edge consistent, since its source
        is in B and its target in F)."""
        from repro.oracle.audit import AuditError

        ord_ = self.graph.ord
        max_b = max(ord_[n] for n in back_nodes)
        min_f = min(ord_[n] for n in fwd_nodes)
        if max_b >= min_f:
            raise AuditError(
                f"ICD reorder left max B label {max_b} >= min F label "
                f"{min_f} while inserting {edge!r}"
            )

    def _reorder(self, back_nodes: List[int], fwd_nodes: List[int]) -> None:
        """Permute the order labels so every B node precedes every F node.

        Nodes keep their relative order within B and within F; the union of
        their old labels is redistributed in increasing order, B first.
        """
        ord_ = self.graph.ord
        b_sorted = sorted(back_nodes, key=lambda n: ord_[n])
        f_sorted = sorted(fwd_nodes, key=lambda n: ord_[n])
        slots = sorted(ord_[n] for n in b_sorted + f_sorted)
        for node, slot in zip(b_sorted + f_sorted, slots):
            ord_[node] = slot
        if self.on_reorder is not None:
            self.on_reorder(len(back_nodes), len(fwd_nodes))
