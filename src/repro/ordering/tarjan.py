"""Non-incremental cycle detection baseline (the Figure 10 ablation).

The paper compares its incremental detector against running Tarjan-style
non-incremental cycle detection afresh on every edge insertion.  This
detector performs a full (unbounded) backward search from the edge source
and, if acyclic, a full forward search from the target -- O(n + m) per
insertion, with no order labels maintained or reused.

It exposes the same interface as
:class:`repro.ordering.icd.IncrementalCycleDetector`, so the theory solver
can swap detectors via configuration; the search sets it returns feed
unit-edge propagation exactly as with ICD.

The searches share the packed kernel (:mod:`repro.ordering.kernel`) with
ICD, run with slack bounds: ``lb=0`` / ``ub=n`` never prune (order labels
are a permutation of ``range(n)``), which makes the bounded DFS an
unbounded one.
"""

from __future__ import annotations

from repro.ordering.event_graph import Edge, EventGraph
from repro.ordering.icd import AddResult
from repro.ordering.kernel import bounded_backward, bounded_forward

__all__ = ["TarjanCycleDetector"]


class TarjanCycleDetector:
    """Fresh full-graph cycle detection on every insertion."""

    name = "tarjan"

    __slots__ = ("graph",)

    def __init__(self, graph: EventGraph) -> None:
        self.graph = graph

    def add_edge(self, edge: Edge) -> AddResult:
        g = self.graph
        u, v = edge.src, edge.dst
        assert u != v, "order edges are irreflexive"

        epoch = g.new_epoch()
        # Full backward search from u: all ancestors (lb=0 never prunes).
        back_nodes, back_par = bounded_backward(g, u, 0, epoch)
        if g.vis_b[v] == epoch:
            return AddResult(True, back_nodes, [v], g, back_par, [-1])

        # Full forward search from v: all descendants (ub=n never prunes).
        # The B-hit branch cannot fire here: any forward path into B would
        # imply v ⇝ u, which the unbounded backward pass just excluded.
        fwd_nodes, fwd_par, hit = bounded_forward(g, v, g.n, epoch)
        if hit:  # pragma: no cover - unreachable with unbounded backward
            return AddResult(True, back_nodes, fwd_nodes, g, back_par, fwd_par)

        g.activate(edge)
        return AddResult(False, back_nodes, fwd_nodes, g, back_par, fwd_par)

    def remove_edge(self, edge: Edge) -> None:
        self.graph.deactivate(edge)
