"""Non-incremental cycle detection baseline (the Figure 10 ablation).

The paper compares its incremental detector against running Tarjan-style
non-incremental cycle detection afresh on every edge insertion.  This
detector performs a full (unbounded) backward search from the edge source
and, if acyclic, a full forward search from the target -- O(n + m) per
insertion, with no order labels maintained or reused.

It exposes the same interface as
:class:`repro.ordering.icd.IncrementalCycleDetector`, so the theory solver
can swap detectors via configuration; the search sets it returns feed
unit-edge propagation exactly as with ICD.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ordering.event_graph import Edge, EventGraph
from repro.ordering.icd import AddResult

__all__ = ["TarjanCycleDetector"]


class TarjanCycleDetector:
    """Fresh full-graph cycle detection on every insertion."""

    name = "tarjan"

    __slots__ = ("graph",)

    def __init__(self, graph: EventGraph) -> None:
        self.graph = graph

    def add_edge(self, edge: Edge) -> AddResult:
        g = self.graph
        u, v = edge.src, edge.dst
        assert u != v, "order edges are irreflexive"

        # Full backward search from u: all ancestors.
        parent_b: Dict[int, Optional[Edge]] = {u: None}
        back_nodes: List[int] = []
        stack = [u]
        while stack:
            x = stack.pop()
            back_nodes.append(x)
            for e in g.inc[x]:
                y = e.src
                if y not in parent_b:
                    parent_b[y] = e
                    stack.append(y)
        if v in parent_b:
            return AddResult(True, back_nodes, [v], parent_b, {v: None})

        # Full forward search from v: all descendants.
        parent_f: Dict[int, Optional[Edge]] = {v: None}
        fwd_nodes: List[int] = []
        stack = [v]
        while stack:
            x = stack.pop()
            fwd_nodes.append(x)
            for e in g.out[x]:
                y = e.dst
                if y not in parent_f:
                    parent_f[y] = e
                    stack.append(y)

        g.activate(edge)
        return AddResult(False, back_nodes, fwd_nodes, parent_b, parent_f)

    def remove_edge(self, edge: Edge) -> None:
        self.graph.deactivate(edge)
