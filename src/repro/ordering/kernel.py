"""Packed search kernel for the ordering-consistency graph.

This is the T_ord twin of :mod:`repro.sat.kernel`: the narrow, integer-only
surface behind which the hot cycle-detection searches run.  Everything here
operates on the packed parallel arrays owned by
:class:`repro.ordering.event_graph.EventGraph`:

* visited state as epoch stamps (``vis_b``/``vis_f``) -- a search is opened
  with ``g.new_epoch()`` and a node is visited iff its stamp equals that
  epoch, so no per-search set/dict is ever allocated;
* parents captured as packed edge ids in parallel int lists (-1 marks the
  search root) instead of per-insertion ``{node: Edge}`` dicts;
* derivation-reason literals in the flat pool ``rpool`` addressed by
  ``rstart``/``rlen`` offset slices.

The two functions below implement the bounded two-way search of
Pearce–Kelly-style incremental cycle detection (paper Section 5.2).  The
unbounded Tarjan-baseline searches reuse them with slack bounds
(``lb=0`` / ``ub=n``), so both detectors share one kernel.

Interface contract: callers pass plain ints and receive parallel int
lists; no ``Edge`` objects cross this boundary outward.  That keeps the
surface narrow enough for a compiled (mypyc/Cython/numpy) backend to
replace this module wholesale.  Two storage choices here are measured,
not assumed (numbers in ``docs/SATCORE.md``):

* hot containers are plain Python lists rather than ``array('l')`` -- on
  CPython, ``array`` element access pays a box/unbox per read/write and
  measures ~2x slower reads / ~5x slower writes than list indexing;
* adjacency iteration walks the graph's ``Edge``-object lists (slot
  attribute loads) rather than parallel ``(dst, eid)`` int lists --
  CPython's specialized ``LOAD_ATTR`` on ``__slots__`` measures ~30%
  faster than the double ``BINARY_SUBSCR`` a packed pair scan needs.  A
  compiled backend loses both CPython quirks and would switch the scan to
  the int pairs (``Edge.idx`` gives the mapping); the kernel interface
  does not change either way.

Also the home of :func:`path_reason`, which re-assembles derivation-reason
clauses by walking a parent map over the packed pool -- used by the
``AddResult`` view in :mod:`repro.ordering.icd` and by unit-edge
propagation in :mod:`repro.ordering.solver`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["bounded_backward", "bounded_forward", "path_reason"]


def bounded_backward(
    g, u: int, lb: int, epoch: int
) -> Tuple[List[int], List[int]]:
    """DFS over incoming active edges from ``u``, pruned to ``ord >= lb``.

    Stamps ``vis_b`` with ``epoch`` and returns the discovered node set B
    and the parallel list of parent edge ids (-1 for ``u``).  Discovery
    order; ``u`` is first.
    """
    ord_ = g.ord
    vis_b = g.vis_b
    inc = g.inc
    vis_b[u] = epoch
    nodes = [u]
    pars = [-1]
    stack = [u]
    while stack:
        x = stack.pop()
        for e in inc[x]:
            y = e.src
            if vis_b[y] != epoch and ord_[y] >= lb:
                vis_b[y] = epoch
                nodes.append(y)
                pars.append(e.idx)
                stack.append(y)
    return nodes, pars


def bounded_forward(
    g, v: int, ub: int, epoch: int
) -> Tuple[List[int], List[int], bool]:
    """DFS over outgoing active edges from ``v``, pruned to ``ord <= ub``.

    Stamps ``vis_f`` with ``epoch``.  If the search reaches a node
    already stamped by this epoch's *backward* pass (``vis_b``), a cycle
    closed: that node is appended (with its parent edge id) and the final
    flag is True.  Otherwise returns the full forward set F with flag
    False.
    """
    ord_ = g.ord
    vis_b = g.vis_b
    vis_f = g.vis_f
    out = g.out
    vis_f[v] = epoch
    nodes = [v]
    pars = [-1]
    stack = [v]
    while stack:
        x = stack.pop()
        for e in out[x]:
            y = e.dst
            if vis_b[y] == epoch:
                # Cycle: the forward frontier touched the backward set.
                nodes.append(y)
                pars.append(e.idx)
                return nodes, pars, True
            if vis_f[y] != epoch and ord_[y] <= ub:
                vis_f[y] = epoch
                nodes.append(y)
                pars.append(e.idx)
                stack.append(y)
    return nodes, pars, False


def path_reason(g, node: int, pmap: Dict[int, int], backward: bool) -> List[int]:
    """Union of derivation reasons along a search-tree path.

    Walks parent edge ids from ``node`` to the search root through
    ``pmap`` (node -> parent eid, -1/absent at the root), collecting each
    edge's reason literals from the flat pool.  ``backward=True`` follows
    ``e_dst`` (backward-search tree, paths run node -> ... -> u);
    ``backward=False`` follows ``e_src`` (forward tree).
    """
    rstart = g.rstart
    rlen = g.rlen
    rpool = g.rpool
    step = g.e_dst if backward else g.e_src
    lits: List[int] = []
    eid = pmap.get(node, -1)
    while eid >= 0:
        start = rstart[eid]
        lits.extend(rpool[start : start + rlen[eid]])
        eid = pmap.get(step[eid], -1)
    return lits
