"""The event graph (Section 4.2).

Nodes are event ids (dense integers); edges carry

* a **kind** -- PO (program order), RF (read-from), WS (write
  serialization), or FR (from-read);
* a **derivation reason** -- the tuple of ordering variables (positive
  DIMACS vars) the edge was derived from: empty for PO, the single ordering
  variable for RF/WS, and the pair ``(rf_var, ws_var)`` for a derived FR
  edge;
* an **active** flag -- only active edges are present in the adjacency
  structure; RF/WS edges are pre-created inactive and toggled as their
  ordering variable is assigned/unassigned (Section 5.4).

Activation/deactivation is strictly LIFO (it follows the DPLL(T) trail), so
adjacency lists support O(1) removal by popping.

Since the packed-kernel rewrite (``docs/SATCORE.md``) the graph keeps a
*dual* representation:

* the :class:`Edge`-object adjacency (``out`` / ``inc``) -- the public
  surface used by conflict generation, the audit invariants and tests;
* a packed edge store for the hot cycle-detector searches: every edge
  that ever touches the graph is interned with a dense integer id
  (``Edge.idx``), endpoints live in ``e_src`` / ``e_dst``, and derivation
  reasons in a flat literal pool (``rpool`` with ``rstart`` / ``rlen``
  offset slices).  Epoch-stamped ``vis_b``/``vis_f`` arrays give the
  two-way search O(1) visited state without per-insertion set/dict
  allocation, and search-tree parents are captured as packed edge ids in
  parallel int lists (see :mod:`repro.ordering.kernel`; adjacency
  *iteration* stays on the ``Edge`` lists -- measured faster on CPython,
  see ``docs/SATCORE.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["EdgeKind", "Edge", "EventGraph"]


class EdgeKind:
    PO = "po"
    RF = "rf"
    WS = "ws"
    FR = "fr"


class Edge:
    """A directed order edge ``src ≺ dst``."""

    __slots__ = ("src", "dst", "kind", "reason", "var", "active", "idx")

    def __init__(
        self,
        src: int,
        dst: int,
        kind: str,
        reason: Tuple[int, ...] = (),
        var: Optional[int] = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.reason = reason
        self.var = var
        self.active = False
        #: Dense packed-edge id, assigned on first contact with a graph.
        self.idx: Optional[int] = None

    @property
    def is_po(self) -> bool:
        return self.kind == EdgeKind.PO

    def __repr__(self) -> str:
        state = "+" if self.active else "-"
        return f"Edge({self.src}->{self.dst} {self.kind}{state} r={self.reason})"


class EventGraph:
    """Adjacency structure over active edges, plus the inactive-edge index
    used by unit-edge propagation.

    The pseudo-topological order used by incremental cycle detection lives
    here (``self.ord``) so conflict generation and detectors share it.
    """

    __slots__ = (
        "n",
        "out",
        "inc",
        "ord",
        "inactive_out",
        "n_active_edges",
        # Packed edge store (interned once per Edge object).
        "edges",
        "e_src",
        "e_dst",
        "rstart",
        "rlen",
        "rpool",
        # Epoch-stamped two-way-search state (see repro.ordering.kernel).
        "vis_b",
        "vis_f",
        "epoch",
    )

    def __init__(self, n_nodes: int) -> None:
        self.n = n_nodes
        self.out: List[List[Edge]] = [[] for _ in range(n_nodes)]
        self.inc: List[List[Edge]] = [[] for _ in range(n_nodes)]
        #: Pseudo-topological order labels (maintained by the ICD detector).
        self.ord: List[int] = list(range(n_nodes))
        #: Inactive RF/WS edges indexed by source node, for the unit-edge
        #: scan (Section 5.4: "check if (e_f, e_b) corresponds to an
        #: inactive edge").
        self.inactive_out: List[Dict[int, List[Edge]]] = [
            {} for _ in range(n_nodes)
        ]
        self.n_active_edges = 0
        # Packed edge store: eid -> object / endpoints / reason slice.
        self.edges: List[Edge] = []
        self.e_src: List[int] = []
        self.e_dst: List[int] = []
        self.rstart: List[int] = []
        self.rlen: List[int] = []
        self.rpool: List[int] = []
        # Search scratch: visited iff stamp == current epoch.
        self.vis_b: List[int] = [0] * n_nodes
        self.vis_f: List[int] = [0] * n_nodes
        self.epoch = 0

    def grow(self, k: int) -> None:
        """Append ``k`` fresh nodes (delta encoding support).

        New nodes get the largest pseudo-topological labels, so ``ord``
        stays a permutation consistent with the existing active edges and
        the ICD detector needs no rebuild.
        """
        for _ in range(k):
            self.out.append([])
            self.inc.append([])
            self.inactive_out.append({})
            self.vis_b.append(0)
            self.vis_f.append(0)
            self.ord.append(self.n)
            self.n += 1

    def new_epoch(self) -> int:
        """Fresh search epoch: invalidates vis_b/vis_f in O(1)."""
        self.epoch += 1
        return self.epoch

    def intern(self, edge: Edge) -> int:
        """Assign (once) a dense packed id to ``edge``; returns it."""
        eid = edge.idx
        if eid is None:
            eid = len(self.edges)
            edge.idx = eid
            self.edges.append(edge)
            self.e_src.append(edge.src)
            self.e_dst.append(edge.dst)
            self.rstart.append(len(self.rpool))
            self.rlen.append(len(edge.reason))
            self.rpool.extend(edge.reason)
        return eid

    def reason_of(self, eid: int) -> List[int]:
        """Derivation reason literals of a packed edge (pool slice)."""
        start = self.rstart[eid]
        return self.rpool[start : start + self.rlen[eid]]

    # ------------------------------------------------------------------
    # Inactive edge registry
    # ------------------------------------------------------------------

    def register_inactive(self, edge: Edge) -> None:
        """Pre-create an RF/WS edge in inactive state (Section 5.4)."""
        self.intern(edge)
        self.inactive_out[edge.src].setdefault(edge.dst, []).append(edge)

    def inactive_edges_between(self, src: int, dst: int) -> List[Edge]:
        return self.inactive_out[src].get(dst, [])

    # ------------------------------------------------------------------
    # Activation (adjacency maintenance only; cycle checks live in the
    # detectors)
    # ------------------------------------------------------------------

    def activate(self, edge: Edge) -> None:
        assert not edge.active, f"edge already active: {edge!r}"
        if edge.idx is None:
            self.intern(edge)
        edge.active = True
        src = edge.src
        dst = edge.dst
        self.out[src].append(edge)
        self.inc[dst].append(edge)
        if edge.var is not None:
            bucket = self.inactive_out[src].get(dst)
            if bucket and edge in bucket:
                bucket.remove(edge)
        self.n_active_edges += 1

    def deactivate(self, edge: Edge) -> None:
        """LIFO removal: ``edge`` must be the most recently activated edge
        still present in its adjacency lists."""
        assert edge.active, f"edge not active: {edge!r}"
        popped_out = self.out[edge.src].pop()
        popped_in = self.inc[edge.dst].pop()
        assert popped_out is edge and popped_in is edge, (
            "non-LIFO deactivation: trail order violated"
        )
        edge.active = False
        if edge.var is not None:
            self.inactive_out[edge.src].setdefault(edge.dst, []).append(edge)
        self.n_active_edges -= 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successors(self, node: int) -> Iterable[Edge]:
        return self.out[node]

    def predecessors(self, node: int) -> Iterable[Edge]:
        return self.inc[node]

    def active_edges(self) -> Iterable[Edge]:
        for edges in self.out:
            yield from edges

    def has_path(self, src: int, dst: int) -> bool:
        """Reachability over active edges (non-incremental; testing aid)."""
        if src == dst:
            return True
        seen = [False] * self.n
        stack = [src]
        seen[src] = True
        while stack:
            u = stack.pop()
            for e in self.out[u]:
                if e.dst == dst:
                    return True
                if not seen[e.dst]:
                    seen[e.dst] = True
                    stack.append(e.dst)
        return False
