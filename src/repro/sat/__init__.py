"""CDCL SAT solver with online DPLL(T) theory hooks.

This package provides the propositional substrate of the reproduction:

* :class:`repro.sat.solver.Solver` -- a conflict-driven clause-learning SAT
  solver (two-watched literals, VSIDS, first-UIP learning, Luby restarts).
* :class:`repro.sat.theory.Theory` -- the interface a theory solver
  implements to participate in DPLL(T) (the ordering-consistency solver in
  :mod:`repro.ordering` and the clock-difference baseline both implement it).

Literals follow the DIMACS convention: a positive integer ``v`` denotes the
variable ``v`` asserted true, ``-v`` denotes it asserted false.  Variable 0
is unused.
"""

from repro.sat.sharing import SerialBroker, ShareChannel
from repro.sat.solver import Solver, SolveResult, SolverStats
from repro.sat.theory import Theory, TheoryResult

__all__ = [
    "Solver",
    "SolveResult",
    "SolverStats",
    "Theory",
    "TheoryResult",
    "ShareChannel",
    "SerialBroker",
]
