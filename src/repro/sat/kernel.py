"""Flat-array SAT kernel: clause arena, watcher pairs, indexed VSIDS heap.

This module is the *hardware-shaped* half of the CDCL core (ROADMAP item
2).  Everything the inner propagation loop touches lives in flat parallel
integer containers instead of per-clause Python objects:

* :class:`ClauseArena` -- all clauses in one flat word list.  A clause is
  an integer offset (*cref*); word 0 packs ``size << 2 | learned << 1 |
  dead``, word 1 is a stable clause id (*cid*), words 2.. are the
  literals.  Activities live in a parallel ``array('d')`` indexed by cid,
  and ``cid2ref`` maps stable ids to current offsets so compaction can
  slide live clauses down without invalidating handles held above the
  kernel.
* watcher lists -- one flat pair-list per literal: ``(tag, payload)``
  where ``tag > 0`` is ``cref + 1`` with a *blocker* literal payload
  (MiniSat/Glucose idiom: a satisfied blocker skips the clause without
  touching the arena), and ``tag < 0`` is ``-(cref + 1)`` for a *binary*
  clause whose payload is the only other literal -- binary clauses
  propagate without ever loading clause data.
* :class:`VarOrderHeap` -- an indexed binary max-heap with a position
  map.  Activity bumps ``decrease_key`` (sift up -- activities only
  grow) in place, so decisions never wade through stale tuples the way
  the old lazy ``(-activity, var)`` heap did.
* :class:`BoolKernel` -- assignment/level/reason/phase/trail as parallel
  lists grown by ``new_var``, plus the two-watched-literal propagation
  loop itself.

Storage-type note (measured on CPython, see ``docs/SATCORE.md``): the
layout is designed for 32-bit words, but the *hot* containers are plain
Python lists because ``array('i')`` item access pays boxing costs
(~1.8x reads, ~5x writes vs. a list of small ints).  The arena exports
``typed_arena()`` for a future compiled backend that wants a real
``array('i')`` buffer; nothing above the kernel interface would change.

Reason encoding (``BoolKernel.reason[v]``):

* ``-1`` -- no reason (decision or level-0 fact),
* ``>= 0`` -- arena cref of the propagating clause,
* ``<= -2`` -- index ``-2 - r`` into the transient theory-reason pool
  (``BoolKernel.treason``); slots are recycled on backjump so theory
  propagation reasons never leak arena space.

The kernel interface (the methods of the classes below) is deliberately
narrow: DPLL(T) logic, conflict analysis, assumptions, sharing, audit
and telemetry all live in :class:`repro.sat.solver.Solver` on top.  A
mypyc/Cython/numpy backend replaces this module, not the solver.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

__all__ = ["ClauseArena", "VarOrderHeap", "BoolKernel", "NO_REASON"]

#: Sentinel for "no reason clause" in :attr:`BoolKernel.reason`.
NO_REASON = -1

#: Words of clause metadata preceding the literals.
_HEADER_WORDS = 2

_DEAD = 1
_LEARNED = 2


class ClauseArena:
    """All clauses as one flat word list; clauses are integer offsets."""

    __slots__ = ("data", "activity", "cid2ref", "dead_words")

    def __init__(self) -> None:
        #: Flat clause words: ``[header, cid, lit0, lit1, ...] ...``.
        self.data: List[int] = []
        #: Per-cid clause activity (parallel array, learned clauses only
        #: ever have non-zero entries).
        self.activity = array("d")
        #: Stable clause id -> current cref (-1 once freed).
        self.cid2ref: List[int] = []
        #: Words occupied by freed clauses (compaction trigger).
        self.dead_words = 0

    def alloc(self, lits: List[int], learned: bool) -> int:
        """Append a clause; returns its cref (arena offset)."""
        data = self.data
        cref = len(data)
        cid = len(self.cid2ref)
        data.append(len(lits) << 2 | (_LEARNED if learned else 0))
        data.append(cid)
        data.extend(lits)
        self.activity.append(0.0)
        self.cid2ref.append(cref)
        return cref

    def free(self, cref: int) -> None:
        """Mark a clause dead; space is reclaimed by :meth:`compact`."""
        header = self.data[cref]
        self.data[cref] = header | _DEAD
        self.cid2ref[self.data[cref + 1]] = -1
        self.dead_words += (header >> 2) + _HEADER_WORDS

    def size(self, cref: int) -> int:
        return self.data[cref] >> 2

    def is_learned(self, cref: int) -> bool:
        return bool(self.data[cref] & _LEARNED)

    def lits(self, cref: int) -> List[int]:
        """The clause's literals as a fresh list (cold-path accessor)."""
        base = cref + _HEADER_WORDS
        return self.data[base : base + (self.data[cref] >> 2)]

    def cid(self, cref: int) -> int:
        return self.data[cref + 1]

    def compact(self) -> Dict[int, int]:
        """Slide live clauses down in place; returns {old cref: new cref}.

        ``cid2ref`` is updated here; the caller must remap every other
        cref it holds (watcher tags, reason refs, clause lists) using the
        returned relocation map.
        """
        data = self.data
        reloc: Dict[int, int] = {}
        out: List[int] = []
        i = 0
        n = len(data)
        while i < n:
            header = data[i]
            nwords = (header >> 2) + _HEADER_WORDS
            if not header & _DEAD:
                reloc[i] = len(out)
                self.cid2ref[data[i + 1]] = len(out)
                out.extend(data[i : i + nwords])
            i += nwords
        data[:] = out
        self.dead_words = 0
        return reloc

    def typed_arena(self) -> array:
        """The arena as a real ``array('i')`` (compiled-backend export)."""
        return array("i", self.data)


class VarOrderHeap:
    """Indexed binary max-heap over variable activities.

    ``pos[v]`` is the heap slot of variable ``v`` (-1 when absent), so a
    bump re-sifts the live entry instead of pushing a stale duplicate.
    Activities only increase between rebuilds, hence :meth:`bump` only
    ever sifts up (the classic ``decrease_key`` on a max-heap).
    """

    __slots__ = ("activity", "heap", "pos", "n_ops")

    def __init__(self, activity: List[float]) -> None:
        #: Shared with the solver: ``activity[v]`` keys the heap order.
        self.activity = activity
        self.heap: List[int] = []
        self.pos: List[int] = [-1]  # index 0 unused (vars are 1-based)
        #: Exact count of structural heap operations (inserts, pops,
        #: effective bumps) -- reported as the ``heap_ops`` stat.
        self.n_ops = 0

    def grow(self) -> None:
        self.pos.append(-1)

    def __len__(self) -> int:
        return len(self.heap)

    def insert(self, v: int) -> None:
        if self.pos[v] != -1:
            return
        heap = self.heap
        heap.append(v)
        self.pos[v] = len(heap) - 1
        self._sift_up(len(heap) - 1)
        self.n_ops += 1

    def bump(self, v: int) -> None:
        """Re-key ``v`` after its activity increased."""
        i = self.pos[v]
        if i > 0:
            self._sift_up(i)
            self.n_ops += 1

    def pop(self) -> int:
        """Remove and return the max-activity variable (0 when empty)."""
        heap = self.heap
        if not heap:
            return 0
        pos = self.pos
        top = heap[0]
        last = heap.pop()
        pos[top] = -1
        if heap:
            heap[0] = last
            pos[last] = 0
            self._sift_down(0)
        self.n_ops += 1
        return top

    def _sift_up(self, i: int) -> None:
        heap, pos, act = self.heap, self.pos, self.activity
        v = heap[i]
        a = act[v]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            if act[pv] >= a:
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = v
        pos[v] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, act = self.heap, self.pos, self.activity
        n = len(heap)
        v = heap[i]
        a = act[v]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            child = left
            right = left + 1
            if right < n and act[heap[right]] > act[heap[left]]:
                child = right
            cv = heap[child]
            if a >= act[cv]:
                break
            heap[i] = cv
            pos[cv] = i
            i = child
        heap[i] = v
        pos[v] = i

    def check(self) -> None:
        """Audit helper: heap property + position map consistency."""
        for i, v in enumerate(self.heap):
            assert self.pos[v] == i, f"pos[{v}]={self.pos[v]} != {i}"
            if i > 0:
                p = self.heap[(i - 1) >> 1]
                assert self.activity[p] >= self.activity[v], "heap order"


class BoolKernel:
    """Flat-state Boolean engine: parallel arrays + watched-literal loop."""

    __slots__ = (
        "nvars",
        "arena",
        "assign",
        "level",
        "reason",
        "phase",
        "trail",
        "trail_lim",
        "qhead",
        "watch",
        "activity",
        "heap",
        "treason",
        "treason_free",
        "n_props",
        "n_visits",
        "n_blocked",
        "max_trail",
    )

    def __init__(self) -> None:
        self.nvars = 0
        self.arena = ClauseArena()
        # Parallel per-variable arrays (1-based; slot 0 unused).
        self.assign: List[int] = [0]  # 0 unassigned / 1 true / -1 false
        self.level: List[int] = [0]
        self.reason: List[int] = [NO_REASON]
        self.phase: List[int] = [0]  # saved phase: 1 true / 0 false
        self.activity: List[float] = [0.0]
        self.trail: List[int] = []
        self.trail_lim: List[int] = []
        self.qhead = 0
        # Per-literal watcher pair-lists, indexed by widx(lit) = 2v | neg.
        self.watch: List[List[int]] = [[], []]
        self.heap = VarOrderHeap(self.activity)
        # Transient theory-reason pool (see module docstring).
        self.treason: List[Optional[List[int]]] = []
        self.treason_free: List[int] = []
        # Exact operation counters (stats satellite).
        self.n_props = 0
        self.n_visits = 0
        self.n_blocked = 0
        self.max_trail = 0

    # ------------------------------------------------------------------
    # Growth / clause plumbing
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        self.nvars += 1
        self.assign.append(0)
        self.level.append(0)
        self.reason.append(NO_REASON)
        self.phase.append(0)
        self.activity.append(0.0)
        self.watch.append([])
        self.watch.append([])
        self.heap.grow()
        self.heap.insert(self.nvars)
        return self.nvars

    @staticmethod
    def widx(lit: int) -> int:
        return 2 * lit if lit > 0 else 1 - 2 * lit

    def attach(self, cref: int) -> None:
        """Install watches on the clause's first two literals."""
        data = self.arena.data
        base = cref + _HEADER_WORDS
        l0 = data[base]
        l1 = data[base + 1]
        if data[cref] >> 2 == 2:
            tag = -(cref + 1)  # binary: payload is the *other* literal
            w0 = self.watch[2 * l0 if l0 > 0 else 1 - 2 * l0]
            w0.append(tag)
            w0.append(l1)
            w1 = self.watch[2 * l1 if l1 > 0 else 1 - 2 * l1]
            w1.append(tag)
            w1.append(l0)
        else:
            tag = cref + 1
            w0 = self.watch[2 * l0 if l0 > 0 else 1 - 2 * l0]
            w0.append(tag)
            w0.append(l1)  # blocker: the other watched literal
            w1 = self.watch[2 * l1 if l1 > 0 else 1 - 2 * l1]
            w1.append(tag)
            w1.append(l0)

    def detach(self, cref: int) -> None:
        data = self.arena.data
        base = cref + _HEADER_WORDS
        for lit in (data[base], data[base + 1]):
            wl = self.watch[2 * lit if lit > 0 else 1 - 2 * lit]
            for i in range(0, len(wl), 2):
                tag = wl[i]
                if tag == cref + 1 or tag == -(cref + 1):
                    del wl[i : i + 2]
                    break

    def add_treason(self, lits: List[int]) -> int:
        """Intern a theory propagation reason; returns its reason ref."""
        if self.treason_free:
            slot = self.treason_free.pop()
            self.treason[slot] = lits
        else:
            slot = len(self.treason)
            self.treason.append(lits)
        return -2 - slot

    def reason_lits(self, ref: int) -> Optional[List[int]]:
        """Cold-path accessor: the literals behind a reason ref."""
        if ref == NO_REASON:
            return None
        if ref >= 0:
            return self.arena.lits(ref)
        return self.treason[-2 - ref]

    # ------------------------------------------------------------------
    # Assignment / trail
    # ------------------------------------------------------------------

    def value(self, lit: int) -> int:
        v = self.assign[lit if lit > 0 else -lit]
        return v if lit > 0 else -v

    def enqueue(self, lit: int, reason_ref: int) -> bool:
        """Assign ``lit`` (cold path -- propagate() inlines this).

        Returns False when ``lit`` is already false."""
        if lit > 0:
            v = lit
            cur = self.assign[v]
            if cur:
                return cur == 1
            self.assign[v] = 1
            self.phase[v] = 1
        else:
            v = -lit
            cur = self.assign[v]
            if cur:
                return cur == -1
            self.assign[v] = -1
            self.phase[v] = 0
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason_ref
        self.trail.append(lit)
        self.n_props += 1
        if len(self.trail) > self.max_trail:
            self.max_trail = len(self.trail)
        return True

    def cancel_until(self, target_level: int) -> None:
        """Undo the trail down to ``target_level`` decision levels."""
        trail_lim = self.trail_lim
        if len(trail_lim) <= target_level:
            return
        bound = trail_lim[target_level]
        trail = self.trail
        assign = self.assign
        reason = self.reason
        treason = self.treason
        treason_free = self.treason_free
        # Heap reinsertion is inlined: a method call per unwound variable
        # dominates deep backjumps otherwise.  Newly freed variables carry
        # no fresh bumps, so the sift-up almost always terminates on the
        # first parent comparison; full _sift_up only runs when the slot
        # actually rises.
        heap_obj = self.heap
        heap = heap_obj.heap
        pos = heap_obj.pos
        act = heap_obj.activity
        n_ins = 0
        for i in range(len(trail) - 1, bound - 1, -1):
            lit = trail[i]
            v = lit if lit > 0 else -lit
            assign[v] = 0
            r = reason[v]
            if r < NO_REASON:  # recycle the transient theory reason
                slot = -2 - r
                treason[slot] = None
                treason_free.append(slot)
            reason[v] = NO_REASON
            if pos[v] == -1:
                idx = len(heap)
                heap.append(v)
                pos[v] = idx
                n_ins += 1
                if idx > 0 and act[heap[(idx - 1) >> 1]] < act[v]:
                    heap_obj._sift_up(idx)
        heap_obj.n_ops += n_ins
        del trail[bound:]
        del trail_lim[target_level:]
        if self.qhead > bound:
            self.qhead = bound

    # ------------------------------------------------------------------
    # Propagation (the hot loop)
    # ------------------------------------------------------------------

    def propagate(self) -> int:
        """Two-watched-literal unit propagation to fixpoint.

        Returns the cref of a falsified clause, or -1 at fixpoint.  The
        loop binds every container to a local and inlines value lookups
        and enqueues: on CPython, attribute loads and function calls
        dominate otherwise.
        """
        assign = self.assign
        level = self.level
        reason = self.reason
        phase = self.phase
        watch = self.watch
        trail = self.trail
        data = self.arena.data
        dl = len(self.trail_lim)
        qhead = self.qhead
        n_props = 0
        n_visits = 0
        n_blocked = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            neg = -lit
            # Watchers of the literal that just became false (= -lit).
            watchers = watch[2 * lit + 1] if lit > 0 else watch[-2 * lit]
            n = len(watchers)
            n_visits += n >> 1
            i = 0
            j = 0
            while i < n:
                tag = watchers[i]
                blocker = watchers[i + 1]
                i += 2
                bv = assign[blocker] if blocker > 0 else -assign[-blocker]
                if bv == 1:
                    # Satisfied via the blocker: clause data never loaded.
                    watchers[j] = tag
                    watchers[j + 1] = blocker
                    j += 2
                    n_blocked += 1
                    continue
                if tag < 0:
                    # Binary clause: blocker is the only other literal.
                    watchers[j] = tag
                    watchers[j + 1] = blocker
                    j += 2
                    if bv == -1:
                        while i < n:  # conflict: restore remaining watchers
                            watchers[j] = watchers[i]
                            watchers[j + 1] = watchers[i + 1]
                            i += 2
                            j += 2
                        del watchers[j:]
                        self.qhead = len(trail)
                        self.n_props += n_props
                        self.n_visits += n_visits
                        self.n_blocked += n_blocked
                        return -tag - 1
                    # Unit: enqueue the blocker (inlined).
                    if blocker > 0:
                        assign[blocker] = 1
                        phase[blocker] = 1
                        level[blocker] = dl
                        reason[blocker] = -tag - 1
                    else:
                        bvar = -blocker
                        assign[bvar] = -1
                        phase[bvar] = 0
                        level[bvar] = dl
                        reason[bvar] = -tag - 1
                    trail.append(blocker)
                    n_props += 1
                    continue
                cref = tag - 1
                base = cref + 2
                # Ensure the falsified literal sits at base+1.
                first = data[base]
                if first == neg:
                    first = data[base + 1]
                    data[base] = first
                    data[base + 1] = neg
                fv = assign[first] if first > 0 else -assign[-first]
                if fv == 1:
                    watchers[j] = tag
                    watchers[j + 1] = first  # refresh the blocker
                    j += 2
                    continue
                # Look for a new non-false literal to watch.
                end = base + (data[cref] >> 2)
                k = base + 2
                moved = False
                while k < end:
                    lk = data[k]
                    kv = assign[lk] if lk > 0 else -assign[-lk]
                    if kv != -1:
                        data[base + 1] = lk
                        data[k] = neg
                        wl = watch[2 * lk if lk > 0 else 1 - 2 * lk]
                        wl.append(tag)
                        wl.append(first)
                        moved = True
                        break
                    k += 1
                if moved:
                    continue
                # Unit or falsified: the clause stays watched here.
                watchers[j] = tag
                watchers[j + 1] = first
                j += 2
                if fv == -1:
                    while i < n:  # conflict: restore remaining watchers
                        watchers[j] = watchers[i]
                        watchers[j + 1] = watchers[i + 1]
                        i += 2
                        j += 2
                    del watchers[j:]
                    self.qhead = len(trail)
                    self.n_props += n_props
                    self.n_visits += n_visits
                    self.n_blocked += n_blocked
                    return cref
                # Unit: enqueue `first` (inlined).
                if first > 0:
                    assign[first] = 1
                    phase[first] = 1
                    level[first] = dl
                    reason[first] = cref
                else:
                    fvar = -first
                    assign[fvar] = -1
                    phase[fvar] = 0
                    level[fvar] = dl
                    reason[fvar] = cref
                trail.append(first)
                n_props += 1
            del watchers[j:]
        self.qhead = qhead
        self.n_props += n_props
        self.n_visits += n_visits
        self.n_blocked += n_blocked
        if len(trail) > self.max_trail:
            self.max_trail = len(trail)
        return -1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact_arena(self, clause_lists: List[List[int]]) -> None:
        """Compact the arena and remap every cref the kernel state holds.

        ``clause_lists`` are additional cref lists owned by the caller
        (problem/learned clause indices); they are remapped in place.
        """
        reloc = self.arena.compact()
        for refs in clause_lists:
            for i, cref in enumerate(refs):
                refs[i] = reloc[cref]
        reason = self.reason
        for v in range(1, self.nvars + 1):
            r = reason[v]
            if r >= 0:
                reason[v] = reloc[r]
        for wl in self.watch:
            for i in range(0, len(wl), 2):
                tag = wl[i]
                if tag > 0:
                    wl[i] = reloc[tag - 1] + 1
                else:
                    wl[i] = -(reloc[-tag - 1] + 1)
