"""Learned-clause sharing between cooperating solvers.

A :class:`ShareChannel` connects one solver to a clause-exchange medium.
The solver *offers* short learned clauses as it records them (length-capped
so only high-value clauses travel) and *exchanges* at restart boundaries:
buffered exports are flushed out and foreign clauses are pulled in, both
deduplicated by literal set so a clause never crosses the channel twice in
either direction.

Two media are provided:

* :class:`SerialBroker` -- an in-process mailbox for solvers that run in the
  same interpreter (the serial portfolio path and the tests);
* arbitrary ``send``/``recv`` callables -- the parallel portfolio wires these
  to ``multiprocessing`` queues (worker -> parent -> sibling workers).

Sharing is sound only between solvers working on the *identical* CNF
(same variable numbering); grouping by encoding signature is the caller's
job (:mod:`repro.portfolio.sharing`).

The module also keeps a per-process *active channel* slot so a worker can
attach a channel before running the verification pipeline without threading
it through every config object (configs stay picklable and hashable).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ShareChannel",
    "SerialBroker",
    "attach",
    "detach",
    "active_channel",
]

#: Default cap on exported clause length (literals).  Short clauses prune
#: the most search per byte; MiniSat-family portfolios use similar caps.
DEFAULT_MAX_LEN = 8

#: Default cap on clauses imported per exchange, so a slow solver is never
#: buried under a fast sibling's output.
DEFAULT_MAX_IMPORT = 256

Clause = Tuple[int, ...]


class ShareChannel:
    """One solver's endpoint on a clause-exchange medium.

    ``send`` is called with a list of clause tuples to publish; ``recv``
    returns whatever foreign clauses have arrived since the last call
    (non-blocking).  Both directions are deduplicated by frozen literal set.
    """

    def __init__(
        self,
        send: Callable[[List[Clause]], None],
        recv: Callable[[], Iterable[Sequence[int]]],
        max_len: int = DEFAULT_MAX_LEN,
        max_import: int = DEFAULT_MAX_IMPORT,
        signature: Optional[Tuple] = None,
    ) -> None:
        self._send = send
        self._recv = recv
        self.max_len = max_len
        self.max_import = max_import
        #: Encoding signature the channel's clauses are valid for.  The
        #: verifier refuses to use an attached channel whose signature does
        #: not match its own config (a fallback preset may re-encode the
        #: program differently mid-process).  ``None`` means "caller
        #: guarantees compatibility" and is attached unconditionally.
        self.signature = signature
        self.exported = 0
        self.imported = 0
        self._seen = set()
        self._out: List[Clause] = []

    def offer(self, lits: Sequence[int]) -> bool:
        """Buffer a learned clause for export.  Returns True if accepted
        (short enough and not already seen on this channel)."""
        if not lits or len(lits) > self.max_len:
            return False
        key = frozenset(lits)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._out.append(tuple(lits))
        return True

    def flush(self) -> None:
        """Publish buffered exports without importing.

        Safe at any decision level (exporting never touches solver state);
        called when a solve finishes so short runs that never restarted
        still seed their siblings.
        """
        if self._out:
            out, self._out = self._out, []
            self._send(out)
            self.exported += len(out)

    def exchange(self) -> List[Clause]:
        """Flush buffered exports and return newly arrived foreign clauses.

        Call only at a restart boundary (decision level 0) so imports can be
        added as ordinary problem clauses.
        """
        self.flush()
        fresh: List[Clause] = []
        for lits in self._recv():
            if len(fresh) >= self.max_import:
                break
            key = frozenset(lits)
            if key in self._seen:
                continue
            self._seen.add(key)
            fresh.append(tuple(lits))
        self.imported += len(fresh)
        return fresh


class SerialBroker:
    """In-process clause mailbox for solvers sharing one interpreter.

    Each member gets a :class:`ShareChannel`; a clause published by one
    member is delivered to every *other* member's inbox.
    """

    def __init__(
        self,
        max_len: int = DEFAULT_MAX_LEN,
        signature: Optional[Tuple] = None,
    ) -> None:
        self._inboxes: List[List[Clause]] = []
        self._max_len = max_len
        self._signature = signature

    def join(self) -> ShareChannel:
        index = len(self._inboxes)
        self._inboxes.append([])

        def send(clauses: List[Clause], _index: int = index) -> None:
            for i, box in enumerate(self._inboxes):
                if i != _index:
                    box.extend(clauses)

        def recv(_index: int = index) -> List[Clause]:
            box = self._inboxes[_index]
            if not box:
                return []
            self._inboxes[_index] = []
            return box

        return ShareChannel(
            send, recv, max_len=self._max_len, signature=self._signature
        )


#: Per-process active channel; see module docstring.
_active: Optional[ShareChannel] = None


def attach(channel: Optional[ShareChannel]) -> None:
    """Make ``channel`` the process-wide channel new solver runs pick up."""
    global _active
    _active = channel


def detach() -> None:
    attach(None)


def active_channel() -> Optional[ShareChannel]:
    return _active
